#include "core/report.h"

#include <iomanip>
#include <sstream>

#include "obs/export.h"

namespace epi {
namespace {

void append_rows(std::ostringstream& os, const std::vector<AuditFinding>& rows) {
  for (const AuditFinding& f : rows) {
    os << "  " << std::left << std::setw(10) << f.user << std::setw(44)
       << (f.query_text + (f.answer ? " = true" : " = false")) << std::setw(9)
       << to_string(f.verdict) << std::setw(34) << f.method
       << (f.certified ? "certified" : "numeric") << "\n";
    if (!f.detail.empty()) {
      os << "      witness: " << f.detail << "\n";
    }
  }
}

void append_verdict_mix(std::ostringstream& os, const AuditReport& report,
                        AuditReport::Section section) {
  os << report.count(Verdict::kUnsafe, section) << " unsafe, "
     << report.count(Verdict::kSafe, section) << " safe, "
     << report.count(Verdict::kUnknown, section) << " unknown";
}

}  // namespace

std::string format_report(const AuditReport& report) {
  std::ostringstream os;
  os << "Audit query  : " << report.audit_query << "\n";
  os << "Prior family : " << to_string(report.prior) << "\n";
  os << "Disclosures  : " << report.per_disclosure.size() << " (";
  append_verdict_mix(os, report, AuditReport::Section::kPerDisclosure);
  os << ")\n";
  os << "Cumulative   : " << report.per_user_cumulative.size() << " users (";
  append_verdict_mix(os, report, AuditReport::Section::kPerUser);
  os << ")\n";
  os << "\nPer disclosure:\n";
  append_rows(os, report.per_disclosure);
  os << "\nPer user (accumulated knowledge, Section 3.3):\n";
  append_rows(os, report.per_user_cumulative);
  return os.str();
}

std::string format_stage_stats(const AuditReport& report) {
  std::ostringstream os;
  os << "Decision stages (" << to_string(report.prior) << "):\n";
  os << "  " << std::left << std::setw(28) << "stage" << std::right
     << std::setw(8) << "runs" << std::setw(10) << "decided" << std::setw(12)
     << "wall-ms" << "\n";
  for (const StageStats& s : report.stage_stats()) {
    os << "  " << std::left << std::setw(28) << s.name << std::right
       << std::setw(8) << s.invocations << std::setw(10) << s.decisions
       << std::setw(12) << std::fixed << std::setprecision(3)
       << s.wall_seconds * 1e3 << "\n";
  }
  os << "  memo hits: " << report.memo_hits() << "\n";
  return os.str();
}

std::string format_metrics(const AuditReport& report) {
  std::ostringstream os;
  os << "Audit metrics (" << report.audit_query << ", "
     << to_string(report.prior) << "):\n";
  os << obs::metrics_to_text(report.metrics);
  return os.str();
}

}  // namespace epi
