#include "core/report.h"

#include <iomanip>
#include <sstream>

namespace epi {
namespace {

void append_rows(std::ostringstream& os, const std::vector<AuditFinding>& rows) {
  for (const AuditFinding& f : rows) {
    os << "  " << std::left << std::setw(10) << f.user << std::setw(44)
       << (f.query_text + (f.answer ? " = true" : " = false")) << std::setw(9)
       << to_string(f.verdict) << std::setw(34) << f.method
       << (f.certified ? "certified" : "numeric") << "\n";
    if (!f.detail.empty()) {
      os << "      witness: " << f.detail << "\n";
    }
  }
}

}  // namespace

std::string format_report(const AuditReport& report) {
  std::ostringstream os;
  os << "Audit query  : " << report.audit_query << "\n";
  os << "Prior family : " << to_string(report.prior) << "\n";
  os << "Disclosures  : " << report.per_disclosure.size() << " ("
     << report.count(Verdict::kUnsafe) << " unsafe, "
     << report.count(Verdict::kSafe) << " safe, "
     << report.count(Verdict::kUnknown) << " unknown)\n";
  os << "\nPer disclosure:\n";
  append_rows(os, report.per_disclosure);
  os << "\nPer user (accumulated knowledge, Section 3.3):\n";
  append_rows(os, report.per_user_cumulative);
  return os.str();
}

}  // namespace epi
