// Online (proactive) auditing — the paper's Section 7 future-work direction
// ("apply the new frameworks to online auditing, which will require the
// modeling of a user's knowledge about the auditor's query-answering
// strategy"), built on the possibilistic machinery.
//
// The online auditor receives a stream of Boolean queries and must answer or
// deny each one. The crux (introduction's Alice/Bob example): a DENIAL is
// itself an answer to the implicit query "would the strategy deny here?", so
// a strategy whose denials depend on the actual database leaks through them.
// We model an agent who knows the strategy and updates on denials
// accordingly, and provide two strategies to compare:
//
//  * kTruthfulWhenSafe — deny only when the truthful answer would reveal the
//    sensitive set A to the current agent. Its denial set depends on the
//    actual world, so denials leak (the paper's intro pitfall).
//  * kSimulatable — deny when ANY world the agent still considers possible
//    would make the truthful answer reveal A (in the spirit of Kenthapadi,
//    Mishra & Nissim's simulatable auditing, the paper's [18]). The denial
//    decision is a function of the query and the agent's knowledge only, so
//    denials carry no information about the actual database.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "worlds/world_set.h"

namespace epi {

/// Query-answering strategies for the online auditor.
enum class OnlineStrategy {
  kTruthfulWhenSafe,  ///< deny iff the truthful answer would reveal A (leaky)
  kSimulatable,       ///< deny iff some possible world's answer would reveal A
};

std::string to_string(OnlineStrategy strategy);

/// One interaction's outcome.
struct OnlineResponse {
  bool denied = false;
  bool answer = false;  ///< meaningful only when !denied
  /// The worlds the strategy-aware agent still considers possible afterwards.
  WorldSet agent_knowledge;

  OnlineResponse() : agent_knowledge(1) {}
};

/// Simulates the online auditor AND the strategy-aware possibilistic agent
/// in lockstep. The sensitive set A is fixed; the agent starts with no
/// knowledge (all worlds possible) and must never come to know A.
class OnlineAuditSession {
 public:
  /// `sensitive` is the audited set A; `actual` the real database omega*.
  /// Requires omega* in A or not — both are allowed; only knowledge of A is
  /// protected (a negative fact is disclosable, Section 3's asymmetry).
  /// Throws std::invalid_argument when `actual` lies outside the sensitive
  /// set's world space; callers that expect untrusted input should prefer
  /// try_create.
  OnlineAuditSession(WorldSet sensitive, World actual, OnlineStrategy strategy);

  /// Status-first factory: validates that `actual` is a world of the same
  /// universe the sensitive set is defined over (actual < 2^n) and returns
  /// InvalidArgument naming both sizes instead of throwing. `*out` is left
  /// untouched on failure.
  static Status try_create(WorldSet sensitive, World actual,
                           OnlineStrategy strategy,
                           std::unique_ptr<OnlineAuditSession>* out);

  /// Processes one query given as the set of worlds where it is true.
  /// Returns the response and advances the simulated agent's knowledge.
  OnlineResponse ask(const WorldSet& query_true_set);

  /// The agent's current knowledge set S.
  const WorldSet& agent_knowledge() const { return agent_knowledge_; }

  /// True when the agent has come to know A (S ⊆ A) — a privacy breach.
  bool agent_knows_sensitive() const;

  /// Number of denials so far.
  int denials() const { return denials_; }

 private:
  /// Would the strategy deny `query` in a hypothetical world `world`, given
  /// agent knowledge `knowledge`? Used both to act and to model the agent's
  /// inference from denials.
  bool would_deny(const WorldSet& query_true_set, World world,
                  const WorldSet& knowledge) const;

  WorldSet sensitive_;
  World actual_;
  OnlineStrategy strategy_;
  WorldSet agent_knowledge_;
  int denials_ = 0;
};

}  // namespace epi
