#include "core/scenario.h"

#include <memory>
#include <sstream>

#include "db/parser.h"

namespace epi {
namespace {

PriorAssumption parse_prior(int line, const std::string& kind) {
  if (kind == "unrestricted") return PriorAssumption::kUnrestricted;
  if (kind == "product") return PriorAssumption::kProduct;
  if (kind == "log-supermodular") return PriorAssumption::kLogSupermodular;
  if (kind == "subcube-knowledge") return PriorAssumption::kSubcubeKnowledge;
  throw ScenarioError(line, "unknown prior '" + kind + "'");
}

std::string trim(const std::string& s) {
  const std::size_t start = s.find_first_not_of(" \t");
  if (start == std::string::npos) return "";
  const std::size_t end = s.find_last_not_of(" \t");
  return s.substr(start, end - start + 1);
}

}  // namespace

ScenarioResult run_scenario(std::istream& input, const ScenarioOptions& options) {
  ScenarioResult result;
  PriorAssumption prior = PriorAssumption::kUnrestricted;
  std::unique_ptr<InMemoryDatabase> db;
  int line_number = 0;
  std::string line;

  // batch_audits mode: consecutive `audit` directives queue here and run as
  // one Auditor::audit_many sweep. Any other directive flushes first (it may
  // change the database, the log, or the prior), so each batch sees exactly
  // the state the unbatched run would — reports come out byte-identical.
  std::vector<std::string> pending_audits;
  int first_pending_line = 0;

  auto ensure_db = [&]() -> InMemoryDatabase& {
    if (!db) {
      if (result.universe.empty()) {
        throw ScenarioError(line_number, "no records declared");
      }
      db = std::make_unique<InMemoryDatabase>(result.universe);
    }
    return *db;
  };

  auto flush_audits = [&]() {
    if (pending_audits.empty()) return;
    Auditor auditor(result.universe, prior, options.auditor);
    try {
      std::vector<AuditReport> reports =
          auditor.audit_many(result.log, pending_audits);
      for (AuditReport& report : reports) {
        result.reports.push_back(std::move(report));
      }
    } catch (const std::exception& e) {
      // Parse errors were caught at queue time; anything left (e.g. a
      // compile failure) is attributed to the batch's first audit line.
      throw ScenarioError(first_pending_line, e.what());
    }
    pending_audits.clear();
  };

  while (std::getline(input, line)) {
    ++line_number;
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive) || directive[0] == '#') continue;
    try {
      if (directive != "audit") flush_audits();
      if (directive == "record") {
        std::string name;
        if (!(ls >> name)) throw ScenarioError(line_number, "record needs a name");
        if (db) throw ScenarioError(line_number, "records must precede use");
        result.universe.add(name);
      } else if (directive == "insert" || directive == "remove") {
        std::string name;
        if (!(ls >> name)) throw ScenarioError(line_number, "missing record name");
        if (directive == "insert") {
          ensure_db().insert(name);
        } else {
          ensure_db().remove(name);
        }
      } else if (directive == "prior") {
        std::string kind;
        ls >> kind;
        prior = parse_prior(line_number, kind);
      } else if (directive == "query") {
        std::string user;
        if (!(ls >> user)) throw ScenarioError(line_number, "query needs a user");
        std::string rest;
        std::getline(ls, rest);
        rest = trim(rest);
        std::string timestamp;
        if (!rest.empty() && rest[0] == '@') {
          const std::size_t space = rest.find(' ');
          if (space == std::string::npos) {
            throw ScenarioError(line_number, "query needs text after timestamp");
          }
          timestamp = rest.substr(1, space - 1);
          rest = trim(rest.substr(space));
        }
        if (rest.empty()) throw ScenarioError(line_number, "empty query text");
        const bool answer =
            result.log.record(user, rest, ensure_db(), timestamp);
        result.query_trace.push_back(user + ": " + rest + " -> " +
                                     (answer ? "true" : "false"));
      } else if (directive == "audit") {
        std::string audit_query;
        std::getline(ls, audit_query);
        audit_query = trim(audit_query);
        if (audit_query.empty()) throw ScenarioError(line_number, "empty audit query");
        ensure_db();
        if (options.batch_audits) {
          // Validate now so a malformed query names its own line, not the
          // batch flush point.
          QueryPtr parsed;
          if (const Status status = try_parse_query(audit_query, &parsed);
              !status.ok()) {
            throw ScenarioError(line_number, status.message());
          }
          if (pending_audits.empty()) first_pending_line = line_number;
          pending_audits.push_back(std::move(audit_query));
        } else {
          Auditor auditor(result.universe, prior, options.auditor);
          result.reports.push_back(auditor.audit(result.log, audit_query));
        }
      } else {
        throw ScenarioError(line_number, "unknown directive '" + directive + "'");
      }
    } catch (const ScenarioError&) {
      throw;
    } catch (const std::exception& e) {
      throw ScenarioError(line_number, e.what());
    }
  }
  flush_audits();
  result.final_state = db ? db->state() : 0;
  return result;
}

ScenarioResult run_scenario(const std::string& text, const ScenarioOptions& options) {
  std::istringstream in(text);
  return run_scenario(in, options);
}

Status try_run_scenario(std::istream& input, ScenarioResult* out,
                        const ScenarioOptions& options) {
  try {
    *out = run_scenario(input, options);
    return Status::Ok();
  } catch (const ScenarioError& e) {
    return Status::InvalidArgument(std::string("scenario ") + e.what());
  } catch (const std::invalid_argument& e) {
    return Status::InvalidArgument(e.what());
  }
}

Status try_run_scenario(const std::string& text, ScenarioResult* out,
                        const ScenarioOptions& options) {
  std::istringstream in(text);
  return try_run_scenario(in, out, options);
}

}  // namespace epi
