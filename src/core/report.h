// Plain-text rendering of audit reports.
#pragma once

#include <string>

#include "core/auditor.h"

namespace epi {

/// Renders a report as an aligned text table with one row per disclosure and
/// a per-user cumulative section.
std::string format_report(const AuditReport& report);

}  // namespace epi
