// Plain-text rendering of audit reports.
#pragma once

#include <string>

#include "core/auditor.h"

namespace epi {

/// Renders a report as an aligned text table with one row per disclosure and
/// a per-user cumulative section.
std::string format_report(const AuditReport& report);

/// Renders the decision-path instrumentation: one row per engine stage with
/// invocation / decision counts and cumulative wall time, plus the pair-memo
/// hit count — all views over the report's metrics snapshot. Counts are
/// deterministic; wall times are wall times.
std::string format_stage_stats(const AuditReport& report);

/// Renders every metric in the report's snapshot (the raw registry view;
/// format_stage_stats is the curated one).
std::string format_metrics(const AuditReport& report);

}  // namespace epi
