#include "core/audit_log.h"

#include <algorithm>
#include <atomic>

#include "db/parser.h"

namespace epi {
namespace {

std::atomic<std::size_t> g_disclosed_set_calls{0};

}  // namespace

WorldSet Disclosure::disclosed_set(const RecordUniverse& universe) const {
  g_disclosed_set_calls.fetch_add(1, std::memory_order_relaxed);
  const WorldSet satisfying = query->compile(universe);
  return answer ? satisfying : ~satisfying;
}

std::size_t disclosed_set_call_count() {
  return g_disclosed_set_calls.load(std::memory_order_relaxed);
}

void reset_disclosed_set_call_count() {
  g_disclosed_set_calls.store(0, std::memory_order_relaxed);
}

bool AuditLog::record(const std::string& user, const std::string& query_text,
                      const InMemoryDatabase& db, const std::string& timestamp) {
  Disclosure d;
  d.user = user;
  d.query_text = query_text;
  d.query = parse_query(query_text);
  d.answer = db.answer(*d.query);
  d.timestamp = timestamp;
  entries_.push_back(std::move(d));
  return entries_.back().answer;
}

void AuditLog::record_with_answer(const std::string& user,
                                  const std::string& query_text, bool answer,
                                  const std::string& timestamp) {
  Disclosure d;
  d.user = user;
  d.query_text = query_text;
  d.query = parse_query(query_text);
  d.answer = answer;
  d.timestamp = timestamp;
  entries_.push_back(std::move(d));
}

std::vector<std::string> AuditLog::users() const {
  std::vector<std::string> out;
  for (const Disclosure& d : entries_) {
    if (std::find(out.begin(), out.end(), d.user) == out.end()) {
      out.push_back(d.user);
    }
  }
  return out;
}

}  // namespace epi
