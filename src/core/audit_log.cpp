#include "core/audit_log.h"

#include <algorithm>

#include "db/parser.h"
#include "obs/metrics.h"

namespace epi {
namespace {

/// Registry-backed counter; the legacy accessors below are views over it.
obs::Counter& disclosed_set_counter() {
  static obs::Counter& counter =
      obs::process_metrics().counter("audit_log.disclosed_set.calls");
  return counter;
}

}  // namespace

WorldSet Disclosure::disclosed_set(const RecordUniverse& universe,
                                   SetBackend backend) const {
  disclosed_set_counter().add(1);
  const WorldSet satisfying = query->compile(universe, backend);
  return answer ? satisfying : ~satisfying;
}

std::size_t disclosed_set_call_count() {
  return static_cast<std::size_t>(disclosed_set_counter().value());
}

void reset_disclosed_set_call_count() { disclosed_set_counter().set(0); }

bool AuditLog::record(const std::string& user, const std::string& query_text,
                      const InMemoryDatabase& db, const std::string& timestamp) {
  Disclosure d;
  d.user = user;
  d.query_text = query_text;
  d.query = parse_query(query_text);
  d.answer = db.answer(*d.query);
  d.timestamp = timestamp;
  entries_.push_back(std::move(d));
  return entries_.back().answer;
}

void AuditLog::record_with_answer(const std::string& user,
                                  const std::string& query_text, bool answer,
                                  const std::string& timestamp) {
  Disclosure d;
  d.user = user;
  d.query_text = query_text;
  d.query = parse_query(query_text);
  d.answer = answer;
  d.timestamp = timestamp;
  entries_.push_back(std::move(d));
}

std::vector<std::string> AuditLog::users() const {
  std::vector<std::string> out;
  for (const Disclosure& d : entries_) {
    if (std::find(out.begin(), out.end(), d.user) == out.end()) {
      out.push_back(d.user);
    }
  }
  return out;
}

}  // namespace epi
