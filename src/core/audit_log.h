// The query log that offline auditing runs over: who asked what, and which
// answer they received. A disclosure's knowledge set B is the set of worlds
// consistent with the answer the user actually saw.
#pragma once

#include <string>
#include <vector>

#include "db/database.h"
#include "db/query.h"

namespace epi {

/// One answered query.
struct Disclosure {
  std::string user;
  std::string query_text;
  QueryPtr query;
  bool answer = false;     ///< the Boolean answer returned to the user
  std::string timestamp;   ///< free-form (e.g. "2005-03-02")

  /// The disclosed world set: satisfying worlds when the answer was "true",
  /// their complement otherwise. `backend` picks the compiled
  /// representation (kAuto: dense up to kMaxCoordinates).
  WorldSet disclosed_set(const RecordUniverse& universe,
                         SetBackend backend = SetBackend::kAuto) const;
};

/// Instrumentation: process-wide number of Disclosure::disclosed_set calls
/// (i.e. query compilations). Batch audits cache each disclosure's compiled
/// set, so one audit() compiles each distinct (query, answer) exactly once —
/// tests assert this here.
std::size_t disclosed_set_call_count();
void reset_disclosed_set_call_count();

/// Append-only log of disclosures.
class AuditLog {
 public:
  /// Parses the query, evaluates it against the database's current state and
  /// records the disclosure. Returns the answer given to the user.
  bool record(const std::string& user, const std::string& query_text,
              const InMemoryDatabase& db, const std::string& timestamp = "");

  /// Records a disclosure with a pre-computed answer (e.g. replayed from an
  /// external log where the database state at the time is unknown).
  void record_with_answer(const std::string& user, const std::string& query_text,
                          bool answer, const std::string& timestamp = "");

  const std::vector<Disclosure>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// The distinct users appearing in the log, in first-seen order.
  std::vector<std::string> users() const;

 private:
  std::vector<Disclosure> entries_;
};

}  // namespace epi
