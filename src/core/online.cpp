#include "core/online.h"

#include <stdexcept>

namespace epi {

std::string to_string(OnlineStrategy strategy) {
  switch (strategy) {
    case OnlineStrategy::kTruthfulWhenSafe:
      return "truthful-when-safe";
    case OnlineStrategy::kSimulatable:
      return "simulatable";
  }
  return "?";
}

OnlineAuditSession::OnlineAuditSession(WorldSet sensitive, World actual,
                                       OnlineStrategy strategy)
    : sensitive_(std::move(sensitive)),
      actual_(actual),
      strategy_(strategy),
      agent_knowledge_(WorldSet::universe(sensitive_.n())) {
  if (actual_ >= agent_knowledge_.omega_size()) {
    throw std::invalid_argument("OnlineAuditSession: actual world out of range");
  }
}

Status OnlineAuditSession::try_create(WorldSet sensitive, World actual,
                                      OnlineStrategy strategy,
                                      std::unique_ptr<OnlineAuditSession>* out) {
  if (actual >= sensitive.omega_size()) {
    return Status::InvalidArgument(
        "OnlineAuditSession: actual world " + std::to_string(actual) +
        " outside the sensitive set's universe {0,1}^" +
        std::to_string(sensitive.n()) + " (|Omega| = " +
        std::to_string(sensitive.omega_size()) + ")");
  }
  *out = std::unique_ptr<OnlineAuditSession>(
      new OnlineAuditSession(std::move(sensitive), actual, strategy));
  return Status::Ok();
}

bool OnlineAuditSession::would_deny(const WorldSet& query_true_set, World world,
                                    const WorldSet& knowledge) const {
  // The truthful answer in `world` discloses B_world = the answer's worlds.
  auto reveals = [&](World w) {
    const WorldSet disclosed =
        query_true_set.contains(w) ? query_true_set : ~query_true_set;
    const WorldSet updated = knowledge & disclosed;
    // Knowledge of A is gained iff the agent did not know A and would after.
    return !knowledge.subset_of(sensitive_) && !updated.is_empty() &&
           updated.subset_of(sensitive_);
  };
  switch (strategy_) {
    case OnlineStrategy::kTruthfulWhenSafe:
      return reveals(world);
    case OnlineStrategy::kSimulatable: {
      // Deny iff ANY world the agent considers possible would force a
      // revealing answer — computable without looking at the actual world.
      bool deny = false;
      knowledge.visit([&](World w) { deny = deny || reveals(w); });
      return deny;
    }
  }
  return true;
}

OnlineResponse OnlineAuditSession::ask(const WorldSet& query_true_set) {
  if (query_true_set.n() != sensitive_.n()) {
    throw std::invalid_argument("ask: query over wrong world space");
  }
  OnlineResponse response;
  response.denied = would_deny(query_true_set, actual_, agent_knowledge_);
  if (response.denied) {
    ++denials_;
    // A strategy-aware agent learns from the denial: only worlds in which
    // the strategy would also deny remain possible.
    WorldSet deny_worlds(sensitive_.n());
    agent_knowledge_.visit([&](World w) {
      if (would_deny(query_true_set, w, agent_knowledge_)) deny_worlds.insert(w);
    });
    agent_knowledge_ &= deny_worlds;
  } else {
    response.answer = query_true_set.contains(actual_);
    agent_knowledge_ &= response.answer ? query_true_set : ~query_true_set;
  }
  response.agent_knowledge = agent_knowledge_;
  return response;
}

bool OnlineAuditSession::agent_knows_sensitive() const {
  return !agent_knowledge_.is_empty() && agent_knowledge_.subset_of(sensitive_);
}

}  // namespace epi
