// The offline auditor — the paper's motivating application. Given an audit
// query A (the sensitive property), assumptions about users' prior knowledge,
// and a log of answered queries, it decides for each disclosure whether the
// user could have *gained* confidence in A (Definitions 3.1 / 3.4), and
// additionally audits each user's accumulated disclosures (Section 3.3:
// acquiring B1 then B2 equals acquiring B1 ∩ B2).
//
// Decisions run through the staged DecisionEngine (src/engine/): an ordered
// cascade of CriterionStage objects per prior assumption, with a per-audit
// AuditContext caching compiled disclosure sets, memoizing (A, B)-pair
// verdicts and amortizing the subcube interval machinery. Batch audits fan
// disclosures out across a thread pool with deterministic, log-order output.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/audit_log.h"
#include "criteria/verdict.h"
#include "engine/decision_engine.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "possibilistic/intervals.h"
#include "util/status.h"

namespace epi {

/// The verdict for one disclosure (or one user's accumulated disclosures).
struct AuditFinding {
  std::string user;
  std::string query_text;  ///< the query, or "<conjunction of k answers>"
  bool answer = false;
  Verdict verdict = Verdict::kUnknown;
  std::string method;      ///< the deciding criterion/stage
  bool certified = false;  ///< proof-backed (criterion/witness/SOS), not numerics
  double numeric_gap = 0.0;
  std::string detail;      ///< witness description when unsafe
};

/// Complete audit output.
struct AuditReport {
  std::string audit_query;
  PriorAssumption prior = PriorAssumption::kUnrestricted;
  std::vector<AuditFinding> per_disclosure;
  std::vector<AuditFinding> per_user_cumulative;

  /// Snapshot of the audit's metrics registry (every `engine.*` counter the
  /// AuditContext recorded). stage_stats() and memo_hits() are views over
  /// this — there are no separately maintained statistics.
  obs::MetricsSnapshot metrics;

  /// Per-stage decision counters and wall time, in engine cascade order —
  /// derived from the `engine.stage.<idx>.<name>.*` counters in `metrics`.
  std::vector<StageStats> stage_stats() const;
  /// (A, B)-pair verdicts served from the per-audit memo (e.g. a one-query
  /// user's conjunction equals their single disclosure) — the
  /// `engine.memo.hits` counter in `metrics`.
  std::size_t memo_hits() const;

  /// Which findings count() aggregates over.
  enum class Section { kPerDisclosure, kPerUser, kAll };

  /// Number of findings with verdict `v` in the chosen section(s). Counts
  /// BOTH the per-disclosure and the per-user cumulative sections unless a
  /// narrower section is requested.
  std::size_t count(Verdict v, Section section = Section::kAll) const;
};

/// Offline auditor over a fixed record universe.
class Auditor {
 public:
  /// Throws std::invalid_argument when the universe is empty or
  /// AuditorOptions::validate() fails — option problems surface at
  /// construction (with the Status message) instead of being clamped away.
  Auditor(RecordUniverse universe, PriorAssumption prior,
          AuditorOptions options = {});

  const RecordUniverse& universe() const { return universe_; }
  PriorAssumption prior() const { return engine_.prior(); }
  /// The compiled-set representation in use: AuditorOptions::backend with
  /// kAuto resolved against the universe size (never returns kAuto).
  SetBackend resolved_backend() const;

  /// The decision cascade; exposed so applications can register custom
  /// CriterionStages (setup time only — see docs/extending.md).
  DecisionEngine& engine() { return engine_; }
  const DecisionEngine& engine() const { return engine_; }

  /// Batch-first primary surface: audits one disclosure log against a span
  /// of sensitive properties in a single pass. The A-independent work —
  /// compiling each distinct disclosed set and building the per-user
  /// conjunctions (Section 3.3) — runs once for the whole batch instead of
  /// once per property, which is where one-log-many-properties sweeps
  /// (policy streams, aggregate-query audits) spend most of their time.
  /// reports[i] is byte-identical to `audit(log, audit_queries[i])` —
  /// findings, verdicts, and every counter except wall time — so batching
  /// is purely a throughput decision.
  std::vector<AuditReport> audit_many(
      const AuditLog& log, std::span<const std::string> audit_queries) const;

  /// Status-first variant: parse/compile failures in any query surface as
  /// InvalidArgument naming the offending query instead of a ParseError
  /// throw; `*out` is untouched on failure.
  Status try_audit_many(const AuditLog& log,
                        std::span<const std::string> audit_queries,
                        std::vector<AuditReport>* out) const;

  /// One-property wrapper over the batch path (kept for callers auditing a
  /// single sensitive property; identical output, no batch setup cost
  /// beyond the shared-store indirection).
  AuditReport audit(const AuditLog& log, std::string_view audit_query_text) const;

  /// One A-vs-B decision under the configured prior assumption.
  AuditFinding audit_sets(const WorldSet& a, const WorldSet& b) const;

  /// The lazily-built subcube interval oracle (kSubcubeKnowledge only),
  /// building it on first call. Long-lived callers that drive the engine
  /// directly (the audit service) install this into their own AuditContexts
  /// so interval memoization is amortized across requests, exactly as
  /// audit() amortizes it across a log.
  std::shared_ptr<IntervalOracle> shared_subcube_oracle() const;

 private:
  /// The A-independent half of an audit, computed once per batch: each
  /// distinct disclosed set compiled once, per-entry pointers into them, the
  /// deduplicated decision list, and the per-user conjunctions. Defined in
  /// the .cpp.
  struct BatchShared;

  RecordUniverse universe_;
  DecisionEngine engine_;
  void ensure_subcube_oracle() const;
  ThreadPool& pool() const;
  void decide_pairs(const WorldSet& a, std::span<const WorldSet* const> bs,
                    AuditContext& ctx, std::vector<EngineDecision>& out) const;
  /// Audits one property using the precomputed shared state; every report a
  /// batch produces comes from here.
  AuditReport audit_one(const AuditLog& log, std::string_view audit_query_text,
                        const BatchShared& shared) const;
  BatchShared build_shared(const AuditLog& log) const;

  /// Lazily-built subcube interval oracle (kSubcubeKnowledge only); shared
  /// across audits so interval memoization is amortized over the log.
  mutable std::shared_ptr<IntervalOracle> subcube_oracle_;

  /// Lazily-spawned worker pool, reused across audit() calls.
  mutable std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex lazy_mutex_;
};

}  // namespace epi
