// The offline auditor — the paper's motivating application. Given an audit
// query A (the sensitive property), assumptions about users' prior knowledge,
// and a log of answered queries, it decides for each disclosure whether the
// user could have *gained* confidence in A (Definitions 3.1 / 3.4), and
// additionally audits each user's accumulated disclosures (Section 3.3:
// acquiring B1 then B2 equals acquiring B1 ∩ B2).
#pragma once

#include <string>
#include <vector>

#include <memory>
#include <optional>

#include "core/audit_log.h"
#include "criteria/verdict.h"
#include "optimize/emptiness.h"
#include "possibilistic/intervals.h"

namespace epi {

/// The auditor's assumption about users' prior knowledge.
enum class PriorAssumption {
  kUnrestricted,      ///< any prior (Theorem 3.11 — exact and instant)
  kProduct,           ///< record-wise independence, Pi_m0 (Section 5.1)
  kLogSupermodular,   ///< no negative correlations, Pi_m+ (Section 5)
  /// Possibilistic: the user knows the exact contents of some subset of
  /// records (the subcube family; Section 4.1 machinery, always definite).
  kSubcubeKnowledge,
};

std::string to_string(PriorAssumption prior);

/// The verdict for one disclosure (or one user's accumulated disclosures).
struct AuditFinding {
  std::string user;
  std::string query_text;  ///< the query, or "<conjunction of k answers>"
  bool answer = false;
  Verdict verdict = Verdict::kUnknown;
  std::string method;      ///< the deciding criterion/stage
  bool certified = false;  ///< proof-backed (criterion/witness/SOS), not numerics
  double numeric_gap = 0.0;
  std::string detail;      ///< witness description when unsafe
};

/// Complete audit output.
struct AuditReport {
  std::string audit_query;
  PriorAssumption prior = PriorAssumption::kUnrestricted;
  std::vector<AuditFinding> per_disclosure;
  std::vector<AuditFinding> per_user_cumulative;

  std::size_t count(Verdict v) const;
};

/// Tuning knobs for the auditor's decision stages.
struct AuditorOptions {
  bool enable_sos = true;        ///< SOS certificate stage (product prior)
  unsigned max_sos_records = 4;  ///< skip SOS above this many records
  AscentOptions ascent;          ///< optimizer budget (product prior)
};

/// Offline auditor over a fixed record universe.
class Auditor {
 public:
  Auditor(RecordUniverse universe, PriorAssumption prior,
          AuditorOptions options = {});

  const RecordUniverse& universe() const { return universe_; }
  PriorAssumption prior() const { return prior_; }

  /// Audits every disclosure in the log, plus each user's conjunction,
  /// against the sensitive property given as query text.
  AuditReport audit(const AuditLog& log, const std::string& audit_query_text) const;

  /// One A-vs-B decision under the configured prior assumption.
  AuditFinding audit_sets(const WorldSet& a, const WorldSet& b) const;

 private:
  RecordUniverse universe_;
  PriorAssumption prior_;
  AuditorOptions options_;
  void ensure_subcube_oracle() const;

  /// Lazily-built subcube interval oracle (kSubcubeKnowledge only); shared
  /// across audits so interval memoization is amortized over the log.
  mutable std::shared_ptr<IntervalOracle> subcube_oracle_;
};

}  // namespace epi
