#include "core/auditor.h"

#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "db/parser.h"
#include "obs/trace.h"
#include "possibilistic/subcubes.h"
#include "worlds/finite_set.h"

namespace epi {
namespace {

/// Cache key for a disclosure's compiled WorldSet: same query text answered
/// the same way discloses the same set, whoever asked.
std::string disclosure_key(const Disclosure& d) {
  return d.query_text + (d.answer ? "\x1f+" : "\x1f-");
}

AuditFinding to_finding(const EngineDecision& d) {
  AuditFinding f;
  f.verdict = d.verdict;
  f.method = d.method;
  f.certified = d.certified;
  f.numeric_gap = d.numeric_gap;
  f.detail = d.detail;
  return f;
}

}  // namespace

std::vector<StageStats> AuditReport::stage_stats() const {
  // Reverse the AuditContext naming scheme: counters named
  // `engine.stage.<idx>.<name>.<kind>` with kind in {invocations, decisions,
  // nanos}. The snapshot is name-sorted and the index is zero-padded, so
  // stages come back in cascade order with their three counters adjacent.
  constexpr std::string_view kPrefix = "engine.stage.";
  std::vector<StageStats> out;
  std::string current_key;  // "<idx>.<name>" of out.back()
  for (const obs::CounterSample& c : metrics.counters) {
    std::string_view name = c.name;
    if (name.substr(0, kPrefix.size()) != kPrefix) continue;
    name.remove_prefix(kPrefix.size());
    const std::size_t last_dot = name.rfind('.');
    const std::size_t first_dot = name.find('.');
    if (last_dot == std::string_view::npos || first_dot >= last_dot) continue;
    const std::string_view kind = name.substr(last_dot + 1);
    const std::string_view key = name.substr(0, last_dot);
    if (out.empty() || current_key != key) {
      current_key = std::string(key);
      StageStats s;
      s.name = std::string(name.substr(first_dot + 1, last_dot - first_dot - 1));
      out.push_back(std::move(s));
    }
    StageStats& s = out.back();
    if (kind == "invocations") {
      s.invocations = static_cast<std::size_t>(c.value);
    } else if (kind == "decisions") {
      s.decisions = static_cast<std::size_t>(c.value);
    } else if (kind == "nanos") {
      s.wall_seconds = static_cast<double>(c.value) * 1e-9;
    }
  }
  return out;
}

std::size_t AuditReport::memo_hits() const {
  return static_cast<std::size_t>(metrics.counter("engine.memo.hits"));
}

std::size_t AuditReport::count(Verdict v, Section section) const {
  std::size_t c = 0;
  if (section != Section::kPerUser) {
    for (const AuditFinding& f : per_disclosure) c += f.verdict == v;
  }
  if (section != Section::kPerDisclosure) {
    for (const AuditFinding& f : per_user_cumulative) c += f.verdict == v;
  }
  return c;
}

Auditor::Auditor(RecordUniverse universe, PriorAssumption prior,
                 AuditorOptions options)
    : universe_(std::move(universe)),
      engine_(static_cast<unsigned>(universe_.size()), prior, options) {
  if (universe_.empty()) {
    throw std::invalid_argument("Auditor: empty record universe");
  }
  if (const Status s = options.validate(); !s.ok()) {
    throw std::invalid_argument(s.to_string());
  }
  const unsigned n = static_cast<unsigned>(universe_.size());
  if (options.backend == SetBackend::kDense && n > kMaxCoordinates) {
    throw std::invalid_argument(
        "Auditor: " + std::to_string(n) + " records exceed the dense cap of " +
        std::to_string(kMaxCoordinates) + "; use the symbolic backend");
  }
  if (resolved_backend() == SetBackend::kSymbolic && n > kMaxCoordinates &&
      prior != PriorAssumption::kUnrestricted) {
    throw std::invalid_argument(
        "Auditor: the " + to_string(prior) +
        " prior needs dense sets per pair, which cap at " +
        std::to_string(kMaxCoordinates) +
        " records; only the unrestricted prior audits symbolically beyond");
  }
}

SetBackend Auditor::resolved_backend() const {
  return resolve_backend(engine_.options().backend,
                         static_cast<unsigned>(universe_.size()));
}

void Auditor::ensure_subcube_oracle() const {
  std::lock_guard<std::mutex> lock(lazy_mutex_);
  if (!subcube_oracle_) {
    auto family = std::make_shared<SubcubeSigma>(universe_.size());
    subcube_oracle_ = std::make_shared<IntervalOracle>(
        family, FiniteSet::universe(family->universe_size()));
  }
}

ThreadPool& Auditor::pool() const {
  std::lock_guard<std::mutex> lock(lazy_mutex_);
  if (!pool_) {
    pool_ = std::make_unique<ThreadPool>(engine_.options().resolved_threads());
  }
  return *pool_;
}

void Auditor::decide_pairs(const WorldSet& a,
                           std::span<const WorldSet* const> bs,
                           AuditContext& ctx,
                           std::vector<EngineDecision>& out) const {
  ThreadPool* fan_out =
      (engine_.options().threads == 1 || bs.size() <= 1) ? nullptr : &pool();
  std::vector<EngineDecision> decisions = engine_.decide_many(a, bs, ctx, fan_out);
  out.insert(out.end(), std::make_move_iterator(decisions.begin()),
             std::make_move_iterator(decisions.end()));
}

std::shared_ptr<IntervalOracle> Auditor::shared_subcube_oracle() const {
  ensure_subcube_oracle();
  std::lock_guard<std::mutex> lock(lazy_mutex_);
  return subcube_oracle_;
}

AuditFinding Auditor::audit_sets(const WorldSet& a, const WorldSet& b) const {
  AuditContext ctx;
  if (engine_.prior() == PriorAssumption::kSubcubeKnowledge) {
    ensure_subcube_oracle();
    ctx.set_interval_oracle(subcube_oracle_);
  }
  return to_finding(engine_.decide(a, b, ctx));
}

// The A-independent half of an audit. Everything here depends only on the
// log and the universe, so a batch computes it exactly once and every
// audited property reuses it: the compiled disclosed sets (the expensive
// per-world query evaluations), the per-entry pointers and deduplicated
// decision list, and the Section 3.3 per-user conjunctions.
struct Auditor::BatchShared {
  /// Owns one compiled WorldSet per distinct (query text, answer) pair.
  /// unordered_map node stability keeps every pointer below valid.
  std::unordered_map<std::string, WorldSet> sets;
  std::vector<std::string> entry_keys;           ///< disclosure_key per entry
  std::vector<const WorldSet*> disclosure_sets;  ///< per entry, into `sets`
  std::vector<const WorldSet*> unique_bs;        ///< deduplicated, log order
  std::vector<std::size_t> entry_slot;           ///< entry -> unique_bs index
  std::vector<std::string> users;
  std::vector<WorldSet> conjunctions;            ///< per user, Section 3.3
  std::vector<std::size_t> answered_counts;
  std::vector<const WorldSet*> unique_conjunctions;
  std::vector<std::size_t> user_slot;
};

Auditor::BatchShared Auditor::build_shared(const AuditLog& log) const {
  BatchShared shared;
  const SetBackend backend = resolved_backend();
  const std::vector<Disclosure>& entries = log.entries();

  // Compile each disclosure's set once, keyed by (query text, answer) — the
  // same query answered the same way discloses the same set, whoever asked.
  shared.entry_keys.reserve(entries.size());
  shared.disclosure_sets.reserve(entries.size());
  {
    obs::ScopedSpan compile_span("audit.compile-disclosures");
    for (const Disclosure& d : entries) {
      std::string key = disclosure_key(d);
      auto it = shared.sets.find(key);
      if (it == shared.sets.end()) {
        it = shared.sets.emplace(key, d.disclosed_set(universe_, backend)).first;
      }
      shared.disclosure_sets.push_back(&it->second);
      shared.entry_keys.push_back(std::move(key));
    }
  }

  // Deduplicate for the decision sweep: each *distinct* disclosed set is
  // decided once per audited property, in log order.
  shared.entry_slot.resize(entries.size());
  {
    std::unordered_map<std::string_view, std::size_t> slot_of;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      auto [it, inserted] =
          slot_of.emplace(shared.entry_keys[i], shared.unique_bs.size());
      if (inserted) shared.unique_bs.push_back(shared.disclosure_sets[i]);
      shared.entry_slot[i] = it->second;
    }
  }

  // Section 3.3 — a user who received answers B1, ..., Bk knows
  // B1 ∩ ... ∩ Bk. Conjunctions are cheap bitset ANDs over the compiled
  // sets, and like them are independent of the audited property.
  shared.users = log.users();
  shared.conjunctions.reserve(shared.users.size());
  shared.answered_counts.reserve(shared.users.size());
  for (const std::string& user : shared.users) {
    WorldSet conjunction =
        WorldSet::universe(static_cast<unsigned>(universe_.size()), backend);
    std::size_t answered = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].user != user) continue;
      conjunction &= *shared.disclosure_sets[i];
      ++answered;
    }
    shared.conjunctions.push_back(std::move(conjunction));
    shared.answered_counts.push_back(answered);
  }

  shared.user_slot.resize(shared.users.size());
  for (std::size_t u = 0; u < shared.users.size(); ++u) {
    std::size_t slot = shared.unique_conjunctions.size();
    for (std::size_t v = 0; v < shared.unique_conjunctions.size(); ++v) {
      if (*shared.unique_conjunctions[v] == shared.conjunctions[u]) {
        slot = v;
        break;
      }
    }
    if (slot == shared.unique_conjunctions.size()) {
      shared.unique_conjunctions.push_back(&shared.conjunctions[u]);
    }
    shared.user_slot[u] = slot;
  }
  return shared;
}

AuditReport Auditor::audit_one(const AuditLog& log,
                               std::string_view audit_query_text,
                               const BatchShared& shared) const {
  obs::ScopedSpan span("audit.run");
  if (span.live()) {
    span.attr("query", std::string(audit_query_text));
    span.attr("prior", to_string(engine_.prior()));
    span.attr("disclosures", std::to_string(log.entries().size()));
  }

  AuditReport report;
  report.audit_query = std::string(audit_query_text);
  report.prior = engine_.prior();
  const SetBackend backend = resolved_backend();
  const WorldSet a = parse_query(audit_query_text)->compile(universe_, backend);

  AuditContext ctx;
  ctx.reset_stages(engine_.stage_names());
  if (engine_.prior() == PriorAssumption::kSubcubeKnowledge) {
    obs::ScopedSpan prepare_span("audit.prepare-oracle");
    ensure_subcube_oracle();
    ctx.set_interval_oracle(subcube_oracle_);
    // Precompute the Delta classes for A once and reuse them for every
    // disclosure (the Prop. 4.1 amortization, experiment E7 measures
    // 30-200x).
    ctx.prepare_subcube(a);
  }

  // Per-report compile accounting: the sets were compiled once for the
  // whole batch, but each report's counters state what *its* audit
  // required — first use of a key is a miss, repeats are hits — exactly
  // like a standalone audit's context. The batch amortization shows up in
  // wall time, not in doctored counters.
  {
    obs::Counter& misses = ctx.metrics().counter("engine.compile.misses");
    obs::Counter& hits = ctx.metrics().counter("engine.compile.hits");
    std::unordered_set<std::string_view> seen;
    seen.reserve(shared.sets.size());
    for (const std::string& key : shared.entry_keys) {
      (seen.insert(key).second ? misses : hits).add(1);
    }
  }

  // Decide each distinct disclosed set, fanning out across the pool.
  // Deduplication keeps stage counters (and wall clock) identical for every
  // thread count.
  std::vector<EngineDecision> decisions;
  {
    obs::ScopedSpan decide_span("audit.decide-disclosures");
    if (decide_span.live()) {
      decide_span.attr("unique_pairs", std::to_string(shared.unique_bs.size()));
    }
    decide_pairs(a, shared.unique_bs, ctx, decisions);
  }

  const std::vector<Disclosure>& entries = log.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    AuditFinding f = to_finding(decisions[shared.entry_slot[i]]);
    f.user = entries[i].user;
    f.query_text = entries[i].query_text;
    f.answer = entries[i].answer;
    report.per_disclosure.push_back(std::move(f));
  }

  // Distinct conjunctions are decided in parallel; identical ones (and ones
  // matching a disclosure pair) come from the per-report memo.
  std::vector<EngineDecision> conjunction_decisions;
  {
    obs::ScopedSpan decide_span("audit.decide-conjunctions");
    if (decide_span.live()) {
      decide_span.attr("unique_pairs",
                       std::to_string(shared.unique_conjunctions.size()));
    }
    decide_pairs(a, shared.unique_conjunctions, ctx, conjunction_decisions);
  }

  for (std::size_t u = 0; u < shared.users.size(); ++u) {
    AuditFinding f = to_finding(conjunction_decisions[shared.user_slot[u]]);
    f.user = shared.users[u];
    f.query_text = "<conjunction of " +
                   std::to_string(shared.answered_counts[u]) +
                   " answered queries>";
    f.answer = true;
    report.per_user_cumulative.push_back(std::move(f));
  }

  report.metrics = ctx.metrics_snapshot();
  return report;
}

std::vector<AuditReport> Auditor::audit_many(
    const AuditLog& log, std::span<const std::string> audit_queries) const {
  const BatchShared shared = build_shared(log);
  std::vector<AuditReport> reports;
  reports.reserve(audit_queries.size());
  for (const std::string& query : audit_queries) {
    reports.push_back(audit_one(log, query, shared));
  }
  return reports;
}

Status Auditor::try_audit_many(const AuditLog& log,
                               std::span<const std::string> audit_queries,
                               std::vector<AuditReport>* out) const {
  try {
    const BatchShared shared = build_shared(log);
    std::vector<AuditReport> reports;
    reports.reserve(audit_queries.size());
    for (const std::string& query : audit_queries) {
      try {
        reports.push_back(audit_one(log, query, shared));
      } catch (const std::exception& e) {
        return Status::InvalidArgument("audit query '" + query +
                                       "': " + e.what());
      }
    }
    *out = std::move(reports);
    return Status::Ok();
  } catch (const std::exception& e) {
    // Disclosed-set compilation failed — a log problem, not a query problem.
    return Status::InvalidArgument(e.what());
  }
}

AuditReport Auditor::audit(const AuditLog& log,
                           std::string_view audit_query_text) const {
  return audit_one(log, audit_query_text, build_shared(log));
}

}  // namespace epi
