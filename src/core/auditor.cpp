#include "core/auditor.h"

#include <sstream>

#include "criteria/pipeline.h"
#include "db/parser.h"
#include "possibilistic/safe.h"
#include "possibilistic/subcubes.h"
#include "worlds/finite_set.h"

namespace epi {
namespace {

std::string describe_product_witness(const ProductDistribution& p) {
  std::ostringstream os;
  os << "product prior with p = (";
  for (unsigned i = 0; i < p.n(); ++i) {
    os << (i ? ", " : "") << p.param(i);
  }
  os << ")";
  return os.str();
}

}  // namespace

std::string to_string(PriorAssumption prior) {
  switch (prior) {
    case PriorAssumption::kUnrestricted:
      return "unrestricted";
    case PriorAssumption::kProduct:
      return "product";
    case PriorAssumption::kLogSupermodular:
      return "log-supermodular";
    case PriorAssumption::kSubcubeKnowledge:
      return "subcube-knowledge";
  }
  return "?";
}

std::size_t AuditReport::count(Verdict v) const {
  std::size_t c = 0;
  for (const AuditFinding& f : per_disclosure) c += f.verdict == v;
  return c;
}

Auditor::Auditor(RecordUniverse universe, PriorAssumption prior,
                 AuditorOptions options)
    : universe_(std::move(universe)), prior_(prior), options_(options) {
  if (universe_.empty()) {
    throw std::invalid_argument("Auditor: empty record universe");
  }
}

void Auditor::ensure_subcube_oracle() const {
  if (!subcube_oracle_) {
    auto family = std::make_shared<SubcubeSigma>(universe_.size());
    subcube_oracle_ = std::make_shared<IntervalOracle>(
        family, FiniteSet::universe(family->universe_size()));
  }
}

AuditFinding Auditor::audit_sets(const WorldSet& a, const WorldSet& b) const {
  AuditFinding f;
  switch (prior_) {
    case PriorAssumption::kUnrestricted: {
      const PipelineResult r = decide_unrestricted_safety(a, b);
      f.verdict = r.verdict;
      f.method = r.criterion;
      f.certified = true;
      if (r.witness_distribution) {
        f.detail = "two-point prior on " + r.witness_distribution->support().to_string();
      }
      break;
    }
    case PriorAssumption::kProduct: {
      const bool sos = options_.enable_sos && a.n() <= options_.max_sos_records;
      const FullDecision d =
          decide_product_safety_complete(a, b, options_.ascent, sos);
      f.verdict = d.verdict;
      f.method = d.method;
      f.certified = d.certified;
      f.numeric_gap = d.numeric_gap;
      if (d.witness) f.detail = describe_product_witness(*d.witness);
      break;
    }
    case PriorAssumption::kSubcubeKnowledge: {
      ensure_subcube_oracle();
      const bool safe =
          subcube_oracle_->safe_minimal_intervals(to_finite(a), to_finite(b));
      f.verdict = safe ? Verdict::kSafe : Verdict::kUnsafe;
      f.method = "subcube-intervals";
      f.certified = true;
      if (!safe) {
        f.detail = "a user knowing some records' exact contents learns A";
      }
      break;
    }
    case PriorAssumption::kLogSupermodular: {
      const PipelineResult r = decide_supermodular_safety(a, b);
      f.verdict = r.verdict;
      f.method = r.criterion;
      f.certified = r.verdict != Verdict::kUnknown;
      if (r.witness_distribution) {
        f.detail = "log-supermodular prior on " +
                   r.witness_distribution->support().to_string();
      } else if (r.witness_product) {
        f.detail = describe_product_witness(*r.witness_product);
      }
      break;
    }
  }
  return f;
}

AuditReport Auditor::audit(const AuditLog& log,
                           const std::string& audit_query_text) const {
  AuditReport report;
  report.audit_query = audit_query_text;
  report.prior = prior_;
  const WorldSet a = parse_query(audit_query_text)->compile(universe_);

  // Possibilistic assumption: precompute the Delta classes for A once and
  // reuse them for every disclosure (the Prop. 4.1 amortization, experiment
  // E7 measures 30-200x).
  std::optional<IntervalOracle::PreparedAudit> prepared;
  if (prior_ == PriorAssumption::kSubcubeKnowledge) {
    ensure_subcube_oracle();
    prepared = subcube_oracle_->prepare(to_finite(a));
  }

  for (const Disclosure& d : log.entries()) {
    const WorldSet b = d.disclosed_set(universe_);
    AuditFinding f;
    if (prepared) {
      const bool safe = prepared->safe(to_finite(b));
      f.verdict = safe ? Verdict::kSafe : Verdict::kUnsafe;
      f.method = "subcube-intervals(prepared)";
      f.certified = true;
      if (!safe) {
        f.detail = "a user knowing some records' exact contents learns A";
      }
    } else {
      f = audit_sets(a, b);
    }
    f.user = d.user;
    f.query_text = d.query_text;
    f.answer = d.answer;
    report.per_disclosure.push_back(std::move(f));
  }

  // Section 3.3: a user who received answers B1, ..., Bk knows B1 ∩ ... ∩ Bk.
  for (const std::string& user : log.users()) {
    WorldSet conjunction = WorldSet::universe(universe_.size());
    std::size_t answered = 0;
    for (const Disclosure& d : log.entries()) {
      if (d.user != user) continue;
      conjunction &= d.disclosed_set(universe_);
      ++answered;
    }
    AuditFinding f = audit_sets(a, conjunction);
    f.user = user;
    f.query_text =
        "<conjunction of " + std::to_string(answered) + " answered queries>";
    f.answer = true;
    report.per_user_cumulative.push_back(std::move(f));
  }
  return report;
}

}  // namespace epi
