#include "core/auditor.h"

#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "db/parser.h"
#include "obs/trace.h"
#include "possibilistic/subcubes.h"
#include "worlds/finite_set.h"

namespace epi {
namespace {

/// Cache key for a disclosure's compiled WorldSet: same query text answered
/// the same way discloses the same set, whoever asked.
std::string disclosure_key(const Disclosure& d) {
  return d.query_text + (d.answer ? "\x1f+" : "\x1f-");
}

AuditFinding to_finding(const EngineDecision& d) {
  AuditFinding f;
  f.verdict = d.verdict;
  f.method = d.method;
  f.certified = d.certified;
  f.numeric_gap = d.numeric_gap;
  f.detail = d.detail;
  return f;
}

}  // namespace

std::vector<StageStats> AuditReport::stage_stats() const {
  // Reverse the AuditContext naming scheme: counters named
  // `engine.stage.<idx>.<name>.<kind>` with kind in {invocations, decisions,
  // nanos}. The snapshot is name-sorted and the index is zero-padded, so
  // stages come back in cascade order with their three counters adjacent.
  constexpr std::string_view kPrefix = "engine.stage.";
  std::vector<StageStats> out;
  std::string current_key;  // "<idx>.<name>" of out.back()
  for (const obs::CounterSample& c : metrics.counters) {
    std::string_view name = c.name;
    if (name.substr(0, kPrefix.size()) != kPrefix) continue;
    name.remove_prefix(kPrefix.size());
    const std::size_t last_dot = name.rfind('.');
    const std::size_t first_dot = name.find('.');
    if (last_dot == std::string_view::npos || first_dot >= last_dot) continue;
    const std::string_view kind = name.substr(last_dot + 1);
    const std::string_view key = name.substr(0, last_dot);
    if (out.empty() || current_key != key) {
      current_key = std::string(key);
      StageStats s;
      s.name = std::string(name.substr(first_dot + 1, last_dot - first_dot - 1));
      out.push_back(std::move(s));
    }
    StageStats& s = out.back();
    if (kind == "invocations") {
      s.invocations = static_cast<std::size_t>(c.value);
    } else if (kind == "decisions") {
      s.decisions = static_cast<std::size_t>(c.value);
    } else if (kind == "nanos") {
      s.wall_seconds = static_cast<double>(c.value) * 1e-9;
    }
  }
  return out;
}

std::size_t AuditReport::memo_hits() const {
  return static_cast<std::size_t>(metrics.counter("engine.memo.hits"));
}

std::size_t AuditReport::count(Verdict v, Section section) const {
  std::size_t c = 0;
  if (section != Section::kPerUser) {
    for (const AuditFinding& f : per_disclosure) c += f.verdict == v;
  }
  if (section != Section::kPerDisclosure) {
    for (const AuditFinding& f : per_user_cumulative) c += f.verdict == v;
  }
  return c;
}

Auditor::Auditor(RecordUniverse universe, PriorAssumption prior,
                 AuditorOptions options)
    : universe_(std::move(universe)),
      engine_(static_cast<unsigned>(universe_.size()), prior, options) {
  if (universe_.empty()) {
    throw std::invalid_argument("Auditor: empty record universe");
  }
  if (const Status s = options.validate(); !s.ok()) {
    throw std::invalid_argument(s.to_string());
  }
  const unsigned n = static_cast<unsigned>(universe_.size());
  if (options.backend == SetBackend::kDense && n > kMaxCoordinates) {
    throw std::invalid_argument(
        "Auditor: " + std::to_string(n) + " records exceed the dense cap of " +
        std::to_string(kMaxCoordinates) + "; use the symbolic backend");
  }
  if (resolved_backend() == SetBackend::kSymbolic && n > kMaxCoordinates &&
      prior != PriorAssumption::kUnrestricted) {
    throw std::invalid_argument(
        "Auditor: the " + to_string(prior) +
        " prior needs dense sets per pair, which cap at " +
        std::to_string(kMaxCoordinates) +
        " records; only the unrestricted prior audits symbolically beyond");
  }
}

SetBackend Auditor::resolved_backend() const {
  return resolve_backend(engine_.options().backend,
                         static_cast<unsigned>(universe_.size()));
}

void Auditor::ensure_subcube_oracle() const {
  std::lock_guard<std::mutex> lock(lazy_mutex_);
  if (!subcube_oracle_) {
    auto family = std::make_shared<SubcubeSigma>(universe_.size());
    subcube_oracle_ = std::make_shared<IntervalOracle>(
        family, FiniteSet::universe(family->universe_size()));
  }
}

ThreadPool& Auditor::pool() const {
  std::lock_guard<std::mutex> lock(lazy_mutex_);
  if (!pool_) {
    pool_ = std::make_unique<ThreadPool>(engine_.options().resolved_threads());
  }
  return *pool_;
}

void Auditor::decide_pairs(const WorldSet& a,
                           const std::vector<const WorldSet*>& bs,
                           AuditContext& ctx,
                           std::vector<EngineDecision>& out) const {
  const std::size_t start = out.size();
  out.resize(start + bs.size());
  auto decide_one = [&](std::size_t i) {
    out[start + i] = engine_.decide(a, *bs[i], ctx);
  };
  if (engine_.options().threads == 1 || bs.size() <= 1) {
    for (std::size_t i = 0; i < bs.size(); ++i) decide_one(i);
  } else {
    pool().parallel_for(bs.size(), decide_one);
  }
}

std::shared_ptr<IntervalOracle> Auditor::shared_subcube_oracle() const {
  ensure_subcube_oracle();
  std::lock_guard<std::mutex> lock(lazy_mutex_);
  return subcube_oracle_;
}

AuditFinding Auditor::audit_sets(const WorldSet& a, const WorldSet& b) const {
  AuditContext ctx;
  if (engine_.prior() == PriorAssumption::kSubcubeKnowledge) {
    ensure_subcube_oracle();
    ctx.set_interval_oracle(subcube_oracle_);
  }
  return to_finding(engine_.decide(a, b, ctx));
}

AuditReport Auditor::audit(const AuditLog& log,
                           const std::string& audit_query_text) const {
  obs::ScopedSpan span("audit.run");
  if (span.live()) {
    span.attr("query", audit_query_text);
    span.attr("prior", to_string(engine_.prior()));
    span.attr("disclosures", std::to_string(log.entries().size()));
  }

  AuditReport report;
  report.audit_query = audit_query_text;
  report.prior = engine_.prior();
  const SetBackend backend = resolved_backend();
  const WorldSet a = parse_query(audit_query_text)->compile(universe_, backend);

  AuditContext ctx;
  ctx.reset_stages(engine_.stage_names());
  if (engine_.prior() == PriorAssumption::kSubcubeKnowledge) {
    obs::ScopedSpan prepare_span("audit.prepare-oracle");
    ensure_subcube_oracle();
    ctx.set_interval_oracle(subcube_oracle_);
    // Precompute the Delta classes for A once and reuse them for every
    // disclosure (the Prop. 4.1 amortization, experiment E7 measures
    // 30-200x).
    ctx.prepare_subcube(a);
  }

  // Phase 1 (serial): compile each disclosure's set once, cached by
  // (query text, answer) — the per-user conjunction loop below reuses these
  // instead of re-compiling per user.
  const std::vector<Disclosure>& entries = log.entries();
  std::vector<const WorldSet*> disclosure_sets;
  disclosure_sets.reserve(entries.size());
  {
    obs::ScopedSpan compile_span("audit.compile-disclosures");
    for (const Disclosure& d : entries) {
      disclosure_sets.push_back(&ctx.compiled(
          disclosure_key(d), [&] { return d.disclosed_set(universe_, backend); }));
    }
  }

  // Phase 2: decide each *distinct* disclosed set once, fanning out across
  // the pool. Deduplication keeps stage counters (and wall clock) identical
  // for every thread count.
  std::vector<const WorldSet*> unique_bs;
  std::vector<std::size_t> entry_slot(entries.size());
  {
    std::unordered_map<std::string, std::size_t> slot_of;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      auto [it, inserted] =
          slot_of.emplace(disclosure_key(entries[i]), unique_bs.size());
      if (inserted) unique_bs.push_back(disclosure_sets[i]);
      entry_slot[i] = it->second;
    }
  }
  std::vector<EngineDecision> decisions;
  {
    obs::ScopedSpan decide_span("audit.decide-disclosures");
    if (decide_span.live()) {
      decide_span.attr("unique_pairs", std::to_string(unique_bs.size()));
    }
    decide_pairs(a, unique_bs, ctx, decisions);
  }

  for (std::size_t i = 0; i < entries.size(); ++i) {
    AuditFinding f = to_finding(decisions[entry_slot[i]]);
    f.user = entries[i].user;
    f.query_text = entries[i].query_text;
    f.answer = entries[i].answer;
    report.per_disclosure.push_back(std::move(f));
  }

  // Phase 3: Section 3.3 — a user who received answers B1, ..., Bk knows
  // B1 ∩ ... ∩ Bk. Conjunctions are cheap bitset ANDs over the cached sets;
  // distinct conjunctions are decided in parallel, identical ones (and ones
  // matching a phase-2 pair) come from the memo.
  const std::vector<std::string> users = log.users();
  std::vector<WorldSet> conjunctions;
  std::vector<std::size_t> answered_counts;
  conjunctions.reserve(users.size());
  for (const std::string& user : users) {
    WorldSet conjunction =
        WorldSet::universe(static_cast<unsigned>(universe_.size()), backend);
    std::size_t answered = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].user != user) continue;
      conjunction &= *disclosure_sets[i];
      ++answered;
    }
    conjunctions.push_back(std::move(conjunction));
    answered_counts.push_back(answered);
  }

  std::vector<const WorldSet*> unique_conjunctions;
  std::vector<std::size_t> user_slot(users.size());
  for (std::size_t u = 0; u < users.size(); ++u) {
    std::size_t slot = unique_conjunctions.size();
    for (std::size_t v = 0; v < unique_conjunctions.size(); ++v) {
      if (*unique_conjunctions[v] == conjunctions[u]) {
        slot = v;
        break;
      }
    }
    if (slot == unique_conjunctions.size()) {
      unique_conjunctions.push_back(&conjunctions[u]);
    }
    user_slot[u] = slot;
  }
  std::vector<EngineDecision> conjunction_decisions;
  {
    obs::ScopedSpan decide_span("audit.decide-conjunctions");
    if (decide_span.live()) {
      decide_span.attr("unique_pairs", std::to_string(unique_conjunctions.size()));
    }
    decide_pairs(a, unique_conjunctions, ctx, conjunction_decisions);
  }

  for (std::size_t u = 0; u < users.size(); ++u) {
    AuditFinding f = to_finding(conjunction_decisions[user_slot[u]]);
    f.user = users[u];
    f.query_text = "<conjunction of " + std::to_string(answered_counts[u]) +
                   " answered queries>";
    f.answer = true;
    report.per_user_cumulative.push_back(std::move(f));
  }

  report.metrics = ctx.metrics_snapshot();
  return report;
}

}  // namespace epi
