#include "core/simulation.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace epi {

std::vector<ConfidencePoint> confidence_trajectory(const Distribution& prior,
                                                   const AuditLog& log,
                                                   const RecordUniverse& universe,
                                                   const WorldSet& sensitive,
                                                   const std::string& user) {
  std::vector<ConfidencePoint> out;
  ConfidencePoint start;
  start.confidence = prior.prob(sensitive);
  out.push_back(start);

  WorldSet accumulated = WorldSet::universe(sensitive.n());
  bool inconsistent = false;
  std::size_t step = 0;
  for (const Disclosure& d : log.entries()) {
    if (d.user != user) continue;
    ++step;
    ConfidencePoint point;
    point.step = step;
    point.query_text = d.query_text;
    point.answer = d.answer;
    accumulated &= d.disclosed_set(universe);
    if (!inconsistent && prior.prob(accumulated) > 0.0) {
      point.confidence = prior.conditional(sensitive, accumulated);
    } else {
      inconsistent = true;
      point.inconsistent = true;
      point.confidence = std::numeric_limits<double>::quiet_NaN();
    }
    out.push_back(std::move(point));
  }
  return out;
}

std::string render_trajectory(const std::vector<ConfidencePoint>& trajectory,
                              unsigned width) {
  std::ostringstream os;
  for (const ConfidencePoint& p : trajectory) {
    if (p.step == 0) {
      os << "  prior                                   ";
    } else {
      std::string label = p.query_text + (p.answer ? " = true" : " = false");
      if (label.size() > 38) label = label.substr(0, 35) + "...";
      os << "  " << label << std::string(40 - std::min<std::size_t>(label.size(), 38), ' ');
    }
    if (p.inconsistent) {
      os << "| (prior ruled out by history)\n";
      continue;
    }
    const unsigned bars =
        static_cast<unsigned>(std::lround(p.confidence * width));
    os << "|" << std::string(bars, '#') << std::string(width - bars, ' ') << "| "
       << p.confidence << "\n";
  }
  return os.str();
}

}  // namespace epi
