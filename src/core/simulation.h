// Confidence-trajectory simulation: replay a user's answered queries against
// a hypothetical prior and track the posterior probability of the sensitive
// property after each acquisition (Section 3.3's sequential knowledge
// updates made visible). Used to illustrate audits and to sanity-check
// verdicts: an unsafe disclosure shows as an upward step for some prior.
#pragma once

#include <string>
#include <vector>

#include "core/audit_log.h"
#include "probabilistic/distribution.h"

namespace epi {

/// One step of the trajectory.
struct ConfidencePoint {
  std::size_t step = 0;        ///< 0 = prior, k = after the k-th disclosure
  std::string query_text;      ///< empty at step 0
  bool answer = false;
  double confidence = 0.0;     ///< P[A | B_1 ∩ ... ∩ B_k]
  bool inconsistent = false;   ///< prior assigns zero mass to the history
};

/// Replays `user`'s disclosures from the log in order against `prior`,
/// recording P[A | accumulated knowledge] after each. Once the accumulated
/// event has zero prior mass, remaining points are marked inconsistent (the
/// prior is ruled out by the observed answers).
std::vector<ConfidencePoint> confidence_trajectory(const Distribution& prior,
                                                   const AuditLog& log,
                                                   const RecordUniverse& universe,
                                                   const WorldSet& sensitive,
                                                   const std::string& user);

/// Renders a trajectory as a small ASCII chart (one line per step).
std::string render_trajectory(const std::vector<ConfidencePoint>& trajectory,
                              unsigned width = 40);

}  // namespace epi
