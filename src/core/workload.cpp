#include "core/workload.h"

#include <stdexcept>

namespace epi {

std::string random_workload_query(const std::vector<std::string>& names, Rng& rng,
                                  const WorkloadOptions& options) {
  if (names.empty()) throw std::invalid_argument("random_workload_query: no records");
  const double total = options.point_weight + options.implication_weight +
                       options.negation_weight + options.counting_weight;
  if (total <= 0.0) throw std::invalid_argument("random_workload_query: zero weights");
  double pick = rng.next_double() * total;
  auto name = [&] { return names[rng.next_below(names.size())]; };

  if ((pick -= options.point_weight) < 0.0) {
    return name();
  }
  if ((pick -= options.implication_weight) < 0.0) {
    const std::string lhs = name();
    std::string rhs = name();
    if (rhs == lhs && names.size() > 1) rhs = names[(rng.next_below(names.size()))];
    return lhs + " -> " + rhs;
  }
  if ((pick -= options.negation_weight) < 0.0) {
    if (rng.next_bool() && names.size() > 1) {
      return "!(" + name() + " & " + name() + ")";
    }
    return "!" + name();
  }
  // Counting query over a random subset.
  const std::size_t subset = 2 + rng.next_below(std::min<std::size_t>(names.size(), 3));
  std::string body;
  for (std::size_t i = 0; i < subset; ++i) body += ", " + name();
  const unsigned k = 1 + static_cast<unsigned>(rng.next_below(subset));
  return (rng.next_bool() ? "atleast(" : "atmost(") + std::to_string(k) + body + ")";
}

Workload make_hospital_workload(const WorkloadOptions& options) {
  if (options.patients == 0 || options.patients > kMaxCoordinates) {
    throw std::invalid_argument("make_hospital_workload: bad patient count");
  }
  RecordUniverse universe;
  std::vector<std::string> names;
  for (unsigned p = 0; p < options.patients; ++p) {
    const std::string name = "p" + std::to_string(p) + "_cond";
    universe.add(Record{name, {{"patient", "p" + std::to_string(p)}}});
    names.push_back(name);
  }

  Workload workload(universe);
  Rng rng(options.seed);
  for (const std::string& name : names) {
    if (rng.next_bool(options.record_present_prob)) {
      workload.database.insert(name);
    }
  }
  for (int q = 0; q < options.queries; ++q) {
    const std::string user = "user" + std::to_string(rng.next_below(options.users));
    const std::string query = random_workload_query(names, rng, options);
    workload.log.record(user, query, workload.database,
                        "t" + std::to_string(q));
  }
  workload.audit_candidates = names;
  return workload;
}

}  // namespace epi
