#include "core/workload.h"

#include <cmath>
#include <stdexcept>

namespace epi {

namespace {

/// The mix-weight half of WorkloadOptions::validate(), shared with
/// random_workload_query (which has no use for the population knobs).
Status validate_mix(const WorkloadOptions& options) {
  const double weights[] = {options.point_weight, options.implication_weight,
                            options.negation_weight, options.counting_weight};
  double total = 0.0;
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument(
          "WorkloadOptions: mix weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument(
        "WorkloadOptions: mix weights are all zero — no query shape to draw");
  }
  return Status::Ok();
}

}  // namespace

Status WorkloadOptions::validate() const {
  if (patients == 0 || patients > kMaxCoordinates) {
    return Status::InvalidArgument(
        "WorkloadOptions: patients must be in [1, " +
        std::to_string(kMaxCoordinates) + "]");
  }
  if (queries < 0) {
    return Status::InvalidArgument("WorkloadOptions: queries must be >= 0");
  }
  if (users < 1) {
    return Status::InvalidArgument("WorkloadOptions: users must be >= 1");
  }
  if (!std::isfinite(record_present_prob) || record_present_prob < 0.0 ||
      record_present_prob > 1.0) {
    return Status::InvalidArgument(
        "WorkloadOptions: record_present_prob must be in [0, 1]");
  }
  return validate_mix(*this);
}

std::string random_workload_query(const std::vector<std::string>& names, Rng& rng,
                                  const WorkloadOptions& options) {
  if (names.empty()) throw std::invalid_argument("random_workload_query: no records");
  if (Status mix = validate_mix(options); !mix.ok()) {
    throw std::invalid_argument("random_workload_query: " + mix.message());
  }
  const double total = options.point_weight + options.implication_weight +
                       options.negation_weight + options.counting_weight;
  double pick = rng.next_double() * total;
  auto name = [&] { return names[rng.next_below(names.size())]; };

  if ((pick -= options.point_weight) < 0.0) {
    return name();
  }
  if ((pick -= options.implication_weight) < 0.0) {
    const std::string lhs = name();
    std::string rhs = name();
    if (rhs == lhs && names.size() > 1) rhs = names[(rng.next_below(names.size()))];
    return lhs + " -> " + rhs;
  }
  if ((pick -= options.negation_weight) < 0.0) {
    if (rng.next_bool() && names.size() > 1) {
      return "!(" + name() + " & " + name() + ")";
    }
    return "!" + name();
  }
  // Counting query over a random subset.
  const std::size_t subset = 2 + rng.next_below(std::min<std::size_t>(names.size(), 3));
  std::string body;
  for (std::size_t i = 0; i < subset; ++i) body += ", " + name();
  const unsigned k = 1 + static_cast<unsigned>(rng.next_below(subset));
  return (rng.next_bool() ? "atleast(" : "atmost(") + std::to_string(k) + body + ")";
}

Status try_make_hospital_workload(const WorkloadOptions& options, Workload* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("try_make_hospital_workload: null output");
  }
  if (Status valid = options.validate(); !valid.ok()) return valid;

  RecordUniverse universe;
  std::vector<std::string> names;
  for (unsigned p = 0; p < options.patients; ++p) {
    const std::string name = "p" + std::to_string(p) + "_cond";
    universe.add(Record{name, {{"patient", "p" + std::to_string(p)}}});
    names.push_back(name);
  }

  Workload workload(universe);
  Rng rng(options.seed);
  for (const std::string& name : names) {
    if (rng.next_bool(options.record_present_prob)) {
      workload.database.insert(name);
    }
  }
  for (int q = 0; q < options.queries; ++q) {
    const std::string user = "user" + std::to_string(rng.next_below(options.users));
    const std::string query = random_workload_query(names, rng, options);
    workload.log.record(user, query, workload.database,
                        "t" + std::to_string(q));
  }
  workload.audit_candidates = names;
  *out = std::move(workload);
  return Status::Ok();
}

Workload make_hospital_workload(const WorkloadOptions& options) {
  Workload workload{RecordUniverse{}};
  if (Status made = try_make_hospital_workload(options, &workload); !made.ok()) {
    throw std::invalid_argument("make_hospital_workload: " + made.message());
  }
  return workload;
}

}  // namespace epi
