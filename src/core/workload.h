// Synthetic audit workloads: hospital-style record universes and query logs
// with a realistic mix of query shapes (point lookups, implications,
// negations, counting thresholds). Used by the throughput experiment (E13)
// and available to applications for load testing their audit pipelines.
//
// This generator is also registered as the `hospital` family in the
// workload-family registry (src/workloads/family.h), which adds the other
// scenario families (aggregate, policy, collusion, rectangles) behind one
// interface.
#pragma once

#include <string>
#include <vector>

#include "core/audit_log.h"
#include "db/database.h"
#include "util/rng.h"
#include "util/status.h"

namespace epi {

/// Knobs for workload synthesis.
struct WorkloadOptions {
  unsigned patients = 4;           ///< one "condition" record per patient
  double record_present_prob = 0.5;  ///< database density
  int queries = 100;
  int users = 5;
  /// Mix weights (relative, not required to sum to 1). Every weight must be
  /// finite and >= 0 and the mix must not be all-zero — validate() rejects
  /// such options instead of silently normalizing them away.
  double point_weight = 0.35;       ///< single-record lookups
  double implication_weight = 0.25; ///< r_i -> r_j
  double negation_weight = 0.2;     ///< !r_i, !(r_i & r_j)
  double counting_weight = 0.2;     ///< atleast/atmost over a subset
  std::uint64_t seed = 0xAB5;

  /// Rejects degenerate settings: zero patients or more than
  /// kMaxCoordinates, a negative query count, fewer than one user, a
  /// presence probability outside [0, 1], any negative/non-finite mix
  /// weight, and an all-zero mix (which has no query shape to draw).
  Status validate() const;
};

/// A generated scenario: universe, populated database and filled log.
struct Workload {
  RecordUniverse universe;
  InMemoryDatabase database;
  AuditLog log;
  std::vector<std::string> audit_candidates;  ///< record names to audit

  explicit Workload(RecordUniverse u) : universe(u), database(std::move(u)) {}
};

/// Builds a workload. Record names are "p<k>_cond". Throws
/// std::invalid_argument (with the Status message) when validate() fails.
Workload make_hospital_workload(const WorkloadOptions& options = {});

/// Status-first variant: WorkloadOptions::validate() failures come back as
/// InvalidArgument and `*out` is left untouched.
Status try_make_hospital_workload(const WorkloadOptions& options, Workload* out);

/// One random query text in the configured mix (exposed for reuse). Throws
/// std::invalid_argument on an empty name list or an invalid mix (any
/// negative weight, or all weights zero).
std::string random_workload_query(const std::vector<std::string>& names, Rng& rng,
                                  const WorkloadOptions& options);

}  // namespace epi
