// Synthetic audit workloads: hospital-style record universes and query logs
// with a realistic mix of query shapes (point lookups, implications,
// negations, counting thresholds). Used by the throughput experiment (E13)
// and available to applications for load testing their audit pipelines.
#pragma once

#include <string>
#include <vector>

#include "core/audit_log.h"
#include "db/database.h"
#include "util/rng.h"

namespace epi {

/// Knobs for workload synthesis.
struct WorkloadOptions {
  unsigned patients = 4;           ///< one "condition" record per patient
  double record_present_prob = 0.5;  ///< database density
  int queries = 100;
  int users = 5;
  /// Mix weights (normalized internally).
  double point_weight = 0.35;       ///< single-record lookups
  double implication_weight = 0.25; ///< r_i -> r_j
  double negation_weight = 0.2;     ///< !r_i, !(r_i & r_j)
  double counting_weight = 0.2;     ///< atleast/atmost over a subset
  std::uint64_t seed = 0xAB5;
};

/// A generated scenario: universe, populated database and filled log.
struct Workload {
  RecordUniverse universe;
  InMemoryDatabase database;
  AuditLog log;
  std::vector<std::string> audit_candidates;  ///< record names to audit

  explicit Workload(RecordUniverse u) : universe(u), database(std::move(u)) {}
};

/// Builds a workload. Record names are "p<k>_cond".
Workload make_hospital_workload(const WorkloadOptions& options = {});

/// One random query text in the configured mix (exposed for reuse).
std::string random_workload_query(const std::vector<std::string>& names, Rng& rng,
                                  const WorkloadOptions& options);

}  // namespace epi
