// Scenario scripts: a small line-based language describing records, database
// changes, logged queries, prior assumptions and audit requests. Used by the
// audit_cli example and by tests to stage end-to-end audits from text.
//
// Directives (one per line, '#' starts a comment):
//   record <name>                   declare a relevant record
//   insert <name> / remove <name>   change the actual database
//   prior unrestricted|product|log-supermodular|subcube-knowledge
//   query <user> [@<timestamp>] <query-text>
//   audit <query-text>              run an audit; the report is appended to
//                                   ScenarioResult::reports
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "core/auditor.h"
#include "util/status.h"

namespace epi {

/// Thrown on malformed scenario input; what() names the offending line.
class ScenarioError : public std::runtime_error {
 public:
  ScenarioError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  int line() const { return line_; }

 private:
  int line_;
};

/// The outcome of running a scenario.
struct ScenarioResult {
  RecordUniverse universe;
  World final_state = 0;
  AuditLog log;
  std::vector<AuditReport> reports;          ///< one per `audit` directive
  std::vector<std::string> query_trace;      ///< "user query -> answer" lines
};

/// Execution knobs for a scenario run. Implicitly constructible from
/// AuditorOptions so call sites tuning only the auditor keep their shape.
struct ScenarioOptions {
  ScenarioOptions() = default;
  ScenarioOptions(const AuditorOptions& auditor_options)  // NOLINT(runtime/explicit)
      : auditor(auditor_options) {}

  AuditorOptions auditor;

  /// Groups consecutive `audit` directives into one Auditor::audit_many
  /// batch, flushed by any other directive (which may change the database,
  /// log, or prior) or by end of input — so directive semantics are
  /// unchanged and reports stay byte-identical to the unbatched run; only
  /// throughput changes. Audit-query parse errors are still attributed to
  /// their own line; later compile failures surface at the batch's first
  /// audit line.
  bool batch_audits = false;
};

/// Executes a scenario script. Throws ScenarioError on bad input.
ScenarioResult run_scenario(std::istream& input,
                            const ScenarioOptions& options = {});

/// Convenience overload for in-memory scripts.
ScenarioResult run_scenario(const std::string& text,
                            const ScenarioOptions& options = {});

/// Status-first variant: never throws. Malformed input (including parse
/// errors inside query/audit directives) comes back as InvalidArgument
/// naming the offending line; `*out` is left untouched on failure.
Status try_run_scenario(std::istream& input, ScenarioResult* out,
                        const ScenarioOptions& options = {});
Status try_run_scenario(const std::string& text, ScenarioResult* out,
                        const ScenarioOptions& options = {});

}  // namespace epi
