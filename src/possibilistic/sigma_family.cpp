#include "possibilistic/sigma_family.h"

#include <algorithm>
#include <stdexcept>

namespace epi {

ExplicitSigma::ExplicitSigma(std::vector<FiniteSet> sets) : sets_(std::move(sets)) {
  if (sets_.empty()) throw std::invalid_argument("ExplicitSigma: empty family");
  m_ = sets_.front().universe_size();
  for (const auto& s : sets_) {
    if (s.universe_size() != m_) {
      throw std::invalid_argument("ExplicitSigma: mismatched universes");
    }
  }
}

bool ExplicitSigma::contains(const FiniteSet& s) const {
  return std::find(sets_.begin(), sets_.end(), s) != sets_.end();
}

bool ExplicitSigma::is_intersection_closed() const {
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    for (std::size_t j = i + 1; j < sets_.size(); ++j) {
      // Only pairs sharing a world matter for K; the fused disjointness scan
      // rejects them before allocating the intersection.
      if (sets_[i].disjoint_with(sets_[j])) continue;
      if (!contains(sets_[i] & sets_[j])) return false;
    }
  }
  return true;
}

std::optional<FiniteSet> ExplicitSigma::interval(std::size_t w1, std::size_t w2) const {
  std::optional<FiniteSet> result;
  for (const auto& s : sets_) {
    if (!s.contains(w1) || !s.contains(w2)) continue;
    if (!result) {
      result = s;
    } else {
      *result &= s;
    }
  }
  return result;
}

ExplicitSigma ExplicitSigma::intersection_closure() const {
  std::vector<FiniteSet> closed = sets_;
  auto member = [&closed](const FiniteSet& s) {
    return std::find(closed.begin(), closed.end(), s) != closed.end();
  };
  bool changed = true;
  while (changed) {
    changed = false;
    const std::size_t count = closed.size();
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t j = i + 1; j < count; ++j) {
        if (closed[i].disjoint_with(closed[j])) continue;
        FiniteSet inter = closed[i] & closed[j];
        if (!member(inter)) {
          closed.push_back(std::move(inter));
          changed = true;
        }
      }
    }
  }
  return ExplicitSigma(std::move(closed));
}

bool PowerSetSigma::contains(const FiniteSet& s) const {
  return s.universe_size() == m_;
}

std::vector<FiniteSet> PowerSetSigma::enumerate() const {
  if (m_ > 20) throw std::length_error("PowerSetSigma::enumerate: m too large");
  std::vector<FiniteSet> sets;
  const std::size_t subsets = std::size_t{1} << m_;
  sets.reserve(subsets - 1);
  for (std::size_t mask = 1; mask < subsets; ++mask) {
    FiniteSet s(m_);
    for (std::size_t e = 0; e < m_; ++e) {
      if ((mask >> e) & 1) s.insert(e);
    }
    sets.push_back(std::move(s));
  }
  return sets;
}

std::optional<FiniteSet> PowerSetSigma::interval(std::size_t w1, std::size_t w2) const {
  FiniteSet s(m_);
  s.insert(w1);
  s.insert(w2);
  return s;
}

}  // namespace epi
