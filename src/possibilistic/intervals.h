// K-intervals and the interval-based privacy tests for intersection-closed
// second-level knowledge (Section 4.1 of the paper: Definitions 4.4/4.7/4.11/
// 4.13, Propositions 4.5/4.8/4.10, Corollaries 4.12/4.14).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "possibilistic/sigma_family.h"

namespace epi {

/// Interval machinery for K = C (x) Sigma where Sigma is intersection-closed.
///
/// All interval queries are memoized, so auditing many disclosures B_1..B_N
/// against one audit query A reuses the computed structure (the amortization
/// pointed out after Proposition 4.1). The memo is internally synchronized:
/// every const member (and PreparedAudit::safe) may be called concurrently
/// from multiple audit worker threads.
class IntervalOracle {
 public:
  /// `sigma` must be intersection-closed; throws std::invalid_argument if the
  /// family reports otherwise. `c` is the auditor's knowledge about the
  /// database (C = Omega when she knows nothing).
  IntervalOracle(std::shared_ptr<const SigmaFamily> sigma, FiniteSet c);

  std::size_t universe_size() const { return c_.universe_size(); }
  const FiniteSet& c() const { return c_; }

  /// I_K(w1, w2) of Definition 4.4 — the smallest S with (w1, S) in K and
  /// w2 in S; nullopt when the interval does not exist (conditions (14)).
  std::optional<FiniteSet> interval(std::size_t w1, std::size_t w2) const;

  /// The minimal K-intervals from w1 to X (Definition 4.7), deduplicated.
  std::vector<FiniteSet> minimal_intervals(std::size_t w1, const FiniteSet& x) const;

  /// Delta_K(X, w1) of Definition 4.11: the disjoint equivalence classes
  /// X ∩ I over the minimal intervals I from w1 to X (Proposition 4.10).
  std::vector<FiniteSet> delta_partition(const FiniteSet& x, std::size_t w1) const;

  /// Definition 4.13: every world of an interval other than its endpoint
  /// induces a strictly smaller interval. Exhaustive check, O(m^3) interval
  /// queries.
  bool has_tight_intervals() const;

  /// Proposition 4.5: Safe_K(A,B) iff every existing interval I_K(w1,w2) with
  /// w1 in A∩B and w2 not in A intersects B - A.
  bool safe_all_intervals(const FiniteSet& a, const FiniteSet& b) const;

  /// Proposition 4.8 / Corollary 4.12: the same test restricted to intervals
  /// minimal from w1 in A∩B to Omega - A.
  bool safe_minimal_intervals(const FiniteSet& a, const FiniteSet& b) const;

  /// Corollary 4.14: the safety-margin map beta : A -> P(Omega - A) with
  /// Safe_K(A,B) iff beta(w1) ⊆ B for every w1 in A∩B. Requires tight
  /// intervals; returns nullopt otherwise. The result is indexed by world id
  /// (entries for worlds outside A are empty and meaningless).
  std::optional<std::vector<FiniteSet>> beta(const FiniteSet& a) const;

  /// Precomputed per-world Delta classes for a fixed audit query A, enabling
  /// O(|classes|) auditing of each disclosed B (Corollary 4.12).
  class PreparedAudit {
   public:
    /// Corollary 4.12 applied with the precomputed classes.
    bool safe(const FiniteSet& b) const;

    /// Total number of stored equivalence classes (for reporting).
    std::size_t class_count() const;

   private:
    friend class IntervalOracle;
    explicit PreparedAudit(FiniteSet a) : a_(std::move(a)) {}
    FiniteSet a_;
    // classes_[w] = Delta_K(Omega - A, w) for w in A (empty otherwise).
    std::vector<std::vector<FiniteSet>> classes_;
  };

  /// Builds the precomputed audit structure for audit query A.
  PreparedAudit prepare(const FiniteSet& a) const;

 private:
  std::shared_ptr<const SigmaFamily> sigma_;
  FiniteSet c_;
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<std::size_t, std::optional<FiniteSet>> cache_;
};

}  // namespace epi
