// K-intervals and the interval-based privacy tests for intersection-closed
// second-level knowledge (Section 4.1 of the paper: Definitions 4.4/4.7/4.11/
// 4.13, Propositions 4.5/4.8/4.10, Corollaries 4.12/4.14).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "possibilistic/sigma_family.h"

namespace epi {

/// Interval machinery for K = C (x) Sigma where Sigma is intersection-closed.
///
/// All interval queries are memoized, so auditing many disclosures B_1..B_N
/// against one audit query A reuses the computed structure (the amortization
/// pointed out after Proposition 4.1). The memo is internally synchronized:
/// every const member (and PreparedAudit::safe) may be called concurrently
/// from multiple audit worker threads.
class IntervalOracle {
 public:
  /// `sigma` must be intersection-closed; throws std::invalid_argument if the
  /// family reports otherwise. `c` is the auditor's knowledge about the
  /// database (C = Omega when she knows nothing).
  IntervalOracle(std::shared_ptr<const SigmaFamily> sigma, FiniteSet c);

  std::size_t universe_size() const { return c_.universe_size(); }
  const FiniteSet& c() const { return c_; }

  /// I_K(w1, w2) of Definition 4.4 — the smallest S with (w1, S) in K and
  /// w2 in S; nullopt when the interval does not exist (conditions (14)).
  std::optional<FiniteSet> interval(std::size_t w1, std::size_t w2) const;

  /// The minimal K-intervals from w1 to X (Definition 4.7), deduplicated.
  std::vector<FiniteSet> minimal_intervals(std::size_t w1, const FiniteSet& x) const;

  /// Delta_K(X, w1) of Definition 4.11: the disjoint equivalence classes
  /// X ∩ I over the minimal intervals I from w1 to X (Proposition 4.10).
  std::vector<FiniteSet> delta_partition(const FiniteSet& x, std::size_t w1) const;

  /// Definition 4.13: every world of an interval other than its endpoint
  /// induces a strictly smaller interval. Exhaustive check, O(m^3) interval
  /// queries.
  bool has_tight_intervals() const;

  /// Proposition 4.5: Safe_K(A,B) iff every existing interval I_K(w1,w2) with
  /// w1 in A∩B and w2 not in A intersects B - A.
  bool safe_all_intervals(const FiniteSet& a, const FiniteSet& b) const;

  /// Proposition 4.8 / Corollary 4.12: the same test restricted to intervals
  /// minimal from w1 in A∩B to Omega - A.
  bool safe_minimal_intervals(const FiniteSet& a, const FiniteSet& b) const;

  /// Corollary 4.14: the safety-margin map beta : A -> P(Omega - A) with
  /// Safe_K(A,B) iff beta(w1) ⊆ B for every w1 in A∩B. Requires tight
  /// intervals; returns nullopt otherwise. The result is indexed by world id
  /// (entries for worlds outside A are empty and meaningless).
  std::optional<std::vector<FiniteSet>> beta(const FiniteSet& a) const;

  /// Precomputed per-world Delta classes for a fixed audit query A, enabling
  /// O(|classes|) auditing of each disclosed B (Corollary 4.12).
  class PreparedAudit {
   public:
    /// Corollary 4.12 applied with the precomputed classes.
    bool safe(const FiniteSet& b) const;

    /// Total number of stored equivalence classes (for reporting).
    std::size_t class_count() const;

    /// The audit query the structure was prepared for.
    const FiniteSet& audit_set() const { return a_; }
    /// Delta_K(Omega − A, w) for w ∈ A (empty for worlds outside A).
    const std::vector<FiniteSet>& classes(std::size_t w) const {
      return classes_[w];
    }

   private:
    friend class IntervalOracle;
    explicit PreparedAudit(FiniteSet a) : a_(std::move(a)) {}
    FiniteSet a_;
    // classes_[w] = Delta_K(Omega - A, w) for w in A (empty otherwise).
    std::vector<std::vector<FiniteSet>> classes_;
  };

  /// Builds the precomputed audit structure for audit query A.
  PreparedAudit prepare(const FiniteSet& a) const;

  /// Incrementally-maintained Corollary 4.12 test against a *shrinking*
  /// disclosure set — the streaming-session shape, where each absorbed
  /// disclosure only intersects S (Prop. 3.10). Where PreparedAudit::safe
  /// rescans every w1 ∈ A ∩ S and every Δ-class per call, this keeps
  ///
  ///   counts[c]       = |Δ-class c ∩ S|        (flattened over all w1)
  ///   zero_classes[w] = #{classes of w1=w with empty intersection}
  ///   violating       = #{w1 ∈ A ∩ S with zero_classes > 0}
  ///
  /// and updates them from an inverted world → classes index in
  /// O(|S − S'| × degree) per shrink. safe() is then O(1):
  /// Safe_K(A, S) ⇔ violating == 0 (some active w1 has a class disjoint
  /// with S exactly when it is counted in `violating`). Δ-classes live in
  /// Ω − A while activity tracks A ∩ S, so the two update paths never
  /// interact. Not thread-safe; callers serialize (the service does, under
  /// the session mutex).
  class IncrementalSafe {
   public:
    /// Keeps `prepared` alive for the index's lifetime.
    explicit IncrementalSafe(
        std::shared_ptr<const PreparedAudit> prepared);

    /// Re-derives every counter for disclosure set `s` from scratch —
    /// O(total class size). Used on first sight of a session's S and as
    /// the fallback when shrink_to is handed a non-subset.
    void reset(const FiniteSet& s);

    /// Updates the counters from the current set to `s`. Requires s ⊆
    /// current (returns false without touching anything otherwise — the
    /// caller then reset()s); cost is linear in the removed worlds times
    /// their class degree.
    bool shrink_to(const FiniteSet& s);

    bool initialized() const { return current_.has_value(); }
    const FiniteSet& current() const { return *current_; }

    /// Corollary 4.12 for (A, current): true iff no active w1 has a
    /// Δ-class disjoint with the current set.
    bool safe() const { return violating_ == 0; }
    /// |A ∩ current| == 0 — the absorbing case: once A and S are disjoint
    /// they stay disjoint under further intersection, so safe() is pinned.
    bool active_empty() const { return active_count_ == 0; }

   private:
    std::shared_ptr<const PreparedAudit> prepared_;
    /// Flattened class layout: class c belongs to world owner_[c]; the
    /// inverted index lists, per world e ∈ Ω − A, every class containing e.
    std::vector<std::size_t> owner_;
    std::vector<std::vector<std::uint32_t>> inverted_;
    std::vector<std::size_t> first_class_;  ///< per-world flat range start
    std::vector<std::size_t> class_count_;  ///< per-world class count

    std::optional<FiniteSet> current_;
    std::vector<std::size_t> counts_;        ///< |class ∩ current|
    std::vector<std::size_t> zero_classes_;  ///< per w1 ∈ A
    std::vector<char> active_;               ///< w1 ∈ A ∩ current
    std::size_t active_count_ = 0;
    std::size_t violating_ = 0;
  };

 private:
  std::shared_ptr<const SigmaFamily> sigma_;
  FiniteSet c_;
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<std::size_t, std::optional<FiniteSet>> cache_;
};

}  // namespace epi
