// The integer-rectangle knowledge family of Example 4.9 / Figure 1: worlds
// are pixels of a width x height grid, admissible knowledge sets are integer
// sub-rectangles. The family is intersection-closed and has tight intervals,
// so the full Section 4.1 machinery (minimal intervals, Delta classes, beta)
// applies.
#pragma once

#include <cstddef>
#include <string>

#include "possibilistic/sigma_family.h"

namespace epi {

/// A width x height pixel grid with 1-based coordinates, matching the paper's
/// Figure 1 (whose grid is 14 x 7 and whose points run (1,1)..(14,7)).
class GridDomain {
 public:
  GridDomain(std::size_t width, std::size_t height);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t size() const { return width_ * height_; }

  /// World id of pixel (x, y); x in [1,width], y in [1,height].
  std::size_t index(std::size_t x, std::size_t y) const;
  std::size_t x_of(std::size_t index) const { return index % width_ + 1; }
  std::size_t y_of(std::size_t index) const { return index / width_ + 1; }

  /// The axis-aligned rectangle [x1,x2] x [y1,y2] as a world set.
  FiniteSet rectangle(std::size_t x1, std::size_t y1, std::size_t x2,
                      std::size_t y2) const;

  /// The discretized ellipse ((x-cx)/rx)^2 + ((y-cy)/ry)^2 <= 1 as a world
  /// set — used to rebuild the A-complement region of Figure 1.
  FiniteSet ellipse(double cx, double cy, double rx, double ry) const;

  /// ASCII rendering: '#' for members of `s`, '.' otherwise, row y=1 first.
  std::string render(const FiniteSet& s) const;

 private:
  std::size_t width_;
  std::size_t height_;
};

/// The family of all integer sub-rectangles of a grid (Example 4.9).
/// Intervals have the closed form I(w1, w2) = bounding box of {w1, w2}.
class RectangleSigma : public SigmaFamily {
 public:
  explicit RectangleSigma(GridDomain grid) : grid_(grid) {}

  const GridDomain& grid() const { return grid_; }

  std::size_t universe_size() const override { return grid_.size(); }
  /// True iff s is a non-empty rectangle (equals its own bounding box).
  bool contains(const FiniteSet& s) const override;
  /// All width*(width+1)/2 * height*(height+1)/2 rectangles.
  std::vector<FiniteSet> enumerate() const override;
  bool is_intersection_closed() const override { return true; }
  /// Bounding box of {w1, w2}; always exists.
  std::optional<FiniteSet> interval(std::size_t w1, std::size_t w2) const override;

 private:
  GridDomain grid_;
};

}  // namespace epi
