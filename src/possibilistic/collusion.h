// Collusion analysis — the motivation for intersection-closed knowledge
// (Section 4.1: "When two or more possibilistic agents collude ... their
// knowledge sets intersect: they jointly consider a world possible if and
// only if none of them has ruled it out").
//
// Given per-user knowledge families and the disclosures each user received,
// this module derives the knowledge of every coalition and audits the
// sensitive set against it.
#pragma once

#include <string>
#include <vector>

#include "possibilistic/knowledge.h"

namespace epi {

/// One user: name, admissible prior knowledge sets, received disclosures.
struct CollusionUser {
  std::string name;
  std::vector<FiniteSet> prior_family;  ///< possible prior knowledge sets
  std::vector<FiniteSet> disclosures;   ///< the B sets this user received
};

/// The possible post-disclosure knowledge sets of one user: every prior S
/// intersected with all received disclosures, keeping only sets containing
/// the actual world (others are inconsistent histories).
std::vector<FiniteSet> posterior_family(const CollusionUser& user,
                                        std::size_t actual_world);

/// The possible joint knowledge sets of a coalition: all intersections of
/// one posterior per member (deduplicated).
std::vector<FiniteSet> coalition_family(const std::vector<CollusionUser>& members,
                                        std::size_t actual_world);

/// Audit result for one coalition.
struct CoalitionFinding {
  std::vector<std::string> members;
  bool knows_sensitive = false;  ///< some admissible joint knowledge ⊆ A
};

/// Audits every non-empty coalition of the given users (2^k - 1 of them;
/// k <= 16) against the sensitive set A: a coalition is flagged when some
/// combination of admissible posteriors pins the sensitive set down.
std::vector<CoalitionFinding> audit_coalitions(const std::vector<CollusionUser>& users,
                                               const FiniteSet& sensitive,
                                               std::size_t actual_world);

}  // namespace epi
