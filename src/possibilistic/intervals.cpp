#include "possibilistic/intervals.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace epi {
namespace {

/// Process-wide oracle counters: one lookup per interval() call, one cache
/// hit when the memo short-circuits the sigma-family computation. Resolved
/// once; hot-path cost is a relaxed atomic add.
obs::Counter& interval_lookups() {
  static obs::Counter& counter =
      obs::process_metrics().counter("oracle.interval.lookups");
  return counter;
}

obs::Counter& interval_cache_hits() {
  static obs::Counter& counter =
      obs::process_metrics().counter("oracle.interval.cache_hits");
  return counter;
}

}  // namespace

IntervalOracle::IntervalOracle(std::shared_ptr<const SigmaFamily> sigma, FiniteSet c)
    : sigma_(std::move(sigma)), c_(std::move(c)) {
  if (!sigma_) throw std::invalid_argument("IntervalOracle: null family");
  if (sigma_->universe_size() != c_.universe_size()) {
    throw std::invalid_argument("IntervalOracle: mismatched universes");
  }
  if (!sigma_->is_intersection_closed()) {
    throw std::invalid_argument("IntervalOracle: family is not intersection-closed");
  }
}

std::optional<FiniteSet> IntervalOracle::interval(std::size_t w1, std::size_t w2) const {
  // Condition (14): w1 must be a possible world for the auditor (w1 in C) —
  // otherwise no pair (w1, S) belongs to K = C (x) Sigma.
  if (!c_.contains(w1)) return std::nullopt;
  interval_lookups().add(1);
  const std::size_t key = w1 * c_.universe_size() + w2;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      interval_cache_hits().add(1);
      return it->second;
    }
  }
  // Compute outside the lock — a racing duplicate computation is benign and
  // cheaper than serializing every sigma interval query.
  std::optional<FiniteSet> result = sigma_->interval(w1, w2);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.emplace(key, result);
  return result;
}

std::vector<FiniteSet> IntervalOracle::minimal_intervals(std::size_t w1,
                                                         const FiniteSet& x) const {
  std::vector<FiniteSet> result;
  x.visit([&](std::size_t w2) {
    std::optional<FiniteSet> iv = interval(w1, w2);
    if (!iv) return;
    // Definition 4.7: minimal iff every x-world inside the interval induces
    // the very same interval. Fused scan over iv ∩ x — no materialized set.
    bool minimal = true;
    visit_intersection(*iv, x, [&](std::size_t w2p) {
      if (!minimal) return;
      std::optional<FiniteSet> ivp = interval(w1, w2p);
      if (!ivp || *ivp != *iv) minimal = false;
    });
    if (!minimal) return;
    for (const FiniteSet& seen : result) {
      if (seen == *iv) return;  // dedupe
    }
    result.push_back(std::move(*iv));
  });
  return result;
}

std::vector<FiniteSet> IntervalOracle::delta_partition(const FiniteSet& x,
                                                       std::size_t w1) const {
  std::vector<FiniteSet> classes;
  for (const FiniteSet& iv : minimal_intervals(w1, x)) {
    classes.push_back(iv & x);
  }
  return classes;
}

bool IntervalOracle::has_tight_intervals() const {
  const std::size_t m = c_.universe_size();
  for (std::size_t w1 = 0; w1 < m; ++w1) {
    if (!c_.contains(w1)) continue;
    for (std::size_t w2 = 0; w2 < m; ++w2) {
      std::optional<FiniteSet> iv = interval(w1, w2);
      if (!iv) continue;
      bool tight = true;
      iv->visit([&](std::size_t w2p) {
        if (!tight || w2p == w2) return;
        std::optional<FiniteSet> ivp = interval(w1, w2p);
        // ivp exists because w2p lies in a family member containing w1.
        if (!ivp || !(ivp->subset_of(*iv) && *ivp != *iv)) tight = false;
      });
      if (!tight) return false;
    }
  }
  return true;
}

bool IntervalOracle::safe_all_intervals(const FiniteSet& a, const FiniteSet& b) const {
  const FiniteSet outside_a = ~a;
  const FiniteSet b_minus_a = b - a;
  bool safe = true;
  visit_intersection(a, b, [&](std::size_t w1) {
    if (!safe) return;
    outside_a.visit([&](std::size_t w2) {
      if (!safe) return;
      std::optional<FiniteSet> iv = interval(w1, w2);
      if (iv && iv->disjoint_with(b_minus_a)) safe = false;
    });
  });
  return safe;
}

bool IntervalOracle::safe_minimal_intervals(const FiniteSet& a,
                                            const FiniteSet& b) const {
  obs::ScopedSpan span("oracle.safe-minimal-intervals");
  const FiniteSet outside_a = ~a;
  const FiniteSet b_minus_a = b - a;
  bool safe = true;
  visit_intersection(a, b, [&](std::size_t w1) {
    if (!safe) return;
    for (const FiniteSet& iv : minimal_intervals(w1, outside_a)) {
      if (iv.disjoint_with(b_minus_a)) {
        safe = false;
        return;
      }
    }
  });
  return safe;
}

std::optional<std::vector<FiniteSet>> IntervalOracle::beta(const FiniteSet& a) const {
  if (!has_tight_intervals()) return std::nullopt;
  const std::size_t m = c_.universe_size();
  const FiniteSet outside_a = ~a;
  std::vector<FiniteSet> result(m, FiniteSet(m));
  a.visit([&](std::size_t w1) {
    // With tight intervals every Delta class is a singleton (Cor. 4.14), so
    // beta(w1) is simply the union of the classes.
    for (const FiniteSet& cls : delta_partition(outside_a, w1)) {
      result[w1] |= cls;
    }
  });
  return result;
}

IntervalOracle::PreparedAudit IntervalOracle::prepare(const FiniteSet& a) const {
  obs::ScopedSpan span("oracle.prepare");
  PreparedAudit audit(a);
  const std::size_t m = c_.universe_size();
  const FiniteSet outside_a = ~a;
  audit.classes_.assign(m, {});
  a.visit([&](std::size_t w1) {
    audit.classes_[w1] = delta_partition(outside_a, w1);
  });
  if (span.live()) {
    span.attr("classes", std::to_string(audit.class_count()));
  }
  return audit;
}

bool IntervalOracle::PreparedAudit::safe(const FiniteSet& b) const {
  obs::ScopedSpan span("oracle.prepared-safe");
  bool result = true;
  visit_intersection(a_, b, [&](std::size_t w1) {
    if (!result) return;
    for (const FiniteSet& cls : classes_[w1]) {
      if (cls.disjoint_with(b)) {
        result = false;
        return;
      }
    }
  });
  return result;
}

std::size_t IntervalOracle::PreparedAudit::class_count() const {
  std::size_t total = 0;
  for (const auto& per_world : classes_) total += per_world.size();
  return total;
}

IntervalOracle::IncrementalSafe::IncrementalSafe(
    std::shared_ptr<const PreparedAudit> prepared)
    : prepared_(std::move(prepared)) {
  if (!prepared_) {
    throw std::invalid_argument("IncrementalSafe: null prepared audit");
  }
  const FiniteSet& a = prepared_->audit_set();
  const std::size_t m = a.universe_size();
  first_class_.assign(m, 0);
  class_count_.assign(m, 0);
  inverted_.assign(m, {});
  a.visit([&](std::size_t w1) {
    first_class_[w1] = owner_.size();
    const std::vector<FiniteSet>& classes = prepared_->classes(w1);
    class_count_[w1] = classes.size();
    for (const FiniteSet& cls : classes) {
      const std::size_t c = owner_.size();
      owner_.push_back(w1);
      cls.visit([&](std::size_t e) {
        inverted_[e].push_back(static_cast<std::uint32_t>(c));
      });
    }
  });
}

void IntervalOracle::IncrementalSafe::reset(const FiniteSet& s) {
  const FiniteSet& a = prepared_->audit_set();
  if (s.universe_size() != a.universe_size()) {
    throw std::invalid_argument("IncrementalSafe: mismatched universes");
  }
  counts_.assign(owner_.size(), 0);
  zero_classes_.assign(a.universe_size(), 0);
  active_.assign(a.universe_size(), 0);
  active_count_ = 0;
  violating_ = 0;
  a.visit([&](std::size_t w1) {
    if (s.contains(w1)) {
      active_[w1] = 1;
      ++active_count_;
    }
    const std::vector<FiniteSet>& classes = prepared_->classes(w1);
    for (std::size_t k = 0; k < classes.size(); ++k) {
      const std::size_t c = first_class_[w1] + k;
      counts_[c] = intersection_count(classes[k], s);
      if (counts_[c] == 0) ++zero_classes_[w1];
    }
    if (active_[w1] && zero_classes_[w1] > 0) ++violating_;
  });
  current_ = s;
}

bool IntervalOracle::IncrementalSafe::shrink_to(const FiniteSet& s) {
  if (!current_ || !s.subset_of(*current_)) return false;
  if (s == *current_) return true;
  const FiniteSet& a = prepared_->audit_set();
  const FiniteSet removed = *current_ - s;
  removed.visit([&](std::size_t e) {
    // e left S. Delta classes live in Omega − A and activity tracks A ∩ S,
    // so exactly one of the two branches applies.
    if (a.contains(e)) {
      if (active_[e]) {
        active_[e] = 0;
        --active_count_;
        if (zero_classes_[e] > 0) --violating_;
      }
      return;
    }
    for (const std::uint32_t c : inverted_[e]) {
      if (--counts_[c] == 0) {
        const std::size_t w1 = owner_[c];
        if (++zero_classes_[w1] == 1 && active_[w1]) ++violating_;
      }
    }
  });
  current_ = s;
  return true;
}

}  // namespace epi
