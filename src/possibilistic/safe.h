// The possibilistic privacy predicate Safe_K(A,B) (Definition 3.1) and its
// (C, Sigma) product form (Proposition 3.3), with violation witnesses.
#pragma once

#include <optional>

#include "possibilistic/knowledge.h"
#include "possibilistic/sigma_family.h"

namespace epi {

/// Definition 3.1: A is K-private given the disclosure of B iff for every
/// (omega, S) in K with omega in B: S ∩ B ⊆ A implies S ⊆ A.
/// (Equivalently: no admissible agent that did not know A learns A from B.)
bool safe_possibilistic(const SecondLevelKnowledge& k, const FiniteSet& a,
                        const FiniteSet& b);

/// The knowledge world violating Definition 3.1, if any: a pair (omega, S)
/// with omega in B, S ⊄ A, and S ∩ B ⊆ A — i.e. an admissible agent who
/// gains knowledge of A upon learning B.
std::optional<KnowledgeWorld> find_possibilistic_violation(
    const SecondLevelKnowledge& k, const FiniteSet& a, const FiniteSet& b);

/// Proposition 3.3: Safe_{C,Sigma}(A,B) without materializing C (x) Sigma:
/// for every S in Sigma, S∩B∩C != {} and S∩B ⊆ A imply S ⊆ A.
bool safe_c_sigma(const FiniteSet& c, const SigmaFamily& sigma, const FiniteSet& a,
                  const FiniteSet& b);

/// Theorem 3.11 (possibilistic, unrestricted prior knowledge, auditor knows
/// nothing about the world): Safe_K(A,B) for K = Omega_poss iff
/// A ∩ B = {} or A ∪ B = Omega.
bool safe_unrestricted(const FiniteSet& a, const FiniteSet& b);

/// Theorem 3.11, second part: Safe_K(A,B) for K = {omega*} (x) P(Omega) iff
/// A ∩ B = {}, or A ∪ B = Omega, or omega* not in A ∩ B. (The paper writes
/// the last disjunct as "omega* in B - A" under the truthful-disclosure
/// assumption omega* in B; for omega* outside B Definition 3.1 is vacuous,
/// hence safe.)
bool safe_unrestricted_known_world(const FiniteSet& a, const FiniteSet& b,
                                   std::size_t actual_world);

}  // namespace epi
