// Families Sigma of admissible user knowledge sets (Section 2, "the
// possibilistic agent's knowledge has to belong to Sigma").
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "worlds/finite_set.h"

namespace epi {

/// A family of subsets of Omega = {0,...,m-1}. Implementations expose
/// membership, enumeration (where feasible) and — for intersection-closed
/// families — the K-interval operation of Definition 4.4.
class SigmaFamily {
 public:
  virtual ~SigmaFamily() = default;

  /// Universe size m.
  virtual std::size_t universe_size() const = 0;

  /// True when `s` belongs to the family.
  virtual bool contains(const FiniteSet& s) const = 0;

  /// All members of the family; throws std::length_error when infeasibly
  /// large (e.g. the power set for m > 20).
  virtual std::vector<FiniteSet> enumerate() const = 0;

  /// Whether the family is closed under pairwise intersection (Def. 4.3
  /// lifts this to K = C (x) Sigma).
  virtual bool is_intersection_closed() const = 0;

  /// The smallest member containing both w1 and w2, or nullopt when no member
  /// contains both (Definition 4.4 without the C gate; callers apply C).
  /// Only meaningful for intersection-closed families.
  virtual std::optional<FiniteSet> interval(std::size_t w1, std::size_t w2) const = 0;
};

/// A family given by an explicit list of sets.
class ExplicitSigma : public SigmaFamily {
 public:
  explicit ExplicitSigma(std::vector<FiniteSet> sets);

  std::size_t universe_size() const override { return m_; }
  bool contains(const FiniteSet& s) const override;
  std::vector<FiniteSet> enumerate() const override { return sets_; }
  bool is_intersection_closed() const override;
  std::optional<FiniteSet> interval(std::size_t w1, std::size_t w2) const override;

  /// The closure of this family under pairwise intersection.
  ExplicitSigma intersection_closure() const;

 private:
  std::size_t m_;
  std::vector<FiniteSet> sets_;
};

/// The power set P(Omega) — the unconstrained prior-knowledge family of
/// Section 3.4. Intersection-closed with tight intervals I({w1,w2}) = {w1,w2}.
class PowerSetSigma : public SigmaFamily {
 public:
  explicit PowerSetSigma(std::size_t m) : m_(m) {}

  std::size_t universe_size() const override { return m_; }
  bool contains(const FiniteSet& s) const override;
  std::vector<FiniteSet> enumerate() const override;
  bool is_intersection_closed() const override { return true; }
  std::optional<FiniteSet> interval(std::size_t w1, std::size_t w2) const override;

 private:
  std::size_t m_;
};

}  // namespace epi
