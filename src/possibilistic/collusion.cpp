#include "possibilistic/collusion.h"

#include <algorithm>
#include <stdexcept>

namespace epi {
namespace {

void push_unique(std::vector<FiniteSet>& sets, FiniteSet s) {
  if (std::find(sets.begin(), sets.end(), s) == sets.end()) {
    sets.push_back(std::move(s));
  }
}

}  // namespace

std::vector<FiniteSet> posterior_family(const CollusionUser& user,
                                        std::size_t actual_world) {
  std::vector<FiniteSet> out;
  for (const FiniteSet& prior : user.prior_family) {
    FiniteSet posterior = prior;
    for (const FiniteSet& b : user.disclosures) posterior &= b;
    // Consistency (Remark 2.3): knowledge must contain the actual world.
    if (posterior.contains(actual_world)) push_unique(out, std::move(posterior));
  }
  return out;
}

std::vector<FiniteSet> coalition_family(const std::vector<CollusionUser>& members,
                                        std::size_t actual_world) {
  if (members.empty()) {
    throw std::invalid_argument("coalition_family: empty coalition");
  }
  std::vector<FiniteSet> joint = posterior_family(members[0], actual_world);
  for (std::size_t i = 1; i < members.size(); ++i) {
    const std::vector<FiniteSet> next = posterior_family(members[i], actual_world);
    std::vector<FiniteSet> combined;
    for (const FiniteSet& s1 : joint) {
      for (const FiniteSet& s2 : next) {
        push_unique(combined, s1 & s2);
      }
    }
    joint = std::move(combined);
  }
  return joint;
}

std::vector<CoalitionFinding> audit_coalitions(const std::vector<CollusionUser>& users,
                                               const FiniteSet& sensitive,
                                               std::size_t actual_world) {
  if (users.size() > 16) {
    throw std::invalid_argument("audit_coalitions: too many users");
  }
  std::vector<CoalitionFinding> findings;
  const std::size_t coalitions = (std::size_t{1} << users.size()) - 1;
  for (std::size_t mask = 1; mask <= coalitions; ++mask) {
    std::vector<CollusionUser> members;
    CoalitionFinding finding;
    for (std::size_t i = 0; i < users.size(); ++i) {
      if ((mask >> i) & 1) {
        members.push_back(users[i]);
        finding.members.push_back(users[i].name);
      }
    }
    for (const FiniteSet& joint : coalition_family(members, actual_world)) {
      if (!joint.is_empty() && joint.subset_of(sensitive)) {
        finding.knows_sensitive = true;
        break;
      }
    }
    findings.push_back(std::move(finding));
  }
  return findings;
}

}  // namespace epi
