#include "possibilistic/subcubes.h"

#include <stdexcept>

namespace epi {

SubcubeSigma::SubcubeSigma(unsigned n) : n_(n) {
  if (n == 0 || n > kMaxSubcubeEnumerationCoordinates) {
    throw std::invalid_argument(
        "SubcubeSigma: n must be in [1, " +
        std::to_string(kMaxSubcubeEnumerationCoordinates) +
        "] — enumerate() walks all 3^n subcubes and box() materializes "
        "2^n-element sets, which is intractable beyond that");
  }
}

FiniteSet SubcubeSigma::box(const MatchVector& w) const {
  FiniteSet s(universe_size());
  const std::size_t size = universe_size();
  for (std::size_t v = 0; v < size; ++v) {
    if (refines(static_cast<World>(v), w)) s.insert(v);
  }
  return s;
}

bool SubcubeSigma::contains(const FiniteSet& s) const {
  if (s.universe_size() != universe_size() || s.is_empty()) return false;
  // The bounding match vector of s: coordinates where all members agree are
  // fixed, the rest are stars; s is a subcube iff it equals its bounding box.
  World and_all = ~World{0};
  World or_all = 0;
  s.visit([&](std::size_t v) {
    and_all &= static_cast<World>(v);
    or_all |= static_cast<World>(v);
  });
  MatchVector w;
  w.stars = (and_all ^ or_all) & ((World{1} << n_) - 1);
  w.values = and_all & ~w.stars & ((World{1} << n_) - 1);
  return s == box(w);
}

std::vector<FiniteSet> SubcubeSigma::enumerate() const {
  std::vector<FiniteSet> out;
  std::size_t total = 1;
  for (unsigned i = 0; i < n_; ++i) total *= 3;
  out.reserve(total);
  // Enumerate {0,1,*}^n via base-3 codes.
  for (std::size_t code = 0; code < total; ++code) {
    MatchVector w;
    std::size_t c = code;
    for (unsigned i = 0; i < n_; ++i) {
      const unsigned digit = c % 3;
      c /= 3;
      if (digit == 1) {
        w.values |= World{1} << i;
      } else if (digit == 2) {
        w.stars |= World{1} << i;
      }
    }
    out.push_back(box(w));
  }
  return out;
}

std::optional<FiniteSet> SubcubeSigma::interval(std::size_t w1,
                                                std::size_t w2) const {
  if (w1 >= universe_size() || w2 >= universe_size()) return std::nullopt;
  return box(match(static_cast<World>(w1), static_cast<World>(w2)));
}

}  // namespace epi
