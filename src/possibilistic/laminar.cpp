#include "possibilistic/laminar.h"

#include <stdexcept>

namespace epi {

LaminarSigma::LaminarSigma(std::size_t universe_size) : m_(universe_size) {
  if (universe_size == 0) {
    throw std::invalid_argument("LaminarSigma: empty universe");
  }
  nodes_.emplace_back(FiniteSet::universe(m_), "root", kRoot);
}

LaminarSigma::NodeId LaminarSigma::add_group(NodeId parent, const FiniteSet& members,
                                             std::string label) {
  if (parent >= nodes_.size()) {
    throw std::out_of_range("add_group: unknown parent");
  }
  if (members.is_empty() || members.universe_size() != m_) {
    throw std::invalid_argument("add_group: bad member set");
  }
  if (!members.subset_of(nodes_[parent].members)) {
    throw std::invalid_argument("add_group: members not nested in parent");
  }
  for (NodeId sibling : nodes_[parent].children) {
    if (!members.disjoint_with(nodes_[sibling].members)) {
      throw std::invalid_argument("add_group: members overlap a sibling group");
    }
  }
  const NodeId id = nodes_.size();
  nodes_.emplace_back(members, std::move(label), parent);
  nodes_[parent].children.push_back(id);
  return id;
}

LaminarSigma LaminarSigma::balanced(std::size_t universe_size,
                                    std::size_t leaf_size) {
  if (leaf_size == 0) throw std::invalid_argument("balanced: leaf_size 0");
  LaminarSigma tree(universe_size);
  // Iteratively split ranges [lo, hi) in halves.
  struct Range {
    NodeId node;
    std::size_t lo, hi;
  };
  std::vector<Range> stack = {{kRoot, 0, universe_size}};
  while (!stack.empty()) {
    const Range r = stack.back();
    stack.pop_back();
    if (r.hi - r.lo <= leaf_size) continue;
    const std::size_t mid = (r.lo + r.hi) / 2;
    FiniteSet left(universe_size), right(universe_size);
    for (std::size_t e = r.lo; e < mid; ++e) left.insert(e);
    for (std::size_t e = mid; e < r.hi; ++e) right.insert(e);
    const NodeId l = tree.add_group(r.node, left);
    const NodeId rr = tree.add_group(r.node, right);
    stack.push_back({l, r.lo, mid});
    stack.push_back({rr, mid, r.hi});
  }
  return tree;
}

LaminarSigma::NodeId LaminarSigma::lowest_common_group(std::size_t w1,
                                                       std::size_t w2) const {
  // Walk down from the root while some child contains both.
  NodeId current = kRoot;
  for (;;) {
    bool descended = false;
    for (NodeId child : nodes_[current].children) {
      if (nodes_[child].members.contains(w1) && nodes_[child].members.contains(w2)) {
        current = child;
        descended = true;
        break;
      }
    }
    if (!descended) return current;
  }
}

bool LaminarSigma::contains(const FiniteSet& s) const {
  for (const Node& node : nodes_) {
    if (node.members == s) return true;
  }
  return false;
}

std::vector<FiniteSet> LaminarSigma::enumerate() const {
  std::vector<FiniteSet> out;
  out.reserve(nodes_.size());
  for (const Node& node : nodes_) out.push_back(node.members);
  return out;
}

std::optional<FiniteSet> LaminarSigma::interval(std::size_t w1,
                                                std::size_t w2) const {
  if (w1 >= m_ || w2 >= m_) return std::nullopt;
  return nodes_[lowest_common_group(w1, w2)].members;
}

}  // namespace epi
