#include "possibilistic/safe.h"

namespace epi {

std::optional<KnowledgeWorld> find_possibilistic_violation(
    const SecondLevelKnowledge& k, const FiniteSet& a, const FiniteSet& b) {
  for (const KnowledgeWorld& kw : k.pairs()) {
    if (!b.contains(kw.world)) continue;  // inconsistent with the disclosure
    // Fused Def. 3.1 test: (S∩B) ⊆ A without materializing S∩B.
    if (intersection_subset_of(kw.knowledge, b, a) && !kw.knowledge.subset_of(a)) {
      return kw;  // this agent gains knowledge of A
    }
  }
  return std::nullopt;
}

bool safe_possibilistic(const SecondLevelKnowledge& k, const FiniteSet& a,
                        const FiniteSet& b) {
  return !find_possibilistic_violation(k, a, b).has_value();
}

bool safe_c_sigma(const FiniteSet& c, const SigmaFamily& sigma, const FiniteSet& a,
                  const FiniteSet& b) {
  for (const FiniteSet& s : sigma.enumerate()) {
    if (intersection_disjoint(s, b, c)) continue;  // S∩B∩C = ∅, one word scan
    if (intersection_subset_of(s, b, a) && !s.subset_of(a)) return false;
  }
  return true;
}

bool safe_unrestricted(const FiniteSet& a, const FiniteSet& b) {
  // Thm. 3.11: A∩B = ∅ or A∪B = Omega, both fused word scans.
  return a.disjoint_with(b) || union_is_universe(a, b);
}

bool safe_unrestricted_known_world(const FiniteSet& a, const FiniteSet& b,
                                   std::size_t actual_world) {
  if (safe_unrestricted(a, b)) return true;
  // Safe iff omega* is not in A ∩ B. The paper's statement lists the
  // disjunct "omega* in B - A" under the implicit truthful-disclosure
  // assumption omega* in B; when omega* is outside B entirely, no admissible
  // pair (omega*, S) has its world in B and Definition 3.1 holds vacuously.
  // (Found by the model checker: the original `omega* in B - A` test claimed
  // unsafe for omega* outside B.)
  return !(a.contains(actual_world) && b.contains(actual_world));
}

}  // namespace epi
