#include "possibilistic/safe.h"

namespace epi {

std::optional<KnowledgeWorld> find_possibilistic_violation(
    const SecondLevelKnowledge& k, const FiniteSet& a, const FiniteSet& b) {
  for (const KnowledgeWorld& kw : k.pairs()) {
    if (!b.contains(kw.world)) continue;  // inconsistent with the disclosure
    const FiniteSet sb = kw.knowledge & b;
    if (sb.subset_of(a) && !kw.knowledge.subset_of(a)) {
      return kw;  // this agent gains knowledge of A
    }
  }
  return std::nullopt;
}

bool safe_possibilistic(const SecondLevelKnowledge& k, const FiniteSet& a,
                        const FiniteSet& b) {
  return !find_possibilistic_violation(k, a, b).has_value();
}

bool safe_c_sigma(const FiniteSet& c, const SigmaFamily& sigma, const FiniteSet& a,
                  const FiniteSet& b) {
  for (const FiniteSet& s : sigma.enumerate()) {
    const FiniteSet sb = s & b;
    if ((sb & c).is_empty()) continue;
    if (sb.subset_of(a) && !s.subset_of(a)) return false;
  }
  return true;
}

bool safe_unrestricted(const FiniteSet& a, const FiniteSet& b) {
  return a.disjoint_with(b) || (a | b).is_universe();
}

bool safe_unrestricted_known_world(const FiniteSet& a, const FiniteSet& b,
                                   std::size_t actual_world) {
  if (safe_unrestricted(a, b)) return true;
  return b.contains(actual_world) && !a.contains(actual_world);
}

}  // namespace epi
