#include "possibilistic/rectangles.h"

#include <algorithm>
#include <stdexcept>

namespace epi {

GridDomain::GridDomain(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("GridDomain: zero dimension");
  }
}

std::size_t GridDomain::index(std::size_t x, std::size_t y) const {
  if (x < 1 || x > width_ || y < 1 || y > height_) {
    throw std::out_of_range("GridDomain::index: pixel outside grid");
  }
  return (y - 1) * width_ + (x - 1);
}

FiniteSet GridDomain::rectangle(std::size_t x1, std::size_t y1, std::size_t x2,
                                std::size_t y2) const {
  if (x1 > x2 || y1 > y2) throw std::invalid_argument("rectangle: empty range");
  FiniteSet s(size());
  for (std::size_t y = y1; y <= y2; ++y) {
    for (std::size_t x = x1; x <= x2; ++x) {
      s.insert(index(x, y));
    }
  }
  return s;
}

FiniteSet GridDomain::ellipse(double cx, double cy, double rx, double ry) const {
  FiniteSet s(size());
  for (std::size_t y = 1; y <= height_; ++y) {
    for (std::size_t x = 1; x <= width_; ++x) {
      const double dx = (static_cast<double>(x) - cx) / rx;
      const double dy = (static_cast<double>(y) - cy) / ry;
      if (dx * dx + dy * dy <= 1.0) s.insert(index(x, y));
    }
  }
  return s;
}

std::string GridDomain::render(const FiniteSet& s) const {
  std::string out;
  out.reserve((width_ + 1) * height_);
  for (std::size_t y = 1; y <= height_; ++y) {
    for (std::size_t x = 1; x <= width_; ++x) {
      out += s.contains(index(x, y)) ? '#' : '.';
    }
    out += '\n';
  }
  return out;
}

bool RectangleSigma::contains(const FiniteSet& s) const {
  if (s.universe_size() != grid_.size() || s.is_empty()) return false;
  std::size_t min_x = grid_.width() + 1, max_x = 0;
  std::size_t min_y = grid_.height() + 1, max_y = 0;
  s.visit([&](std::size_t w) {
    min_x = std::min(min_x, grid_.x_of(w));
    max_x = std::max(max_x, grid_.x_of(w));
    min_y = std::min(min_y, grid_.y_of(w));
    max_y = std::max(max_y, grid_.y_of(w));
  });
  return s == grid_.rectangle(min_x, min_y, max_x, max_y);
}

std::vector<FiniteSet> RectangleSigma::enumerate() const {
  std::vector<FiniteSet> sets;
  for (std::size_t x1 = 1; x1 <= grid_.width(); ++x1) {
    for (std::size_t x2 = x1; x2 <= grid_.width(); ++x2) {
      for (std::size_t y1 = 1; y1 <= grid_.height(); ++y1) {
        for (std::size_t y2 = y1; y2 <= grid_.height(); ++y2) {
          sets.push_back(grid_.rectangle(x1, y1, x2, y2));
        }
      }
    }
  }
  return sets;
}

std::optional<FiniteSet> RectangleSigma::interval(std::size_t w1,
                                                  std::size_t w2) const {
  const std::size_t x1 = std::min(grid_.x_of(w1), grid_.x_of(w2));
  const std::size_t x2 = std::max(grid_.x_of(w1), grid_.x_of(w2));
  const std::size_t y1 = std::min(grid_.y_of(w1), grid_.y_of(w2));
  const std::size_t y2 = std::max(grid_.y_of(w1), grid_.y_of(w2));
  return grid_.rectangle(x1, y1, x2, y2);
}

}  // namespace epi
