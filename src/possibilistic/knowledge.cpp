#include "possibilistic/knowledge.h"

#include <algorithm>
#include <stdexcept>

namespace epi {

KnowledgeWorld::KnowledgeWorld(std::size_t w, FiniteSet s)
    : world(w), knowledge(std::move(s)) {
  if (!knowledge.contains(world)) {
    throw std::invalid_argument(
        "KnowledgeWorld: inconsistent pair (world not in knowledge set)");
  }
}

SecondLevelKnowledge SecondLevelKnowledge::product(
    const FiniteSet& c, const std::vector<FiniteSet>& sigma) {
  SecondLevelKnowledge k(c.universe_size());
  for (const FiniteSet& s : sigma) {
    if (s.universe_size() != c.universe_size()) {
      throw std::invalid_argument("product: mismatched universes");
    }
    c.visit([&](std::size_t w) {
      if (s.contains(w)) k.add(w, s);
    });
  }
  return k;
}

SecondLevelKnowledge SecondLevelKnowledge::full(std::size_t m) {
  if (m > 16) throw std::invalid_argument("full Omega_poss limited to m <= 16");
  SecondLevelKnowledge k(m);
  const std::size_t subsets = std::size_t{1} << m;
  for (std::size_t mask = 1; mask < subsets; ++mask) {
    FiniteSet s(m);
    for (std::size_t e = 0; e < m; ++e) {
      if ((mask >> e) & 1) s.insert(e);
    }
    for (std::size_t e = 0; e < m; ++e) {
      if (s.contains(e)) k.add(e, s);
    }
  }
  return k;
}

void SecondLevelKnowledge::add(std::size_t world, FiniteSet knowledge) {
  if (knowledge.universe_size() != m_) {
    throw std::invalid_argument("add: knowledge set over wrong universe");
  }
  pairs_.emplace_back(world, std::move(knowledge));
}

bool SecondLevelKnowledge::contains(std::size_t world,
                                    const FiniteSet& knowledge) const {
  return std::any_of(pairs_.begin(), pairs_.end(), [&](const KnowledgeWorld& kw) {
    return kw.world == world && kw.knowledge == knowledge;
  });
}

FiniteSet SecondLevelKnowledge::world_projection() const {
  FiniteSet p(m_);
  for (const auto& kw : pairs_) p.insert(kw.world);
  return p;
}

bool SecondLevelKnowledge::is_intersection_closed() const {
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    for (std::size_t j = i + 1; j < pairs_.size(); ++j) {
      if (pairs_[i].world != pairs_[j].world) continue;
      const FiniteSet inter = pairs_[i].knowledge & pairs_[j].knowledge;
      if (!contains(pairs_[i].world, inter)) return false;
    }
  }
  return true;
}

SecondLevelKnowledge SecondLevelKnowledge::intersection_closure() const {
  SecondLevelKnowledge k(m_);
  k.pairs_ = pairs_;
  bool changed = true;
  while (changed) {
    changed = false;
    const std::size_t count = k.pairs_.size();
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t j = i + 1; j < count; ++j) {
        if (k.pairs_[i].world != k.pairs_[j].world) continue;
        FiniteSet inter = k.pairs_[i].knowledge & k.pairs_[j].knowledge;
        if (!k.contains(k.pairs_[i].world, inter)) {
          k.add(k.pairs_[i].world, std::move(inter));
          changed = true;
        }
      }
    }
  }
  return k;
}

bool SecondLevelKnowledge::is_preserving(const FiniteSet& b) const {
  for (const auto& kw : pairs_) {
    if (!b.contains(kw.world)) continue;
    const FiniteSet updated = kw.knowledge & b;
    if (!contains(kw.world, updated)) return false;
  }
  return true;
}

}  // namespace epi
