// Laminar (hierarchy) knowledge families: the admissible knowledge sets form
// a tree of nested groups — e.g. "the user knows which ward / department /
// hospital the record is in, at some granularity". Any two members of a
// laminar family are nested or disjoint, so the family is intersection-
// closed and the whole Section 4.1 interval machinery applies; the interval
// I(w1, w2) is the lowest common group. The candidate intervals from a world
// are its totally-ordered ancestors, so for every (A, w1) there is exactly
// ONE minimal interval — the nearest ancestor meeting the complement of A —
// and Delta_K collapses to a single class (the intervals are not tight in
// Def 4.13's sense, so no beta function; tests exercise this contrast with
// the rectangle family).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "possibilistic/sigma_family.h"

namespace epi {

/// A laminar family over {0,...,m-1}, built as a rooted tree whose root is
/// the full universe and whose children partition (a subset of) each node.
class LaminarSigma : public SigmaFamily {
 public:
  /// Node handle.
  using NodeId = std::size_t;
  static constexpr NodeId kRoot = 0;

  /// Creates the hierarchy with the root covering the whole universe.
  explicit LaminarSigma(std::size_t universe_size);

  /// Adds a child group under `parent`; `members` must be a non-empty subset
  /// of the parent's set, disjoint from the parent's existing children.
  NodeId add_group(NodeId parent, const FiniteSet& members,
                   std::string label = "");

  /// A balanced binary hierarchy over the universe (for tests/benches):
  /// splits every group in half down to `leaf_size`.
  static LaminarSigma balanced(std::size_t universe_size, std::size_t leaf_size);

  std::size_t node_count() const { return nodes_.size(); }
  const FiniteSet& group(NodeId id) const { return nodes_[id].members; }
  const std::string& label(NodeId id) const { return nodes_[id].label; }

  /// The deepest group containing both worlds (always exists: the root).
  NodeId lowest_common_group(std::size_t w1, std::size_t w2) const;

  // SigmaFamily interface.
  std::size_t universe_size() const override { return m_; }
  bool contains(const FiniteSet& s) const override;
  std::vector<FiniteSet> enumerate() const override;
  bool is_intersection_closed() const override { return true; }
  /// The smallest group containing both worlds.
  std::optional<FiniteSet> interval(std::size_t w1, std::size_t w2) const override;

 private:
  struct Node {
    FiniteSet members;
    std::string label;
    NodeId parent;
    std::vector<NodeId> children;

    Node(FiniteSet m, std::string l, NodeId p)
        : members(std::move(m)), label(std::move(l)), parent(p) {}
  };

  std::size_t m_;
  std::vector<Node> nodes_;
};

}  // namespace epi
