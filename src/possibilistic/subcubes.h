// The subcube knowledge family over Omega = {0,1}^n: the user's possible
// prior knowledge sets are exactly the subcubes Box(w), w in {0,1,*}^n —
// i.e. "the user knows the exact presence/absence of some subset of records
// and nothing else". This is the natural possibilistic analogue of the
// record-wise independence assumption, and it ties Sections 4 and 5
// together: the family is intersection-closed, its K-interval is
//     I(w1, w2) = Box(Match(w1, w2))            (Definition 5.8's objects!),
// and the intervals are tight, so the beta margin of Corollary 4.14 exists.
#pragma once

#include "possibilistic/sigma_family.h"
#include "worlds/match_vector.h"

namespace epi {

/// Enumeration bound for SubcubeSigma: box() materializes a 2^n-element
/// FiniteSet per cube and enumerate() walks all 3^n match vectors, so
/// 3^13 ≈ 1.6M sets of 2^13 bits each (~1.6 GB transient) is already the
/// practical ceiling — and 3^n overflows nothing below n = 40 but thrashes
/// long before. The constructor throws std::invalid_argument past this
/// bound instead of letting the sweep run away. (This is an *enumeration*
/// bound only: symbolic SubcubeCover sets handle cubes up to
/// kMaxSymbolicCoordinates = 32 without ever enumerating.)
inline constexpr unsigned kMaxSubcubeEnumerationCoordinates = 13;

/// All subcubes of {0,1}^n as a SigmaFamily over the 2^n-element universe
/// (FiniteSet encoding: element id = world id).
class SubcubeSigma : public SigmaFamily {
 public:
  /// Throws std::invalid_argument unless
  /// 1 <= n <= kMaxSubcubeEnumerationCoordinates (see above).
  explicit SubcubeSigma(unsigned n);

  unsigned n() const { return n_; }

  /// The subcube Box(w) as a FiniteSet.
  FiniteSet box(const MatchVector& w) const;

  std::size_t universe_size() const override { return std::size_t{1} << n_; }
  /// True iff s is a non-empty subcube.
  bool contains(const FiniteSet& s) const override;
  /// All 3^n subcubes.
  std::vector<FiniteSet> enumerate() const override;
  bool is_intersection_closed() const override { return true; }
  /// Box(Match(w1, w2)) — always exists.
  std::optional<FiniteSet> interval(std::size_t w1, std::size_t w2) const override;

 private:
  unsigned n_;
};

}  // namespace epi
