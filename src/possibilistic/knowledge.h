// Possibilistic knowledge worlds and second-level knowledge sets
// (Definitions 2.1 and 2.5 of the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "worlds/finite_set.h"

namespace epi {

/// A possibilistic knowledge world (omega, S): the world omega paired with the
/// agent's knowledge set S. Consistency (Remark 2.3) requires omega in S.
struct KnowledgeWorld {
  std::size_t world;
  FiniteSet knowledge;

  KnowledgeWorld(std::size_t w, FiniteSet s);

  bool operator==(const KnowledgeWorld& o) const {
    return world == o.world && knowledge == o.knowledge;
  }
};

/// The auditor's second-level knowledge set K, a finite set of consistent
/// knowledge worlds over a common universe Omega = {0, ..., m-1}.
class SecondLevelKnowledge {
 public:
  /// Empty K over a universe of size m (add pairs before use; Def. 2.5 notes
  /// the empty set is not a valid second-level knowledge set).
  explicit SecondLevelKnowledge(std::size_t m) : m_(m) {}

  /// The product C (x) Sigma of Definition 2.5: all consistent pairs
  /// (omega, S) with omega in C, S in Sigma and omega in S.
  static SecondLevelKnowledge product(const FiniteSet& c,
                                      const std::vector<FiniteSet>& sigma);

  /// All of Omega_poss = { (omega, S) : omega in S subseteq Omega }.
  /// Exponential in m; guarded to m <= 16.
  static SecondLevelKnowledge full(std::size_t m);

  /// Adds one pair; throws std::invalid_argument if inconsistent
  /// (world not in knowledge) or over the wrong universe.
  void add(std::size_t world, FiniteSet knowledge);

  std::size_t universe_size() const { return m_; }
  const std::vector<KnowledgeWorld>& pairs() const { return pairs_; }
  bool empty() const { return pairs_.empty(); }
  std::size_t size() const { return pairs_.size(); }

  bool contains(std::size_t world, const FiniteSet& knowledge) const;

  /// Projection pi_1(K): the worlds appearing in some pair.
  FiniteSet world_projection() const;

  /// Definition 4.3: K is intersection-closed when (omega,S1), (omega,S2) in K
  /// imply (omega, S1 ∩ S2) in K.
  bool is_intersection_closed() const;

  /// Smallest intersection-closed superset of K (closes each world's family
  /// of knowledge sets under pairwise intersection).
  SecondLevelKnowledge intersection_closure() const;

  /// Definition 3.9: B is K-preserving when for every (omega,S) in K with
  /// omega in B, the updated pair (omega, S ∩ B) is also in K.
  bool is_preserving(const FiniteSet& b) const;

 private:
  std::size_t m_;
  std::vector<KnowledgeWorld> pairs_;
};

}  // namespace epi
