// The shared word-level bitset kernel. Every dense set representation in the
// repo — WorldSet over {0,1}^n and FiniteSet over {0,...,m-1} — is a thin
// typed wrapper over these functions, so the Boolean algebra, the
// popcount/early-exit scans, the splitmix64 hashing and the fused
// set-predicates exist exactly once.
//
// Conventions:
//  * A set over a universe of `m` elements occupies words_for(m) 64-bit
//    words; element e lives at bit (e % 64) of word (e / 64).
//  * Bits at positions >= m (the tail of the last word) are always zero.
//    Operations that could set them (complement, fill) mask the last word
//    with tail_mask(m); everything else preserves the invariant.
//  * Binary operations require both operands to have the same word count;
//    the typed wrappers enforce universe compatibility before calling in.
//
// The fused predicates (intersection_subset_of, intersection_count,
// masked_weight_sum, ...) answer questions about derived sets — S∩B, A∪B —
// in a single word scan without materializing the intermediate set. They are
// the hot path of every privacy criterion: Def. 3.1 possibilistic safety is
// `(S∩B ⊆ A) ⇒ (S ⊆ A)`, Prop. 3.6/3.8 probabilistic safety compares
// P[A∩B] against P[A]·P[B], and Thm. 3.11 tests A∩B = ∅ or A∪B = Omega.
//
// ISA dispatch: the fused predicates and popcount scans additionally have
// runtime-dispatched AVX2 and AVX-512 implementations (dense_bits_isa.cpp)
// behind the `Isa` function-pointer table below, selected once per process
// from CPUID (overridable with the EPI_FORCE_ISA environment variable).
// Every tier is bit-identical to the scalar reference in `bits::scalar`:
// the Boolean/popcount kernels are integer-exact by construction, and the
// weight sums keep the ascending-order scalar accumulation (SIMD only skips
// all-zero word blocks), so doubles come out bit-for-bit equal. Sets smaller
// than kIsaDispatchWords skip the indirect call and run the scalar loop
// inline — vectors cannot help below one SIMD register of words anyway.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace epi {
namespace bits {

using Word = std::uint64_t;

inline constexpr std::size_t kWordBits = 64;
/// Returned by find_first on an empty set.
inline constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

/// Number of 64-bit words backing a universe of m elements.
constexpr std::size_t words_for(std::size_t m) {
  return (m + kWordBits - 1) / kWordBits;
}

/// Mask of the valid bits in the last word of an m-element universe
/// (all-ones when m is a multiple of 64).
constexpr Word tail_mask(std::size_t m) {
  const std::size_t tail = m % kWordBits;
  return tail == 0 ? ~Word{0} : (Word{1} << tail) - 1;
}

/// splitmix64 finalizer: a full-avalanche 64-bit mix (every input bit flips
/// each output bit with probability ~1/2). Exposed so layered caches (pair
/// memos, verdict-cache shards) combine already-hashed components through
/// the same primitive instead of hand-rolled shift-xor recipes.
Word mix64(Word x);

/// 64-bit avalanche hash over the words: each word is passed through mix64
/// (salted by its position) before an FNV-style combine, and the accumulator
/// is finalized once more, so single-bit differences spread over the whole
/// output. `seed` distinguishes universes (and set types) sharing a word
/// pattern. Stable within a process run.
std::size_t hash(const Word* w, std::size_t nw, Word seed);

/// Combines two already-avalanched hashes (order-sensitive).
inline Word hash_combine(Word h, Word x) { return mix64(h ^ (x + 0x9e3779b97f4a7c15ull)); }

// --- Scans (early-exit where possible) -------------------------------------

inline bool is_empty(const Word* w, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) {
    if (w[i] != 0) return false;
  }
  return true;
}

inline bool is_universe(const Word* w, std::size_t nw, std::size_t m) {
  if (nw == 0) return true;
  for (std::size_t i = 0; i + 1 < nw; ++i) {
    if (w[i] != ~Word{0}) return false;
  }
  return w[nw - 1] == tail_mask(m);
}

inline bool equal(const Word* x, const Word* y, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) {
    if (x[i] != y[i]) return false;
  }
  return true;
}

/// Index of the smallest member, or npos when empty.
inline std::size_t find_first(const Word* w, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) {
    if (w[i] != 0) {
      return i * kWordBits + static_cast<std::size_t>(std::countr_zero(w[i]));
    }
  }
  return npos;
}

// --- Single-element access --------------------------------------------------

inline bool test(const Word* w, std::size_t e) {
  return (w[e / kWordBits] >> (e % kWordBits)) & 1u;
}

inline void set(Word* w, std::size_t e) { w[e / kWordBits] |= Word{1} << (e % kWordBits); }

inline void reset(Word* w, std::size_t e) { w[e / kWordBits] &= ~(Word{1} << (e % kWordBits)); }

// --- Bulk mutation ----------------------------------------------------------

inline void clear_all(Word* w, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) w[i] = 0;
}

/// Sets every valid bit of an m-element universe (tail bits stay zero).
inline void fill_universe(Word* w, std::size_t nw, std::size_t m) {
  if (nw == 0) return;
  for (std::size_t i = 0; i + 1 < nw; ++i) w[i] = ~Word{0};
  w[nw - 1] = tail_mask(m);
}

inline void and_assign(Word* x, const Word* y, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) x[i] &= y[i];
}

inline void or_assign(Word* x, const Word* y, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) x[i] |= y[i];
}

inline void and_not_assign(Word* x, const Word* y, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) x[i] &= ~y[i];
}

inline void xor_assign(Word* x, const Word* y, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) x[i] ^= y[i];
}

/// out = complement of x within the m-element universe.
inline void complement(Word* out, const Word* x, std::size_t nw, std::size_t m) {
  if (nw == 0) return;
  for (std::size_t i = 0; i + 1 < nw; ++i) out[i] = ~x[i];
  out[nw - 1] = ~x[nw - 1] & tail_mask(m);
}

// --- Visitors ---------------------------------------------------------------
//
// The templated replacements for the old std::function-based for_each: the
// callback inlines into the word scan, so visiting a member costs a
// countr_zero and a blsr-style clear, not a type-erased indirect call.
// Members are visited in increasing index order (the order every report
// and floating-point accumulation in the repo is defined against).

template <typename Fn>
inline void for_each_bit(const Word* w, std::size_t nw, Fn&& fn) {
  for (std::size_t i = 0; i < nw; ++i) {
    Word word = w[i];
    while (word != 0) {
      fn(i * kWordBits + static_cast<std::size_t>(std::countr_zero(word)));
      word &= word - 1;
    }
  }
}

/// Visits the members of x ∩ y without materializing it.
template <typename Fn>
inline void for_each_bit_and(const Word* x, const Word* y, std::size_t nw,
                             Fn&& fn) {
  for (std::size_t i = 0; i < nw; ++i) {
    Word word = x[i] & y[i];
    while (word != 0) {
      fn(i * kWordBits + static_cast<std::size_t>(std::countr_zero(word)));
      word &= word - 1;
    }
  }
}

// --- Scalar reference kernels -----------------------------------------------
//
// The portable implementations of every ISA-dispatched kernel. These are the
// semantic reference: the AVX2/AVX-512 tiers must return bit-identical
// results (the `fused-kernels` model check and tests/simd_dispatch_test.cpp
// sweep that contract). They stay inline so small-set call sites — and
// non-x86 builds, where they are the only tier — pay no indirection.

namespace scalar {

inline std::size_t count(const Word* w, std::size_t nw) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < nw; ++i) c += static_cast<std::size_t>(std::popcount(w[i]));
  return c;
}

inline bool subset_of(const Word* x, const Word* y, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) {
    if (x[i] & ~y[i]) return false;
  }
  return true;
}

inline bool disjoint(const Word* x, const Word* y, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) {
    if (x[i] & y[i]) return false;
  }
  return true;
}

/// (s ∩ b) ⊆ a — Def. 3.1's "the disclosure pins the agent inside A" test
/// without building S∩B. Scanned in 4-word blocks with one OR-accumulated
/// violation mask per block: the compiler vectorizes the block body (a
/// per-word early-exit branch would block that) while a violating block
/// still exits after at most 3 extra words.
inline bool intersection_subset_of(const Word* s, const Word* b, const Word* a,
                                   std::size_t nw) {
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const Word bad = (s[i] & b[i] & ~a[i]) | (s[i + 1] & b[i + 1] & ~a[i + 1]) |
                     (s[i + 2] & b[i + 2] & ~a[i + 2]) |
                     (s[i + 3] & b[i + 3] & ~a[i + 3]);
    if (bad != 0) return false;
  }
  for (; i < nw; ++i) {
    if (s[i] & b[i] & ~a[i]) return false;
  }
  return true;
}

/// |x ∩ y|.
inline std::size_t intersection_count(const Word* x, const Word* y, std::size_t nw) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < nw; ++i) {
    c += static_cast<std::size_t>(std::popcount(x[i] & y[i]));
  }
  return c;
}

/// x ∩ y ∩ z = ∅.
inline bool intersection3_empty(const Word* x, const Word* y, const Word* z,
                                std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) {
    if (x[i] & y[i] & z[i]) return false;
  }
  return true;
}

/// x ∪ y = the m-element universe — the second disjunct of Thm. 3.11.
inline bool union_is_universe(const Word* x, const Word* y, std::size_t nw,
                              std::size_t m) {
  if (nw == 0) return true;
  for (std::size_t i = 0; i + 1 < nw; ++i) {
    if ((x[i] | y[i]) != ~Word{0}) return false;
  }
  return (x[nw - 1] | y[nw - 1]) == tail_mask(m);
}

/// Sum of weights[e] over the members of the set — Distribution::prob's
/// P[A] accumulation as one word scan (ascending order, so floating-point
/// sums are bit-identical to a per-member loop).
inline double masked_weight_sum(const Word* w, std::size_t nw,
                                const double* weights) {
  double sum = 0.0;
  for_each_bit(w, nw, [&](std::size_t e) { sum += weights[e]; });
  return sum;
}

/// Sum of weights[e] over x ∩ y — P[A∩B] without materializing A∩B.
inline double intersection_weight_sum(const Word* x, const Word* y,
                                      std::size_t nw, const double* weights) {
  double sum = 0.0;
  for_each_bit_and(x, y, nw, [&](std::size_t e) { sum += weights[e]; });
  return sum;
}

}  // namespace scalar

// --- ISA dispatch table -----------------------------------------------------

/// The instruction-set tiers a kernel implementation can target. Higher
/// tiers subsume lower ones; kScalar is always available.
enum class IsaTier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// "scalar" / "avx2" / "avx512".
const char* to_string(IsaTier tier);

/// One tier's implementations of the dispatched kernels. All entries are
/// non-null and bit-identical to the `scalar` reference.
struct Isa {
  const char* name;
  IsaTier tier;
  std::size_t (*count)(const Word*, std::size_t);
  bool (*subset_of)(const Word*, const Word*, std::size_t);
  bool (*disjoint)(const Word*, const Word*, std::size_t);
  bool (*intersection_subset_of)(const Word*, const Word*, const Word*,
                                 std::size_t);
  std::size_t (*intersection_count)(const Word*, const Word*, std::size_t);
  bool (*intersection3_empty)(const Word*, const Word*, const Word*,
                              std::size_t);
  bool (*union_is_universe)(const Word*, const Word*, std::size_t, std::size_t);
  double (*masked_weight_sum)(const Word*, std::size_t, const double*);
  double (*intersection_weight_sum)(const Word*, const Word*, std::size_t,
                                    const double*);
};

/// The table for `tier`, or nullptr when this build/host cannot run it
/// (e.g. kAvx2 on non-x86, kAvx512 on an AVX2-only CPU). kScalar is never
/// null. Parity tests iterate tiers through this accessor so every SIMD
/// path on the host is diffed against the scalar reference.
const Isa* isa_for(IsaTier tier);

/// Installs `tier` as the active table. Returns false (and leaves the
/// active table unchanged) when the tier is not available on this host.
/// Test hook — production code selects once at startup via active_isa().
bool force_isa(IsaTier tier);

/// Drops the active selection so the next active_isa() re-resolves from
/// CPUID and EPI_FORCE_ISA (test hook, pairs with setenv).
void reset_isa();

namespace detail {
/// Zero before first use (constant-initialized, so no static-init-order
/// hazard); set by resolve_active_isa() / force_isa().
extern std::atomic<const Isa*> g_active_isa;
/// Resolves from CPUID, capped by EPI_FORCE_ISA when set ("scalar", "avx2",
/// "avx512": the selection never exceeds the named tier, so forcing is
/// meaningful on any host). Stores and returns the table.
const Isa* resolve_active_isa();
}  // namespace detail

/// The process-wide active tier: best CPUID-supported tier, capped by
/// EPI_FORCE_ISA. Resolved once on first use.
inline const Isa& active_isa() {
  const Isa* isa = detail::g_active_isa.load(std::memory_order_acquire);
  return isa != nullptr ? *isa : *detail::resolve_active_isa();
}

/// Sets at or above this many words take the dispatched (possibly SIMD)
/// path; smaller ones inline the scalar loop — below one AVX2 register of
/// words, vectorization cannot win and the indirect call would only add
/// latency to the FiniteSet-heavy interval machinery.
inline constexpr std::size_t kIsaDispatchWords = 4;

// --- Dispatched kernels -----------------------------------------------------
// Public entry points keep their historical names and contracts; they route
// to the active tier for multi-register sets and to the scalar reference
// below the dispatch threshold. Results are identical either way.

inline std::size_t count(const Word* w, std::size_t nw) {
  if (nw < kIsaDispatchWords) return scalar::count(w, nw);
  return active_isa().count(w, nw);
}

inline bool subset_of(const Word* x, const Word* y, std::size_t nw) {
  if (nw < kIsaDispatchWords) return scalar::subset_of(x, y, nw);
  return active_isa().subset_of(x, y, nw);
}

inline bool disjoint(const Word* x, const Word* y, std::size_t nw) {
  if (nw < kIsaDispatchWords) return scalar::disjoint(x, y, nw);
  return active_isa().disjoint(x, y, nw);
}

inline bool intersection_subset_of(const Word* s, const Word* b, const Word* a,
                                   std::size_t nw) {
  if (nw < kIsaDispatchWords) return scalar::intersection_subset_of(s, b, a, nw);
  return active_isa().intersection_subset_of(s, b, a, nw);
}

inline std::size_t intersection_count(const Word* x, const Word* y,
                                      std::size_t nw) {
  if (nw < kIsaDispatchWords) return scalar::intersection_count(x, y, nw);
  return active_isa().intersection_count(x, y, nw);
}

inline bool intersection3_empty(const Word* x, const Word* y, const Word* z,
                                std::size_t nw) {
  if (nw < kIsaDispatchWords) return scalar::intersection3_empty(x, y, z, nw);
  return active_isa().intersection3_empty(x, y, z, nw);
}

inline bool union_is_universe(const Word* x, const Word* y, std::size_t nw,
                              std::size_t m) {
  if (nw < kIsaDispatchWords) return scalar::union_is_universe(x, y, nw, m);
  return active_isa().union_is_universe(x, y, nw, m);
}

inline double masked_weight_sum(const Word* w, std::size_t nw,
                                const double* weights) {
  if (nw < kIsaDispatchWords) return scalar::masked_weight_sum(w, nw, weights);
  return active_isa().masked_weight_sum(w, nw, weights);
}

inline double intersection_weight_sum(const Word* x, const Word* y,
                                      std::size_t nw, const double* weights) {
  if (nw < kIsaDispatchWords) {
    return scalar::intersection_weight_sum(x, y, nw, weights);
  }
  return active_isa().intersection_weight_sum(x, y, nw, weights);
}

}  // namespace bits
}  // namespace epi
