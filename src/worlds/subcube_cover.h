// Symbolic world sets: a set S ⊆ Omega = {0,1}^n stored as a union of
// subcubes of the hypercube — each cube a MatchVector in {0,1,*}^n (the
// paper's Box(w), Definition 5.8). Space is O(#cubes · 1) instead of O(2^n),
// which is what lets the auditor run at n > kMaxCoordinates (up to
// kMaxSymbolicCoordinates = 32, the MatchVector packing limit).
//
// Representation invariants (established by canonicalize()):
//   * cubes are sorted by MatchVector::key() and duplicate-free;
//   * no cube is contained in another (absorption), as long as the cover is
//     small enough for the O(k^2) scan (kAbsorptionLimit) — beyond that the
//     cover stays sorted/deduplicated but may carry redundant cubes.
// Cubes of one cover may overlap; exact counting and weight sums first
// refine the cover into disjoint cubes (disjoint_cubes()).
//
// Two covers denoting the same set can still differ syntactically, so
// equality, subset and disjointness are *semantic* (cube-by-cube containment
// via the orthogonal-sharp subtraction), and semantic_hash() hashes a
// representation-independent signature (exact model count + membership on a
// fixed pseudo-random probe panel). Hash collisions are therefore possible
// but harmless: every cache keyed by the hash (AuditContext memo,
// VerdictCache) verifies equality on hit.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "worlds/match_vector.h"
#include "worlds/world.h"

namespace epi {

/// A canonicalized union of subcubes of {0,1}^n. All binary operations
/// require equal n and throw std::invalid_argument otherwise.
class SubcubeCover {
 public:
  /// Safety valve: operations whose intermediate cover would exceed this many
  /// cubes throw std::length_error instead of looping toward 2^(n-1) cubes.
  static constexpr std::size_t kMaxCubes = std::size_t{1} << 20;
  /// Absorption (drop cubes contained in another) is O(k^2); applied only to
  /// covers at most this large.
  static constexpr std::size_t kAbsorptionLimit = 1024;

  /// The empty subset of {0,1}^n. Throws unless 1 <= n <= 32.
  explicit SubcubeCover(unsigned n);

  SubcubeCover(const SubcubeCover& o);
  SubcubeCover(SubcubeCover&& o) noexcept;
  SubcubeCover& operator=(const SubcubeCover& o);
  SubcubeCover& operator=(SubcubeCover&& o) noexcept;
  ~SubcubeCover() = default;

  static SubcubeCover empty(unsigned n);
  static SubcubeCover universe(unsigned n);
  static SubcubeCover singleton(unsigned n, World w);
  /// The single cube Box(c). Star/value bits above coordinate n must be 0.
  static SubcubeCover cube(unsigned n, MatchVector c);
  /// Union of the given cubes (canonicalized).
  static SubcubeCover from_cubes(unsigned n, std::vector<MatchVector> cubes);
  /// Lossless conversion from a dense bitset (words_for(2^n) words, tail bits
  /// zero): the canonical Shannon cover, extracted by recursively halving on
  /// the top coordinate and starring coordinates on which the two halves
  /// agree. Deterministic function of the *set*, not of any prior cover.
  static SubcubeCover from_dense(const std::uint64_t* words,
                                 std::size_t word_count, unsigned n);

  unsigned n() const { return n_; }
  /// |Omega| = 2^n (as a 64-bit value: n may be 32).
  std::uint64_t omega_size() const { return std::uint64_t{1} << n_; }

  std::size_t cube_count() const { return cubes_.size(); }
  const std::vector<MatchVector>& cubes() const { return cubes_; }

  bool contains(World w) const;
  /// Canonical covers denote the empty set iff they hold no cube.
  bool is_empty() const { return cubes_.empty(); }
  bool is_universe() const;
  /// Exact model count |S|, via disjoint refinement (cached).
  std::uint64_t count() const;
  /// Smallest world in the set; throws std::logic_error when empty.
  World min_world() const;

  void insert(World w);
  void erase(World w);

  SubcubeCover intersect(const SubcubeCover& o) const;
  SubcubeCover unite(const SubcubeCover& o) const;
  /// Set difference *this \ o (the orthogonal-sharp of each cube).
  SubcubeCover subtract(const SubcubeCover& o) const;
  SubcubeCover exclusive_or(const SubcubeCover& o) const;
  SubcubeCover complement() const;
  /// Image under XOR with `mask` (the paper's z ^ A transform): per cube,
  /// flips the fixed values on the masked coordinates.
  SubcubeCover xor_with(World mask) const;

  /// Semantic subset test: every cube of *this is covered by o.
  bool subset_of(const SubcubeCover& o) const;
  bool disjoint_with(const SubcubeCover& o) const;
  /// Semantic equality (mutual subset) — two syntactically different covers
  /// of the same set compare equal.
  bool equals(const SubcubeCover& o) const;

  /// Representation-independent 64-bit hash (cached): combines n, the exact
  /// model count and membership of 64 fixed pseudo-random probe worlds.
  /// Equal sets hash equal across syntactic forms; collisions possible.
  std::uint64_t semantic_hash() const;

  /// Refines the cover into pairwise-disjoint cubes with the same union
  /// (cube i minus all cubes before it). Basis for count() and weight sums.
  std::vector<MatchVector> disjoint_cubes() const;

  /// Product-prior mass P[S] = sum over worlds w in S of
  /// prod_i (w_i ? probs[i] : 1 - probs[i]), computed per disjoint cube in
  /// closed form (starred coordinates marginalize to 1). `probs` must have n
  /// entries. O(#cubes^2 · n), never 2^n.
  double product_weight(const double* probs) const;

  /// Lossless conversion to a dense bitset: clears `words` (words_for(2^n)
  /// of them) and sets the member bits. Only valid when n <= kMaxCoordinates.
  void write_dense(std::uint64_t* words, std::size_t word_count) const;

  /// E.g. "cover{01*,1*0}" (cube order = canonical key order).
  std::string to_string() const;

 private:
  SubcubeCover(unsigned n, std::vector<MatchVector> cubes);

  /// Restores the representation invariants and drops cached values.
  void canonicalize();
  void invalidate_caches();

  unsigned n_;
  std::vector<MatchVector> cubes_;
  // Lazily computed, atomically published (0 / kNoCount = unset) so that
  // const queries from concurrent audit workers race benignly: both compute
  // the same value and store it. Copies inherit a computed cache.
  static constexpr std::uint64_t kNoCount = ~std::uint64_t{0};
  mutable std::atomic<std::uint64_t> hash_cache_{0};
  mutable std::atomic<std::uint64_t> count_cache_{kNoCount};
};

// --- cube-level primitives (used by the cover algebra and tests) -----------

/// Coordinate mask: the low n bits (n <= 32).
inline World coordinate_mask(unsigned n) {
  return n >= 32 ? ~World{0} : (World{1} << n) - 1u;
}

/// True when Box(c) and Box(d) intersect: they agree on every coordinate
/// fixed in both.
inline bool cubes_intersect(const MatchVector& c, const MatchVector& d) {
  return ((c.values ^ d.values) & ~c.stars & ~d.stars) == 0;
}

/// The cube Box(c) ∩ Box(d); only meaningful when cubes_intersect(c, d).
inline MatchVector cube_meet(const MatchVector& c, const MatchVector& d) {
  MatchVector m;
  m.stars = c.stars & d.stars;
  m.values = (c.values | d.values) & ~m.stars;
  return m;
}

/// True when Box(c) ⊆ Box(d): d stars everything c stars, and they agree on
/// every coordinate fixed in d.
inline bool cube_subset(const MatchVector& c, const MatchVector& d) {
  return (c.stars & ~d.stars) == 0 && ((c.values ^ d.values) & ~d.stars) == 0;
}

/// Appends to `out` pairwise-disjoint cubes whose union is Box(c) \ Box(d)
/// (the "orthogonal sharp": one piece per coordinate starred in c but fixed
/// in d, with the earlier coordinates pinned to d's values and that
/// coordinate flipped). Appends c itself when the cubes are disjoint;
/// appends nothing when Box(c) ⊆ Box(d).
void cube_subtract(const MatchVector& c, const MatchVector& d,
                   std::vector<MatchVector>& out);

}  // namespace epi
