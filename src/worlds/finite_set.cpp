#include "worlds/finite_set.h"

#include <bit>
#include <stdexcept>

#include "worlds/world_set.h"

namespace epi {
namespace {

std::size_t words_for(std::size_t m) { return (m + 63) / 64; }

}  // namespace

FiniteSet::FiniteSet(std::size_t m) : m_(m), bits_(words_for(m), 0) {
  if (m == 0) throw std::invalid_argument("FiniteSet: empty universe");
}

FiniteSet::FiniteSet(std::size_t m, std::initializer_list<std::size_t> elements)
    : FiniteSet(m) {
  for (std::size_t e : elements) insert(e);
}

FiniteSet::FiniteSet(std::size_t m, const std::vector<std::size_t>& elements)
    : FiniteSet(m) {
  for (std::size_t e : elements) insert(e);
}

FiniteSet FiniteSet::universe(std::size_t m) {
  FiniteSet s(m);
  for (auto& word : s.bits_) word = ~std::uint64_t{0};
  const std::size_t tail = m % 64;
  if (tail != 0) s.bits_.back() = (std::uint64_t{1} << tail) - 1;
  return s;
}

FiniteSet FiniteSet::empty(std::size_t m) { return FiniteSet(m); }

FiniteSet FiniteSet::singleton(std::size_t m, std::size_t e) {
  FiniteSet s(m);
  s.insert(e);
  return s;
}

FiniteSet FiniteSet::random(std::size_t m, Rng& rng, double density) {
  FiniteSet s(m);
  for (std::size_t e = 0; e < m; ++e) {
    if (rng.next_bool(density)) s.insert(e);
  }
  return s;
}

bool FiniteSet::contains(std::size_t e) const {
  if (e >= m_) return false;
  return (bits_[e / 64] >> (e % 64)) & 1u;
}

void FiniteSet::insert(std::size_t e) {
  if (e >= m_) throw std::out_of_range("FiniteSet::insert out of range");
  bits_[e / 64] |= std::uint64_t{1} << (e % 64);
}

void FiniteSet::erase(std::size_t e) {
  if (e >= m_) throw std::out_of_range("FiniteSet::erase out of range");
  bits_[e / 64] &= ~(std::uint64_t{1} << (e % 64));
}

bool FiniteSet::is_empty() const {
  for (std::uint64_t word : bits_) {
    if (word != 0) return false;
  }
  return true;
}

bool FiniteSet::is_universe() const {
  const std::size_t tail = m_ % 64;
  const std::size_t full_words = bits_.size() - (tail != 0 ? 1 : 0);
  for (std::size_t i = 0; i < full_words; ++i) {
    if (bits_[i] != ~std::uint64_t{0}) return false;
  }
  return tail == 0 || bits_.back() == (std::uint64_t{1} << tail) - 1;
}

std::size_t FiniteSet::count() const {
  std::size_t c = 0;
  for (std::uint64_t word : bits_) c += static_cast<std::size_t>(std::popcount(word));
  return c;
}

void FiniteSet::check_compatible(const FiniteSet& o) const {
  if (m_ != o.m_) throw std::invalid_argument("FiniteSet: mismatched universes");
}

FiniteSet FiniteSet::operator&(const FiniteSet& o) const {
  FiniteSet r = *this;
  return r &= o;
}
FiniteSet FiniteSet::operator|(const FiniteSet& o) const {
  FiniteSet r = *this;
  return r |= o;
}
FiniteSet FiniteSet::operator-(const FiniteSet& o) const {
  FiniteSet r = *this;
  return r -= o;
}
FiniteSet FiniteSet::operator^(const FiniteSet& o) const {
  FiniteSet r = *this;
  return r ^= o;
}

FiniteSet FiniteSet::operator~() const {
  FiniteSet r(m_);
  const FiniteSet u = universe(m_);
  for (std::size_t i = 0; i < bits_.size(); ++i) r.bits_[i] = u.bits_[i] & ~bits_[i];
  return r;
}

FiniteSet& FiniteSet::operator&=(const FiniteSet& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= o.bits_[i];
  return *this;
}
FiniteSet& FiniteSet::operator|=(const FiniteSet& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= o.bits_[i];
  return *this;
}
FiniteSet& FiniteSet::operator-=(const FiniteSet& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= ~o.bits_[i];
  return *this;
}
FiniteSet& FiniteSet::operator^=(const FiniteSet& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] ^= o.bits_[i];
  return *this;
}

bool FiniteSet::operator==(const FiniteSet& o) const {
  return m_ == o.m_ && bits_ == o.bits_;
}

bool FiniteSet::subset_of(const FiniteSet& o) const {
  check_compatible(o);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] & ~o.bits_[i]) return false;
  }
  return true;
}

bool FiniteSet::disjoint_with(const FiniteSet& o) const {
  check_compatible(o);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] & o.bits_[i]) return false;
  }
  return true;
}

std::size_t FiniteSet::min_element() const {
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] != 0) {
      return i * 64 + static_cast<std::size_t>(std::countr_zero(bits_[i]));
    }
  }
  throw std::logic_error("min_element of empty FiniteSet");
}

std::vector<std::size_t> FiniteSet::to_vector() const {
  std::vector<std::size_t> v;
  v.reserve(count());
  for_each([&v](std::size_t e) { v.push_back(e); });
  return v;
}

void FiniteSet::for_each(const std::function<void(std::size_t)>& fn) const {
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    std::uint64_t word = bits_[i];
    while (word != 0) {
      fn(i * 64 + static_cast<std::size_t>(std::countr_zero(word)));
      word &= word - 1;
    }
  }
}

std::string FiniteSet::to_string() const {
  std::string s = "{";
  bool first = true;
  for_each([&](std::size_t e) {
    if (!first) s += ",";
    first = false;
    s += std::to_string(e);
  });
  return s + "}";
}

FiniteSet to_finite(const WorldSet& ws) {
  FiniteSet fs(ws.omega_size());
  ws.for_each([&fs](World w) { fs.insert(w); });
  return fs;
}

WorldSet to_world_set(const FiniteSet& fs, unsigned n) {
  if (fs.universe_size() != (std::size_t{1} << n)) {
    throw std::invalid_argument("to_world_set: universe size is not 2^n");
  }
  WorldSet ws(n);
  fs.for_each([&ws](std::size_t e) { ws.insert(static_cast<World>(e)); });
  return ws;
}

}  // namespace epi
