#include "worlds/finite_set.h"

#include <algorithm>
#include <stdexcept>

#include "worlds/world_set.h"

namespace epi {

FiniteSet::FiniteSet(std::size_t m) : m_(m), bits_(bits::words_for(m), 0) {
  if (m == 0) throw std::invalid_argument("FiniteSet: empty universe");
}

FiniteSet::FiniteSet(std::size_t m, std::initializer_list<std::size_t> elements)
    : FiniteSet(m) {
  for (std::size_t e : elements) insert(e);
}

FiniteSet::FiniteSet(std::size_t m, const std::vector<std::size_t>& elements)
    : FiniteSet(m) {
  for (std::size_t e : elements) insert(e);
}

FiniteSet FiniteSet::universe(std::size_t m) {
  FiniteSet s(m);
  bits::fill_universe(s.bits_.data(), s.bits_.size(), m);
  return s;
}

FiniteSet FiniteSet::empty(std::size_t m) { return FiniteSet(m); }

FiniteSet FiniteSet::singleton(std::size_t m, std::size_t e) {
  FiniteSet s(m);
  s.insert(e);
  return s;
}

FiniteSet FiniteSet::random(std::size_t m, Rng& rng, double density) {
  FiniteSet s(m);
  for (std::size_t e = 0; e < m; ++e) {
    if (rng.next_bool(density)) s.insert(e);
  }
  return s;
}

FiniteSet FiniteSet::from_words(std::size_t m, const std::uint64_t* words,
                                std::size_t word_count) {
  FiniteSet s(m);
  if (word_count != s.bits_.size()) {
    throw std::invalid_argument("FiniteSet::from_words: wrong word count");
  }
  std::copy(words, words + word_count, s.bits_.begin());
  return s;
}

void FiniteSet::insert(std::size_t e) {
  if (e >= m_) throw std::out_of_range("FiniteSet::insert out of range");
  bits::set(bits_.data(), e);
}

void FiniteSet::erase(std::size_t e) {
  if (e >= m_) throw std::out_of_range("FiniteSet::erase out of range");
  bits::reset(bits_.data(), e);
}

void FiniteSet::check_compatible(const FiniteSet& o) const {
  if (m_ != o.m_) throw std::invalid_argument("FiniteSet: mismatched universes");
}

FiniteSet FiniteSet::operator&(const FiniteSet& o) const {
  FiniteSet r = *this;
  return r &= o;
}
FiniteSet FiniteSet::operator|(const FiniteSet& o) const {
  FiniteSet r = *this;
  return r |= o;
}
FiniteSet FiniteSet::operator-(const FiniteSet& o) const {
  FiniteSet r = *this;
  return r -= o;
}
FiniteSet FiniteSet::operator^(const FiniteSet& o) const {
  FiniteSet r = *this;
  return r ^= o;
}

FiniteSet FiniteSet::operator~() const {
  FiniteSet r(m_);
  bits::complement(r.bits_.data(), bits_.data(), bits_.size(), m_);
  return r;
}

FiniteSet& FiniteSet::operator&=(const FiniteSet& o) {
  check_compatible(o);
  bits::and_assign(bits_.data(), o.bits_.data(), bits_.size());
  return *this;
}
FiniteSet& FiniteSet::operator|=(const FiniteSet& o) {
  check_compatible(o);
  bits::or_assign(bits_.data(), o.bits_.data(), bits_.size());
  return *this;
}
FiniteSet& FiniteSet::operator-=(const FiniteSet& o) {
  check_compatible(o);
  bits::and_not_assign(bits_.data(), o.bits_.data(), bits_.size());
  return *this;
}
FiniteSet& FiniteSet::operator^=(const FiniteSet& o) {
  check_compatible(o);
  bits::xor_assign(bits_.data(), o.bits_.data(), bits_.size());
  return *this;
}

bool FiniteSet::subset_of(const FiniteSet& o) const {
  check_compatible(o);
  return bits::subset_of(bits_.data(), o.bits_.data(), bits_.size());
}

bool FiniteSet::disjoint_with(const FiniteSet& o) const {
  check_compatible(o);
  return bits::disjoint(bits_.data(), o.bits_.data(), bits_.size());
}

std::size_t FiniteSet::min_element() const {
  const std::size_t first = bits::find_first(bits_.data(), bits_.size());
  if (first == bits::npos) throw std::logic_error("min_element of empty FiniteSet");
  return first;
}

std::vector<std::size_t> FiniteSet::to_vector() const {
  std::vector<std::size_t> v;
  v.reserve(count());
  visit([&v](std::size_t e) { v.push_back(e); });
  return v;
}

std::string FiniteSet::to_string() const {
  std::string s = "{";
  bool first = true;
  visit([&](std::size_t e) {
    if (!first) s += ",";
    first = false;
    s += std::to_string(e);
  });
  return s + "}";
}

bool intersection_subset_of(const FiniteSet& s, const FiniteSet& b,
                            const FiniteSet& a) {
  if (s.universe_size() != b.universe_size() ||
      s.universe_size() != a.universe_size()) {
    throw std::invalid_argument("intersection_subset_of: mismatched universes");
  }
  return bits::intersection_subset_of(s.word_data(), b.word_data(), a.word_data(),
                                      s.word_count());
}

std::size_t intersection_count(const FiniteSet& x, const FiniteSet& y) {
  if (x.universe_size() != y.universe_size()) {
    throw std::invalid_argument("intersection_count: mismatched universes");
  }
  return bits::intersection_count(x.word_data(), y.word_data(), x.word_count());
}

bool intersection_disjoint(const FiniteSet& x, const FiniteSet& y,
                           const FiniteSet& z) {
  if (x.universe_size() != y.universe_size() ||
      x.universe_size() != z.universe_size()) {
    throw std::invalid_argument("intersection_disjoint: mismatched universes");
  }
  return bits::intersection3_empty(x.word_data(), y.word_data(), z.word_data(),
                                   x.word_count());
}

bool union_is_universe(const FiniteSet& x, const FiniteSet& y) {
  if (x.universe_size() != y.universe_size()) {
    throw std::invalid_argument("union_is_universe: mismatched universes");
  }
  return bits::union_is_universe(x.word_data(), y.word_data(), x.word_count(),
                                 x.universe_size());
}

FiniteSet to_finite(const WorldSet& ws) {
  // FiniteSet is inherently dense (2^n elements), so a symbolic WorldSet is
  // densified first — which throws past the dense cap, as it must. A dense
  // WorldSet shares FiniteSet's exact word layout (words_for(2^n) words,
  // tail zero), so the conversion is a word copy, not a per-world rebuild —
  // it sits on the per-step path of incremental session evaluation.
  if (ws.symbolic()) return to_finite(ws.densified());
  return FiniteSet::from_words(ws.omega_size(), ws.word_data(),
                               ws.word_count());
}

WorldSet to_world_set(const FiniteSet& fs, unsigned n) {
  if (fs.universe_size() != (std::size_t{1} << n)) {
    throw std::invalid_argument("to_world_set: universe size is not 2^n");
  }
  WorldSet ws(n);
  fs.visit([&ws](std::size_t e) { ws.insert(static_cast<World>(e)); });
  return ws;
}

}  // namespace epi
