#include "worlds/match_vector.h"

#include <stdexcept>

namespace epi {

std::string MatchVector::to_string(unsigned n) const {
  std::string s(n, '0');
  for (unsigned i = 0; i < n; ++i) {
    if (world_bit(stars, i)) {
      s[i] = '*';
    } else if (world_bit(values, i)) {
      s[i] = '1';
    }
  }
  return s;
}

MatchVector MatchVector::from_string(const std::string& s) {
  if (s.size() > kMaxSymbolicCoordinates) {
    throw std::invalid_argument("match vector too long");
  }
  MatchVector w;
  for (std::size_t i = 0; i < s.size(); ++i) {
    switch (s[i]) {
      case '0':
        break;
      case '1':
        w.values |= World{1} << i;
        break;
      case '*':
        w.stars |= World{1} << i;
        break;
      default:
        throw std::invalid_argument("match vector must be over {0,1,*}");
    }
  }
  return w;
}

MatchVector match(World u, World v) {
  MatchVector w;
  w.stars = u ^ v;
  w.values = u & ~w.stars;
  return w;
}

bool refines(World v, const MatchVector& w) {
  return (v & ~w.stars) == w.values;
}

TernaryTable::TernaryTable(unsigned n) : n_(n) {
  // 3^14 int64 entries is ~38 MB; n = 15 would already be ~460 MB per
  // table (the box criterion builds four).
  if (n == 0 || n > 14) {
    throw std::invalid_argument("TernaryTable: n must be in [1,14]");
  }
  std::size_t size = 1;
  for (unsigned i = 0; i < n; ++i) size *= 3;
  values_.assign(size, 0);
}

std::size_t TernaryTable::code_of(const MatchVector& w) const {
  std::size_t code = 0;
  std::size_t pow = 1;
  for (unsigned i = 0; i < n_; ++i) {
    unsigned digit = world_bit(w.stars, i) ? 2u : (world_bit(w.values, i) ? 1u : 0u);
    code += digit * pow;
    pow *= 3;
  }
  return code;
}

MatchVector TernaryTable::vector_of(std::size_t code) const {
  MatchVector w;
  for (unsigned i = 0; i < n_; ++i) {
    const unsigned digit = code % 3;
    code /= 3;
    if (digit == 1) {
      w.values |= World{1} << i;
    } else if (digit == 2) {
      w.stars |= World{1} << i;
    }
  }
  return w;
}

TernaryTable TernaryTable::box_counts(const WorldSet& x) {
  TernaryTable t(x.n());
  // Seed the star-free entries with the set indicator.
  x.visit([&t](World w) {
    MatchVector mv;
    mv.values = w;
    t.values_[t.code_of(mv)] = 1;
  });
  // Ternary zeta transform: for each coordinate, entry(*) = entry(0) + entry(1).
  std::size_t pow = 1;
  for (unsigned i = 0; i < t.n_; ++i, pow *= 3) {
    for (std::size_t code = 0; code < t.values_.size(); ++code) {
      const unsigned digit = (code / pow) % 3;
      if (digit == 2) {
        t.values_[code] = t.values_[code - pow] + t.values_[code - 2 * pow];
      }
    }
  }
  return t;
}

std::unordered_map<std::uint64_t, std::int64_t> circ_counts(const WorldSet& x,
                                                            const WorldSet& y) {
  if (x.n() != y.n()) throw std::invalid_argument("circ_counts: mismatched n");
  std::unordered_map<std::uint64_t, std::int64_t> counts;
  const std::vector<World> xs = x.to_vector();
  const std::vector<World> ys = y.to_vector();
  counts.reserve(xs.size() * 2 + 1);
  for (World u : xs) {
    for (World v : ys) {
      ++counts[match(u, v).key()];
    }
  }
  return counts;
}

}  // namespace epi
