// Sets of worlds (subsets of Omega = {0,1}^n) with full Boolean set algebra.
// Knowledge sets, audited properties A and disclosed properties B are all
// WorldSets.
//
// WorldSet is a thin typed wrapper over one of two interchangeable backends:
//
//   * dense  — a 2^n-bit bitset driven by the shared word-level kernel in
//     worlds/dense_bits.h (the representation FiniteSet also wraps). Hot
//     loops use the templated visit() (the callback inlines into the word
//     scan) or the fused free functions below; no type-erased per-element
//     call survives anywhere (enforced by the no_function_iteration lint
//     gate). Available for n <= kMaxCoordinates.
//
//   * symbolic — a canonicalized union of subcubes of the hypercube
//     (worlds/subcube_cover.h), O(#cubes) space instead of O(2^n). This is
//     what carries audits past the dense wall, up to
//     n <= kMaxSymbolicCoordinates = 32.
//
// SetBackend::kAuto picks dense whenever it fits (n <= kMaxCoordinates) and
// symbolic above, so every pre-existing call site keeps its exact dense
// behavior — including hash values and visit order — byte for byte.
// Mixed-backend binary operations produce a symbolic result (the dense
// operand is converted); mixed comparisons densify the symbolic side (always
// possible: a dense operand proves n <= kMaxCoordinates).
//
// Backend-visible differences, by design:
//   * hash() of a dense set and of its symbolized copy differ (the symbolic
//     hash is a semantic probe signature, the dense one a word hash). Every
//     consumer (AuditContext memo, service VerdictCache) verifies equality
//     on hit, so keying either representation stays correct.
//   * visit()/to_vector()/setwise_meet()/setwise_join()/masked_weight_sum()
//     are inherently dense (they walk 2^n worlds or need per-world weights)
//     and throw std::logic_error / std::invalid_argument on symbolic sets.
//     The engine densifies before any stage that needs them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"
#include "worlds/dense_bits.h"
#include "worlds/world.h"

namespace epi {

class SubcubeCover;

/// Which representation a WorldSet (or an Auditor's compiled sets) should
/// use. kAuto = dense up to kMaxCoordinates, symbolic above.
enum class SetBackend {
  kAuto,
  kDense,
  kSymbolic,
};

/// "auto" / "dense" / "symbolic".
std::string to_string(SetBackend backend);

/// Inverse of to_string; throws std::invalid_argument on anything else.
SetBackend parse_backend(const std::string& name);

/// Resolves kAuto against a universe size: dense iff n <= kMaxCoordinates.
/// Never returns kAuto.
SetBackend resolve_backend(SetBackend requested, unsigned n);

/// A subset of Omega = {0,1}^n, dense bitset or symbolic subcube cover.
///
/// n is fixed at construction; all binary operations require equal n and
/// throw std::invalid_argument otherwise. Word granularity is 64 bits.
class WorldSet {
 public:
  /// The empty subset of {0,1}^n.
  explicit WorldSet(unsigned n, SetBackend backend = SetBackend::kAuto);
  /// The subset of {0,1}^n holding exactly `worlds`.
  WorldSet(unsigned n, std::initializer_list<World> worlds);
  /// The subset of {0,1}^n holding exactly `worlds`.
  WorldSet(unsigned n, const std::vector<World>& worlds);

  WorldSet(const WorldSet& o);
  WorldSet(WorldSet&& o) noexcept;
  WorldSet& operator=(const WorldSet& o);
  WorldSet& operator=(WorldSet&& o) noexcept;
  ~WorldSet();

  /// All of {0,1}^n.
  static WorldSet universe(unsigned n, SetBackend backend = SetBackend::kAuto);
  /// Empty subset (same as the constructor; reads better at call sites).
  static WorldSet empty(unsigned n, SetBackend backend = SetBackend::kAuto);
  /// The singleton {w}.
  static WorldSet singleton(unsigned n, World w,
                            SetBackend backend = SetBackend::kAuto);
  /// Every world included independently with probability `density`.
  /// Dense-only (throws for universes past the dense cap).
  static WorldSet random(unsigned n, Rng& rng, double density = 0.5);
  /// Parses worlds given as 0/1 strings, e.g. {"011","100"}; see
  /// world_from_string for digit order.
  static WorldSet from_strings(unsigned n, const std::vector<std::string>& worlds,
                               SetBackend backend = SetBackend::kAuto);
  /// Wraps an existing symbolic cover.
  static WorldSet from_cover(SubcubeCover cover);

  unsigned n() const { return n_; }
  /// |Omega| = 2^n.
  std::size_t omega_size() const { return std::size_t{1} << n_; }

  /// True when this set uses the symbolic subcube-cover backend.
  bool symbolic() const { return cover_ != nullptr; }
  /// The backend in use (never kAuto).
  SetBackend backend() const {
    return cover_ ? SetBackend::kSymbolic : SetBackend::kDense;
  }
  /// The symbolic cover; throws std::logic_error on a dense set.
  const SubcubeCover& cover() const;

  /// A dense copy of this set (no-op copy when already dense). Throws
  /// std::invalid_argument when n > kMaxCoordinates — there is no dense
  /// representation to convert to.
  WorldSet densified() const;
  /// A symbolic copy of this set: the canonical Shannon cover of the same
  /// worlds (no-op copy when already symbolic). Lossless.
  WorldSet symbolized() const;

  bool contains(World w) const {
    if (cover_) return symbolic_contains(w);
    return w < omega_size() && bits::test(bits_.data(), w);
  }
  void insert(World w);
  void erase(World w);

  /// Number of worlds in the set.
  std::size_t count() const {
    return cover_ ? symbolic_count() : bits::count(bits_.data(), bits_.size());
  }
  /// Early-exit word scans on the dense path; O(1) / cover containment on
  /// the symbolic one.
  bool is_empty() const {
    return cover_ ? symbolic_is_empty() : bits::is_empty(bits_.data(), bits_.size());
  }
  bool is_universe() const {
    return cover_ ? symbolic_is_universe()
                  : bits::is_universe(bits_.data(), bits_.size(), omega_size());
  }

  /// 64-bit hash, stable within a process run. Dense: avalanche hash over
  /// the bit words (and n) via the shared kernel. Symbolic: a semantic probe
  /// signature (equal covers hash equal even when syntactically different,
  /// but dense and symbolic hashes of the same set differ). Keys (A, B)-pair
  /// memo tables and the service verdict cache — both verify equality on
  /// hit, so cross-representation collisions/misses only cost speed.
  std::size_t hash() const {
    return cover_ ? symbolic_hash()
                  : bits::hash(bits_.data(), bits_.size(), bits::Word{n_} << 32);
  }

  /// Set algebra. `operator-` is set difference, `operator~` complement in
  /// Omega. Mixed-backend operands yield a symbolic result.
  WorldSet operator&(const WorldSet& o) const;
  WorldSet operator|(const WorldSet& o) const;
  WorldSet operator-(const WorldSet& o) const;
  WorldSet operator^(const WorldSet& o) const;
  WorldSet operator~() const;

  WorldSet& operator&=(const WorldSet& o);
  WorldSet& operator|=(const WorldSet& o);
  WorldSet& operator-=(const WorldSet& o);
  WorldSet& operator^=(const WorldSet& o);

  /// Semantic equality: true iff the two sets hold the same worlds,
  /// regardless of backend.
  bool operator==(const WorldSet& o) const;
  bool operator!=(const WorldSet& o) const { return !(*this == o); }

  /// True when *this is a subset of `o`.
  bool subset_of(const WorldSet& o) const;
  /// True when the two sets share no world.
  bool disjoint_with(const WorldSet& o) const;

  /// Smallest world in the set; throws std::logic_error when empty.
  World min_world() const;

  /// All member worlds in increasing order. Dense-only.
  std::vector<World> to_vector() const;

  /// Calls fn(w) for every member world in increasing order. The callback
  /// inlines into the kernel word scan. Dense-only: throws std::logic_error
  /// on a symbolic set (densify first, or stay at the cover level).
  template <typename Fn>
  void visit(Fn&& fn) const {
    if (cover_) throw_symbolic("visit");
    bits::for_each_bit(bits_.data(), bits_.size(),
                       [&fn](std::size_t w) { fn(static_cast<World>(w)); });
  }

  /// Image of the set under XOR with `mask` (the paper's z ^ A transform).
  WorldSet xor_with(World mask) const;

  /// Image under flipping coordinate i in every member.
  WorldSet flip_coordinate(unsigned i) const;

  /// {u /\ v : u in *this, v in o} — the setwise meet A /\ B of Theorem 5.3.
  /// Early-exits on empty operands (result is empty) and on a universe
  /// operand (the result is the other operand's down closure) instead of
  /// running the O(|A|·|B|) pairwise loop. Dense-only.
  WorldSet setwise_meet(const WorldSet& o) const;
  /// {u \/ v : u in *this, v in o} — the setwise join A \/ B of Theorem 5.3.
  /// Early-exits symmetrically (universe operand: up closure). Dense-only.
  WorldSet setwise_join(const WorldSet& o) const;

  /// Dense: comma-separated 0/1 strings, e.g. "{011,100}". Symbolic: the
  /// cover, e.g. "cover{01*,1*0}".
  std::string to_string() const;

  /// Kernel escape hatch: the backing words (words_for(2^n) of them, tail
  /// bits zero; empty on a symbolic set — check word_count()). For fused
  /// multi-set scans and benchmarks; prefer the named predicates below.
  const std::uint64_t* word_data() const { return bits_.data(); }
  std::size_t word_count() const { return bits_.size(); }

 private:
  void check_compatible(const WorldSet& o) const;
  [[noreturn]] static void throw_symbolic(const char* op);

  // Out-of-line symbolic paths (SubcubeCover is incomplete here); the inline
  // wrappers above keep the dense fast path branch-plus-kernel only.
  bool symbolic_contains(World w) const;
  std::size_t symbolic_count() const;
  bool symbolic_is_empty() const;
  bool symbolic_is_universe() const;
  std::size_t symbolic_hash() const;

  /// Replaces the representation with `cover` (drops the dense words).
  void adopt(SubcubeCover cover);

  unsigned n_;
  std::vector<std::uint64_t> bits_;       // dense backend (empty when symbolic)
  std::unique_ptr<SubcubeCover> cover_;   // symbolic backend (null when dense)
};

/// Hash functor for unordered containers keyed by WorldSet.
struct WorldSetHash {
  std::size_t operator()(const WorldSet& s) const { return s.hash(); }
};

// --- Fused predicates -------------------------------------------------------
// Each answers a question about a derived set (S∩B, A∪B) in one word scan on
// the dense path, and at the cover level (never materializing 2^n bits) on
// the symbolic one. All throw std::invalid_argument on mismatched n (same
// contract as the binary operators). Mixed-backend argument lists take the
// symbolic route.

/// (s ∩ b) ⊆ a — Def. 3.1 without materializing S∩B.
bool intersection_subset_of(const WorldSet& s, const WorldSet& b,
                            const WorldSet& a);

/// |x ∩ y|.
std::size_t intersection_count(const WorldSet& x, const WorldSet& y);

/// x ∩ y ∩ z = ∅ — one scan over three operands.
bool intersection3_empty(const WorldSet& x, const WorldSet& y,
                         const WorldSet& z);

/// x ∪ y = Omega — the second disjunct of Theorem 3.11.
bool union_is_universe(const WorldSet& x, const WorldSet& y);

/// Sum of weights[w] over member worlds, in increasing world order (so
/// floating-point accumulation is bit-identical to a per-world loop).
/// `weights` must have at least omega_size() entries. Dense-only: a
/// per-world weight table is itself 2^n — symbolic sets take
/// product_weight_sum below.
double masked_weight_sum(const WorldSet& s, const double* weights);

/// Sum of weights[w] over x ∩ y — P[A∩B] without materializing A∩B.
/// Dense-only, like masked_weight_sum.
double intersection_weight_sum(const WorldSet& x, const WorldSet& y,
                               const double* weights);

/// Product-prior mass P[S] for per-record marginals probs[0..n): sum over
/// member worlds of prod_i (w_i ? probs[i] : 1 - probs[i]). Dense sets
/// accumulate per world in increasing order; symbolic sets evaluate the
/// closed form per disjoint cube (O(#cubes^2 · n), never 2^n) — the two
/// agree up to floating-point association.
double product_weight_sum(const WorldSet& s, const double* probs);

/// Calls fn(w) for every world of x ∩ y in increasing order, without
/// materializing the intersection. Dense-only.
template <typename Fn>
void visit_intersection(const WorldSet& x, const WorldSet& y, Fn&& fn) {
  if (x.n() != y.n()) {
    throw std::invalid_argument("visit_intersection: mismatched n");
  }
  if (x.symbolic() || y.symbolic()) {
    throw std::logic_error("visit_intersection: dense-only; densify first");
  }
  bits::for_each_bit_and(x.word_data(), y.word_data(), x.word_count(),
                         [&fn](std::size_t w) { fn(static_cast<World>(w)); });
}

}  // namespace epi
