// Dense sets of worlds (subsets of Omega = {0,1}^n) with full Boolean set
// algebra. Knowledge sets, audited properties A and disclosed properties B
// are all WorldSets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.h"
#include "worlds/world.h"

namespace epi {

/// A subset of Omega = {0,1}^n stored as a dense bitset of size 2^n.
///
/// n is fixed at construction; all binary operations require equal n and
/// throw std::invalid_argument otherwise. Word granularity is 64 bits.
class WorldSet {
 public:
  /// The empty subset of {0,1}^n.
  explicit WorldSet(unsigned n);
  /// The subset of {0,1}^n holding exactly `worlds`.
  WorldSet(unsigned n, std::initializer_list<World> worlds);
  /// The subset of {0,1}^n holding exactly `worlds`.
  WorldSet(unsigned n, const std::vector<World>& worlds);

  /// All of {0,1}^n.
  static WorldSet universe(unsigned n);
  /// Empty subset (same as the constructor; reads better at call sites).
  static WorldSet empty(unsigned n);
  /// The singleton {w}.
  static WorldSet singleton(unsigned n, World w);
  /// Every world included independently with probability `density`.
  static WorldSet random(unsigned n, Rng& rng, double density = 0.5);
  /// Parses worlds given as 0/1 strings, e.g. {"011","100"}; see
  /// world_from_string for digit order.
  static WorldSet from_strings(unsigned n, const std::vector<std::string>& worlds);

  unsigned n() const { return n_; }
  /// |Omega| = 2^n.
  std::size_t omega_size() const { return std::size_t{1} << n_; }

  bool contains(World w) const;
  void insert(World w);
  void erase(World w);

  /// Number of worlds in the set.
  std::size_t count() const;
  /// Early-exit word scans — no full popcount.
  bool is_empty() const;
  bool is_universe() const;

  /// 64-bit avalanche hash over the bit words (and n): each word is passed
  /// through a splitmix64 finalizer before combining, so single-world
  /// differences flip ~half the output bits. Stable within a process run.
  /// Keys (A, B)-pair memo tables and the service verdict cache.
  std::size_t hash() const;

  /// Set algebra. `operator-` is set difference, `operator~` complement in Omega.
  WorldSet operator&(const WorldSet& o) const;
  WorldSet operator|(const WorldSet& o) const;
  WorldSet operator-(const WorldSet& o) const;
  WorldSet operator^(const WorldSet& o) const;
  WorldSet operator~() const;

  WorldSet& operator&=(const WorldSet& o);
  WorldSet& operator|=(const WorldSet& o);
  WorldSet& operator-=(const WorldSet& o);
  WorldSet& operator^=(const WorldSet& o);

  bool operator==(const WorldSet& o) const;
  bool operator!=(const WorldSet& o) const { return !(*this == o); }

  /// True when *this is a subset of `o`.
  bool subset_of(const WorldSet& o) const;
  /// True when the two sets share no world.
  bool disjoint_with(const WorldSet& o) const;

  /// Smallest world in the set; throws std::logic_error when empty.
  World min_world() const;

  /// All member worlds in increasing order.
  std::vector<World> to_vector() const;

  /// Calls fn(w) for every member world in increasing order.
  void for_each(const std::function<void(World)>& fn) const;

  /// Image of the set under XOR with `mask` (the paper's z ^ A transform).
  WorldSet xor_with(World mask) const;

  /// Image under flipping coordinate i in every member.
  WorldSet flip_coordinate(unsigned i) const;

  /// {u /\ v : u in *this, v in o} — the setwise meet A /\ B of Theorem 5.3.
  WorldSet setwise_meet(const WorldSet& o) const;
  /// {u \/ v : u in *this, v in o} — the setwise join A \/ B of Theorem 5.3.
  WorldSet setwise_join(const WorldSet& o) const;

  /// Comma-separated 0/1 strings, e.g. "{011,100}".
  std::string to_string() const;

 private:
  void check_compatible(const WorldSet& o) const;

  unsigned n_;
  std::vector<std::uint64_t> bits_;
};

/// Hash functor for unordered containers keyed by WorldSet.
struct WorldSetHash {
  std::size_t operator()(const WorldSet& s) const { return s.hash(); }
};

}  // namespace epi
