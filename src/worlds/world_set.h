// Dense sets of worlds (subsets of Omega = {0,1}^n) with full Boolean set
// algebra. Knowledge sets, audited properties A and disclosed properties B
// are all WorldSets.
//
// WorldSet is a thin typed wrapper over the shared word-level kernel in
// worlds/dense_bits.h: every scan, Boolean operation, hash and fused
// predicate delegates to the single kernel implementation FiniteSet also
// wraps. Hot loops should use the templated visit() (the callback inlines
// into the word scan) or the fused free functions below; no type-erased
// per-element call survives anywhere (enforced by the no_function_iteration
// lint gate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"
#include "worlds/dense_bits.h"
#include "worlds/world.h"

namespace epi {

/// A subset of Omega = {0,1}^n stored as a dense bitset of size 2^n.
///
/// n is fixed at construction; all binary operations require equal n and
/// throw std::invalid_argument otherwise. Word granularity is 64 bits.
class WorldSet {
 public:
  /// The empty subset of {0,1}^n.
  explicit WorldSet(unsigned n);
  /// The subset of {0,1}^n holding exactly `worlds`.
  WorldSet(unsigned n, std::initializer_list<World> worlds);
  /// The subset of {0,1}^n holding exactly `worlds`.
  WorldSet(unsigned n, const std::vector<World>& worlds);

  /// All of {0,1}^n.
  static WorldSet universe(unsigned n);
  /// Empty subset (same as the constructor; reads better at call sites).
  static WorldSet empty(unsigned n);
  /// The singleton {w}.
  static WorldSet singleton(unsigned n, World w);
  /// Every world included independently with probability `density`.
  static WorldSet random(unsigned n, Rng& rng, double density = 0.5);
  /// Parses worlds given as 0/1 strings, e.g. {"011","100"}; see
  /// world_from_string for digit order.
  static WorldSet from_strings(unsigned n, const std::vector<std::string>& worlds);

  unsigned n() const { return n_; }
  /// |Omega| = 2^n.
  std::size_t omega_size() const { return std::size_t{1} << n_; }

  bool contains(World w) const {
    return w < omega_size() && bits::test(bits_.data(), w);
  }
  void insert(World w);
  void erase(World w);

  /// Number of worlds in the set.
  std::size_t count() const { return bits::count(bits_.data(), bits_.size()); }
  /// Early-exit word scans — no full popcount.
  bool is_empty() const { return bits::is_empty(bits_.data(), bits_.size()); }
  bool is_universe() const {
    return bits::is_universe(bits_.data(), bits_.size(), omega_size());
  }

  /// 64-bit avalanche hash over the bit words (and n) via the shared kernel:
  /// each word is passed through a splitmix64 finalizer before combining, so
  /// single-world differences flip ~half the output bits. Stable within a
  /// process run. Keys (A, B)-pair memo tables and the service verdict cache.
  std::size_t hash() const {
    return bits::hash(bits_.data(), bits_.size(), bits::Word{n_} << 32);
  }

  /// Set algebra. `operator-` is set difference, `operator~` complement in Omega.
  WorldSet operator&(const WorldSet& o) const;
  WorldSet operator|(const WorldSet& o) const;
  WorldSet operator-(const WorldSet& o) const;
  WorldSet operator^(const WorldSet& o) const;
  WorldSet operator~() const;

  WorldSet& operator&=(const WorldSet& o);
  WorldSet& operator|=(const WorldSet& o);
  WorldSet& operator-=(const WorldSet& o);
  WorldSet& operator^=(const WorldSet& o);

  bool operator==(const WorldSet& o) const {
    return n_ == o.n_ && bits::equal(bits_.data(), o.bits_.data(), bits_.size());
  }
  bool operator!=(const WorldSet& o) const { return !(*this == o); }

  /// True when *this is a subset of `o`.
  bool subset_of(const WorldSet& o) const;
  /// True when the two sets share no world.
  bool disjoint_with(const WorldSet& o) const;

  /// Smallest world in the set; throws std::logic_error when empty.
  World min_world() const;

  /// All member worlds in increasing order.
  std::vector<World> to_vector() const;

  /// Calls fn(w) for every member world in increasing order. The callback
  /// inlines into the kernel word scan.
  template <typename Fn>
  void visit(Fn&& fn) const {
    bits::for_each_bit(bits_.data(), bits_.size(),
                       [&fn](std::size_t w) { fn(static_cast<World>(w)); });
  }

  /// Image of the set under XOR with `mask` (the paper's z ^ A transform).
  WorldSet xor_with(World mask) const;

  /// Image under flipping coordinate i in every member.
  WorldSet flip_coordinate(unsigned i) const;

  /// {u /\ v : u in *this, v in o} — the setwise meet A /\ B of Theorem 5.3.
  /// Early-exits on empty operands (result is empty) and on a universe
  /// operand (the result is the other operand's down closure) instead of
  /// running the O(|A|·|B|) pairwise loop.
  WorldSet setwise_meet(const WorldSet& o) const;
  /// {u \/ v : u in *this, v in o} — the setwise join A \/ B of Theorem 5.3.
  /// Early-exits symmetrically (universe operand: up closure).
  WorldSet setwise_join(const WorldSet& o) const;

  /// Comma-separated 0/1 strings, e.g. "{011,100}".
  std::string to_string() const;

  /// Kernel escape hatch: the backing words (words_for(2^n) of them, tail
  /// bits zero). For fused multi-set scans and benchmarks; prefer the named
  /// predicates below.
  const std::uint64_t* word_data() const { return bits_.data(); }
  std::size_t word_count() const { return bits_.size(); }

 private:
  void check_compatible(const WorldSet& o) const;

  unsigned n_;
  std::vector<std::uint64_t> bits_;
};

/// Hash functor for unordered containers keyed by WorldSet.
struct WorldSetHash {
  std::size_t operator()(const WorldSet& s) const { return s.hash(); }
};

// --- Fused predicates -------------------------------------------------------
// Each answers a question about a derived set (S∩B, A∪B) in one word scan,
// with no intermediate WorldSet allocated. All throw std::invalid_argument
// on mismatched n (same contract as the binary operators).

/// (s ∩ b) ⊆ a — Def. 3.1 without materializing S∩B.
bool intersection_subset_of(const WorldSet& s, const WorldSet& b,
                            const WorldSet& a);

/// |x ∩ y|.
std::size_t intersection_count(const WorldSet& x, const WorldSet& y);

/// x ∪ y = Omega — the second disjunct of Theorem 3.11.
bool union_is_universe(const WorldSet& x, const WorldSet& y);

/// Sum of weights[w] over member worlds, in increasing world order (so
/// floating-point accumulation is bit-identical to a per-world loop).
/// `weights` must have at least omega_size() entries.
double masked_weight_sum(const WorldSet& s, const double* weights);

/// Sum of weights[w] over x ∩ y — P[A∩B] without materializing A∩B.
double intersection_weight_sum(const WorldSet& x, const WorldSet& y,
                               const double* weights);

/// Calls fn(w) for every world of x ∩ y in increasing order, without
/// materializing the intersection.
template <typename Fn>
void visit_intersection(const WorldSet& x, const WorldSet& y, Fn&& fn) {
  if (x.n() != y.n() || x.word_count() != y.word_count()) {
    throw std::invalid_argument("visit_intersection: mismatched n");
  }
  bits::for_each_bit_and(x.word_data(), y.word_data(), x.word_count(),
                         [&fn](std::size_t w) { fn(static_cast<World>(w)); });
}

}  // namespace epi
