// Runtime-dispatched SIMD tiers for the epi::bits fused predicates and
// popcount scans. Each tier is compiled with a per-function target attribute
// (no global -mavx* flags, so the rest of the binary stays baseline-x86-64
// and the process can never fault on an unsupported instruction: the tier is
// only entered after CPUID says it exists).
//
// Bit-identity contract (checked by the `fused-kernels` model check and
// tests/simd_dispatch_test.cpp): every function here returns exactly what
// its bits::scalar counterpart returns. The Boolean/popcount kernels are
// integer-exact by construction; the weight sums never vectorize the double
// accumulation — SIMD is used only to skip all-zero word blocks (which
// contribute no terms to the scalar sum either), and surviving words are
// scanned per-bit in ascending order, so the floating-point addition order
// is literally the scalar order.
#include "worlds/dense_bits.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define EPI_BITS_X86_SIMD 1
#include <immintrin.h>
#else
#define EPI_BITS_X86_SIMD 0
#endif

namespace epi {
namespace bits {

const char* to_string(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar: return "scalar";
    case IsaTier::kAvx2: return "avx2";
    case IsaTier::kAvx512: return "avx512";
  }
  return "scalar";
}

namespace {

// The scalar table routes straight to the reference implementations; it is
// the fallback on non-x86 builds and the anchor every parity test diffs
// against.
constexpr Isa kScalarIsa = {
    "scalar",
    IsaTier::kScalar,
    &scalar::count,
    &scalar::subset_of,
    &scalar::disjoint,
    &scalar::intersection_subset_of,
    &scalar::intersection_count,
    &scalar::intersection3_empty,
    &scalar::union_is_universe,
    &scalar::masked_weight_sum,
    &scalar::intersection_weight_sum,
};

#if EPI_BITS_X86_SIMD

// ---- AVX2 tier: 4 words (256 bits) per step ------------------------------

/// Mula's nibble-LUT popcount: per-byte counts via two PSHUFB lookups, then
/// _mm256_sad_epu8 folds each 8-byte lane into a 64-bit partial sum. ~3x a
/// scalar popcount loop on wide sets and exact (no float, no saturation:
/// lane sums stay < 2^6 per step and accumulate in 64-bit lanes).
__attribute__((target("avx2"))) inline __m256i avx2_popcount_epi64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) std::size_t avx2_count(const Word* w,
                                                       std::size_t nw) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    acc = _mm256_add_epi64(acc, avx2_popcount_epi64(v));
  }
  Word lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t c = static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < nw; ++i) c += static_cast<std::size_t>(std::popcount(w[i]));
  return c;
}

__attribute__((target("avx2"))) bool avx2_subset_of(const Word* x,
                                                    const Word* y,
                                                    std::size_t nw) {
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    const __m256i bad = _mm256_andnot_si256(vy, vx);  // x & ~y
    if (!_mm256_testz_si256(bad, bad)) return false;
  }
  for (; i < nw; ++i) {
    if (x[i] & ~y[i]) return false;
  }
  return true;
}

__attribute__((target("avx2"))) bool avx2_disjoint(const Word* x, const Word* y,
                                                   std::size_t nw) {
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    if (!_mm256_testz_si256(vx, vy)) return false;  // testz checks x & y == 0
  }
  for (; i < nw; ++i) {
    if (x[i] & y[i]) return false;
  }
  return true;
}

__attribute__((target("avx2"))) bool avx2_intersection_subset_of(
    const Word* s, const Word* b, const Word* a, std::size_t nw) {
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i vs = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bad = _mm256_andnot_si256(va, _mm256_and_si256(vs, vb));
    if (!_mm256_testz_si256(bad, bad)) return false;
  }
  for (; i < nw; ++i) {
    if (s[i] & b[i] & ~a[i]) return false;
  }
  return true;
}

__attribute__((target("avx2"))) std::size_t avx2_intersection_count(
    const Word* x, const Word* y, std::size_t nw) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    acc = _mm256_add_epi64(acc, avx2_popcount_epi64(_mm256_and_si256(vx, vy)));
  }
  Word lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t c = static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < nw; ++i) c += static_cast<std::size_t>(std::popcount(x[i] & y[i]));
  return c;
}

__attribute__((target("avx2"))) bool avx2_intersection3_empty(const Word* x,
                                                              const Word* y,
                                                              const Word* z,
                                                              std::size_t nw) {
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    const __m256i vz = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z + i));
    if (!_mm256_testz_si256(_mm256_and_si256(vx, vy), vz)) return false;
  }
  for (; i < nw; ++i) {
    if (x[i] & y[i] & z[i]) return false;
  }
  return true;
}

__attribute__((target("avx2"))) bool avx2_union_is_universe(const Word* x,
                                                            const Word* y,
                                                            std::size_t nw,
                                                            std::size_t m) {
  if (nw == 0) return true;
  const std::size_t full = nw - 1;  // words that must come out all-ones
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t i = 0;
  for (; i + 4 <= full; i += 4) {
    const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    // testc(v, ones) == 1  iff  ones & ~v == 0  iff  v is all-ones.
    if (!_mm256_testc_si256(_mm256_or_si256(vx, vy), ones)) return false;
  }
  for (; i < full; ++i) {
    if ((x[i] | y[i]) != ~Word{0}) return false;
  }
  return (x[full] | y[full]) == tail_mask(m);
}

__attribute__((target("avx2"))) double avx2_masked_weight_sum(
    const Word* w, std::size_t nw, const double* weights) {
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (_mm256_testz_si256(v, v)) continue;  // zero block: no terms either way
    for (std::size_t j = i; j < i + 4; ++j) {
      Word word = w[j];
      while (word != 0) {
        sum += weights[j * kWordBits +
                       static_cast<std::size_t>(std::countr_zero(word))];
        word &= word - 1;
      }
    }
  }
  for (; i < nw; ++i) {
    Word word = w[i];
    while (word != 0) {
      sum += weights[i * kWordBits +
                     static_cast<std::size_t>(std::countr_zero(word))];
      word &= word - 1;
    }
  }
  return sum;
}

__attribute__((target("avx2"))) double avx2_intersection_weight_sum(
    const Word* x, const Word* y, std::size_t nw, const double* weights) {
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    if (_mm256_testz_si256(vx, vy)) continue;
    for (std::size_t j = i; j < i + 4; ++j) {
      Word word = x[j] & y[j];
      while (word != 0) {
        sum += weights[j * kWordBits +
                       static_cast<std::size_t>(std::countr_zero(word))];
        word &= word - 1;
      }
    }
  }
  for (; i < nw; ++i) {
    Word word = x[i] & y[i];
    while (word != 0) {
      sum += weights[i * kWordBits +
                     static_cast<std::size_t>(std::countr_zero(word))];
      word &= word - 1;
    }
  }
  return sum;
}

constexpr Isa kAvx2Isa = {
    "avx2",
    IsaTier::kAvx2,
    &avx2_count,
    &avx2_subset_of,
    &avx2_disjoint,
    &avx2_intersection_subset_of,
    &avx2_intersection_count,
    &avx2_intersection3_empty,
    &avx2_union_is_universe,
    &avx2_masked_weight_sum,
    &avx2_intersection_weight_sum,
};

// ---- AVX-512 tier: 8 words (512 bits) per step ---------------------------

__attribute__((target("avx512f"))) bool avx512_subset_of(const Word* x,
                                                         const Word* y,
                                                         std::size_t nw) {
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vy = _mm512_loadu_si512(y + i);
    // Ternary-logic 0x0C is B&~A: x & ~y (sidesteps a gcc-12 spurious
    // -Wmaybe-uninitialized inside the _mm512_andnot_epi64 header).
    const __m512i bad = _mm512_ternarylogic_epi64(vy, vx, vx, 0x0C);
    if (_mm512_test_epi64_mask(bad, bad) != 0) return false;
  }
  for (; i < nw; ++i) {
    if (x[i] & ~y[i]) return false;
  }
  return true;
}

__attribute__((target("avx512f"))) bool avx512_disjoint(const Word* x,
                                                        const Word* y,
                                                        std::size_t nw) {
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vy = _mm512_loadu_si512(y + i);
    if (_mm512_test_epi64_mask(vx, vy) != 0) return false;  // lanes with x&y != 0
  }
  for (; i < nw; ++i) {
    if (x[i] & y[i]) return false;
  }
  return true;
}

__attribute__((target("avx512f"))) bool avx512_intersection_subset_of(
    const Word* s, const Word* b, const Word* a, std::size_t nw) {
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i vs = _mm512_loadu_si512(s + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __m512i va = _mm512_loadu_si512(a + i);
    // Ternary-logic 0x40 selects the minterm A&B&~C: s & b & ~a in one op.
    const __m512i bad = _mm512_ternarylogic_epi64(vs, vb, va, 0x40);
    if (_mm512_test_epi64_mask(bad, bad) != 0) return false;
  }
  for (; i < nw; ++i) {
    if (s[i] & b[i] & ~a[i]) return false;
  }
  return true;
}

__attribute__((target("avx512f"))) bool avx512_intersection3_empty(
    const Word* x, const Word* y, const Word* z, std::size_t nw) {
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vy = _mm512_loadu_si512(y + i);
    const __m512i vz = _mm512_loadu_si512(z + i);
    if (_mm512_test_epi64_mask(_mm512_and_epi64(vx, vy), vz) != 0) return false;
  }
  for (; i < nw; ++i) {
    if (x[i] & y[i] & z[i]) return false;
  }
  return true;
}

__attribute__((target("avx512f"))) bool avx512_union_is_universe(
    const Word* x, const Word* y, std::size_t nw, std::size_t m) {
  if (nw == 0) return true;
  const std::size_t full = nw - 1;
  const __m512i ones = _mm512_set1_epi64(-1);
  std::size_t i = 0;
  for (; i + 8 <= full; i += 8) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vy = _mm512_loadu_si512(y + i);
    if (_mm512_cmpneq_epu64_mask(_mm512_or_epi64(vx, vy), ones) != 0) {
      return false;
    }
  }
  for (; i < full; ++i) {
    if ((x[i] | y[i]) != ~Word{0}) return false;
  }
  return (x[full] | y[full]) == tail_mask(m);
}

__attribute__((target("avx512f"))) double avx512_masked_weight_sum(
    const Word* w, std::size_t nw, const double* weights) {
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i v = _mm512_loadu_si512(w + i);
    // The lane mask lets us skip individual zero words, not just whole
    // blocks; lanes are visited in ascending order so the accumulation
    // order is still exactly the scalar order.
    __mmask8 live = _mm512_test_epi64_mask(v, v);
    while (live != 0) {
      const std::size_t j =
          i + static_cast<std::size_t>(std::countr_zero(static_cast<unsigned>(live)));
      live &= static_cast<__mmask8>(live - 1);
      Word word = w[j];
      while (word != 0) {
        sum += weights[j * kWordBits +
                       static_cast<std::size_t>(std::countr_zero(word))];
        word &= word - 1;
      }
    }
  }
  for (; i < nw; ++i) {
    Word word = w[i];
    while (word != 0) {
      sum += weights[i * kWordBits +
                     static_cast<std::size_t>(std::countr_zero(word))];
      word &= word - 1;
    }
  }
  return sum;
}

__attribute__((target("avx512f"))) double avx512_intersection_weight_sum(
    const Word* x, const Word* y, std::size_t nw, const double* weights) {
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vy = _mm512_loadu_si512(y + i);
    __mmask8 live = _mm512_test_epi64_mask(vx, vy);
    while (live != 0) {
      const std::size_t j =
          i + static_cast<std::size_t>(std::countr_zero(static_cast<unsigned>(live)));
      live &= static_cast<__mmask8>(live - 1);
      Word word = x[j] & y[j];
      while (word != 0) {
        sum += weights[j * kWordBits +
                       static_cast<std::size_t>(std::countr_zero(word))];
        word &= word - 1;
      }
    }
  }
  for (; i < nw; ++i) {
    Word word = x[i] & y[i];
    while (word != 0) {
      sum += weights[i * kWordBits +
                     static_cast<std::size_t>(std::countr_zero(word))];
      word &= word - 1;
    }
  }
  return sum;
}

/// Lane-sum via store (the _mm512_reduce_add_epi64 sequence trips another
/// gcc-12 header false positive; a store + 8 adds compiles just as tight).
__attribute__((target("avx512f"))) inline std::size_t avx512_lane_sum(
    __m512i acc) {
  Word lanes[8];
  _mm512_storeu_si512(lanes, acc);
  Word c = 0;
  for (Word lane : lanes) c += lane;
  return static_cast<std::size_t>(c);
}

// Native 64-bit lane popcount needs the separate AVX512VPOPCNTDQ extension
// (Ice Lake+); the resolver only installs these two functions when CPUID
// reports it, otherwise the AVX-512 table carries the AVX2 Mula popcounts.
__attribute__((target("avx512f,avx512vpopcntdq"))) std::size_t
avx512_count_vpopcnt(const Word* w, std::size_t nw) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(w + i)));
  }
  std::size_t c = avx512_lane_sum(acc);
  for (; i < nw; ++i) c += static_cast<std::size_t>(std::popcount(w[i]));
  return c;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::size_t
avx512_intersection_count_vpopcnt(const Word* x, const Word* y,
                                  std::size_t nw) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i v =
        _mm512_and_epi64(_mm512_loadu_si512(x + i), _mm512_loadu_si512(y + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::size_t c = avx512_lane_sum(acc);
  for (; i < nw; ++i) c += static_cast<std::size_t>(std::popcount(x[i] & y[i]));
  return c;
}

constexpr Isa kAvx512Isa = {
    "avx512",
    IsaTier::kAvx512,
    &avx2_count,  // no VPOPCNTDQ: Mula popcount is the best available
    &avx512_subset_of,
    &avx512_disjoint,
    &avx512_intersection_subset_of,
    &avx2_intersection_count,
    &avx512_intersection3_empty,
    &avx512_union_is_universe,
    &avx512_masked_weight_sum,
    &avx512_intersection_weight_sum,
};

constexpr Isa kAvx512VpopcntIsa = {
    "avx512",
    IsaTier::kAvx512,
    &avx512_count_vpopcnt,
    &avx512_subset_of,
    &avx512_disjoint,
    &avx512_intersection_subset_of,
    &avx512_intersection_count_vpopcnt,
    &avx512_intersection3_empty,
    &avx512_union_is_universe,
    &avx512_masked_weight_sum,
    &avx512_intersection_weight_sum,
};

#endif  // EPI_BITS_X86_SIMD

/// Best tier this host can execute (CPUID on x86, scalar elsewhere).
IsaTier best_supported_tier() {
#if EPI_BITS_X86_SIMD
  if (__builtin_cpu_supports("avx512f")) return IsaTier::kAvx512;
  if (__builtin_cpu_supports("avx2")) return IsaTier::kAvx2;
#endif
  return IsaTier::kScalar;
}

}  // namespace

const Isa* isa_for(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return &kScalarIsa;
    case IsaTier::kAvx2:
#if EPI_BITS_X86_SIMD
      if (__builtin_cpu_supports("avx2")) return &kAvx2Isa;
#endif
      return nullptr;
    case IsaTier::kAvx512:
#if EPI_BITS_X86_SIMD
      if (__builtin_cpu_supports("avx512f")) {
        return __builtin_cpu_supports("avx512vpopcntdq") ? &kAvx512VpopcntIsa
                                                         : &kAvx512Isa;
      }
#endif
      return nullptr;
  }
  return nullptr;
}

bool force_isa(IsaTier tier) {
  const Isa* isa = isa_for(tier);
  if (isa == nullptr) return false;
  detail::g_active_isa.store(isa, std::memory_order_release);
  return true;
}

void reset_isa() {
  detail::g_active_isa.store(nullptr, std::memory_order_release);
}

namespace detail {

std::atomic<const Isa*> g_active_isa{nullptr};

const Isa* resolve_active_isa() {
  IsaTier tier = best_supported_tier();
  if (const char* env = std::getenv("EPI_FORCE_ISA")) {
    // The override is a cap, not a promise: requesting a tier the host
    // lacks degrades to the best supported one, so EPI_FORCE_ISA=avx512 is
    // safe (and meaningful) in CI matrices that include AVX2-only runners.
    IsaTier requested = tier;
    if (std::strcmp(env, "scalar") == 0) {
      requested = IsaTier::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = IsaTier::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      requested = IsaTier::kAvx512;
    } else if (env[0] != '\0') {
      std::fprintf(stderr,
                   "epi::bits: ignoring unknown EPI_FORCE_ISA=\"%s\" "
                   "(expected scalar|avx2|avx512)\n",
                   env);
    }
    if (requested < tier) tier = requested;
  }
  const Isa* isa = isa_for(tier);
  // isa_for never returns null for a tier best_supported_tier() admitted.
  g_active_isa.store(isa, std::memory_order_release);
  return isa;
}

}  // namespace detail

}  // namespace bits
}  // namespace epi
