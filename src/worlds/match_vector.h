// Match vectors over {0,1,*}^n (Definition 5.8 of the paper) and the counting
// machinery behind the cancellation criterion (Prop. 5.9) and the box-counting
// necessary criterion (Prop. 5.10).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "worlds/world_set.h"

namespace epi {

/// A vector w in {0,1,*}^n: `stars` marks the '*' coordinates; `values` holds
/// the 0/1 entries on non-star coordinates (star positions are zeroed).
struct MatchVector {
  World stars = 0;
  World values = 0;

  bool operator==(const MatchVector& o) const {
    return stars == o.stars && values == o.values;
  }

  /// Packed key for hashing: stars in the high half, values in the low half.
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(stars) << 32) | values;
  }

  /// Number of '*' coordinates.
  unsigned star_count() const { return world_weight(stars); }

  /// Renders e.g. "01**1" (coordinate 0 first).
  std::string to_string(unsigned n) const;

  /// Parses a string over {0,1,*}; throws std::invalid_argument on other
  /// characters or length > kMaxSymbolicCoordinates (= 32, the packing
  /// limit of the two 32-bit fields above).
  static MatchVector from_string(const std::string& s);
};

/// Match(u, v) per Definition 5.8: coordinate i is u[i] when u[i] == v[i] and
/// '*' when they differ. Example: Match(01011, 01101) = 01**1.
MatchVector match(World u, World v);

/// True when world v "refines" w, i.e. v is in Box(w): v agrees with w on all
/// non-star coordinates.
bool refines(World v, const MatchVector& w);

/// A dense table indexed by {0,1,*}^n (size 3^n). Used to hold |X ∩ Box(w)|
/// for all w at once. The constructor throws std::invalid_argument outside
/// n in [1, 14]: 3^14 int64 entries is ~38 MB and every further coordinate
/// triples it, so enumeration-style consumers (this table, SubcubeSigma)
/// stop well below the n = 32 ceiling of the symbolic SubcubeCover backend.
class TernaryTable {
 public:
  explicit TernaryTable(unsigned n);

  unsigned n() const { return n_; }
  std::size_t size() const { return values_.size(); }

  std::int64_t& at(std::size_t code) { return values_[code]; }
  std::int64_t at(std::size_t code) const { return values_[code]; }

  /// Base-3 code of a match vector (digit i = w[i], with '*' = 2).
  std::size_t code_of(const MatchVector& w) const;
  /// Inverse of code_of.
  MatchVector vector_of(std::size_t code) const;

  /// Builds the table of box counts: entry(w) = |X ∩ Box(w)| for every
  /// w in {0,1,*}^n, via the ternary zeta transform in O(n * 3^n).
  static TernaryTable box_counts(const WorldSet& x);

 private:
  unsigned n_;
  std::vector<std::int64_t> values_;
};

/// Counts pairs grouped by their match vector:
/// result[w.key()] = |{(u,v) in X x Y : Match(u,v) = w}| = |X x Y ∩ Circ(w)|.
/// Complexity O(|X| * |Y|).
std::unordered_map<std::uint64_t, std::int64_t> circ_counts(const WorldSet& x,
                                                            const WorldSet& y);

}  // namespace epi
