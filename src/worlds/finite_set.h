// Dense subsets of an arbitrary finite universe {0, ..., m-1}. Sections 2-4
// of the paper work over an abstract finite Omega (e.g. the pixel grid of
// Example 4.9), so the possibilistic machinery is written against FiniteSet;
// the hypercube-specific WorldSet converts losslessly (universe size 2^n).
//
// Like WorldSet, FiniteSet is a thin typed wrapper over the shared word-level
// kernel in worlds/dense_bits.h — the Boolean algebra, scans, hashing and
// fused predicates have exactly one implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"
#include "worlds/dense_bits.h"

namespace epi {

class WorldSet;

/// A subset of {0, ..., m-1} stored as a dense bitset.
class FiniteSet {
 public:
  /// The empty subset of a universe of size m >= 1.
  explicit FiniteSet(std::size_t m);
  /// The subset holding exactly `elements`.
  FiniteSet(std::size_t m, std::initializer_list<std::size_t> elements);
  FiniteSet(std::size_t m, const std::vector<std::size_t>& elements);

  static FiniteSet universe(std::size_t m);
  static FiniteSet empty(std::size_t m);
  static FiniteSet singleton(std::size_t m, std::size_t e);
  /// Every element included independently with probability `density`.
  static FiniteSet random(std::size_t m, Rng& rng, double density = 0.5);
  /// Adopts a copy of a raw word image: words_for(m) words, tail bits zero.
  /// The word-level bridge from a dense WorldSet (identical layout), so
  /// to_finite is a copy instead of a per-element rebuild.
  static FiniteSet from_words(std::size_t m, const std::uint64_t* words,
                              std::size_t word_count);

  /// Size m of the universe (not of the subset).
  std::size_t universe_size() const { return m_; }

  bool contains(std::size_t e) const { return e < m_ && bits::test(bits_.data(), e); }
  void insert(std::size_t e);
  void erase(std::size_t e);

  std::size_t count() const { return bits::count(bits_.data(), bits_.size()); }
  /// Early-exit word scans — no full popcount.
  bool is_empty() const { return bits::is_empty(bits_.data(), bits_.size()); }
  bool is_universe() const {
    return bits::is_universe(bits_.data(), bits_.size(), m_);
  }

  /// 64-bit avalanche hash over the bit words (and m) via the shared kernel —
  /// the same splitmix64-finalized scheme WorldSet::hash uses, so FiniteSet
  /// can key memo tables (e.g. Section-4 interval computations) with the
  /// same collision guarantees. Stable within a process run.
  std::size_t hash() const {
    return bits::hash(bits_.data(), bits_.size(),
                      bits::mix64(static_cast<bits::Word>(m_)));
  }

  FiniteSet operator&(const FiniteSet& o) const;
  FiniteSet operator|(const FiniteSet& o) const;
  FiniteSet operator-(const FiniteSet& o) const;
  FiniteSet operator^(const FiniteSet& o) const;
  FiniteSet operator~() const;

  FiniteSet& operator&=(const FiniteSet& o);
  FiniteSet& operator|=(const FiniteSet& o);
  FiniteSet& operator-=(const FiniteSet& o);
  FiniteSet& operator^=(const FiniteSet& o);

  bool operator==(const FiniteSet& o) const {
    return m_ == o.m_ && bits::equal(bits_.data(), o.bits_.data(), bits_.size());
  }
  bool operator!=(const FiniteSet& o) const { return !(*this == o); }

  bool subset_of(const FiniteSet& o) const;
  bool disjoint_with(const FiniteSet& o) const;

  /// Smallest member; throws std::logic_error when empty.
  std::size_t min_element() const;

  std::vector<std::size_t> to_vector() const;

  /// Calls fn(e) for every member in increasing order. The callback inlines
  /// into the kernel word scan.
  template <typename Fn>
  void visit(Fn&& fn) const {
    bits::for_each_bit(bits_.data(), bits_.size(), fn);
  }

  /// "{0,3,7}".
  std::string to_string() const;

  /// Kernel escape hatch: the backing words (words_for(m) of them, tail bits
  /// zero). For fused multi-set scans and benchmarks; prefer the named
  /// predicates below.
  const std::uint64_t* word_data() const { return bits_.data(); }
  std::size_t word_count() const { return bits_.size(); }

 private:
  void check_compatible(const FiniteSet& o) const;

  std::size_t m_;
  std::vector<std::uint64_t> bits_;
};

/// Hash functor for unordered containers keyed by FiniteSet.
struct FiniteSetHash {
  std::size_t operator()(const FiniteSet& s) const { return s.hash(); }
};

// --- Fused predicates (one word scan, no intermediate FiniteSet) ------------

/// (s ∩ b) ⊆ a — Def. 3.1 without materializing S∩B.
bool intersection_subset_of(const FiniteSet& s, const FiniteSet& b,
                            const FiniteSet& a);

/// |x ∩ y|.
std::size_t intersection_count(const FiniteSet& x, const FiniteSet& y);

/// x ∩ y ∩ z = ∅.
bool intersection_disjoint(const FiniteSet& x, const FiniteSet& y,
                           const FiniteSet& z);

/// x ∪ y = {0, ..., m-1}.
bool union_is_universe(const FiniteSet& x, const FiniteSet& y);

/// Calls fn(e) for every element of x ∩ y in increasing order, without
/// materializing the intersection.
template <typename Fn>
void visit_intersection(const FiniteSet& x, const FiniteSet& y, Fn&& fn) {
  if (x.universe_size() != y.universe_size()) {
    throw std::invalid_argument("visit_intersection: mismatched universes");
  }
  bits::for_each_bit_and(x.word_data(), y.word_data(), x.word_count(), fn);
}

/// Views a WorldSet (subset of {0,1}^n) as a FiniteSet over 2^n elements.
FiniteSet to_finite(const WorldSet& ws);

/// Inverse of to_finite; `m` of the input must be a power of two = 2^n.
WorldSet to_world_set(const FiniteSet& fs, unsigned n);

}  // namespace epi
