// Dense subsets of an arbitrary finite universe {0, ..., m-1}. Sections 2-4
// of the paper work over an abstract finite Omega (e.g. the pixel grid of
// Example 4.9), so the possibilistic machinery is written against FiniteSet;
// the hypercube-specific WorldSet converts losslessly (universe size 2^n).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.h"

namespace epi {

class WorldSet;

/// A subset of {0, ..., m-1} stored as a dense bitset.
class FiniteSet {
 public:
  /// The empty subset of a universe of size m >= 1.
  explicit FiniteSet(std::size_t m);
  /// The subset holding exactly `elements`.
  FiniteSet(std::size_t m, std::initializer_list<std::size_t> elements);
  FiniteSet(std::size_t m, const std::vector<std::size_t>& elements);

  static FiniteSet universe(std::size_t m);
  static FiniteSet empty(std::size_t m);
  static FiniteSet singleton(std::size_t m, std::size_t e);
  /// Every element included independently with probability `density`.
  static FiniteSet random(std::size_t m, Rng& rng, double density = 0.5);

  /// Size m of the universe (not of the subset).
  std::size_t universe_size() const { return m_; }

  bool contains(std::size_t e) const;
  void insert(std::size_t e);
  void erase(std::size_t e);

  std::size_t count() const;
  /// Early-exit word scans — no full popcount.
  bool is_empty() const;
  bool is_universe() const;

  FiniteSet operator&(const FiniteSet& o) const;
  FiniteSet operator|(const FiniteSet& o) const;
  FiniteSet operator-(const FiniteSet& o) const;
  FiniteSet operator^(const FiniteSet& o) const;
  FiniteSet operator~() const;

  FiniteSet& operator&=(const FiniteSet& o);
  FiniteSet& operator|=(const FiniteSet& o);
  FiniteSet& operator-=(const FiniteSet& o);
  FiniteSet& operator^=(const FiniteSet& o);

  bool operator==(const FiniteSet& o) const;
  bool operator!=(const FiniteSet& o) const { return !(*this == o); }

  bool subset_of(const FiniteSet& o) const;
  bool disjoint_with(const FiniteSet& o) const;

  /// Smallest member; throws std::logic_error when empty.
  std::size_t min_element() const;

  std::vector<std::size_t> to_vector() const;
  void for_each(const std::function<void(std::size_t)>& fn) const;

  /// "{0,3,7}".
  std::string to_string() const;

 private:
  void check_compatible(const FiniteSet& o) const;

  std::size_t m_;
  std::vector<std::uint64_t> bits_;
};

/// Views a WorldSet (subset of {0,1}^n) as a FiniteSet over 2^n elements.
FiniteSet to_finite(const WorldSet& ws);

/// Inverse of to_finite; `m` of the input must be a power of two = 2^n.
WorldSet to_world_set(const FiniteSet& fs, unsigned n);

}  // namespace epi
