#include "worlds/monotone.h"

namespace epi {

CoordinateDirection coordinate_direction(const WorldSet& a, unsigned i) {
  CoordinateDirection d;
  d.increasing = true;
  d.decreasing = true;
  const std::size_t size = a.omega_size();
  const World bit = World{1} << i;
  for (World w = 0; w < size; ++w) {
    if (w & bit) continue;  // visit each {low, high} pair once
    const bool low = a.contains(w);
    const bool high = a.contains(w | bit);
    if (low && !high) d.increasing = false;
    if (high && !low) d.decreasing = false;
    if (!d.increasing && !d.decreasing) break;
  }
  return d;
}

std::vector<CoordinateDirection> coordinate_directions(const WorldSet& a) {
  std::vector<CoordinateDirection> dirs(a.n());
  for (unsigned i = 0; i < a.n(); ++i) dirs[i] = coordinate_direction(a, i);
  return dirs;
}

bool is_upset(const WorldSet& a) {
  for (unsigned i = 0; i < a.n(); ++i) {
    if (!coordinate_direction(a, i).increasing) return false;
  }
  return true;
}

bool is_downset(const WorldSet& a) {
  for (unsigned i = 0; i < a.n(); ++i) {
    if (!coordinate_direction(a, i).decreasing) return false;
  }
  return true;
}

WorldSet up_closure(const WorldSet& a) {
  WorldSet r = a;
  // One sweep per coordinate suffices: propagating 0->1 per coordinate in
  // sequence reaches every superset.
  for (unsigned i = 0; i < a.n(); ++i) {
    const World bit = World{1} << i;
    const std::size_t size = a.omega_size();
    for (World w = 0; w < size; ++w) {
      if (!(w & bit) && r.contains(w)) r.insert(w | bit);
    }
  }
  return r;
}

WorldSet down_closure(const WorldSet& a) {
  WorldSet r = a;
  for (unsigned i = 0; i < a.n(); ++i) {
    const World bit = World{1} << i;
    const std::size_t size = a.omega_size();
    for (World w = 0; w < size; ++w) {
      if ((w & bit) && r.contains(w)) r.insert(w & ~bit);
    }
  }
  return r;
}

World critical_coordinates(const WorldSet& a) {
  World mask = 0;
  for (unsigned i = 0; i < a.n(); ++i) {
    if (!coordinate_direction(a, i).constant()) mask |= World{1} << i;
  }
  return mask;
}

}  // namespace epi
