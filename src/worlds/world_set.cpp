#include "worlds/world_set.h"

#include <optional>
#include <stdexcept>
#include <utility>

#include "worlds/monotone.h"
#include "worlds/subcube_cover.h"

namespace epi {
namespace {

void check_dense_n(unsigned n) {
  if (n == 0 || n > kMaxCoordinates) {
    throw std::invalid_argument("WorldSet: dense backend needs n in [1, " +
                                std::to_string(kMaxCoordinates) +
                                "]; use SetBackend::kSymbolic above");
  }
}

void check_any_n(unsigned n) {
  if (n == 0 || n > kMaxSymbolicCoordinates) {
    throw std::invalid_argument("WorldSet: n must be in [1, " +
                                std::to_string(kMaxSymbolicCoordinates) + "]");
  }
}

/// View of a set as a cover: a reference to its own cover when symbolic,
/// otherwise a conversion materialized into `storage`.
const SubcubeCover& cover_view(const WorldSet& s,
                               std::optional<SubcubeCover>& storage) {
  if (s.symbolic()) return s.cover();
  storage.emplace(
      SubcubeCover::from_dense(s.word_data(), s.word_count(), s.n()));
  return *storage;
}

}  // namespace

std::string to_string(SetBackend backend) {
  switch (backend) {
    case SetBackend::kAuto:
      return "auto";
    case SetBackend::kDense:
      return "dense";
    case SetBackend::kSymbolic:
      return "symbolic";
  }
  return "unknown";
}

SetBackend parse_backend(const std::string& name) {
  if (name == "auto") return SetBackend::kAuto;
  if (name == "dense") return SetBackend::kDense;
  if (name == "symbolic") return SetBackend::kSymbolic;
  throw std::invalid_argument("unknown backend '" + name +
                              "' (expected auto, dense or symbolic)");
}

SetBackend resolve_backend(SetBackend requested, unsigned n) {
  if (requested != SetBackend::kAuto) return requested;
  return n <= kMaxCoordinates ? SetBackend::kDense : SetBackend::kSymbolic;
}

std::string world_to_string(World w, unsigned n) {
  std::string s(n, '0');
  for (unsigned i = 0; i < n; ++i) {
    if (world_bit(w, i)) s[i] = '1';
  }
  return s;
}

World world_from_string(const std::string& bits) {
  if (bits.size() > kMaxSymbolicCoordinates) {
    throw std::invalid_argument("world string too long");
  }
  World w = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      w |= World{1} << i;
    } else if (bits[i] != '0') {
      throw std::invalid_argument("world string must be over {0,1}");
    }
  }
  return w;
}

WorldSet::WorldSet(unsigned n, SetBackend backend) : n_(n) {
  check_any_n(n);
  if (resolve_backend(backend, n) == SetBackend::kDense) {
    check_dense_n(n);
    bits_.assign(bits::words_for(std::size_t{1} << n), 0);
  } else {
    cover_ = std::make_unique<SubcubeCover>(n);
  }
}

WorldSet::WorldSet(unsigned n, std::initializer_list<World> worlds) : WorldSet(n) {
  for (World w : worlds) insert(w);
}

WorldSet::WorldSet(unsigned n, const std::vector<World>& worlds) : WorldSet(n) {
  for (World w : worlds) insert(w);
}

WorldSet::WorldSet(const WorldSet& o)
    : n_(o.n_),
      bits_(o.bits_),
      cover_(o.cover_ ? std::make_unique<SubcubeCover>(*o.cover_) : nullptr) {}

WorldSet::WorldSet(WorldSet&& o) noexcept = default;

WorldSet& WorldSet::operator=(const WorldSet& o) {
  if (this != &o) {
    n_ = o.n_;
    bits_ = o.bits_;
    cover_ = o.cover_ ? std::make_unique<SubcubeCover>(*o.cover_) : nullptr;
  }
  return *this;
}

WorldSet& WorldSet::operator=(WorldSet&& o) noexcept = default;

WorldSet::~WorldSet() = default;

WorldSet WorldSet::universe(unsigned n, SetBackend backend) {
  WorldSet s(n, backend);
  if (s.cover_) {
    *s.cover_ = SubcubeCover::universe(n);
  } else {
    bits::fill_universe(s.bits_.data(), s.bits_.size(), s.omega_size());
  }
  return s;
}

WorldSet WorldSet::empty(unsigned n, SetBackend backend) {
  return WorldSet(n, backend);
}

WorldSet WorldSet::singleton(unsigned n, World w, SetBackend backend) {
  WorldSet s(n, backend);
  s.insert(w);
  return s;
}

WorldSet WorldSet::random(unsigned n, Rng& rng, double density) {
  WorldSet s(n, SetBackend::kDense);
  const std::size_t size = s.omega_size();
  for (std::size_t w = 0; w < size; ++w) {
    if (rng.next_bool(density)) s.insert(static_cast<World>(w));
  }
  return s;
}

WorldSet WorldSet::from_strings(unsigned n, const std::vector<std::string>& worlds,
                                SetBackend backend) {
  WorldSet s(n, backend);
  for (const auto& str : worlds) {
    if (str.size() != n) throw std::invalid_argument("world string length != n");
    s.insert(world_from_string(str));
  }
  return s;
}

WorldSet WorldSet::from_cover(SubcubeCover cover) {
  WorldSet s(cover.n(), SetBackend::kSymbolic);
  *s.cover_ = std::move(cover);
  return s;
}

const SubcubeCover& WorldSet::cover() const {
  if (!cover_) throw std::logic_error("WorldSet::cover: set is dense");
  return *cover_;
}

WorldSet WorldSet::densified() const {
  if (!cover_) return *this;
  check_dense_n(n_);
  WorldSet s(n_, SetBackend::kDense);
  cover_->write_dense(s.bits_.data(), s.bits_.size());
  return s;
}

WorldSet WorldSet::symbolized() const {
  if (cover_) return *this;
  return from_cover(SubcubeCover::from_dense(bits_.data(), bits_.size(), n_));
}

void WorldSet::adopt(SubcubeCover cover) {
  cover_ = std::make_unique<SubcubeCover>(std::move(cover));
  bits_.clear();
  bits_.shrink_to_fit();
}

void WorldSet::throw_symbolic(const char* op) {
  throw std::logic_error(std::string("WorldSet::") + op +
                         ": dense-only operation on a symbolic set");
}

bool WorldSet::symbolic_contains(World w) const { return cover_->contains(w); }
std::size_t WorldSet::symbolic_count() const {
  return static_cast<std::size_t>(cover_->count());
}
bool WorldSet::symbolic_is_empty() const { return cover_->is_empty(); }
bool WorldSet::symbolic_is_universe() const { return cover_->is_universe(); }
std::size_t WorldSet::symbolic_hash() const {
  return static_cast<std::size_t>(cover_->semantic_hash());
}

void WorldSet::insert(World w) {
  if (w >= omega_size()) throw std::out_of_range("WorldSet::insert: world out of range");
  if (cover_) {
    cover_->insert(w);
  } else {
    bits::set(bits_.data(), w);
  }
}

void WorldSet::erase(World w) {
  if (w >= omega_size()) throw std::out_of_range("WorldSet::erase: world out of range");
  if (cover_) {
    cover_->erase(w);
  } else {
    bits::reset(bits_.data(), w);
  }
}

void WorldSet::check_compatible(const WorldSet& o) const {
  if (n_ != o.n_) throw std::invalid_argument("WorldSet: mismatched n");
}

WorldSet WorldSet::operator&(const WorldSet& o) const {
  WorldSet r = *this;
  return r &= o;
}
WorldSet WorldSet::operator|(const WorldSet& o) const {
  WorldSet r = *this;
  return r |= o;
}
WorldSet WorldSet::operator-(const WorldSet& o) const {
  WorldSet r = *this;
  return r -= o;
}
WorldSet WorldSet::operator^(const WorldSet& o) const {
  WorldSet r = *this;
  return r ^= o;
}

WorldSet WorldSet::operator~() const {
  if (cover_) return from_cover(cover_->complement());
  WorldSet r(n_, SetBackend::kDense);
  bits::complement(r.bits_.data(), bits_.data(), bits_.size(), omega_size());
  return r;
}

WorldSet& WorldSet::operator&=(const WorldSet& o) {
  check_compatible(o);
  if (!cover_ && !o.cover_) {
    bits::and_assign(bits_.data(), o.bits_.data(), bits_.size());
    return *this;
  }
  std::optional<SubcubeCover> mine, theirs;
  adopt(cover_view(*this, mine).intersect(cover_view(o, theirs)));
  return *this;
}
WorldSet& WorldSet::operator|=(const WorldSet& o) {
  check_compatible(o);
  if (!cover_ && !o.cover_) {
    bits::or_assign(bits_.data(), o.bits_.data(), bits_.size());
    return *this;
  }
  std::optional<SubcubeCover> mine, theirs;
  adopt(cover_view(*this, mine).unite(cover_view(o, theirs)));
  return *this;
}
WorldSet& WorldSet::operator-=(const WorldSet& o) {
  check_compatible(o);
  if (!cover_ && !o.cover_) {
    bits::and_not_assign(bits_.data(), o.bits_.data(), bits_.size());
    return *this;
  }
  std::optional<SubcubeCover> mine, theirs;
  adopt(cover_view(*this, mine).subtract(cover_view(o, theirs)));
  return *this;
}
WorldSet& WorldSet::operator^=(const WorldSet& o) {
  check_compatible(o);
  if (!cover_ && !o.cover_) {
    bits::xor_assign(bits_.data(), o.bits_.data(), bits_.size());
    return *this;
  }
  std::optional<SubcubeCover> mine, theirs;
  adopt(cover_view(*this, mine).exclusive_or(cover_view(o, theirs)));
  return *this;
}

bool WorldSet::operator==(const WorldSet& o) const {
  if (n_ != o.n_) return false;
  if (!cover_ && !o.cover_) {
    return bits::equal(bits_.data(), o.bits_.data(), bits_.size());
  }
  if (cover_ && o.cover_) return cover_->equals(*o.cover_);
  // Mixed: a dense operand proves n <= kMaxCoordinates, so densify the
  // symbolic side and compare words exactly.
  return cover_ ? (densified() == o) : (*this == o.densified());
}

bool WorldSet::subset_of(const WorldSet& o) const {
  check_compatible(o);
  if (!cover_ && !o.cover_) {
    return bits::subset_of(bits_.data(), o.bits_.data(), bits_.size());
  }
  if (cover_ && o.cover_) return cover_->subset_of(*o.cover_);
  return cover_ ? densified().subset_of(o) : subset_of(o.densified());
}

bool WorldSet::disjoint_with(const WorldSet& o) const {
  check_compatible(o);
  if (!cover_ && !o.cover_) {
    return bits::disjoint(bits_.data(), o.bits_.data(), bits_.size());
  }
  std::optional<SubcubeCover> mine, theirs;
  return cover_view(*this, mine).disjoint_with(cover_view(o, theirs));
}

World WorldSet::min_world() const {
  if (cover_) {
    if (cover_->is_empty()) throw std::logic_error("min_world of empty WorldSet");
    return cover_->min_world();
  }
  const std::size_t first = bits::find_first(bits_.data(), bits_.size());
  if (first == bits::npos) throw std::logic_error("min_world of empty WorldSet");
  return static_cast<World>(first);
}

std::vector<World> WorldSet::to_vector() const {
  if (cover_) throw_symbolic("to_vector");
  std::vector<World> v;
  v.reserve(count());
  visit([&v](World w) { v.push_back(w); });
  return v;
}

WorldSet WorldSet::xor_with(World mask) const {
  if (cover_) return from_cover(cover_->xor_with(mask));
  WorldSet r(n_, SetBackend::kDense);
  visit([&r, mask](World w) { r.insert(w ^ mask); });
  return r;
}

WorldSet WorldSet::flip_coordinate(unsigned i) const {
  return xor_with(World{1} << i);
}

WorldSet WorldSet::setwise_meet(const WorldSet& o) const {
  check_compatible(o);
  if (cover_ || o.cover_) throw_symbolic("setwise_meet");
  // Thm. 5.3 early exits: an empty operand yields the empty set; meeting
  // with the full universe yields every u ∧ v = every subset of a member,
  // i.e. the down closure — both avoid the O(|A|·|B|) pairwise loop.
  if (is_empty() || o.is_empty()) return WorldSet(n_);
  if (is_universe()) return down_closure(o);
  if (o.is_universe()) return down_closure(*this);
  WorldSet r(n_);
  visit([&](World u) { o.visit([&](World v) { r.insert(u & v); }); });
  return r;
}

WorldSet WorldSet::setwise_join(const WorldSet& o) const {
  check_compatible(o);
  if (cover_ || o.cover_) throw_symbolic("setwise_join");
  if (is_empty() || o.is_empty()) return WorldSet(n_);
  if (is_universe()) return up_closure(o);
  if (o.is_universe()) return up_closure(*this);
  WorldSet r(n_);
  visit([&](World u) { o.visit([&](World v) { r.insert(u | v); }); });
  return r;
}

std::string WorldSet::to_string() const {
  if (cover_) return cover_->to_string();
  std::string s = "{";
  bool first = true;
  visit([&](World w) {
    if (!first) s += ",";
    first = false;
    s += world_to_string(w, n_);
  });
  s += "}";
  return s;
}

bool intersection_subset_of(const WorldSet& s, const WorldSet& b,
                            const WorldSet& a) {
  if (s.n() != b.n() || s.n() != a.n()) {
    throw std::invalid_argument("intersection_subset_of: mismatched n");
  }
  if (!s.symbolic() && !b.symbolic() && !a.symbolic()) {
    return bits::intersection_subset_of(s.word_data(), b.word_data(), a.word_data(),
                                        s.word_count());
  }
  // (s ∩ b) ⊆ a  ⇔  (s ∩ b) \ a = ∅, all at the cover level.
  std::optional<SubcubeCover> cs, cb, ca;
  return cover_view(s, cs)
      .intersect(cover_view(b, cb))
      .subtract(cover_view(a, ca))
      .is_empty();
}

std::size_t intersection_count(const WorldSet& x, const WorldSet& y) {
  if (x.n() != y.n()) throw std::invalid_argument("intersection_count: mismatched n");
  if (!x.symbolic() && !y.symbolic()) {
    return bits::intersection_count(x.word_data(), y.word_data(), x.word_count());
  }
  std::optional<SubcubeCover> cx, cy;
  return static_cast<std::size_t>(
      cover_view(x, cx).intersect(cover_view(y, cy)).count());
}

bool intersection3_empty(const WorldSet& x, const WorldSet& y,
                         const WorldSet& z) {
  if (x.n() != y.n() || x.n() != z.n()) {
    throw std::invalid_argument("intersection3_empty: mismatched n");
  }
  if (!x.symbolic() && !y.symbolic() && !z.symbolic()) {
    return bits::intersection3_empty(x.word_data(), y.word_data(), z.word_data(),
                                     x.word_count());
  }
  std::optional<SubcubeCover> cx, cy, cz;
  return cover_view(x, cx)
      .intersect(cover_view(y, cy))
      .intersect(cover_view(z, cz))
      .is_empty();
}

bool union_is_universe(const WorldSet& x, const WorldSet& y) {
  if (x.n() != y.n()) throw std::invalid_argument("union_is_universe: mismatched n");
  if (!x.symbolic() && !y.symbolic()) {
    return bits::union_is_universe(x.word_data(), y.word_data(), x.word_count(),
                                   x.omega_size());
  }
  std::optional<SubcubeCover> cx, cy;
  return cover_view(x, cx).unite(cover_view(y, cy)).is_universe();
}

double masked_weight_sum(const WorldSet& s, const double* weights) {
  if (s.symbolic()) {
    throw std::invalid_argument(
        "masked_weight_sum: dense-only (per-world weight tables are 2^n); "
        "symbolic sets take product_weight_sum");
  }
  return bits::masked_weight_sum(s.word_data(), s.word_count(), weights);
}

double intersection_weight_sum(const WorldSet& x, const WorldSet& y,
                               const double* weights) {
  if (x.n() != y.n()) {
    throw std::invalid_argument("intersection_weight_sum: mismatched n");
  }
  if (x.symbolic() || y.symbolic()) {
    throw std::invalid_argument(
        "intersection_weight_sum: dense-only (per-world weight tables are "
        "2^n); symbolic sets take product_weight_sum");
  }
  return bits::intersection_weight_sum(x.word_data(), y.word_data(),
                                       x.word_count(), weights);
}

double product_weight_sum(const WorldSet& s, const double* probs) {
  if (s.symbolic()) return s.cover().product_weight(probs);
  const unsigned n = s.n();
  double total = 0.0;
  s.visit([&](World w) {
    double mass = 1.0;
    for (unsigned i = 0; i < n; ++i) {
      mass *= world_bit(w, i) ? probs[i] : 1.0 - probs[i];
    }
    total += mass;
  });
  return total;
}

}  // namespace epi
