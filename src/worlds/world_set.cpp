#include "worlds/world_set.h"

#include <bit>
#include <stdexcept>

namespace epi {
namespace {

std::size_t words_for(unsigned n) {
  const std::size_t size = std::size_t{1} << n;
  return (size + 63) / 64;
}

void check_n(unsigned n) {
  if (n == 0 || n > kMaxCoordinates) {
    throw std::invalid_argument("WorldSet: n must be in [1, " +
                                std::to_string(kMaxCoordinates) + "]");
  }
}

}  // namespace

std::string world_to_string(World w, unsigned n) {
  std::string s(n, '0');
  for (unsigned i = 0; i < n; ++i) {
    if (world_bit(w, i)) s[i] = '1';
  }
  return s;
}

World world_from_string(const std::string& bits) {
  if (bits.size() > kMaxCoordinates) {
    throw std::invalid_argument("world string too long");
  }
  World w = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      w |= World{1} << i;
    } else if (bits[i] != '0') {
      throw std::invalid_argument("world string must be over {0,1}");
    }
  }
  return w;
}

WorldSet::WorldSet(unsigned n) : n_(n), bits_(words_for(n), 0) { check_n(n); }

WorldSet::WorldSet(unsigned n, std::initializer_list<World> worlds) : WorldSet(n) {
  for (World w : worlds) insert(w);
}

WorldSet::WorldSet(unsigned n, const std::vector<World>& worlds) : WorldSet(n) {
  for (World w : worlds) insert(w);
}

WorldSet WorldSet::universe(unsigned n) {
  WorldSet s(n);
  const std::size_t size = s.omega_size();
  for (std::size_t i = 0; i < s.bits_.size(); ++i) s.bits_[i] = ~std::uint64_t{0};
  // Clear bits beyond 2^n in the last word (only possible when n < 6).
  const unsigned tail = size % 64;
  if (tail != 0) s.bits_.back() = (std::uint64_t{1} << tail) - 1;
  return s;
}

WorldSet WorldSet::empty(unsigned n) { return WorldSet(n); }

WorldSet WorldSet::singleton(unsigned n, World w) {
  WorldSet s(n);
  s.insert(w);
  return s;
}

WorldSet WorldSet::random(unsigned n, Rng& rng, double density) {
  WorldSet s(n);
  const std::size_t size = s.omega_size();
  for (std::size_t w = 0; w < size; ++w) {
    if (rng.next_bool(density)) s.insert(static_cast<World>(w));
  }
  return s;
}

WorldSet WorldSet::from_strings(unsigned n, const std::vector<std::string>& worlds) {
  WorldSet s(n);
  for (const auto& str : worlds) {
    if (str.size() != n) throw std::invalid_argument("world string length != n");
    s.insert(world_from_string(str));
  }
  return s;
}

bool WorldSet::contains(World w) const {
  if (w >= omega_size()) return false;
  return (bits_[w / 64] >> (w % 64)) & 1u;
}

void WorldSet::insert(World w) {
  if (w >= omega_size()) throw std::out_of_range("WorldSet::insert: world out of range");
  bits_[w / 64] |= std::uint64_t{1} << (w % 64);
}

void WorldSet::erase(World w) {
  if (w >= omega_size()) throw std::out_of_range("WorldSet::erase: world out of range");
  bits_[w / 64] &= ~(std::uint64_t{1} << (w % 64));
}

std::size_t WorldSet::count() const {
  std::size_t c = 0;
  for (std::uint64_t word : bits_) c += static_cast<std::size_t>(std::popcount(word));
  return c;
}

bool WorldSet::is_empty() const {
  for (std::uint64_t word : bits_) {
    if (word != 0) return false;
  }
  return true;
}

bool WorldSet::is_universe() const {
  const unsigned tail = omega_size() % 64;
  const std::size_t full_words = bits_.size() - (tail != 0 ? 1 : 0);
  for (std::size_t i = 0; i < full_words; ++i) {
    if (bits_[i] != ~std::uint64_t{0}) return false;
  }
  return tail == 0 || bits_.back() == (std::uint64_t{1} << tail) - 1;
}

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mix (every input bit flips
/// each output bit with probability ~1/2).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t WorldSet::hash() const {
  // Each word is avalanched before combining, and the accumulator is
  // finalized once more, so single-bit set differences spread over the whole
  // 64-bit output. Plain FNV-1a (the previous scheme) left sparse sets
  // clustered in the low bits, which the service verdict cache — keyed by
  // (hash(A), hash(B), prior) — cannot afford.
  std::uint64_t h = 0xcbf29ce484222325ull ^ (std::uint64_t{n_} << 32);
  std::uint64_t position = 0;
  for (std::uint64_t word : bits_) {
    h = (h ^ mix64(word ^ position)) * 0x100000001b3ull;
    ++position;
  }
  return static_cast<std::size_t>(mix64(h));
}

void WorldSet::check_compatible(const WorldSet& o) const {
  if (n_ != o.n_) throw std::invalid_argument("WorldSet: mismatched n");
}

WorldSet WorldSet::operator&(const WorldSet& o) const {
  WorldSet r = *this;
  return r &= o;
}
WorldSet WorldSet::operator|(const WorldSet& o) const {
  WorldSet r = *this;
  return r |= o;
}
WorldSet WorldSet::operator-(const WorldSet& o) const {
  WorldSet r = *this;
  return r -= o;
}
WorldSet WorldSet::operator^(const WorldSet& o) const {
  WorldSet r = *this;
  return r ^= o;
}

WorldSet WorldSet::operator~() const {
  WorldSet r(n_);
  const WorldSet u = universe(n_);
  for (std::size_t i = 0; i < bits_.size(); ++i) r.bits_[i] = u.bits_[i] & ~bits_[i];
  return r;
}

WorldSet& WorldSet::operator&=(const WorldSet& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= o.bits_[i];
  return *this;
}
WorldSet& WorldSet::operator|=(const WorldSet& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= o.bits_[i];
  return *this;
}
WorldSet& WorldSet::operator-=(const WorldSet& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= ~o.bits_[i];
  return *this;
}
WorldSet& WorldSet::operator^=(const WorldSet& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] ^= o.bits_[i];
  return *this;
}

bool WorldSet::operator==(const WorldSet& o) const {
  return n_ == o.n_ && bits_ == o.bits_;
}

bool WorldSet::subset_of(const WorldSet& o) const {
  check_compatible(o);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] & ~o.bits_[i]) return false;
  }
  return true;
}

bool WorldSet::disjoint_with(const WorldSet& o) const {
  check_compatible(o);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] & o.bits_[i]) return false;
  }
  return true;
}

World WorldSet::min_world() const {
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] != 0) {
      return static_cast<World>(i * 64 + static_cast<unsigned>(std::countr_zero(bits_[i])));
    }
  }
  throw std::logic_error("min_world of empty WorldSet");
}

std::vector<World> WorldSet::to_vector() const {
  std::vector<World> v;
  v.reserve(count());
  for_each([&v](World w) { v.push_back(w); });
  return v;
}

void WorldSet::for_each(const std::function<void(World)>& fn) const {
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    std::uint64_t word = bits_[i];
    while (word != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
      fn(static_cast<World>(i * 64 + bit));
      word &= word - 1;
    }
  }
}

WorldSet WorldSet::xor_with(World mask) const {
  WorldSet r(n_);
  for_each([&r, mask](World w) { r.insert(w ^ mask); });
  return r;
}

WorldSet WorldSet::flip_coordinate(unsigned i) const {
  return xor_with(World{1} << i);
}

WorldSet WorldSet::setwise_meet(const WorldSet& o) const {
  check_compatible(o);
  WorldSet r(n_);
  for_each([&](World u) { o.for_each([&](World v) { r.insert(u & v); }); });
  return r;
}

WorldSet WorldSet::setwise_join(const WorldSet& o) const {
  check_compatible(o);
  WorldSet r(n_);
  for_each([&](World u) { o.for_each([&](World v) { r.insert(u | v); }); });
  return r;
}

std::string WorldSet::to_string() const {
  std::string s = "{";
  bool first = true;
  for_each([&](World w) {
    if (!first) s += ",";
    first = false;
    s += world_to_string(w, n_);
  });
  s += "}";
  return s;
}

}  // namespace epi
