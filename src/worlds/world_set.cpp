#include "worlds/world_set.h"

#include <stdexcept>

#include "worlds/monotone.h"

namespace epi {
namespace {

void check_n(unsigned n) {
  if (n == 0 || n > kMaxCoordinates) {
    throw std::invalid_argument("WorldSet: n must be in [1, " +
                                std::to_string(kMaxCoordinates) + "]");
  }
}

}  // namespace

std::string world_to_string(World w, unsigned n) {
  std::string s(n, '0');
  for (unsigned i = 0; i < n; ++i) {
    if (world_bit(w, i)) s[i] = '1';
  }
  return s;
}

World world_from_string(const std::string& bits) {
  if (bits.size() > kMaxCoordinates) {
    throw std::invalid_argument("world string too long");
  }
  World w = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      w |= World{1} << i;
    } else if (bits[i] != '0') {
      throw std::invalid_argument("world string must be over {0,1}");
    }
  }
  return w;
}

WorldSet::WorldSet(unsigned n)
    : n_(n), bits_(bits::words_for(std::size_t{1} << (n <= kMaxCoordinates ? n : 0)), 0) {
  check_n(n);
}

WorldSet::WorldSet(unsigned n, std::initializer_list<World> worlds) : WorldSet(n) {
  for (World w : worlds) insert(w);
}

WorldSet::WorldSet(unsigned n, const std::vector<World>& worlds) : WorldSet(n) {
  for (World w : worlds) insert(w);
}

WorldSet WorldSet::universe(unsigned n) {
  WorldSet s(n);
  bits::fill_universe(s.bits_.data(), s.bits_.size(), s.omega_size());
  return s;
}

WorldSet WorldSet::empty(unsigned n) { return WorldSet(n); }

WorldSet WorldSet::singleton(unsigned n, World w) {
  WorldSet s(n);
  s.insert(w);
  return s;
}

WorldSet WorldSet::random(unsigned n, Rng& rng, double density) {
  WorldSet s(n);
  const std::size_t size = s.omega_size();
  for (std::size_t w = 0; w < size; ++w) {
    if (rng.next_bool(density)) s.insert(static_cast<World>(w));
  }
  return s;
}

WorldSet WorldSet::from_strings(unsigned n, const std::vector<std::string>& worlds) {
  WorldSet s(n);
  for (const auto& str : worlds) {
    if (str.size() != n) throw std::invalid_argument("world string length != n");
    s.insert(world_from_string(str));
  }
  return s;
}

void WorldSet::insert(World w) {
  if (w >= omega_size()) throw std::out_of_range("WorldSet::insert: world out of range");
  bits::set(bits_.data(), w);
}

void WorldSet::erase(World w) {
  if (w >= omega_size()) throw std::out_of_range("WorldSet::erase: world out of range");
  bits::reset(bits_.data(), w);
}

void WorldSet::check_compatible(const WorldSet& o) const {
  if (n_ != o.n_) throw std::invalid_argument("WorldSet: mismatched n");
}

WorldSet WorldSet::operator&(const WorldSet& o) const {
  WorldSet r = *this;
  return r &= o;
}
WorldSet WorldSet::operator|(const WorldSet& o) const {
  WorldSet r = *this;
  return r |= o;
}
WorldSet WorldSet::operator-(const WorldSet& o) const {
  WorldSet r = *this;
  return r -= o;
}
WorldSet WorldSet::operator^(const WorldSet& o) const {
  WorldSet r = *this;
  return r ^= o;
}

WorldSet WorldSet::operator~() const {
  WorldSet r(n_);
  bits::complement(r.bits_.data(), bits_.data(), bits_.size(), omega_size());
  return r;
}

WorldSet& WorldSet::operator&=(const WorldSet& o) {
  check_compatible(o);
  bits::and_assign(bits_.data(), o.bits_.data(), bits_.size());
  return *this;
}
WorldSet& WorldSet::operator|=(const WorldSet& o) {
  check_compatible(o);
  bits::or_assign(bits_.data(), o.bits_.data(), bits_.size());
  return *this;
}
WorldSet& WorldSet::operator-=(const WorldSet& o) {
  check_compatible(o);
  bits::and_not_assign(bits_.data(), o.bits_.data(), bits_.size());
  return *this;
}
WorldSet& WorldSet::operator^=(const WorldSet& o) {
  check_compatible(o);
  bits::xor_assign(bits_.data(), o.bits_.data(), bits_.size());
  return *this;
}

bool WorldSet::subset_of(const WorldSet& o) const {
  check_compatible(o);
  return bits::subset_of(bits_.data(), o.bits_.data(), bits_.size());
}

bool WorldSet::disjoint_with(const WorldSet& o) const {
  check_compatible(o);
  return bits::disjoint(bits_.data(), o.bits_.data(), bits_.size());
}

World WorldSet::min_world() const {
  const std::size_t first = bits::find_first(bits_.data(), bits_.size());
  if (first == bits::npos) throw std::logic_error("min_world of empty WorldSet");
  return static_cast<World>(first);
}

std::vector<World> WorldSet::to_vector() const {
  std::vector<World> v;
  v.reserve(count());
  visit([&v](World w) { v.push_back(w); });
  return v;
}

WorldSet WorldSet::xor_with(World mask) const {
  WorldSet r(n_);
  visit([&r, mask](World w) { r.insert(w ^ mask); });
  return r;
}

WorldSet WorldSet::flip_coordinate(unsigned i) const {
  return xor_with(World{1} << i);
}

WorldSet WorldSet::setwise_meet(const WorldSet& o) const {
  check_compatible(o);
  // Thm. 5.3 early exits: an empty operand yields the empty set; meeting
  // with the full universe yields every u ∧ v = every subset of a member,
  // i.e. the down closure — both avoid the O(|A|·|B|) pairwise loop.
  if (is_empty() || o.is_empty()) return WorldSet(n_);
  if (is_universe()) return down_closure(o);
  if (o.is_universe()) return down_closure(*this);
  WorldSet r(n_);
  visit([&](World u) { o.visit([&](World v) { r.insert(u & v); }); });
  return r;
}

WorldSet WorldSet::setwise_join(const WorldSet& o) const {
  check_compatible(o);
  if (is_empty() || o.is_empty()) return WorldSet(n_);
  if (is_universe()) return up_closure(o);
  if (o.is_universe()) return up_closure(*this);
  WorldSet r(n_);
  visit([&](World u) { o.visit([&](World v) { r.insert(u | v); }); });
  return r;
}

std::string WorldSet::to_string() const {
  std::string s = "{";
  bool first = true;
  visit([&](World w) {
    if (!first) s += ",";
    first = false;
    s += world_to_string(w, n_);
  });
  s += "}";
  return s;
}

bool intersection_subset_of(const WorldSet& s, const WorldSet& b,
                            const WorldSet& a) {
  if (s.n() != b.n() || s.n() != a.n()) {
    throw std::invalid_argument("intersection_subset_of: mismatched n");
  }
  return bits::intersection_subset_of(s.word_data(), b.word_data(), a.word_data(),
                                      s.word_count());
}

std::size_t intersection_count(const WorldSet& x, const WorldSet& y) {
  if (x.n() != y.n()) throw std::invalid_argument("intersection_count: mismatched n");
  return bits::intersection_count(x.word_data(), y.word_data(), x.word_count());
}

bool union_is_universe(const WorldSet& x, const WorldSet& y) {
  if (x.n() != y.n()) throw std::invalid_argument("union_is_universe: mismatched n");
  return bits::union_is_universe(x.word_data(), y.word_data(), x.word_count(),
                                 x.omega_size());
}

double masked_weight_sum(const WorldSet& s, const double* weights) {
  return bits::masked_weight_sum(s.word_data(), s.word_count(), weights);
}

double intersection_weight_sum(const WorldSet& x, const WorldSet& y,
                               const double* weights) {
  if (x.n() != y.n()) {
    throw std::invalid_argument("intersection_weight_sum: mismatched n");
  }
  return bits::intersection_weight_sum(x.word_data(), y.word_data(),
                                       x.word_count(), weights);
}

}  // namespace epi
