// Monotone-structure analysis of world sets: up-/down-sets (Section 5),
// critical coordinates (Theorem 5.7), and per-coordinate direction analysis
// used by the monotonicity criterion.
#pragma once

#include <vector>

#include "worlds/world_set.h"

namespace epi {

/// True when A is an up-set: w in A and w <= w' imply w' in A.
bool is_upset(const WorldSet& a);

/// True when A is a down-set: w in A and w' <= w imply w' in A.
bool is_downset(const WorldSet& a);

/// Smallest up-set containing A.
WorldSet up_closure(const WorldSet& a);

/// Smallest down-set containing A.
WorldSet down_closure(const WorldSet& a);

/// Coordinate i is critical for A when flipping bit i can change membership
/// (the notion behind Miklau–Suciu's "critical records", Theorem 5.7).
/// Returns the mask of critical coordinates.
World critical_coordinates(const WorldSet& a);

/// How membership in a set can depend on one coordinate.
struct CoordinateDirection {
  bool increasing = false;  ///< w[i]=0, w in A  =>  flip_i(w) in A
  bool decreasing = false;  ///< w[i]=1, w in A  =>  flip_i(w) in A
  /// Constant (non-critical) coordinates are both increasing and decreasing.
  bool constant() const { return increasing && decreasing; }
};

/// Direction analysis of A in coordinate i, in O(2^n).
CoordinateDirection coordinate_direction(const WorldSet& a, unsigned i);

/// Directions for all n coordinates.
std::vector<CoordinateDirection> coordinate_directions(const WorldSet& a);

}  // namespace epi
