#include "worlds/dense_bits.h"

namespace epi {
namespace bits {

Word mix64(Word x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t hash(const Word* w, std::size_t nw, Word seed) {
  // Each word is avalanched (salted by its position) before an FNV-style
  // combine, and the accumulator is finalized once more, so single-bit set
  // differences spread over the whole 64-bit output. Plain FNV-1a (the
  // scheme both set types used before the kernel existed) left sparse sets
  // clustered in the low bits, which hash-keyed caches — the engine's
  // (A, B) pair memo and the service verdict cache — cannot afford.
  Word h = 0xcbf29ce484222325ull ^ seed;
  for (std::size_t i = 0; i < nw; ++i) {
    h = (h ^ mix64(w[i] ^ static_cast<Word>(i))) * 0x100000001b3ull;
  }
  return static_cast<std::size_t>(mix64(h));
}

}  // namespace bits
}  // namespace epi
