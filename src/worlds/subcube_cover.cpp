#include "worlds/subcube_cover.h"

#include <algorithm>
#include <stdexcept>

#include "worlds/dense_bits.h"

namespace epi {
namespace {

void check_symbolic_n(unsigned n) {
  if (n == 0 || n > kMaxSymbolicCoordinates) {
    throw std::invalid_argument("SubcubeCover: n must be in [1, " +
                                std::to_string(kMaxSymbolicCoordinates) + "]");
  }
}

void check_cube_bounds(unsigned n, const MatchVector& c) {
  const World mask = coordinate_mask(n);
  if ((c.stars & ~mask) != 0 || (c.values & ~mask) != 0) {
    throw std::invalid_argument("SubcubeCover: cube uses coordinates >= n");
  }
  if ((c.values & c.stars) != 0) {
    throw std::invalid_argument("SubcubeCover: cube has values on starred coordinates");
  }
}

void check_cover_budget(std::size_t size) {
  if (size > SubcubeCover::kMaxCubes) {
    throw std::length_error(
        "SubcubeCover: cover exceeded " + std::to_string(SubcubeCover::kMaxCubes) +
        " cubes; the set has no compact subcube structure");
  }
}

bool key_less(const MatchVector& a, const MatchVector& b) {
  return a.key() < b.key();
}

/// cur := cur \ Box(d), keeping the pieces pairwise disjoint if they were.
void subtract_cube_from_all(std::vector<MatchVector>& cur, const MatchVector& d) {
  std::vector<MatchVector> next;
  next.reserve(cur.size());
  for (const MatchVector& c : cur) cube_subtract(c, d, next);
  check_cover_budget(next.size());
  cur = std::move(next);
}

/// True when Box(c) is covered by the union of `cubes`.
bool cube_covered_by(const MatchVector& c, const std::vector<MatchVector>& cubes) {
  std::vector<MatchVector> pieces{c};
  for (const MatchVector& d : cubes) {
    subtract_cube_from_all(pieces, d);
    if (pieces.empty()) return true;
  }
  return pieces.empty();
}

/// Merges the canonical covers of the two halves of a set split on
/// coordinate `coord` (lo: coord = 0, hi: coord = 1) into the canonical
/// cover of the whole: cubes present in both halves get a '*' on `coord`.
/// Inputs are sorted by key with unique keys; so is the output.
std::vector<MatchVector> merge_halves(const std::vector<MatchVector>& lo,
                                      const std::vector<MatchVector>& hi,
                                      World coord_bit) {
  std::vector<MatchVector> out;
  out.reserve(lo.size() + hi.size());
  std::size_t i = 0, j = 0;
  while (i < lo.size() || j < hi.size()) {
    if (j == hi.size() || (i < lo.size() && lo[i].key() < hi[j].key())) {
      out.push_back(lo[i++]);  // coord fixed to 0: bits already clear
    } else if (i == lo.size() || hi[j].key() < lo[i].key()) {
      MatchVector c = hi[j++];
      c.values |= coord_bit;  // coord fixed to 1
      out.push_back(c);
    } else {
      MatchVector c = lo[i];
      c.stars |= coord_bit;  // in both halves: coord is free
      out.push_back(c);
      ++i, ++j;
    }
  }
  std::sort(out.begin(), out.end(), key_less);
  return out;
}

/// Canonical cover of the low 2^m bits of `word`, m <= 6.
std::vector<MatchVector> extract_from_word(std::uint64_t word, unsigned m) {
  if (m == 0) {
    if (word & 1u) return {MatchVector{}};
    return {};
  }
  const unsigned half_bits = 1u << (m - 1);
  const std::uint64_t half_mask =
      half_bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << half_bits) - 1u;
  const auto lo = extract_from_word(word & half_mask, m - 1);
  const auto hi = extract_from_word((word >> half_bits) & half_mask, m - 1);
  return merge_halves(lo, hi, World{1} << (m - 1));
}

/// Canonical cover of the set held in words[0 .. words_for(2^m)), m >= 1.
std::vector<MatchVector> extract_from_words(const std::uint64_t* words, unsigned m) {
  if (m <= 6) return extract_from_word(words[0], m);
  const std::size_t half_words = std::size_t{1} << (m - 7);
  const auto lo = extract_from_words(words, m - 1);
  const auto hi = extract_from_words(words + half_words, m - 1);
  return merge_halves(lo, hi, World{1} << (m - 1));
}

}  // namespace

void cube_subtract(const MatchVector& c, const MatchVector& d,
                   std::vector<MatchVector>& out) {
  if (!cubes_intersect(c, d)) {
    out.push_back(c);
    return;
  }
  // Coordinates where c still has freedom that d constrains. When there are
  // none, c ⊆ d (they intersect and d fixes nothing c leaves open).
  World free = c.stars & ~d.stars;
  MatchVector prefix = c;
  while (free != 0) {
    const World bit = free & (~free + 1u);  // lowest remaining coordinate
    free &= free - 1u;
    MatchVector piece = prefix;  // pin this coordinate to the flip of d's value
    piece.stars &= ~bit;
    piece.values |= ~d.values & bit;
    out.push_back(piece);
    prefix.stars &= ~bit;  // continue inside d on this coordinate
    prefix.values |= d.values & bit;
  }
}

SubcubeCover::SubcubeCover(unsigned n) : n_(n) { check_symbolic_n(n); }

SubcubeCover::SubcubeCover(unsigned n, std::vector<MatchVector> cubes)
    : n_(n), cubes_(std::move(cubes)) {
  check_symbolic_n(n);
}

SubcubeCover::SubcubeCover(const SubcubeCover& o)
    : n_(o.n_),
      cubes_(o.cubes_),
      hash_cache_(o.hash_cache_.load(std::memory_order_relaxed)),
      count_cache_(o.count_cache_.load(std::memory_order_relaxed)) {}

SubcubeCover::SubcubeCover(SubcubeCover&& o) noexcept
    : n_(o.n_),
      cubes_(std::move(o.cubes_)),
      hash_cache_(o.hash_cache_.load(std::memory_order_relaxed)),
      count_cache_(o.count_cache_.load(std::memory_order_relaxed)) {}

SubcubeCover& SubcubeCover::operator=(const SubcubeCover& o) {
  if (this != &o) {
    n_ = o.n_;
    cubes_ = o.cubes_;
    hash_cache_.store(o.hash_cache_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    count_cache_.store(o.count_cache_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
  return *this;
}

SubcubeCover& SubcubeCover::operator=(SubcubeCover&& o) noexcept {
  if (this != &o) {
    n_ = o.n_;
    cubes_ = std::move(o.cubes_);
    hash_cache_.store(o.hash_cache_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    count_cache_.store(o.count_cache_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
  return *this;
}

SubcubeCover SubcubeCover::empty(unsigned n) { return SubcubeCover(n); }

SubcubeCover SubcubeCover::universe(unsigned n) {
  return cube(n, MatchVector{coordinate_mask(n), 0});
}

SubcubeCover SubcubeCover::singleton(unsigned n, World w) {
  check_symbolic_n(n);
  if ((w & ~coordinate_mask(n)) != 0) {
    throw std::out_of_range("SubcubeCover::singleton: world out of range");
  }
  return cube(n, MatchVector{0, w});
}

SubcubeCover SubcubeCover::cube(unsigned n, MatchVector c) {
  check_symbolic_n(n);
  check_cube_bounds(n, c);
  SubcubeCover s(n);
  s.cubes_.push_back(c);
  return s;
}

SubcubeCover SubcubeCover::from_cubes(unsigned n, std::vector<MatchVector> cubes) {
  check_symbolic_n(n);
  for (const MatchVector& c : cubes) check_cube_bounds(n, c);
  SubcubeCover s(n, std::move(cubes));
  s.canonicalize();
  return s;
}

SubcubeCover SubcubeCover::from_dense(const std::uint64_t* words,
                                      std::size_t word_count, unsigned n) {
  check_symbolic_n(n);
  if (n > kMaxCoordinates) {
    throw std::invalid_argument("SubcubeCover::from_dense: n exceeds the dense cap");
  }
  if (word_count != bits::words_for(std::size_t{1} << n)) {
    throw std::invalid_argument("SubcubeCover::from_dense: wrong word count");
  }
  SubcubeCover s(n, extract_from_words(words, n));
  s.canonicalize();  // Shannon extraction is already sorted; absorption only
  return s;
}

void SubcubeCover::invalidate_caches() {
  hash_cache_.store(0, std::memory_order_relaxed);
  count_cache_.store(kNoCount, std::memory_order_relaxed);
}

void SubcubeCover::canonicalize() {
  invalidate_caches();
  check_cover_budget(cubes_.size());
  std::sort(cubes_.begin(), cubes_.end(), key_less);
  cubes_.erase(std::unique(cubes_.begin(), cubes_.end()), cubes_.end());
  if (cubes_.size() > kAbsorptionLimit) return;
  // Absorption: drop any cube contained in another. A cube can only be
  // contained in one with at least as many stars, but the O(k^2) scan is
  // simplest and k is capped above.
  std::vector<MatchVector> kept;
  kept.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    bool absorbed = false;
    for (std::size_t j = 0; j < cubes_.size() && !absorbed; ++j) {
      if (i == j) continue;
      // On ties (identical cubes are already deduplicated) containment is
      // strict, so mutual absorption cannot drop both.
      if (cube_subset(cubes_[i], cubes_[j])) absorbed = true;
    }
    if (!absorbed) kept.push_back(cubes_[i]);
  }
  cubes_ = std::move(kept);
}

bool SubcubeCover::contains(World w) const {
  if ((w & ~coordinate_mask(n_)) != 0) return false;
  for (const MatchVector& c : cubes_) {
    if (refines(w, c)) return true;
  }
  return false;
}

bool SubcubeCover::is_universe() const {
  if (cubes_.empty()) return false;
  return cube_covered_by(MatchVector{coordinate_mask(n_), 0}, cubes_);
}

std::uint64_t SubcubeCover::count() const {
  const std::uint64_t cached = count_cache_.load(std::memory_order_acquire);
  if (cached != kNoCount) return cached;
  std::uint64_t total = 0;
  for (const MatchVector& c : disjoint_cubes()) {
    total += std::uint64_t{1} << c.star_count();
  }
  count_cache_.store(total, std::memory_order_release);
  return total;
}

World SubcubeCover::min_world() const {
  if (cubes_.empty()) throw std::logic_error("min_world of empty SubcubeCover");
  // The least world of Box(c) sets every starred coordinate to 0, i.e. it is
  // c.values itself.
  World best = cubes_.front().values;
  for (const MatchVector& c : cubes_) best = std::min(best, c.values);
  return best;
}

void SubcubeCover::insert(World w) {
  if ((w & ~coordinate_mask(n_)) != 0) {
    throw std::out_of_range("SubcubeCover::insert: world out of range");
  }
  if (contains(w)) return;
  cubes_.push_back(MatchVector{0, w});
  canonicalize();
}

void SubcubeCover::erase(World w) {
  if ((w & ~coordinate_mask(n_)) != 0) {
    throw std::out_of_range("SubcubeCover::erase: world out of range");
  }
  if (!contains(w)) return;
  *this = subtract(singleton(n_, w));
}

SubcubeCover SubcubeCover::intersect(const SubcubeCover& o) const {
  if (n_ != o.n_) throw std::invalid_argument("SubcubeCover: mismatched n");
  std::vector<MatchVector> out;
  for (const MatchVector& c : cubes_) {
    for (const MatchVector& d : o.cubes_) {
      if (cubes_intersect(c, d)) out.push_back(cube_meet(c, d));
    }
    check_cover_budget(out.size());
  }
  SubcubeCover r(n_, std::move(out));
  r.canonicalize();
  return r;
}

SubcubeCover SubcubeCover::unite(const SubcubeCover& o) const {
  if (n_ != o.n_) throw std::invalid_argument("SubcubeCover: mismatched n");
  std::vector<MatchVector> out = cubes_;
  out.insert(out.end(), o.cubes_.begin(), o.cubes_.end());
  SubcubeCover r(n_, std::move(out));
  r.canonicalize();
  return r;
}

SubcubeCover SubcubeCover::subtract(const SubcubeCover& o) const {
  if (n_ != o.n_) throw std::invalid_argument("SubcubeCover: mismatched n");
  std::vector<MatchVector> cur = cubes_;
  for (const MatchVector& d : o.cubes_) {
    if (cur.empty()) break;
    subtract_cube_from_all(cur, d);
  }
  SubcubeCover r(n_, std::move(cur));
  r.canonicalize();
  return r;
}

SubcubeCover SubcubeCover::exclusive_or(const SubcubeCover& o) const {
  return subtract(o).unite(o.subtract(*this));
}

SubcubeCover SubcubeCover::complement() const {
  return universe(n_).subtract(*this);
}

SubcubeCover SubcubeCover::xor_with(World mask) const {
  if ((mask & ~coordinate_mask(n_)) != 0) {
    throw std::out_of_range("SubcubeCover::xor_with: mask out of range");
  }
  std::vector<MatchVector> out = cubes_;
  for (MatchVector& c : out) c.values ^= mask & ~c.stars;
  SubcubeCover r(n_, std::move(out));
  r.canonicalize();
  return r;
}

bool SubcubeCover::subset_of(const SubcubeCover& o) const {
  if (n_ != o.n_) throw std::invalid_argument("SubcubeCover: mismatched n");
  for (const MatchVector& c : cubes_) {
    if (!cube_covered_by(c, o.cubes_)) return false;
  }
  return true;
}

bool SubcubeCover::disjoint_with(const SubcubeCover& o) const {
  if (n_ != o.n_) throw std::invalid_argument("SubcubeCover: mismatched n");
  for (const MatchVector& c : cubes_) {
    for (const MatchVector& d : o.cubes_) {
      if (cubes_intersect(c, d)) return false;
    }
  }
  return true;
}

bool SubcubeCover::equals(const SubcubeCover& o) const {
  if (n_ != o.n_) return false;
  if (cubes_ == o.cubes_) return true;  // canonical forms often coincide
  return subset_of(o) && o.subset_of(*this);
}

std::uint64_t SubcubeCover::semantic_hash() const {
  const std::uint64_t cached = hash_cache_.load(std::memory_order_acquire);
  if (cached != 0) return cached;
  // Signature = (n, |S|, membership of 64 fixed pseudo-random probes). Equal
  // sets agree on all three regardless of cover syntax.
  std::uint64_t h = bits::mix64(0x53756263756265ull ^ (std::uint64_t{n_} << 32));
  h = bits::hash_combine(h, count());
  std::uint64_t membership = 0;
  for (unsigned j = 0; j < 64; ++j) {
    const World probe =
        static_cast<World>(bits::mix64(0x9e3779b97f4a7c15ull * (j + 1) ^ n_)) &
        coordinate_mask(n_);
    membership |= std::uint64_t{contains(probe) ? 1u : 0u} << j;
  }
  h = bits::hash_combine(h, membership);
  if (h == 0) h = 1;  // 0 is the "unset" sentinel
  hash_cache_.store(h, std::memory_order_release);
  return h;
}

std::vector<MatchVector> SubcubeCover::disjoint_cubes() const {
  std::vector<MatchVector> out;
  out.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    std::vector<MatchVector> pieces{cubes_[i]};
    for (std::size_t j = 0; j < i && !pieces.empty(); ++j) {
      subtract_cube_from_all(pieces, cubes_[j]);
    }
    out.insert(out.end(), pieces.begin(), pieces.end());
    check_cover_budget(out.size());
  }
  return out;
}

double SubcubeCover::product_weight(const double* probs) const {
  double total = 0.0;
  for (const MatchVector& c : disjoint_cubes()) {
    double mass = 1.0;
    for (unsigned i = 0; i < n_; ++i) {
      const World bit = World{1} << i;
      if (c.stars & bit) continue;  // both values summed: factor 1
      mass *= (c.values & bit) ? probs[i] : 1.0 - probs[i];
    }
    total += mass;
  }
  return total;
}

void SubcubeCover::write_dense(std::uint64_t* words, std::size_t word_count) const {
  if (n_ > kMaxCoordinates) {
    throw std::invalid_argument(
        "SubcubeCover::write_dense: n = " + std::to_string(n_) +
        " exceeds the dense cap of " + std::to_string(kMaxCoordinates));
  }
  if (word_count != bits::words_for(std::size_t{1} << n_)) {
    throw std::invalid_argument("SubcubeCover::write_dense: wrong word count");
  }
  bits::clear_all(words, word_count);
  for (const MatchVector& c : cubes_) {
    // Enumerate Box(c): all submasks of the star set, added to the fixed values.
    World sub = 0;
    while (true) {
      bits::set(words, c.values | sub);
      if (sub == c.stars) break;
      sub = (sub - c.stars) & c.stars;  // next submask in increasing order
    }
  }
}

std::string SubcubeCover::to_string() const {
  std::string s = "cover{";
  bool first = true;
  for (const MatchVector& c : cubes_) {
    if (!first) s += ",";
    first = false;
    s += c.to_string(n_);
  }
  s += "}";
  return s;
}

}  // namespace epi
