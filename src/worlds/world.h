// A "world" is one possible database state. Following the paper (Section 5
// onward) we identify the set of possible worlds Omega with the Boolean
// hypercube {0,1}^n: coordinate i tells whether record i is present.
#pragma once

#include <cstdint>
#include <string>

namespace epi {

/// Index of a world inside Omega = {0,1}^n, i.e. an n-bit vector packed into
/// a 32-bit integer (bit i of the value = coordinate omega[i]).
using World = std::uint32_t;

/// Maximum number of coordinates supported by the dense representation
/// (a 2^26-bit bitset is 8 MiB; beyond that the dense path stops paying).
inline constexpr unsigned kMaxCoordinates = 26;

/// Maximum number of coordinates supported by the symbolic subcube-cover
/// representation. Hard ceiling: MatchVector packs stars/values into one
/// 32-bit World each, so a cube over {0,1,*}^n needs n <= 32.
inline constexpr unsigned kMaxSymbolicCoordinates = 32;

/// Bit i of omega (coordinate value omega[i]).
inline bool world_bit(World w, unsigned i) { return (w >> i) & 1u; }

/// omega with coordinate i set to `value`.
inline World world_with_bit(World w, unsigned i, bool value) {
  return value ? (w | (World{1} << i)) : (w & ~(World{1} << i));
}

/// omega with coordinate i flipped.
inline World world_flip_bit(World w, unsigned i) { return w ^ (World{1} << i); }

/// Bit-wise AND: the lattice meet omega1 /\ omega2.
inline World world_meet(World a, World b) { return a & b; }

/// Bit-wise OR: the lattice join omega1 \/ omega2.
inline World world_join(World a, World b) { return a | b; }

/// The partial order omega1 <= omega2 ("every record of omega1 is in omega2").
inline bool world_leq(World a, World b) { return (a & ~b) == 0; }

/// Number of records present (Hamming weight).
inline unsigned world_weight(World w) { return static_cast<unsigned>(__builtin_popcount(w)); }

/// Renders the n low bits as a 0/1 string, most significant coordinate last:
/// world_to_string(0b011, 3) == "110" (coordinate 0 first), matching the
/// paper's per-record reading order.
std::string world_to_string(World w, unsigned n);

/// Parses a 0/1 string in the same order; throws std::invalid_argument on
/// non-binary characters or length > kMaxSymbolicCoordinates.
World world_from_string(const std::string& bits);

}  // namespace epi
