// Umbrella header: everything a typical application needs. Individual
// modules can be included directly for faster builds.
#pragma once

// Worlds and set algebra.
#include "worlds/finite_set.h"
#include "worlds/match_vector.h"
#include "worlds/monotone.h"
#include "worlds/world.h"
#include "worlds/world_set.h"

// Possibilistic knowledge (Sections 2-4).
#include "possibilistic/collusion.h"
#include "possibilistic/intervals.h"
#include "possibilistic/knowledge.h"
#include "possibilistic/laminar.h"
#include "possibilistic/rectangles.h"
#include "possibilistic/safe.h"
#include "possibilistic/sigma_family.h"
#include "possibilistic/subcubes.h"

// Probabilistic knowledge (Sections 2-3, 5).
#include "probabilistic/distribution.h"
#include "probabilistic/exact.h"
#include "probabilistic/family.h"
#include "probabilistic/marginal_family.h"
#include "probabilistic/modularity.h"
#include "probabilistic/product.h"
#include "probabilistic/safe.h"
#include "probabilistic/witness.h"

// Decision criteria (Sections 3.4, 5).
#include "criteria/box_necessary.h"
#include "criteria/cancellation.h"
#include "criteria/miklau_suciu.h"
#include "criteria/monotonicity.h"
#include "criteria/pipeline.h"
#include "criteria/projection.h"
#include "criteria/supermodular.h"
#include "criteria/unconditional.h"
#include "criteria/verdict.h"

// Algebraic and numeric layers (Section 6).
#include "algebra/monomial.h"
#include "algebra/polynomial.h"
#include "algebra/safety_polynomial.h"
#include "optimize/branch_bound.h"
#include "optimize/coordinate_ascent.h"
#include "optimize/emptiness.h"
#include "optimize/positivstellensatz.h"
#include "optimize/sos.h"

// Epistemic logic (Section 2 semantics).
#include "logic/epistemic_logic.h"

// Hardness demonstration (Theorem 6.2).
#include "maxcut/graph.h"
#include "maxcut/maxcut.h"
#include "maxcut/reduction.h"

// Comparison frameworks (Section 1.1 baselines).
#include "approx/frameworks.h"

// Database, auditing and applications.
#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/online.h"
#include "core/report.h"
#include "core/scenario.h"
#include "core/simulation.h"
#include "core/workload.h"
#include "db/database.h"
#include "db/parser.h"
#include "db/query.h"
#include "db/record.h"
