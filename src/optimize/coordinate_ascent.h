// Numerical maximization of the product-prior safety gap
//   gap(p) = P[AB] - P[A]P[B]
// over the parameter box [0,1]^n. The gap is an exact quadratic in each
// single parameter, so cyclic coordinate ascent takes exact per-coordinate
// steps; dense multistart makes it a practical decision procedure for
// Safe_{Pi_m0} (the operational stand-in for the Basu-Pollack-Roy algorithm
// of Section 6.1 — see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "criteria/verdict.h"
#include "probabilistic/product.h"
#include "worlds/world_set.h"

namespace epi {

/// Options for the multistart ascent.
struct AscentOptions {
  int multistarts = 48;       ///< random + structured restarts
  int max_cycles = 200;       ///< coordinate cycles per start
  double improve_tol = 1e-14; ///< stop when a full cycle improves less
  std::uint64_t seed = 0xC0FFEE;
};

/// Result of the maximization.
struct AscentResult {
  double max_gap = 0.0;          ///< best gap found (can be negative)
  std::vector<double> argmax;    ///< maximizing parameters
};

/// Maximizes gap(p) over [0,1]^n.
AscentResult maximize_product_gap(const WorldSet& a, const WorldSet& b,
                                  const AscentOptions& options = {});

/// Numeric decision: unsafe (with witness) when the found maximum exceeds
/// `unsafe_threshold`; safe otherwise. Never returns unknown — callers who
/// need a proof combine this with the SOS certificate layer.
struct NumericDecision {
  Verdict verdict = Verdict::kUnknown;
  double max_gap = 0.0;
  std::vector<double> witness_params;  ///< populated when unsafe
};

NumericDecision decide_product_safety_numeric(const WorldSet& a, const WorldSet& b,
                                              const AscentOptions& options = {},
                                              double unsafe_threshold = 1e-9);

}  // namespace epi
