#include "optimize/branch_bound.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "algebra/safety_polynomial.h"

namespace epi {
namespace {

double pow_nonneg(double base, unsigned exp) {
  double v = 1.0;
  for (unsigned i = 0; i < exp; ++i) v *= base;
  return v;
}

struct Box {
  std::vector<double> lo;
  std::vector<double> hi;
  double lower_bound;

  bool operator<(const Box& o) const {
    // Max-heap on -lower_bound: process the most violating box first.
    return lower_bound > o.lower_bound;
  }
};

/// Precomputed gradient for the centered-form bound: near zero *sets* of f
/// the naive term-wise interval bound converges only at O(width), while the
/// first-order Taylor enclosure f(center) - 1/2 sum_i width_i * max|df/dx_i|
/// converges at O(width^2). We take the max of the two bounds.
struct CenteredForm {
  std::vector<Polynomial> gradient;

  explicit CenteredForm(const Polynomial& f) {
    for (std::size_t i = 0; i < f.nvars(); ++i) {
      gradient.push_back(f.derivative(i));
    }
  }

  double lower_bound(const Polynomial& f, const std::vector<double>& lo,
                     const std::vector<double>& hi) const {
    std::vector<double> center(lo.size());
    for (std::size_t i = 0; i < lo.size(); ++i) center[i] = 0.5 * (lo[i] + hi[i]);
    double bound = f.eval(center);
    for (std::size_t i = 0; i < lo.size(); ++i) {
      const double width = hi[i] - lo[i];
      if (width == 0.0) continue;
      const auto [dlo, dhi] = interval_bounds(gradient[i], lo, hi);
      bound -= 0.5 * width * std::max(std::abs(dlo), std::abs(dhi));
    }
    return bound;
  }
};

}  // namespace

std::pair<double, double> interval_bounds(const Polynomial& f,
                                          const std::vector<double>& lo,
                                          const std::vector<double>& hi) {
  if (lo.size() != f.nvars() || hi.size() != f.nvars()) {
    throw std::invalid_argument("interval_bounds: dimension mismatch");
  }
  double lower = 0.0, upper = 0.0;
  for (const auto& [exps, coeff] : f.terms()) {
    // On [0,1] sub-boxes every x_i^e is monotone, so the monomial's range is
    // [prod lo^e, prod hi^e].
    double mono_lo = 1.0, mono_hi = 1.0;
    for (std::size_t i = 0; i < exps.size(); ++i) {
      if (exps[i] == 0) continue;
      mono_lo *= pow_nonneg(lo[i], exps[i]);
      mono_hi *= pow_nonneg(hi[i], exps[i]);
    }
    if (coeff >= 0.0) {
      lower += coeff * mono_lo;
      upper += coeff * mono_hi;
    } else {
      lower += coeff * mono_hi;
      upper += coeff * mono_lo;
    }
  }
  return {lower, upper};
}

BranchBoundResult certify_nonneg_on_box(const Polynomial& f,
                                        const BranchBoundOptions& options) {
  const std::size_t n = f.nvars();
  BranchBoundResult result;

  const CenteredForm centered(f);
  auto box_lower_bound = [&](const std::vector<double>& lo,
                             const std::vector<double>& hi) {
    return std::max(interval_bounds(f, lo, hi).first,
                    centered.lower_bound(f, lo, hi));
  };

  std::priority_queue<Box> queue;
  Box root{std::vector<double>(n, 0.0), std::vector<double>(n, 1.0), 0.0};
  root.lower_bound = box_lower_bound(root.lo, root.hi);
  double certified = root.lower_bound;
  queue.push(std::move(root));

  while (!queue.empty()) {
    if (result.boxes_processed++ > options.max_boxes) {
      result.verdict = Verdict::kUnknown;
      return result;
    }
    Box box = queue.top();
    queue.pop();
    if (box.lower_bound >= -options.epsilon) {
      // Every remaining box is at least as good: certified.
      result.verdict = Verdict::kSafe;
      result.certified_lower_bound = box.lower_bound;
      return result;
    }
    // Check the box center for a refutation.
    std::vector<double> center(n);
    for (std::size_t i = 0; i < n; ++i) center[i] = 0.5 * (box.lo[i] + box.hi[i]);
    if (f.eval(center) < -options.epsilon) {
      result.verdict = Verdict::kUnsafe;
      result.refutation_point = std::move(center);
      return result;
    }
    // Subdivide along the widest dimension.
    std::size_t widest = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (box.hi[i] - box.lo[i] > box.hi[widest] - box.lo[widest]) widest = i;
    }
    const double mid = 0.5 * (box.lo[widest] + box.hi[widest]);
    for (int half = 0; half < 2; ++half) {
      Box child = box;
      (half == 0 ? child.hi : child.lo)[widest] = mid;
      child.lower_bound = box_lower_bound(child.lo, child.hi);
      certified = std::min(certified, child.lower_bound);
      queue.push(std::move(child));
    }
  }
  // Queue exhausted without any box below -epsilon: certified (can only
  // happen when the root was already certified, handled above).
  result.verdict = Verdict::kSafe;
  result.certified_lower_bound = certified;
  return result;
}

BranchBoundResult branch_bound_product_safety(const WorldSet& a, const WorldSet& b,
                                              const BranchBoundOptions& options) {
  return certify_nonneg_on_box(product_safety_margin(a, b).pruned(1e-15), options);
}

}  // namespace epi
