// Semidefinite feasibility by alternating projections: find block-diagonal
// PSD X satisfying linear equality constraints. This is the self-contained
// SDP core behind Proposition 6.4 ("the test f in Sigma^2 can be done in
// poly time" — via semidefinite programming).
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace epi {

/// find X = diag(X_1..X_k), X_i PSD of size block_sizes[i], with
/// constraint_matrix * vec(X) = rhs, where vec concatenates the row-major
/// flattening of every (full, symmetric) block.
struct SdpProblem {
  std::vector<std::size_t> block_sizes;
  Matrix constraint_matrix;  ///< rows = constraints, cols = total flattened entries
  Vec rhs;

  std::size_t total_entries() const;
};

struct SdpOptions {
  int max_iterations = 4000;
  double tolerance = 1e-8;  ///< affine residual accepted for the PSD iterate
};

/// Alternating projections between the affine subspace and the PSD cone.
/// Returns the feasible blocks, or nullopt when no feasible point was found
/// within the budget (which may mean infeasible or merely slow — callers
/// must treat nullopt as "unknown", never as "infeasible").
std::optional<std::vector<Matrix>> solve_sdp_feasibility(
    const SdpProblem& problem, const SdpOptions& options = {});

}  // namespace epi
