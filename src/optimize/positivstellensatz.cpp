#include "optimize/positivstellensatz.h"

#include <map>

#include "algebra/safety_polynomial.h"

namespace epi {

Polynomial BoxCertificate::to_polynomial(std::size_t nvars) const {
  Polynomial total = sigma0.to_polynomial(nvars);
  for (std::size_t k = 0; k < multipliers.size(); ++k) {
    Polynomial product = Polynomial::constant(nvars, 1.0);
    for (std::size_t i = 0; i < nvars; ++i) {
      if (!((multiplier_subsets[k] >> i) & 1u)) continue;
      const Polynomial xi = Polynomial::variable(nvars, i);
      product = product * (xi - xi * xi);  // x_i (1 - x_i)
    }
    total += multipliers[k].to_polynomial(nvars) * product;
  }
  return total;
}

namespace {

/// Largest exponent of any single variable across the terms of f.
unsigned max_variable_degree(const Polynomial& f) {
  unsigned d = 0;
  for (const auto& [exps, coeff] : f.terms()) {
    for (unsigned e : exps) d = std::max(d, e);
  }
  return d;
}

/// Keeps only basis monomials whose square (plus the subset product's
/// per-variable degree) stays within the per-variable degree budget. For the
/// product-prior safety margins (per-variable degree <= 2) this reduces the
/// sigma_0 basis to multilinear monomials — a Newton-polytope-style
/// restriction that keeps the SDP small. For sigma_0 it is exact (an SOS of
/// a polynomial with per-variable degree 2d has generators of per-variable
/// degree <= d); for the multipliers it is a heuristic, so callers fall back
/// to the unrestricted basis when the restricted search fails.
std::vector<Monomial> filter_basis(std::vector<Monomial> basis, unsigned var_budget,
                                   std::uint32_t subset) {
  std::vector<Monomial> kept;
  for (Monomial& m : basis) {
    bool ok = true;
    for (std::size_t i = 0; i < m.nvars(); ++i) {
      const unsigned extra = (subset >> i) & 1u ? 2u : 0u;
      if (2 * m.exponent(i) + extra > var_budget) {
        ok = false;
        break;
      }
    }
    if (ok) kept.push_back(std::move(m));
  }
  return kept;
}

std::optional<BoxCertificate> prove_with_bases(const Polynomial& f,
                                               unsigned degree,
                                               const SdpOptions& options,
                                               double coeff_tol,
                                               bool restrict_bases);

}  // namespace

std::optional<BoxCertificate> prove_nonneg_on_box(const Polynomial& f,
                                                  unsigned degree,
                                                  const SdpOptions& options,
                                                  double coeff_tol) {
  // Try the per-variable-restricted bases first (small, fast, usually
  // enough), then the full bases.
  if (auto cert = prove_with_bases(f, degree, options, coeff_tol, true)) {
    return cert;
  }
  return prove_with_bases(f, degree, options, coeff_tol, false);
}

namespace {

std::optional<BoxCertificate> prove_with_bases(const Polynomial& f,
                                               unsigned degree,
                                               const SdpOptions& options,
                                               double coeff_tol,
                                               bool restrict_bases) {
  const std::size_t nvars = f.nvars();
  if (degree % 2 != 0 || degree < f.degree()) return std::nullopt;
  const unsigned var_budget =
      restrict_bases ? std::max(2u, max_variable_degree(f)) : 2 * degree;

  // Schmuedgen/Positivstellensatz form (Theorem 6.7's algebraic cone):
  //   f = sigma_0 + sum over non-empty subsets S of sigma_S * prod_{i in S}
  //       x_i (1 - x_i),
  // with every sigma an SOS of degree <= degree - 2|S|.
  std::vector<std::uint32_t> subsets;  // bitmask per multiplier block
  std::vector<Polynomial> subset_products;
  const std::uint32_t all = (nvars >= 32) ? 0xFFFFFFFFu
                                          : ((std::uint32_t{1} << nvars) - 1);
  for (std::uint32_t s = 1; s <= all; ++s) {
    const unsigned size = static_cast<unsigned>(__builtin_popcount(s));
    if (2 * size > degree) continue;
    Polynomial product = Polynomial::constant(nvars, 1.0);
    for (std::size_t i = 0; i < nvars; ++i) {
      if (!((s >> i) & 1u)) continue;
      const Polynomial xi = Polynomial::variable(nvars, i);
      product = product * (xi - xi * xi);
    }
    subsets.push_back(s);
    subset_products.push_back(std::move(product));
  }

  const std::vector<Monomial> basis0 =
      filter_basis(monomials_up_to_degree(nvars, degree / 2), var_budget, 0);
  std::vector<std::vector<Monomial>> bases;
  for (std::uint32_t s : subsets) {
    const unsigned size = static_cast<unsigned>(__builtin_popcount(s));
    bases.push_back(filter_basis(
        monomials_up_to_degree(nvars, (degree - 2 * size) / 2), var_budget, s));
  }

  // Rows: every monomial of degree <= degree.
  const std::vector<Monomial> all_monomials = monomials_up_to_degree(nvars, degree);
  std::map<std::vector<unsigned>, std::size_t> row_of;
  for (const Monomial& mono : all_monomials) {
    row_of.emplace(mono.exponents(), row_of.size());
  }

  const std::size_t m0 = basis0.size();
  std::size_t total_entries = m0 * m0;
  for (const auto& basis : bases) total_entries += basis.size() * basis.size();

  Matrix constraints(row_of.size(), total_entries);
  Vec rhs(row_of.size(), 0.0);

  // sigma0 contributions.
  for (std::size_t i = 0; i < m0; ++i) {
    for (std::size_t j = 0; j < m0; ++j) {
      const std::size_t row = row_of.at((basis0[i] * basis0[j]).exponents());
      constraints.at(row, i * m0 + j) += 1.0;
    }
  }
  // Multiplier contributions: Q^{(S)}_{ij} multiplies (m_i m_j) * prod_S.
  std::size_t offset = m0 * m0;
  for (std::size_t k = 0; k < subsets.size(); ++k) {
    const auto& basis = bases[k];
    const std::size_t mm = basis.size();
    for (std::size_t i = 0; i < mm; ++i) {
      for (std::size_t j = 0; j < mm; ++j) {
        const Monomial prod_basis = basis[i] * basis[j];
        for (const auto& [exps, coeff] : subset_products[k].terms()) {
          const std::size_t row = row_of.at((prod_basis * Monomial(exps)).exponents());
          constraints.at(row, offset + i * mm + j) += coeff;
        }
      }
    }
    offset += mm * mm;
  }
  // Targets: coefficients of f.
  for (const auto& [exps, coeff] : f.terms()) {
    auto it = row_of.find(exps);
    if (it == row_of.end()) return std::nullopt;
    rhs[it->second] = coeff;
  }

  SdpProblem problem;
  problem.block_sizes.push_back(m0);
  for (const auto& basis : bases) problem.block_sizes.push_back(basis.size());
  problem.constraint_matrix = std::move(constraints);
  problem.rhs = std::move(rhs);

  auto blocks = solve_sdp_feasibility(problem, options);
  if (!blocks) return std::nullopt;

  BoxCertificate cert;
  cert.sigma0.basis = basis0;
  cert.sigma0.gram = std::move((*blocks)[0]);
  for (std::size_t k = 0; k < subsets.size(); ++k) {
    SosCertificate mult;
    mult.basis = bases[k];
    mult.gram = std::move((*blocks)[k + 1]);
    cert.multipliers.push_back(std::move(mult));
    cert.multiplier_subsets.push_back(subsets[k]);
  }
  if (cert.to_polynomial(nvars).max_coeff_difference(f) > coeff_tol) {
    return std::nullopt;
  }
  return cert;
}

}  // namespace

Verdict sos_product_safety(const WorldSet& a, const WorldSet& b, unsigned degree,
                           const SdpOptions& options) {
  const Polynomial margin = product_safety_margin(a, b).pruned(1e-14);
  if (margin.is_zero(1e-14)) return Verdict::kSafe;  // identically independent
  unsigned d = degree;
  if (d == 0) {
    d = margin.degree();
    if (d % 2 != 0) ++d;
  }
  if (prove_nonneg_on_box(margin, d, options)) return Verdict::kSafe;
  return Verdict::kUnknown;
}

}  // namespace epi
