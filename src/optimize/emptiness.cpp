#include "optimize/emptiness.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "algebra/safety_polynomial.h"
#include "criteria/pipeline.h"
#include "criteria/projection.h"
#include "optimize/positivstellensatz.h"
#include "util/rng.h"

namespace epi {

AlgebraicFamily unconstrained_family_in_weights(unsigned n) {
  AlgebraicFamily f;
  f.name = "unconstrained";
  f.nvars = std::size_t{1} << n;
  return f;
}

AlgebraicFamily supermodular_family_in_weights(unsigned n) {
  AlgebraicFamily f;
  f.name = "log-supermodular";
  f.nvars = std::size_t{1} << n;
  f.inequalities = supermodularity_constraints_in_weights(n);
  return f;
}

AlgebraicFamily submodular_family_in_weights(unsigned n) {
  AlgebraicFamily f;
  f.name = "log-submodular";
  f.nvars = std::size_t{1} << n;
  for (Polynomial& p : supermodularity_constraints_in_weights(n)) {
    f.inequalities.push_back(-p);
  }
  return f;
}

AlgebraicFamily product_family_in_weights(unsigned n) {
  AlgebraicFamily f;
  f.name = "product";
  f.nvars = std::size_t{1} << n;
  for (Polynomial& p : supermodularity_constraints_in_weights(n)) {
    f.inequalities.push_back(p);
    f.inequalities.push_back(-p);
  }
  return f;
}

std::vector<double> project_to_simplex(std::vector<double> v) {
  // Michelot/Held-style projection: find tau with sum max(v_i - tau, 0) = 1.
  std::vector<double> u = v;
  std::sort(u.begin(), u.end(), std::greater<double>());
  double cumulative = 0.0;
  double tau = 0.0;
  std::size_t rho = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    cumulative += u[i];
    const double candidate = (cumulative - 1.0) / static_cast<double>(i + 1);
    if (u[i] - candidate > 0.0) {
      rho = i + 1;
      tau = candidate;
    }
  }
  (void)rho;
  for (double& x : v) x = std::max(x - tau, 0.0);
  return v;
}

EmptinessSearchResult search_violating_distribution(const AlgebraicFamily& family,
                                                    const WorldSet& a,
                                                    const WorldSet& b,
                                                    const EmptinessOptions& options) {
  const std::size_t nvars = family.nvars;
  if (nvars != a.omega_size()) {
    throw std::invalid_argument("search_violating_distribution: nvars != 2^n");
  }
  const Polynomial margin = weight_safety_margin(a, b);  // P[A]P[B] - P[AB]
  // We maximize the *gap* = -margin.
  std::vector<Polynomial> gap_grad;
  for (std::size_t i = 0; i < nvars; ++i) gap_grad.push_back(-margin.derivative(i));
  std::vector<std::vector<Polynomial>> constraint_grads;
  for (const Polynomial& alpha : family.inequalities) {
    std::vector<Polynomial> grads;
    for (std::size_t i = 0; i < nvars; ++i) grads.push_back(alpha.derivative(i));
    constraint_grads.push_back(std::move(grads));
  }

  Rng rng(options.seed);
  EmptinessSearchResult result;
  result.best_gap = -1.0;
  double best_penalized = -1e300;

  for (int start = 0; start < options.multistarts; ++start) {
    std::vector<double> p(nvars);
    double sum = 0.0;
    for (double& x : p) {
      x = -std::log(1.0 - rng.next_double());
      sum += x;
    }
    for (double& x : p) x /= sum;

    for (int iter = 0; iter < options.iterations; ++iter) {
      // Gradient of gap - penalty * sum over violated constraints of alpha^2.
      std::vector<double> grad(nvars, 0.0);
      for (std::size_t i = 0; i < nvars; ++i) grad[i] = gap_grad[i].eval(p);
      for (std::size_t c = 0; c < family.inequalities.size(); ++c) {
        const double alpha = family.inequalities[c].eval(p);
        if (alpha >= 0.0) continue;
        const double scale = -2.0 * options.penalty * alpha;
        for (std::size_t i = 0; i < nvars; ++i) {
          grad[i] += scale * constraint_grads[c][i].eval(p);
        }
      }
      // Norm-clipped step: penalty gradients can be orders of magnitude
      // larger than the gap gradient, so a raw fixed step diverges.
      double grad_norm = 0.0;
      for (double gval : grad) grad_norm += gval * gval;
      grad_norm = std::sqrt(grad_norm);
      const double scale = grad_norm > 1.0 ? 1.0 / grad_norm : 1.0;
      const double step = scale * options.step / (1.0 + 0.02 * iter);
      for (std::size_t i = 0; i < nvars; ++i) p[i] += step * grad[i];
      p = project_to_simplex(std::move(p));
    }

    // Track the best penalized objective regardless of feasibility, for
    // callers that round the relaxation themselves.
    double penalized = -margin.eval(p);
    bool feasible = true;
    for (const Polynomial& alpha : family.inequalities) {
      const double value = alpha.eval(p);
      if (value < 0.0) penalized -= options.penalty * value * value;
      if (value < -options.feasibility_tol) feasible = false;
    }
    if (penalized > best_penalized) {
      best_penalized = penalized;
      result.best_iterate = p;
    }
    if (!feasible) continue;
    const double gap = -margin.eval(p);
    if (gap > result.best_gap) {
      result.best_gap = gap;
      if (gap > options.gap_threshold) {
        result.found = true;
        const unsigned n = a.n();
        result.witness = Distribution(n, p, /*normalize=*/true);
      }
    }
  }
  return result;
}

FullDecision decide_product_safety_complete(const WorldSet& a, const WorldSet& b,
                                            const AscentOptions& ascent,
                                            bool enable_sos, unsigned sos_degree,
                                            const SdpOptions& sdp) {
  // Stage 0: drop non-critical coordinates (Section 6's "relevant worlds"
  // argument) — product-family safety is invariant under marginalizing them,
  // and every later stage gets exponentially cheaper.
  const ProjectedPair projected = project_to_critical(a, b);
  if (projected.kept_coordinates.size() < a.n()) {
    FullDecision d = decide_product_safety_complete(projected.a, projected.b,
                                                    ascent, enable_sos,
                                                    sos_degree, sdp);
    d.method = "projected[" + std::to_string(projected.kept_coordinates.size()) +
               "/" + std::to_string(a.n()) + "]+" + d.method;
    if (d.witness) {
      // Lift the witness: projected parameters on kept coordinates, 1/2 on
      // the irrelevant ones (any value preserves the gap).
      std::vector<double> params(a.n(), 0.5);
      for (std::size_t i = 0; i < projected.kept_coordinates.size(); ++i) {
        params[projected.kept_coordinates[i]] = d.witness->param(static_cast<unsigned>(i));
      }
      d.witness = ProductDistribution(params);
    }
    return d;
  }

  FullDecision d;
  const PipelineResult pipeline =
      run_criteria(product_criteria(), a, b, "exhausted-combinatorial-criteria");
  if (pipeline.verdict != Verdict::kUnknown) {
    d.verdict = pipeline.verdict;
    d.method = pipeline.criterion;
    d.certified = true;
    d.witness = pipeline.witness_product;
    return d;
  }
  const AscentResult numeric = maximize_product_gap(a, b, ascent);
  d.numeric_gap = numeric.max_gap;
  if (numeric.max_gap > 1e-9) {
    d.verdict = Verdict::kUnsafe;
    d.method = "coordinate-ascent";
    d.certified = true;  // the witness itself is the proof
    d.witness = ProductDistribution(numeric.argmax);
    return d;
  }
  if (enable_sos &&
      sos_product_safety(a, b, sos_degree, sdp) == Verdict::kSafe) {
    d.verdict = Verdict::kSafe;
    d.method = "sos-certificate";
    d.certified = true;
    return d;
  }
  d.verdict = Verdict::kSafe;
  d.method = "numeric-only";
  d.certified = false;
  return d;
}

}  // namespace epi
