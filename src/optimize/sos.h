// Sum-of-squares decomposition (Section 6.2, Proposition 6.4): decide whether
// a polynomial lies in Sigma^2 by solving a Gram-matrix semidefinite
// feasibility problem, and return the certificate.
#pragma once

#include <optional>
#include <vector>

#include "algebra/polynomial.h"
#include "linalg/matrix.h"
#include "optimize/sdp.h"

namespace epi {

/// An SOS certificate: f(x) = m(x)^T Q m(x) with Q PSD over the monomial
/// basis m.
struct SosCertificate {
  std::vector<Monomial> basis;
  Matrix gram;

  /// Reconstructs m^T Q m for verification.
  Polynomial to_polynomial(std::size_t nvars) const;
};

/// Attempts an SOS decomposition of f with Gram basis of degree
/// ceil(deg(f)/2). Returns nullopt when the SDP finds no certificate within
/// budget (e.g. for the Motzkin polynomial) or when deg(f) is odd.
/// `coeff_tol` bounds the certified coefficient mismatch.
std::optional<SosCertificate> sos_decompose(const Polynomial& f,
                                            const SdpOptions& options = {},
                                            double coeff_tol = 1e-6);

/// Convenience wrapper: true iff a certificate is found.
bool is_sos(const Polynomial& f, const SdpOptions& options = {});

}  // namespace epi
