#include "optimize/sdp.h"

#include <stdexcept>

#include "linalg/eigen.h"
#include "linalg/least_squares.h"

namespace epi {
namespace {

std::vector<Matrix> unflatten(const Vec& x, const std::vector<std::size_t>& sizes) {
  std::vector<Matrix> blocks;
  std::size_t offset = 0;
  for (std::size_t s : sizes) {
    Matrix block(s, s);
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = 0; j < s; ++j) {
        block.at(i, j) = x[offset + i * s + j];
      }
    }
    offset += s * s;
    blocks.push_back(std::move(block));
  }
  return blocks;
}

Vec flatten(const std::vector<Matrix>& blocks, std::size_t total) {
  Vec x(total);
  std::size_t offset = 0;
  for (const Matrix& block : blocks) {
    const std::size_t s = block.rows();
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = 0; j < s; ++j) {
        x[offset + i * s + j] = block.at(i, j);
      }
    }
    offset += s * s;
  }
  return x;
}

}  // namespace

std::size_t SdpProblem::total_entries() const {
  std::size_t total = 0;
  for (std::size_t s : block_sizes) total += s * s;
  return total;
}

std::optional<std::vector<Matrix>> solve_sdp_feasibility(const SdpProblem& problem,
                                                         const SdpOptions& options) {
  const std::size_t total = problem.total_entries();
  if (problem.constraint_matrix.cols() != total) {
    throw std::invalid_argument("solve_sdp_feasibility: constraint width mismatch");
  }
  if (problem.constraint_matrix.rows() != problem.rhs.size()) {
    throw std::invalid_argument("solve_sdp_feasibility: rhs size mismatch");
  }

  AffineProjector affine(problem.constraint_matrix, problem.rhs);

  auto project_cone = [&](const Vec& v) {
    std::vector<Matrix> blocks = unflatten(v, problem.block_sizes);
    for (Matrix& block : blocks) {
      block.symmetrize();
      block = project_psd(block);
    }
    return blocks;
  };

  // Douglas-Rachford splitting between the PSD cone and the affine subspace:
  //   z <- z + P_affine(2 P_cone(z) - z) - P_cone(z).
  // The shadow sequence P_cone(z) converges to a point of the intersection
  // when one exists; DR handles the tangential (boundary-Gram) intersections
  // that plain alternating projections stall on.
  Vec z(total, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::vector<Matrix> cone_blocks = project_cone(z);
    const Vec cone_point = flatten(cone_blocks, total);
    // Accept when the shadow point (exactly PSD) satisfies the constraints.
    if (affine.residual(cone_point) < options.tolerance) {
      return cone_blocks;
    }
    Vec reflected(total);
    for (std::size_t i = 0; i < total; ++i) reflected[i] = 2.0 * cone_point[i] - z[i];
    const Vec affine_point = affine.project(reflected);
    for (std::size_t i = 0; i < total; ++i) z[i] += affine_point[i] - cone_point[i];
  }
  return std::nullopt;
}

}  // namespace epi
