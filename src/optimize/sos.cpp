#include "optimize/sos.h"

#include <map>

namespace epi {

Polynomial SosCertificate::to_polynomial(std::size_t nvars) const {
  Polynomial p(nvars);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    for (std::size_t j = 0; j < basis.size(); ++j) {
      p.add_term(basis[i] * basis[j], gram.at(i, j));
    }
  }
  return p;
}

std::optional<SosCertificate> sos_decompose(const Polynomial& f,
                                            const SdpOptions& options,
                                            double coeff_tol) {
  const unsigned deg = f.degree();
  if (deg % 2 != 0) return std::nullopt;
  const std::size_t nvars = f.nvars();
  const std::vector<Monomial> basis = monomials_up_to_degree(nvars, deg / 2);
  const std::size_t m = basis.size();

  // One linear constraint per monomial that can appear in m^T Q m.
  std::map<std::vector<unsigned>, std::size_t> row_of;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      row_of.emplace((basis[i] * basis[j]).exponents(), row_of.size());
    }
  }
  // Target coefficients (monomials of f outside the span make it infeasible;
  // they cannot occur because every monomial of degree <= deg is spanned).
  Matrix constraints(row_of.size(), m * m);
  Vec rhs(row_of.size(), 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t row = row_of.at((basis[i] * basis[j]).exponents());
      constraints.at(row, i * m + j) += 1.0;
    }
  }
  for (const auto& [exps, coeff] : f.terms()) {
    auto it = row_of.find(exps);
    if (it == row_of.end()) return std::nullopt;  // degree bookkeeping failed
    rhs[it->second] = coeff;
  }

  SdpProblem problem;
  problem.block_sizes = {m};
  problem.constraint_matrix = std::move(constraints);
  problem.rhs = std::move(rhs);

  auto blocks = solve_sdp_feasibility(problem, options);
  if (!blocks) return std::nullopt;

  SosCertificate cert;
  cert.basis = basis;
  cert.gram = std::move((*blocks)[0]);
  // Verify the certificate before handing it out.
  if (cert.to_polynomial(nvars).max_coeff_difference(f) > coeff_tol) {
    return std::nullopt;
  }
  return cert;
}

bool is_sos(const Polynomial& f, const SdpOptions& options) {
  return sos_decompose(f, options).has_value();
}

}  // namespace epi
