// The set K(A,B,Pi) of Section 6 / Proposition 6.1: distributions in an
// algebraic family Pi with P[AB] > P[A]P[B]. Safety testing is emptiness
// testing of K(A,B,Pi). This module provides
//  * algebraic descriptions of the paper's families over world weights,
//  * a projected-gradient search for a violating distribution (non-emptiness
//    witness, i.e. an "unsafe" certificate), and
//  * a complete staged decision procedure for product families combining the
//    combinatorial criteria, coordinate ascent and SOS certificates.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "algebra/polynomial.h"
#include "criteria/verdict.h"
#include "optimize/coordinate_ascent.h"
#include "optimize/sdp.h"
#include "probabilistic/distribution.h"
#include "worlds/world_set.h"

namespace epi {

/// A family Pi described by polynomial inequalities over the 2^n world-weight
/// variables p_x (the simplex constraints sum p = 1, p >= 0 are implicit).
struct AlgebraicFamily {
  std::string name;
  std::size_t nvars = 0;  ///< 2^n
  std::vector<Polynomial> inequalities;  ///< alpha_i(p) >= 0
};

/// Pi with no constraints beyond the simplex (all priors).
AlgebraicFamily unconstrained_family_in_weights(unsigned n);
/// Pi_m+ : log-supermodular distributions.
AlgebraicFamily supermodular_family_in_weights(unsigned n);
/// Pi_m- : log-submodular distributions.
AlgebraicFamily submodular_family_in_weights(unsigned n);
/// Pi_m0 : product distributions (both inequality directions).
AlgebraicFamily product_family_in_weights(unsigned n);

struct EmptinessOptions {
  int multistarts = 12;
  int iterations = 600;
  double step = 0.15;
  double penalty = 100.0;         ///< quadratic penalty on constraint violation
  double gap_threshold = 1e-7;    ///< required margin for a witness
  double feasibility_tol = 1e-6;  ///< allowed alpha_i violation of a witness
  std::uint64_t seed = 0xE117;
};

/// Result of the non-emptiness search.
struct EmptinessSearchResult {
  bool found = false;          ///< a feasible violating prior was found
  double best_gap = 0.0;       ///< best feasible gap encountered
  std::optional<Distribution> witness;
  /// Best final iterate across starts regardless of feasibility (by
  /// penalized objective) — callers with problem structure can round it to a
  /// feasible family member (relax-and-round).
  std::vector<double> best_iterate;
};

/// Projected-gradient ascent over the weight simplex maximizing the safety
/// gap with a penalty on family-constraint violation. `found == false` means
/// "no witness found", NOT "safe".
EmptinessSearchResult search_violating_distribution(const AlgebraicFamily& family,
                                                    const WorldSet& a,
                                                    const WorldSet& b,
                                                    const EmptinessOptions& options = {});

/// Complete product-family decision with provenance.
struct FullDecision {
  Verdict verdict = Verdict::kUnknown;
  std::string method;     ///< deciding stage
  bool certified = false; ///< true when backed by a proof (criterion, witness
                          ///< or SOS certificate) rather than numerics alone
  double numeric_gap = 0.0;
  std::optional<ProductDistribution> witness;
};

/// Stages: combinatorial pipeline -> coordinate ascent (unsafe witness) ->
/// SOS certificate (proved safe) -> numeric-only safe. `sos_degree` 0 picks
/// the margin degree; pass `enable_sos=false` to skip the certificate stage
/// (e.g. for large n where the SDP would be slow).
FullDecision decide_product_safety_complete(const WorldSet& a, const WorldSet& b,
                                            const AscentOptions& ascent = {},
                                            bool enable_sos = true,
                                            unsigned sos_degree = 0,
                                            const SdpOptions& sdp = {});

/// Euclidean projection onto the probability simplex (exposed for tests).
std::vector<double> project_to_simplex(std::vector<double> v);

}  // namespace epi
