#include "optimize/coordinate_ascent.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace epi {
namespace {

double gap_at(const WorldSet& a, const WorldSet& b, const std::vector<double>& p) {
  return ProductDistribution(p).safety_gap(a, b);
}

/// Exact maximization over p[i] in [0,1] holding the rest fixed: the gap is
/// quadratic in p[i], recovered from three evaluations.
double best_coordinate_value(const WorldSet& a, const WorldSet& b,
                             std::vector<double>& p, unsigned i) {
  const double saved = p[i];
  p[i] = 0.0;
  const double g0 = gap_at(a, b, p);
  p[i] = 0.5;
  const double gh = gap_at(a, b, p);
  p[i] = 1.0;
  const double g1 = gap_at(a, b, p);
  // g(t) = qa t^2 + qb t + qc through (0,g0), (0.5,gh), (1,g1).
  const double qc = g0;
  const double qa = 2.0 * (g1 + g0 - 2.0 * gh);
  const double qb = g1 - g0 - qa;
  double best_t = g0 >= g1 ? 0.0 : 1.0;
  double best_v = std::max(g0, g1);
  if (qa < 0.0) {
    const double vertex = std::clamp(-qb / (2.0 * qa), 0.0, 1.0);
    const double vv = qa * vertex * vertex + qb * vertex + qc;
    if (vv > best_v) {
      best_v = vv;
      best_t = vertex;
    }
  }
  p[i] = saved;
  return best_t;
}

}  // namespace

AscentResult maximize_product_gap(const WorldSet& a, const WorldSet& b,
                                  const AscentOptions& options) {
  if (a.n() != b.n()) throw std::invalid_argument("maximize_product_gap: n mismatch");
  const unsigned n = a.n();
  Rng rng(options.seed);
  AscentResult best;
  best.max_gap = -1.0;

  for (int start = 0; start < options.multistarts; ++start) {
    std::vector<double> p(n);
    switch (start % 4) {
      case 0:  // uniform-random interior point
        for (double& v : p) v = rng.next_double();
        break;
      case 1:  // near-corner start
        for (double& v : p) v = rng.next_bool() ? 0.95 : 0.05;
        break;
      case 2:  // center
        for (double& v : p) v = 0.5;
        break;
      default:  // mixed corner/center
        for (double& v : p) v = rng.next_bool() ? 0.5 : (rng.next_bool() ? 0.9 : 0.1);
        break;
    }

    double current = gap_at(a, b, p);
    for (int cycle = 0; cycle < options.max_cycles; ++cycle) {
      const double before = current;
      for (unsigned i = 0; i < n; ++i) {
        p[i] = best_coordinate_value(a, b, p, i);
      }
      current = gap_at(a, b, p);
      if (current - before < options.improve_tol) break;
    }
    if (current > best.max_gap) {
      best.max_gap = current;
      best.argmax = p;
    }
  }
  return best;
}

NumericDecision decide_product_safety_numeric(const WorldSet& a, const WorldSet& b,
                                              const AscentOptions& options,
                                              double unsafe_threshold) {
  const AscentResult r = maximize_product_gap(a, b, options);
  NumericDecision d;
  d.max_gap = r.max_gap;
  if (r.max_gap > unsafe_threshold) {
    d.verdict = Verdict::kUnsafe;
    d.witness_params = r.argmax;
  } else {
    d.verdict = Verdict::kSafe;
  }
  return d;
}

}  // namespace epi
