// Certified branch-and-bound lower bounds for polynomials on the unit box —
// a third, independent decision route for product-prior safety besides
// coordinate ascent (refutation) and Positivstellensatz certificates
// (proof). Interval arithmetic on monomials gives a rigorous lower bound on
// each sub-box; subdivision tightens it. The result is a *certified*
// statement "f >= -epsilon on [0,1]^n" or an explicit point with
// f(point) < -epsilon.
//
// Convergence note: near interior zero sets of f the bound tightens at rate
// O(width^2) per box but the number of active boxes can grow, so epsilon
// should not be pushed below ~1e-6 for margins with interior zeros; the
// budget caps the work and yields kUnknown when exhausted.
#pragma once

#include <vector>

#include "algebra/polynomial.h"
#include "criteria/verdict.h"
#include "worlds/world_set.h"

namespace epi {

/// Outcome of the branch-and-bound certification.
struct BranchBoundResult {
  Verdict verdict = Verdict::kUnknown;  ///< kSafe = certified >= -epsilon
  double certified_lower_bound = 0.0;   ///< valid global bound when certified
  std::vector<double> refutation_point; ///< point with f < -epsilon, if found
  std::size_t boxes_processed = 0;
};

struct BranchBoundOptions {
  double epsilon = 1e-6;         ///< certification slack
  std::size_t max_boxes = 200000;  ///< subdivision budget
};

/// Rigorous interval lower/upper bound of f over the axis-aligned box
/// [lo_i, hi_i]^n with 0 <= lo_i <= hi_i <= 1 (exposed for tests).
std::pair<double, double> interval_bounds(const Polynomial& f,
                                          const std::vector<double>& lo,
                                          const std::vector<double>& hi);

/// Certifies f >= -epsilon on [0,1]^n, refutes with a point, or gives up.
BranchBoundResult certify_nonneg_on_box(const Polynomial& f,
                                        const BranchBoundOptions& options = {});

/// Applies the certification to the product-prior safety margin
/// P[A]P[B] - P[AB]: kSafe means "no product prior gains more than epsilon".
BranchBoundResult branch_bound_product_safety(const WorldSet& a, const WorldSet& b,
                                              const BranchBoundOptions& options = {});

}  // namespace epi
