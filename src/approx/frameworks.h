// The approximate-privacy frameworks the paper surveys in Section 1.1, used
// as comparison baselines for epistemic privacy:
//
//  * rho1-to-rho2 privacy breaches (Evfimievski, Gehrke & Srikant [12]):
//    disclosure of B causes a breach when P[A] <= rho1 yet P[A|B] >= rho2;
//  * the lambda bound (Kenthapadi, Mishra & Nissim [18]):
//    1 - lambda <= P[A|B] / P[A] <= 1/(1 - lambda);
//  * the SuLQ logit bound (Blum, Dwork, McSherry & Nissim [5], Eq. (2)):
//    | logit P[A|B] - logit P[A] | <= epsilon, where logit p = log(p/(1-p)).
//
// The paper's key observation (Section 1.1): all of these are symmetric —
// they punish confidence LOSS as much as confidence gain — while all of
// their guarantees survive if only the gain side is kept. We implement both
// the symmetric originals and the gain-only (epistemic-spirit) variants so
// the flexibility difference can be measured (experiment E12).
#pragma once

#include "probabilistic/distribution.h"
#include "probabilistic/product.h"
#include "util/rng.h"
#include "worlds/world_set.h"

namespace epi {

/// log(p / (1-p)); saturates to +-kLogitCap instead of +-infinity so that
/// comparisons against finite epsilon stay meaningful at p in {0,1}.
double logit(double p);
inline constexpr double kLogitCap = 50.0;

/// [12]: true when the prior suffers a rho1-to-rho2 breach upon learning B
/// (requires rho1 < rho2). Only meaningful when P[B] > 0.
bool rho1_rho2_breach(const Distribution& prior, const WorldSet& a,
                      const WorldSet& b, double rho1, double rho2);

/// [18]: the multiplicative bound on P[A|B]/P[A]. Symmetric original.
bool lambda_safe(const Distribution& prior, const WorldSet& a, const WorldSet& b,
                 double lambda);
/// Gain-only variant: only P[A|B]/P[A] <= 1/(1-lambda) is required.
bool lambda_safe_gain_only(const Distribution& prior, const WorldSet& a,
                           const WorldSet& b, double lambda);

/// The (log-odds) confidence change logit P[A|B] - logit P[A].
double logit_gain(const Distribution& prior, const WorldSet& a, const WorldSet& b);

/// [5] Eq. (2), per-disclosure form: |logit gain| <= epsilon. Symmetric.
bool sulq_safe(const Distribution& prior, const WorldSet& a, const WorldSet& b,
               double epsilon);
/// Gain-only variant: logit gain <= epsilon (losses of any size allowed) —
/// the paper's proposed asymmetric reading of (2).
bool sulq_safe_gain_only(const Distribution& prior, const WorldSet& a,
                         const WorldSet& b, double epsilon);

/// Worst-case assessment of a disclosure over sampled product priors: the
/// family-level analogue used to compare frameworks on equal footing.
struct FrameworkAssessment {
  double max_gain = 0.0;            ///< max P[A|B] - P[A]
  double max_logit_gain = 0.0;      ///< max logit change upward
  double max_logit_loss = 0.0;      ///< max logit change downward (>= 0)
  double max_ratio = 0.0;           ///< max P[A|B]/P[A]
  double min_ratio = 0.0;           ///< min P[A|B]/P[A]
  bool breach_rho = false;          ///< some prior suffers a rho1->rho2 breach

  /// Verdicts under each framework at the given thresholds.
  bool epistemic_ok(double tol = 1e-9) const { return max_gain <= tol; }
  bool sulq_ok(double epsilon) const {
    return max_logit_gain <= epsilon && max_logit_loss <= epsilon;
  }
  bool sulq_gain_only_ok(double epsilon) const { return max_logit_gain <= epsilon; }
  bool lambda_ok(double lambda) const {
    return min_ratio >= 1.0 - lambda && max_ratio <= 1.0 / (1.0 - lambda);
  }
  bool lambda_gain_only_ok(double lambda) const {
    return max_ratio <= 1.0 / (1.0 - lambda);
  }
};

/// Samples `samples` random product priors (plus structured corner-ish ones)
/// and aggregates the worst confidence changes for the disclosure of B with
/// audited property A.
FrameworkAssessment assess_over_product_priors(const WorldSet& a, const WorldSet& b,
                                               Rng& rng, int samples = 4000,
                                               double rho1 = 0.5, double rho2 = 0.8);

}  // namespace epi
