#include "approx/frameworks.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace epi {

double logit(double p) {
  if (p <= 0.0) return -kLogitCap;
  if (p >= 1.0) return kLogitCap;
  return std::clamp(std::log(p / (1.0 - p)), -kLogitCap, kLogitCap);
}

bool rho1_rho2_breach(const Distribution& prior, const WorldSet& a,
                      const WorldSet& b, double rho1, double rho2) {
  if (!(rho1 < rho2)) {
    throw std::invalid_argument("rho1_rho2_breach: requires rho1 < rho2");
  }
  if (prior.prob(b) <= 0.0) return false;
  return prior.prob(a) <= rho1 && prior.conditional(a, b) >= rho2;
}

bool lambda_safe(const Distribution& prior, const WorldSet& a, const WorldSet& b,
                 double lambda) {
  if (!(lambda > 0.0 && lambda < 1.0)) {
    throw std::invalid_argument("lambda_safe: lambda must be in (0,1)");
  }
  if (prior.prob(b) <= 0.0) return true;
  const double pa = prior.prob(a);
  const double pab = prior.conditional(a, b);
  if (pa <= 0.0) return pab <= 0.0;  // ratio undefined unless both zero
  const double ratio = pab / pa;
  return ratio >= 1.0 - lambda && ratio <= 1.0 / (1.0 - lambda);
}

bool lambda_safe_gain_only(const Distribution& prior, const WorldSet& a,
                           const WorldSet& b, double lambda) {
  if (!(lambda > 0.0 && lambda < 1.0)) {
    throw std::invalid_argument("lambda_safe_gain_only: lambda must be in (0,1)");
  }
  if (prior.prob(b) <= 0.0) return true;
  const double pa = prior.prob(a);
  const double pab = prior.conditional(a, b);
  if (pa <= 0.0) return pab <= 0.0;
  return pab / pa <= 1.0 / (1.0 - lambda);
}

double logit_gain(const Distribution& prior, const WorldSet& a, const WorldSet& b) {
  if (prior.prob(b) <= 0.0) return 0.0;
  return logit(prior.conditional(a, b)) - logit(prior.prob(a));
}

bool sulq_safe(const Distribution& prior, const WorldSet& a, const WorldSet& b,
               double epsilon) {
  return std::abs(logit_gain(prior, a, b)) <= epsilon;
}

bool sulq_safe_gain_only(const Distribution& prior, const WorldSet& a,
                         const WorldSet& b, double epsilon) {
  return logit_gain(prior, a, b) <= epsilon;
}

FrameworkAssessment assess_over_product_priors(const WorldSet& a, const WorldSet& b,
                                               Rng& rng, int samples, double rho1,
                                               double rho2) {
  FrameworkAssessment out;
  out.min_ratio = 1.0;
  out.max_ratio = 1.0;
  const unsigned n = a.n();
  for (int s = 0; s < samples; ++s) {
    ProductDistribution p = [&] {
      if (s % 3 == 0) {
        // Corner-biased parameters expose ratio extremes.
        std::vector<double> params(n);
        for (double& v : params) {
          v = rng.next_bool() ? 0.02 + 0.08 * rng.next_double()
                              : 0.90 + 0.08 * rng.next_double();
        }
        return ProductDistribution(params);
      }
      return ProductDistribution::random(n, rng);
    }();
    const double pb = p.prob(b);
    if (pb <= 1e-12) continue;
    const double pa = p.prob(a);
    const double pab = p.prob(a & b) / pb;
    out.max_gain = std::max(out.max_gain, pab - pa);
    const double gain = logit(pab) - logit(pa);
    out.max_logit_gain = std::max(out.max_logit_gain, gain);
    out.max_logit_loss = std::max(out.max_logit_loss, -gain);
    if (pa > 1e-12) {
      const double ratio = pab / pa;
      out.max_ratio = std::max(out.max_ratio, ratio);
      out.min_ratio = std::min(out.min_ratio, ratio);
    }
    out.breach_rho = out.breach_rho || (pa <= rho1 && pab >= rho2);
  }
  return out;
}

}  // namespace epi
