#include "linalg/least_squares.h"

#include <stdexcept>

#include "linalg/cholesky.h"

namespace epi {

Vec solve_least_squares(const Matrix& a, const Vec& b, double ridge) {
  const Matrix at = a.transpose();
  Matrix normal = at * a;
  for (std::size_t i = 0; i < normal.rows(); ++i) normal.at(i, i) += ridge;
  const auto factor = cholesky(normal);
  if (!factor) throw std::runtime_error("solve_least_squares: singular normal matrix");
  return cholesky_solve(*factor, at * b);
}

Vec solve_min_norm(const Matrix& a, const Vec& b, double ridge) {
  Matrix gram = a * a.transpose();
  for (std::size_t i = 0; i < gram.rows(); ++i) gram.at(i, i) += ridge;
  const auto factor = cholesky(gram);
  if (!factor) throw std::runtime_error("solve_min_norm: singular Gram matrix");
  const Vec y = cholesky_solve(*factor, b);
  return a.transpose() * y;
}

AffineProjector::AffineProjector(Matrix a, Vec b, double ridge)
    : a_(std::move(a)), b_(std::move(b)) {
  if (a_.rows() != b_.size()) {
    throw std::invalid_argument("AffineProjector: row/rhs mismatch");
  }
  Matrix gram = a_ * a_.transpose();
  for (std::size_t i = 0; i < gram.rows(); ++i) gram.at(i, i) += ridge;
  const auto factor = cholesky(gram);
  if (!factor) throw std::runtime_error("AffineProjector: singular Gram matrix");
  gram_factor_ = *factor;
}

Vec AffineProjector::project(const Vec& x0) const {
  if (x0.size() != a_.cols()) {
    throw std::invalid_argument("AffineProjector::project: size mismatch");
  }
  Vec residual_vec = a_ * x0;
  for (std::size_t i = 0; i < residual_vec.size(); ++i) residual_vec[i] -= b_[i];
  const Vec y = cholesky_solve(gram_factor_, residual_vec);
  Vec x = x0;
  const Vec correction = a_.transpose() * y;
  for (std::size_t i = 0; i < x.size(); ++i) x[i] -= correction[i];
  return x;
}

double AffineProjector::residual(const Vec& x) const {
  Vec r = a_ * x;
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b_[i];
  return norm(r);
}

}  // namespace epi
