// Symmetric eigendecomposition (cyclic Jacobi) and projection onto the PSD
// cone — the core primitive of the alternating-projection SDP solver.
#pragma once

#include "linalg/matrix.h"

namespace epi {

/// A = V diag(values) V^T with orthonormal columns of V.
struct EigenDecomposition {
  Vec values;      ///< ascending eigenvalues
  Matrix vectors;  ///< column i is the eigenvector of values[i]
};

/// Cyclic Jacobi sweeps until off-diagonal mass < tol. Input must be
/// symmetric (symmetrize first if in doubt).
EigenDecomposition jacobi_eigen(const Matrix& a, double tol = 1e-12,
                                int max_sweeps = 100);

/// Euclidean projection onto the PSD cone: clamp negative eigenvalues to 0.
Matrix project_psd(const Matrix& a);

/// Smallest eigenvalue (convenience).
double min_eigenvalue(const Matrix& a);

/// True when all eigenvalues >= -tol.
bool is_psd(const Matrix& a, double tol = 1e-9);

}  // namespace epi
