// Small dense linear algebra used by the semidefinite-feasibility and
// sum-of-squares layers (Section 6.2 of the paper). Self-contained: no BLAS.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace epi {

/// Dense vector of doubles.
using Vec = std::vector<double>;

/// v . w
double dot(const Vec& v, const Vec& w);
/// Euclidean norm.
double norm(const Vec& v);
/// y += alpha * x
void axpy(double alpha, const Vec& x, Vec& y);

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double at(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(const Matrix& o) const;
  Matrix operator*(double s) const;
  Vec operator*(const Vec& v) const;

  Matrix transpose() const;

  double frobenius_norm() const;
  bool is_symmetric(double tol = 1e-9) const;

  /// Symmetrizes in place: (A + A^T) / 2.
  void symmetrize();

  std::string to_string() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace epi
