// Cholesky factorization and SPD solves.
#pragma once

#include <optional>

#include "linalg/matrix.h"

namespace epi {

/// Lower-triangular L with A = L L^T; nullopt when A (symmetric) is not
/// positive definite up to the pivot tolerance.
std::optional<Matrix> cholesky(const Matrix& a, double pivot_tol = 1e-12);

/// Solves A x = b given the Cholesky factor L of A.
Vec cholesky_solve(const Matrix& l, const Vec& b);

}  // namespace epi
