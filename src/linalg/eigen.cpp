#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace epi {

EigenDecomposition jacobi_eigen(const Matrix& input, double tol, int max_sweeps) {
  if (!input.is_symmetric(1e-7)) {
    throw std::invalid_argument("jacobi_eigen: matrix not symmetric");
  }
  const std::size_t n = input.rows();
  Matrix a = input;
  a.symmetrize();
  Matrix v = Matrix::identity(n);

  auto off_diag_norm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) s += a.at(i, j) * a.at(i, j);
    }
    return std::sqrt(2.0 * s);
  };

  for (int sweep = 0; sweep < max_sweeps && off_diag_norm() > tol; ++sweep) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (a.at(q, q) - a.at(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        // Accumulate the rotation into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition d;
  d.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) d.values[i] = a.at(i, i);
  // Sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return d.values[x] < d.values[y]; });
  Vec sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted_values[i] = d.values[order[i]];
    for (std::size_t k = 0; k < n; ++k) sorted_vectors.at(k, i) = v.at(k, order[i]);
  }
  d.values = std::move(sorted_values);
  d.vectors = std::move(sorted_vectors);
  return d;
}

Matrix project_psd(const Matrix& a) {
  const EigenDecomposition d = jacobi_eigen(a);
  const std::size_t n = a.rows();
  Matrix r(n, n);
  for (std::size_t e = 0; e < n; ++e) {
    const double lambda = std::max(d.values[e], 0.0);
    if (lambda == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const double vi = d.vectors.at(i, e);
      if (vi == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        r.at(i, j) += lambda * vi * d.vectors.at(j, e);
      }
    }
  }
  r.symmetrize();
  return r;
}

double min_eigenvalue(const Matrix& a) { return jacobi_eigen(a).values.front(); }

bool is_psd(const Matrix& a, double tol) { return min_eigenvalue(a) >= -tol; }

}  // namespace epi
