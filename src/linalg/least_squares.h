// Least-squares and minimum-norm solves used for projecting onto affine
// subspaces {x : A x = b} inside the alternating-projection SDP solver.
#pragma once

#include "linalg/matrix.h"

namespace epi {

/// Minimizes ||A x - b||_2 via regularized normal equations
/// (A^T A + ridge I) x = A^T b.
Vec solve_least_squares(const Matrix& a, const Vec& b, double ridge = 1e-12);

/// Minimum-norm solution of the (under-determined, consistent) system
/// A x = b: x = A^T (A A^T + ridge I)^{-1} b.
Vec solve_min_norm(const Matrix& a, const Vec& b, double ridge = 1e-12);

/// Euclidean projection of x0 onto {x : A x = b}:
/// x0 - A^T (A A^T)^{-1} (A x0 - b). The Gram factor can be precomputed once
/// with AffineProjector when projecting many points.
class AffineProjector {
 public:
  /// Builds and factorizes the Gram matrix A A^T + ridge I.
  AffineProjector(Matrix a, Vec b, double ridge = 1e-10);

  /// Projects x0 onto the affine subspace (x0 size = columns of A).
  Vec project(const Vec& x0) const;

  /// Residual ||A x - b|| of a candidate.
  double residual(const Vec& x) const;

 private:
  Matrix a_;
  Vec b_;
  Matrix gram_factor_;  // Cholesky factor of A A^T + ridge I
};

}  // namespace epi
