#include "linalg/cholesky.h"

#include <cmath>
#include <stdexcept>

namespace epi {

std::optional<Matrix> cholesky(const Matrix& a, double pivot_tol) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: not square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l.at(j, k) * l.at(j, k);
    if (diag <= pivot_tol) return std::nullopt;
    l.at(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l.at(i, k) * l.at(j, k);
      l.at(i, j) = v / l.at(j, j);
    }
  }
  return l;
}

Vec cholesky_solve(const Matrix& l, const Vec& b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("cholesky_solve: size mismatch");
  // Forward solve L y = b.
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l.at(i, k) * y[k];
    y[i] = v / l.at(i, i);
  }
  // Back solve L^T x = y.
  Vec x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l.at(k, ii) * x[k];
    x[ii] = v / l.at(ii, ii);
  }
  return x;
}

}  // namespace epi
