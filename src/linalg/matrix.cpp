#include "linalg/matrix.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace epi {

double dot(const Vec& v, const Vec& w) {
  if (v.size() != w.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) s += v[i] * w[i];
  return s;
}

double norm(const Vec& v) { return std::sqrt(dot(v, v)); }

void axpy(double alpha, const Vec& x, Vec& y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::operator+(const Matrix& o) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) {
    throw std::invalid_argument("Matrix+: shape mismatch");
  }
  Matrix r(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] = data_[i] + o.data_[i];
  return r;
}

Matrix Matrix::operator-(const Matrix& o) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) {
    throw std::invalid_argument("Matrix-: shape mismatch");
  }
  Matrix r(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] = data_[i] - o.data_[i];
  return r;
}

Matrix Matrix::operator*(const Matrix& o) const {
  if (cols_ != o.rows_) throw std::invalid_argument("Matrix*: shape mismatch");
  Matrix r(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) {
        r.at(i, j) += aik * o.at(k, j);
      }
    }
  }
  return r;
}

Matrix Matrix::operator*(double s) const {
  Matrix r(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] = data_[i] * s;
  return r;
}

Vec Matrix::operator*(const Vec& v) const {
  if (cols_ != v.size()) throw std::invalid_argument("Matrix*vec: shape mismatch");
  Vec r(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += at(i, j) * v[j];
    r[i] = s;
  }
  return r;
}

Matrix Matrix::transpose() const {
  Matrix r(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) r.at(j, i) = at(i, j);
  }
  return r;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      if (std::abs(at(i, j) - at(j, i)) > tol) return false;
    }
  }
  return true;
}

void Matrix::symmetrize() {
  if (rows_ != cols_) throw std::logic_error("symmetrize: not square");
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      const double avg = 0.5 * (at(i, j) + at(j, i));
      at(i, j) = avg;
      at(j, i) = avg;
    }
  }
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      os << (j ? " " : "") << at(i, j);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace epi
