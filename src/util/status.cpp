#include "util/status.h"

namespace epi {

std::string Status::to_string() const {
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "InvalidArgument: " + message_;
    case Code::kOutOfRange:
      return "OutOfRange: " + message_;
    case Code::kInternal:
      return "Internal: " + message_;
    case Code::kInconclusive:
      return "Inconclusive: " + message_;
    case Code::kResourceExhausted:
      return "ResourceExhausted: " + message_;
    case Code::kDeadlineExceeded:
      return "DeadlineExceeded: " + message_;
    case Code::kCancelled:
      return "Cancelled: " + message_;
    case Code::kUnavailable:
      return "Unavailable: " + message_;
  }
  return "Unknown";
}

}  // namespace epi
