#include "util/status.h"

namespace epi {

std::string Status::to_string() const {
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "InvalidArgument: " + message_;
    case Code::kOutOfRange:
      return "OutOfRange: " + message_;
    case Code::kInternal:
      return "Internal: " + message_;
    case Code::kInconclusive:
      return "Inconclusive: " + message_;
  }
  return "Unknown";
}

}  // namespace epi
