#include "util/rng.h"

namespace epi {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire-style rejection: keep the result unbiased.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::uint64_t Rng::next_bits(unsigned n) {
  if (n == 0) return 0;
  if (n >= 64) return next_u64();
  return next_u64() & ((1ull << n) - 1);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = next_below(i);
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

}  // namespace epi
