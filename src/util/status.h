// Minimal status/error type used across module boundaries where exceptions
// would obscure expected "can't decide" outcomes.
#pragma once

#include <string>
#include <utility>

namespace epi {

/// Outcome of an operation that may fail in an expected way.
class Status {
 public:
  /// Success.
  static Status Ok() { return Status(); }
  /// Invalid argument supplied by the caller.
  static Status InvalidArgument(std::string msg) { return Status(Code::kInvalidArgument, std::move(msg)); }
  /// Resource/size limits exceeded (e.g. n too large for dense Omega).
  static Status OutOfRange(std::string msg) { return Status(Code::kOutOfRange, std::move(msg)); }
  /// Internal invariant violation.
  static Status Internal(std::string msg) { return Status(Code::kInternal, std::move(msg)); }
  /// Algorithm could not reach a conclusion within its budget.
  static Status Inconclusive(std::string msg) { return Status(Code::kInconclusive, std::move(msg)); }
  /// A bounded resource (queue slot, cache, worker) is full — retry later.
  /// The audit service's admission-control backpressure signal.
  static Status ResourceExhausted(std::string msg) { return Status(Code::kResourceExhausted, std::move(msg)); }
  /// The request's deadline passed before a result was produced.
  static Status DeadlineExceeded(std::string msg) { return Status(Code::kDeadlineExceeded, std::move(msg)); }
  /// The caller cancelled the request cooperatively.
  static Status Cancelled(std::string msg) { return Status(Code::kCancelled, std::move(msg)); }
  /// The serving component is shutting down (or not yet up) — not retryable
  /// on this instance, unlike ResourceExhausted.
  static Status Unavailable(std::string msg) { return Status(Code::kUnavailable, std::move(msg)); }

  enum class Code {
    kOk,
    kInvalidArgument,
    kOutOfRange,
    kInternal,
    kInconclusive,
    kResourceExhausted,
    kDeadlineExceeded,
    kCancelled,
    kUnavailable,
  };

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string to_string() const;

 private:
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

}  // namespace epi
