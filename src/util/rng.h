// Deterministic, seedable PRNG (xoshiro256**) so that tests, benchmarks and
// experiment tables are bit-reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <vector>

namespace epi {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded through splitmix64. Not cryptographic; used for workload generation
/// and randomized property tests only.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using rejection sampling; bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5);

  /// Uniform n-bit mask (n <= 64).
  std::uint64_t next_bits(unsigned n);

  /// Random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace epi
