#include "util/rational.h"

#include <numeric>
#include <ostream>

namespace epi {

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_mul_overflow(a, b, &r)) {
    throw RationalOverflow("rational multiply overflow");
  }
  return r;
}

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_add_overflow(a, b, &r)) {
    throw RationalOverflow("rational add overflow");
  }
  return r;
}

Rational::Rational(std::int64_t num, std::int64_t den) {
  if (den == 0) throw std::domain_error("rational with zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  const std::int64_t g = std::gcd(num < 0 ? -num : num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  num_ = num;
  den_ = den;
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

Rational Rational::operator+(const Rational& o) const {
  const std::int64_t g = std::gcd(den_, o.den_);
  // a/b + c/d = (a*(d/g) + c*(b/g)) / (b*(d/g))
  const std::int64_t lhs = checked_mul(num_, o.den_ / g);
  const std::int64_t rhs = checked_mul(o.num_, den_ / g);
  return Rational(checked_add(lhs, rhs), checked_mul(den_, o.den_ / g));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce before multiplying to delay overflow.
  const std::int64_t g1 = std::gcd(num_ < 0 ? -num_ : num_, o.den_);
  const std::int64_t g2 = std::gcd(o.num_ < 0 ? -o.num_ : o.num_, den_);
  return Rational(checked_mul(num_ / g1, o.num_ / g2),
                  checked_mul(den_ / g2, o.den_ / g1));
}

Rational Rational::operator/(const Rational& o) const {
  return *this * o.reciprocal();
}

std::strong_ordering Rational::operator<=>(const Rational& o) const {
  // Compare a/b vs c/d via a*d vs c*b with cross-reduction.
  const std::int64_t g1 = std::gcd(num_ < 0 ? -num_ : num_, o.num_ < 0 ? -o.num_ : o.num_);
  const std::int64_t g2 = std::gcd(den_, o.den_);
  const std::int64_t a = g1 == 0 ? num_ : num_ / (g1 == 0 ? 1 : g1);
  const std::int64_t c = g1 == 0 ? o.num_ : o.num_ / (g1 == 0 ? 1 : g1);
  const std::int64_t lhs = checked_mul(a, o.den_ / g2);
  const std::int64_t rhs = checked_mul(c, den_ / g2);
  return lhs <=> rhs;
}

Rational Rational::abs() const { return num_ < 0 ? -*this : *this; }

Rational Rational::reciprocal() const {
  if (num_ == 0) throw std::domain_error("reciprocal of zero rational");
  return Rational(den_, num_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace epi
