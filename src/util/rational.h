// Exact rational arithmetic on 64-bit numerator/denominator with overflow
// checking. Used by the combinatorial criteria and the exact-distribution
// backend so that a "safe" verdict never hinges on floating-point rounding.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace epi {

/// Thrown when an exact rational operation would overflow 64-bit storage.
class RationalOverflow : public std::runtime_error {
 public:
  explicit RationalOverflow(const std::string& what) : std::runtime_error(what) {}
};

/// An exact rational number p/q with q > 0 and gcd(|p|, q) == 1.
///
/// All arithmetic throws RationalOverflow instead of silently wrapping; the
/// intended domain (probabilities and counting ratios on |Omega| <= 2^20
/// worlds) stays far away from the 63-bit limit in practice.
class Rational {
 public:
  /// Zero.
  constexpr Rational() : num_(0), den_(1) {}
  /// The integer n.
  constexpr Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT: implicit
  /// The fraction num/den; den must be nonzero. Normalizes sign and gcd.
  Rational(std::int64_t num, std::int64_t den);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_negative() const { return num_ < 0; }
  bool is_positive() const { return num_ > 0; }
  bool is_integer() const { return den_ == 1; }

  /// Nearest double value (may round for huge numerators).
  double to_double() const;

  /// "p/q" or "p" when q == 1.
  std::string to_string() const;

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Division; throws std::domain_error when o == 0.
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const { return num_ == o.num_ && den_ == o.den_; }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  std::strong_ordering operator<=>(const Rational& o) const;

  /// |this|.
  Rational abs() const;
  /// 1/this; throws std::domain_error when zero.
  Rational reciprocal() const;

 private:
  std::int64_t num_;
  std::int64_t den_;  // invariant: den_ > 0, gcd(|num_|, den_) == 1
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Checked signed 64-bit multiply; throws RationalOverflow on overflow.
std::int64_t checked_mul(std::int64_t a, std::int64_t b);
/// Checked signed 64-bit add; throws RationalOverflow on overflow.
std::int64_t checked_add(std::int64_t a, std::int64_t b);

}  // namespace epi
