// The audit service's wire protocol: framed JSON lines over a byte stream
// (one request or response object per '\n'-terminated line — the framing —
// served over a Unix-domain socket by examples/audit_server.cpp).
//
// Every message is one FLAT JSON object: values are strings, integers,
// booleans or null only — no nesting — so both ends stay trivially
// parseable and diffable. Grammar (docs/service.md has the full table):
//
//   request  := { "op": "hello" | "audit" | "metrics" | "reset_session"
//                       | "shutdown",
//                 "id": <uint>,                  // echoed on the response
//                 "user": <string>,              // audit / reset_session
//                 "query": <string>,             // audit
//                 "answer": <bool>,              // audit, optional: replay mode
//                 "deadline_ms": <int> }         // audit, optional, relative
//
//   response := { "id": <uint>, "ok": <bool>,
//                 "error": <string>, "code": <slug>,        // when !ok
//                 "answer": <bool>, "denied": <bool>,       // audit
//                 "verdict": <string>, "method": <string>,
//                 "certified": <bool>, "cached": <bool>,
//                 "cumulative_verdict": <string>,
//                 "cumulative_method": <string>,
//                 "cumulative_cached": <bool>,
//                 "sequence": <uint>,
//                 "audit_query": <string>, "prior": <string>,   // hello
//                 "metrics_json": <string> }                    // metrics
//
// The metrics payload is the obs metrics JSON document carried as an
// escaped string ("metrics_json"), keeping the envelope flat.
//
// Parsing is Status-first and never throws; malformed lines come back as
// InvalidArgument naming the byte offset.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "service/audit_service.h"
#include "util/status.h"

namespace epi {
namespace service {

/// Incremental '\n' framing over a byte stream, shared by the server's event
/// loop, the shard router and the client: feed() bytes as they arrive
/// (partial reads, one byte at a time, whole pipelined bursts — any split),
/// next() yields each complete line exactly once, in order, without the
/// terminator. A line longer than `max_line_bytes` (complete or still
/// partial) trips a sticky ResourceExhausted: feed() keeps returning it (and
/// drops the oversized bytes, so buffered() is 0 regardless of how the bytes
/// were chunked), next() keeps returning lines framed before the overflow,
/// and the owner is expected to answer with an error frame and close the
/// connection.
class LineFramer {
 public:
  /// Requests are small; the cap mostly bounds a hostile peer streaming an
  /// endless unterminated line into server memory. Metrics responses are the
  /// largest legitimate frames, still far under this.
  static constexpr std::size_t kDefaultMaxLineBytes = 1 << 20;

  explicit LineFramer(std::size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends bytes and frames any lines they complete. Returns the sticky
  /// overflow status (Ok until the cap is exceeded).
  Status feed(std::string_view bytes);

  /// Pops the next complete line into `*line`; false when none is ready.
  bool next(std::string* line);

  /// Bytes of the still-unterminated trailing line.
  std::size_t buffered() const { return partial_.size(); }

  /// Ok, or the sticky ResourceExhausted once a line exceeded the cap.
  const Status& status() const { return status_; }

 private:
  std::size_t max_line_bytes_;
  std::string partial_;           ///< bytes after the last '\n' seen
  std::deque<std::string> ready_; ///< framed, not yet handed out
  Status status_ = Status::Ok();
};

enum class Op {
  kHello,
  kAudit,
  kMetrics,
  kResetSession,
  kShutdown,
  // Router-admin ops (shard_router membership; a plain worker answers them
  // with InvalidArgument). `addr` carries the worker listen address.
  kAddWorker,
  kRemoveWorker,
};

std::string to_string(Op op);

struct WireRequest {
  Op op = Op::kAudit;
  std::uint64_t id = 0;
  std::string user;
  std::string query;
  std::optional<bool> answer;   ///< present = replayed-log mode
  std::int64_t deadline_ms = 0; ///< relative; 0 = server default
  std::string addr;             ///< add_worker / remove_worker target
};

struct WireResponse {
  std::uint64_t id = 0;
  bool ok = false;
  std::string error;  ///< Status::to_string() when !ok
  std::string code;   ///< machine-readable status slug ("resource_exhausted")

  // audit
  bool answer = false;
  bool denied = false;
  std::string verdict;
  std::string method;
  bool certified = false;
  bool cached = false;
  std::string cumulative_verdict;
  std::string cumulative_method;
  bool cumulative_cached = false;
  std::uint64_t sequence = 0;

  // hello
  std::string audit_query;
  std::string prior;

  // metrics
  std::string metrics_json;
};

/// One line (no trailing newline) per message; the caller frames.
std::string serialize_request(const WireRequest& request);
std::string serialize_response(const WireResponse& response);

/// Parse one frame. On failure `*out` is default-reset and the Status names
/// the problem (unknown op, bad JSON, wrong value type).
Status parse_request(const std::string& line, WireRequest* out);
Status parse_response(const std::string& line, WireResponse* out);

/// Lowercase slug for a status code ("ok", "invalid_argument",
/// "resource_exhausted", ...), stable for clients to branch on.
std::string status_code_slug(Status::Code code);

/// Maps a service AuditResponse onto the wire (used by the server; tests
/// use it to check parity between in-process and on-the-wire verdicts).
WireResponse make_audit_response(std::uint64_t id, const AuditResponse& response);

}  // namespace service
}  // namespace epi
