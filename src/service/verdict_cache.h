// A process-wide sharded LRU cache of engine verdicts for the audit
// service. Entries are keyed by (WorldSet::hash(A), WorldSet::hash(B),
// prior) — engine decisions are pure functions of that triple — and every
// hit re-verifies the stored (A, B) sets by equality, so a hash collision
// degrades to a counted miss instead of serving a wrong verdict
// (cache-poisoning safety; the avalanche hash makes collisions astronomically
// rare, the equality check makes them harmless).
//
// Backend note: WorldSet::hash is representation-dependent — a dense set and
// its symbolized copy hash differently, while two syntactically different
// symbolic covers of the same set hash the same (semantic probe signature).
// A service instance compiles every set through one backend, so keys are
// consistent within a scenario; the equality re-verification above is what
// makes even cross-representation lookups merely a miss, never a wrong hit.
//
// Sharding: keys map to one of `shards` independently locked LRU lists, so
// concurrent service workers contend only when they touch the same shard.
// Metrics (`service.cache.{hits,misses,evictions,collisions,invalidations}`)
// land in the registry handed to the constructor.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "engine/criterion_stage.h"
#include "engine/decision_engine.h"
#include "obs/metrics.h"
#include "worlds/world_set.h"

namespace epi {
namespace service {

/// The cache key triple. Tests construct forged keys directly to exercise
/// the collision path; production code goes through VerdictCache::key_for.
struct VerdictKey {
  std::uint64_t a_hash = 0;
  std::uint64_t b_hash = 0;
  int prior = 0;

  bool operator==(const VerdictKey& o) const {
    return a_hash == o.a_hash && b_hash == o.b_hash && prior == o.prior;
  }
};

class VerdictCache {
 public:
  struct Options {
    /// Total entry budget across all shards (>= 1; per-shard capacity is
    /// capacity / shards, floored at 1).
    std::size_t capacity = 4096;
    unsigned shards = 8;
  };

  /// `metrics` receives the service.cache.* counters; it must outlive the
  /// cache. Throws std::invalid_argument on a zero capacity or shard count.
  VerdictCache(Options options, obs::MetricsRegistry& metrics);

  static VerdictKey key_for(const WorldSet& a, const WorldSet& b,
                            PriorAssumption prior);

  /// The cached decision for `key`, verified against (a, b); nullopt on
  /// miss. A key hit whose stored sets differ from (a, b) is a collision:
  /// counted, treated as a miss, never served.
  std::optional<EngineDecision> lookup(const VerdictKey& key, const WorldSet& a,
                                       const WorldSet& b);

  /// Inserts (or refreshes) the decision for `key`, evicting the shard's
  /// least-recently-used entry when full.
  void insert(const VerdictKey& key, const WorldSet& a, const WorldSet& b,
              const EngineDecision& decision);

  /// Drops every entry (scenario reload: the engine configuration behind
  /// the verdicts changed). Counts one invalidation.
  void invalidate_all();

  /// Current entry count across shards (O(shards)).
  std::size_t size() const;

  std::size_t capacity() const { return options_.capacity; }

 private:
  struct Entry {
    VerdictKey key;
    WorldSet a;
    WorldSet b;
    EngineDecision decision;
  };

  struct KeyHash {
    std::size_t operator()(const VerdictKey& k) const {
      // The set hashes are already avalanched by the shared kernel; combine
      // them (and the prior) with the kernel's avalanche combine so shard
      // selection stays uniform.
      return static_cast<std::size_t>(bits::hash_combine(
          bits::hash_combine(k.a_hash, k.b_hash),
          static_cast<std::uint64_t>(k.prior)));
    }
  };

  /// One independently locked LRU: list front = most recent; the map points
  /// into the list.
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;
    std::unordered_map<VerdictKey, std::list<Entry>::iterator, KeyHash> index;
  };

  Shard& shard_for(const VerdictKey& key);

  Options options_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Counter* collisions_;
  obs::Counter* invalidations_;
};

}  // namespace service
}  // namespace epi
