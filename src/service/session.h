// Per-user session state for the audit service. A session tracks the user's
// accumulated disclosures as one WorldSet intersection — the paper's
// Section 3.3 composition rule (acquiring B1 then B2 equals acquiring
// B1 ∩ B2, Def. 3.9 / Prop. 3.10), so k streamed disclosures audit exactly
// like the offline per-user conjunction — and optionally drives an
// OnlineAuditSession whose strategy decides allow/deny before anything is
// disclosed at all (Section 7's online direction).
//
// Sessions are mutated under their own mutex: the service serializes
// requests per user (intersection is commutative, but sequence numbers and
// the online strategy's agent model are order-sensitive) while distinct
// users proceed in parallel.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/online.h"
#include "engine/incremental.h"
#include "worlds/world_set.h"

namespace epi {
namespace service {

class Session {
 public:
  /// A fresh session knows nothing: the accumulated set starts at the full
  /// universe {0,1}^records. `generation` ties the session to the scenario
  /// it was built for; the service recreates sessions whose generation does
  /// not match the scenario serving the request, so a WorldSet from one
  /// universe is never intersected into a session from another.
  Session(std::string user, unsigned records, std::uint64_t generation = 0);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& user() const { return user_; }

  /// The scenario generation this session was built for.
  std::uint64_t generation() const { return generation_; }

  /// B1 ∩ ... ∩ Bk over every disclosure absorbed so far (the universe when
  /// k = 0). Read under the session mutex when workers are running.
  const WorldSet& accumulated() const { return accumulated_; }

  /// Number of disclosures absorbed.
  std::uint64_t disclosures() const { return disclosures_; }

  /// Intersects one disclosed set into the accumulated knowledge and
  /// returns the 1-based sequence number of the disclosure. Skips the
  /// intersection — and leaves the incremental state clean — when the
  /// accumulated set is already a subset of `disclosed` (the intersection
  /// would be the identity); otherwise marks the incremental state dirty so
  /// the next cumulative decision re-evaluates.
  std::uint64_t absorb(const WorldSet& disclosed);

  /// Per-session delta-evaluation state for the cumulative decision (see
  /// engine/incremental.h). Mutated by absorb() and by
  /// DecisionEngine::decide_incremental, both under the session mutex.
  /// Dies with the session: reset_session()/reload() drop the whole Session
  /// object, and router replay rebuilds into a fresh one, so stale deltas
  /// can never survive an S that grows back.
  IncrementalContext& incremental() { return incremental_; }

  /// Attaches the allow/deny strategy driver (online mode only).
  void attach_online(std::unique_ptr<OnlineAuditSession> online);
  OnlineAuditSession* online() { return online_.get(); }

  /// Serializes per-user processing; the service holds this for the
  /// absorb-and-decide step of each request.
  std::mutex& mutex() { return mutex_; }

 private:
  std::string user_;
  std::uint64_t generation_;
  WorldSet accumulated_;
  IncrementalContext incremental_;
  std::uint64_t disclosures_ = 0;
  std::unique_ptr<OnlineAuditSession> online_;
  std::mutex mutex_;
};

}  // namespace service
}  // namespace epi
