// The long-running concurrent audit service: the production front-end the
// ROADMAP's "heavy traffic" north star asks for, layered on the existing
// Auditor / DecisionEngine machinery so every verdict is byte-identical to
// an offline Auditor::audit of the same log.
//
// Shape:
//  * per-user Session objects track accumulated disclosures by intersection
//    (Section 3.3 composition) and optionally drive an OnlineAuditSession
//    allow/deny strategy;
//  * a sharded LRU VerdictCache keyed by (hash(A), hash(B), prior) serves
//    repeat decisions without touching the engine;
//  * a bounded request queue with admission control: a full queue rejects
//    with Status::ResourceExhausted (backpressure), each request carries a
//    deadline and a cooperative cancellation flag, and shutdown() drains
//    every accepted request before the workers exit;
//  * the whole path is instrumented through the obs layer: a
//    `service.request` span per request (engine decide spans nest under it),
//    queue-depth / cache-hit counters and queue-wait / process-time
//    histograms in the service's own MetricsRegistry.
//
// Threading: submit() is safe from any number of threads; `workers` service
// threads process requests. Requests for the same user serialize on the
// session mutex; distinct users proceed in parallel.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/auditor.h"
#include "core/online.h"
#include "service/session.h"
#include "service/verdict_cache.h"
#include "util/status.h"

namespace epi {
namespace service {

/// Tuning knobs for the service. validate() gates construction.
struct ServiceOptions {
  /// Engine configuration (stage gating, SOS budget). `auditor.threads` is
  /// forced to 1: concurrency comes from the service workers, and
  /// single-pair decisions never fan out.
  AuditorOptions auditor;
  /// Request-processing threads (>= 1).
  unsigned workers = 2;
  /// Bounded queue: submissions beyond this many waiting requests are
  /// rejected with ResourceExhausted (>= 1).
  std::size_t queue_capacity = 256;
  /// Verdict cache entry budget; 0 disables caching entirely.
  std::size_t cache_capacity = 4096;
  unsigned cache_shards = 8;
  /// Applied to requests that carry no deadline of their own; zero means
  /// "no deadline".
  std::chrono::milliseconds default_deadline{0};
  /// When set, each session drives an OnlineAuditSession with this strategy
  /// and requests may be denied (AuditResponse::denied) before disclosing.
  std::optional<OnlineStrategy> online_strategy;
  /// Delta-evaluate the cumulative verdict against each session's
  /// persistent IncrementalContext (engine/incremental.h): repeat
  /// disclosures and pinned monotone facts are served in O(1) and changed
  /// sets re-derive only what the change touched, instead of re-running the
  /// full cascade (plus verdict-cache hashing) per request. Verdicts,
  /// details and sequence numbers are byte-identical to the recompute path
  /// — the `service-composition` model check diffs the two at every step.
  /// The per-disclosure verdict keeps using the VerdictCache either way.
  /// Off restores the PR 3 recompute-every-request behavior (and the
  /// cumulative_cached flag's verdict-cache meaning).
  bool incremental_sessions = true;
  /// Test-only: invoked by a worker thread right before it starts deciding a
  /// request (after the deadline check). Lets tests hold a worker to fill
  /// the queue deterministically. Never set in production code.
  std::function<void()> test_hook_pre_decide;
  /// Test-only: invoked after the per-disclosure verdict, while the worker
  /// holds the session, right before the absorb checkpoint. Lets tests race
  /// reset_session()/reload() against an in-flight request and exercise the
  /// deadline-after-decide path deterministically. Never set in production.
  std::function<void()> test_hook_pre_absorb;

  Status validate() const;
};

/// One streamed disclosure to audit.
struct AuditRequest {
  std::string user;
  std::string query_text;
  /// The answer the user saw (replayed-log mode). When absent the service
  /// evaluates the query against its own database state — and, in online
  /// mode, lets the strategy decide whether to answer at all.
  std::optional<bool> answer;
  /// Absolute per-request deadline; the default (epoch) means "use the
  /// service's default_deadline".
  std::chrono::steady_clock::time_point deadline{};
};

/// The verdict bundle for one request. `status` is Ok when the request was
/// decided (even if unsafe); queue rejection, deadline expiry, cancellation
/// and parse failures surface as non-Ok codes with empty findings.
struct AuditResponse {
  Status status = Status::Ok();
  bool answer = false;  ///< the Boolean answer recorded for the disclosure
  bool denied = false;  ///< online strategy refused to answer (no disclosure)
  /// Safe(A, B) for this disclosure alone — identical to the offline
  /// per-disclosure finding for the same (query, answer).
  AuditFinding disclosure;
  /// Safe(A, B1 ∩ ... ∩ Bk) for the user's accumulated knowledge after this
  /// disclosure — identical to the offline per-user cumulative finding.
  AuditFinding cumulative;
  bool disclosure_cached = false;  ///< served from the verdict cache
  bool cumulative_cached = false;
  std::uint64_t sequence = 0;  ///< 1-based per-user disclosure number
};

/// Handle for a submitted request: the future plus cooperative cancellation.
class Ticket {
 public:
  std::future<AuditResponse> response;

  /// Requests cooperative cancellation: a worker that has not yet finished
  /// the request resolves it with Status::Cancelled at its next checkpoint.
  /// Safe to call at any time, including after completion.
  void cancel() {
    if (cancelled_) cancelled_->store(true, std::memory_order_relaxed);
  }

 private:
  friend class AuditService;
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

class AuditService {
 public:
  /// Validates options, the universe, the initial database state and the
  /// audit query (parse + compile) and spins up the workers. On failure
  /// `*out` is untouched and the Status names the problem.
  static Status try_create(RecordUniverse universe, World initial_state,
                           const std::string& audit_query_text,
                           PriorAssumption prior, ServiceOptions options,
                           std::unique_ptr<AuditService>* out);

  /// Drains and joins (shutdown()).
  ~AuditService();

  AuditService(const AuditService&) = delete;
  AuditService& operator=(const AuditService&) = delete;

  /// Enqueues a request. Admission control resolves the ticket immediately
  /// with ResourceExhausted when the queue is full and Unavailable after
  /// shutdown began; accepted requests always resolve eventually (graceful
  /// shutdown drains them).
  Ticket submit(AuditRequest request);

  /// Blocking convenience wrapper around submit().
  AuditResponse process(AuditRequest request);

  /// Callback-style submission for event-loop callers (src/net/): `done`
  /// runs exactly once with the response — on a service worker thread when
  /// the request was admitted, or inline on the submitting thread when
  /// admission rejects it (queue full / shutting down). The callback must
  /// not block; the net layer posts the response back onto its loop.
  void submit_async(AuditRequest request,
                    std::function<void(AuditResponse)> done);

  /// Batch admission: enqueues the whole span atomically — either every
  /// request is accepted (one lock acquisition, queue order preserved, so
  /// same-user requests still serialize in submission order) or none is and
  /// every ticket resolves with the same ResourceExhausted / Unavailable
  /// status. All-or-nothing keeps batch semantics simple for callers
  /// sweeping a policy stream: no partially-admitted sweep to unpick.
  std::vector<Ticket> submit_many(std::vector<AuditRequest> requests);

  /// Blocking convenience wrapper around submit_many(); responses[i]
  /// corresponds to requests[i].
  std::vector<AuditResponse> process_many(std::vector<AuditRequest> requests);

  /// Swaps the scenario under the service: new universe / state / audit
  /// query / prior. Sessions reset and the verdict cache is invalidated
  /// (verdicts produced under the old engine configuration must not leak
  /// into the new one). In-flight requests finish against the state they
  /// started with.
  Status reload(RecordUniverse universe, World initial_state,
                const std::string& audit_query_text, PriorAssumption prior);

  /// Forgets one user's accumulated knowledge (their next request starts a
  /// fresh session). Ok even when the user has no session yet.
  Status reset_session(const std::string& user);

  /// Stops admission, drains every accepted request and joins the workers.
  /// Idempotent.
  void shutdown();

  /// False once shutdown began.
  bool accepting() const;

  /// Requests accepted but not yet picked up by a worker.
  std::size_t queue_depth() const;

  /// The audited property / prior currently served.
  std::string audit_query() const;
  PriorAssumption prior() const;

  /// Point-in-time view of every service metric (queue, cache, requests).
  obs::MetricsSnapshot metrics_snapshot() const;

  /// The service's metrics registry (cache counters live here too).
  obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  /// Everything the verdicts depend on; swapped wholesale by reload() so
  /// in-flight requests keep a coherent view via shared_ptr.
  struct Scenario {
    Scenario(RecordUniverse u, World state, std::string query_text,
             PriorAssumption p, const AuditorOptions& opts);

    RecordUniverse universe;
    InMemoryDatabase db;
    std::string audit_query_text;
    PriorAssumption prior;
    Auditor auditor;
    WorldSet audit_set;  ///< the compiled sensitive property A
    std::uint64_t generation = 0;

    /// Compiled disclosure sets keyed by (query text, answer) — the service
    /// analogue of AuditContext::compiled, shared across requests.
    std::mutex compiled_mutex;
    std::unordered_map<std::string, WorldSet> compiled;
  };

  struct Pending {
    AuditRequest request;
    std::promise<AuditResponse> promise;
    /// When set (submit_async), resolves the request instead of the promise.
    std::function<void(AuditResponse)> done;
    std::shared_ptr<std::atomic<bool>> cancelled;
    std::chrono::steady_clock::time_point deadline{};  ///< epoch = none
    std::int64_t enqueue_ns = 0;

    void resolve(AuditResponse response) {
      if (done) {
        done(std::move(response));
      } else {
        promise.set_value(std::move(response));
      }
    }
  };

  AuditService(std::shared_ptr<Scenario> scenario, ServiceOptions options);

  /// Builds the Pending record and its Ticket (deadline defaulting,
  /// enqueue timestamp) without touching the queue.
  std::unique_ptr<Pending> make_pending(AuditRequest request, Ticket* ticket);

  void worker_loop();
  AuditResponse handle(Pending& pending, const std::shared_ptr<Scenario>& scenario,
                       AuditContext& ctx);
  /// Compiles the disclosed set for (query, answer), cached per scenario.
  const WorldSet& compiled_disclosure(Scenario& scenario, const std::string& query_text,
                                      bool answer, QueryPtr parsed);
  /// Lookup-only variant: the already-compiled set for (query, answer), or
  /// null. Lets replayed-log requests skip re-parsing query text the
  /// scenario has compiled before (replay storms after a rebalance hit this
  /// path hard); a miss falls back to the parse-then-compile path, so parse
  /// errors surface exactly as before (malformed queries never enter the
  /// cache).
  const WorldSet* find_compiled(Scenario& scenario,
                                const std::string& query_text, bool answer);
  /// Cache-or-engine decision for Safe(A, b).
  EngineDecision decide(const Scenario& scenario, const WorldSet& b,
                        AuditContext& ctx, bool* cached);
  /// The session serving `user` under `scenario`. Workers hold the returned
  /// shared_ptr for the whole request, so reset_session()/reload() erasing
  /// the map entry never destroys a session out from under a worker. A
  /// session whose generation predates the scenario is replaced; a worker
  /// finishing an in-flight request from before a reload gets a detached
  /// fresh session rather than trampling the newer one.
  std::shared_ptr<Session> session_for(const std::string& user,
                                       const Scenario& scenario);
  /// Builds a worker's AuditContext for `scenario` (stage slots, subcube
  /// oracle preparation).
  void configure_context(AuditContext& ctx, const Scenario& scenario) const;

  ServiceOptions options_;

  mutable std::shared_mutex scenario_mutex_;
  std::shared_ptr<Scenario> scenario_;
  std::uint64_t next_generation_ = 1;

  std::mutex sessions_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;

  obs::MetricsRegistry metrics_;
  std::unique_ptr<VerdictCache> cache_;  ///< null when cache_capacity == 0

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  bool accepting_ = true;
  bool stopping_ = false;

  std::vector<std::thread> workers_;

  // Metric handles (resolved once; hot paths pay relaxed atomic adds).
  obs::Counter* accepted_;
  obs::Counter* rejected_;
  obs::Counter* completed_;
  obs::Counter* deadline_expired_;
  obs::Counter* cancelled_count_;
  obs::Counter* denied_;
  obs::Counter* parse_errors_;
  obs::Counter* queue_depth_;
  obs::Counter* sessions_created_;
  obs::Counter* reloads_;
  obs::Counter* incremental_pinned_;     ///< cumulative served from a pin
  obs::Counter* incremental_unchanged_;  ///< cumulative served, S unchanged
  obs::Counter* incremental_evaluated_;  ///< cumulative re-evaluated
  obs::Counter* parse_skips_;            ///< replays served parse-free
  obs::Histogram* queue_wait_ns_;
  obs::Histogram* process_ns_;
};

}  // namespace service
}  // namespace epi
