#include "service/session.h"

#include <utility>

namespace epi {
namespace service {

Session::Session(std::string user, unsigned records, std::uint64_t generation)
    : user_(std::move(user)),
      generation_(generation),
      accumulated_(WorldSet::universe(records)) {}

std::uint64_t Session::absorb(const WorldSet& disclosed) {
  // accumulated ⊆ disclosed makes the intersection the identity: skip the
  // write and keep the incremental state serveable. The subset test is the
  // same early-exit word scan the intersection would pay anyway.
  if (!accumulated_.subset_of(disclosed)) {
    accumulated_ &= disclosed;
    incremental_.dirty = true;
  }
  return ++disclosures_;
}

void Session::attach_online(std::unique_ptr<OnlineAuditSession> online) {
  online_ = std::move(online);
}

}  // namespace service
}  // namespace epi
