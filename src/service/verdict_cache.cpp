#include "service/verdict_cache.h"

#include <stdexcept>

namespace epi {
namespace service {

VerdictCache::VerdictCache(Options options, obs::MetricsRegistry& metrics)
    : options_(options),
      hits_(&metrics.counter("service.cache.hits")),
      misses_(&metrics.counter("service.cache.misses")),
      evictions_(&metrics.counter("service.cache.evictions")),
      collisions_(&metrics.counter("service.cache.collisions")),
      invalidations_(&metrics.counter("service.cache.invalidations")) {
  if (options_.capacity == 0) {
    throw std::invalid_argument("VerdictCache: capacity must be >= 1");
  }
  if (options_.shards == 0) {
    throw std::invalid_argument("VerdictCache: shards must be >= 1");
  }
  if (options_.shards > options_.capacity) {
    options_.shards = static_cast<unsigned>(options_.capacity);
  }
  per_shard_capacity_ = options_.capacity / options_.shards;
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  shards_.reserve(options_.shards);
  for (unsigned i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

VerdictKey VerdictCache::key_for(const WorldSet& a, const WorldSet& b,
                                 PriorAssumption prior) {
  VerdictKey key;
  key.a_hash = static_cast<std::uint64_t>(a.hash());
  key.b_hash = static_cast<std::uint64_t>(b.hash());
  key.prior = static_cast<int>(prior);
  return key;
}

VerdictCache::Shard& VerdictCache::shard_for(const VerdictKey& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

std::optional<EngineDecision> VerdictCache::lookup(const VerdictKey& key,
                                                   const WorldSet& a,
                                                   const WorldSet& b) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_->add(1);
    return std::nullopt;
  }
  Entry& entry = *it->second;
  if (entry.a != a || entry.b != b) {
    // Hash collision: the key matches but the verdict belongs to a different
    // pair. Never serve it.
    collisions_->add(1);
    misses_->add(1);
    return std::nullopt;
  }
  // Move to the front (most recently used).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_->add(1);
  return entry.decision;
}

void VerdictCache::insert(const VerdictKey& key, const WorldSet& a,
                          const WorldSet& b, const EngineDecision& decision) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh in place (also the collision-overwrite path: the newest
    // verdict wins the slot).
    it->second->a = a;
    it->second->b = b;
    it->second->decision = decision;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_->add(1);
  }
  shard.lru.push_front(Entry{key, a, b, decision});
  shard.index.emplace(key, shard.lru.begin());
}

void VerdictCache::invalidate_all() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
  invalidations_->add(1);
}

std::size_t VerdictCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace service
}  // namespace epi
