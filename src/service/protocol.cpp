#include "service/protocol.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <map>
#include <sstream>
#include <variant>

namespace epi {
namespace service {
namespace {

// --- writing ---------------------------------------------------------------

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Emits `, "key": value` pairs after the first.
class ObjectWriter {
 public:
  explicit ObjectWriter(std::ostringstream& os) : os_(os) { os_ << '{'; }
  void field(const char* key, const std::string& value) {
    sep();
    append_json_string(os_, key);
    os_ << ": ";
    append_json_string(os_, value);
  }
  void field(const char* key, std::int64_t value) {
    sep();
    append_json_string(os_, key);
    os_ << ": " << value;
  }
  void field(const char* key, std::uint64_t value) {
    sep();
    append_json_string(os_, key);
    os_ << ": " << value;
  }
  void field(const char* key, bool value) {
    sep();
    append_json_string(os_, key);
    os_ << ": " << (value ? "true" : "false");
  }
  void finish() { os_ << '}'; }

 private:
  void sep() {
    if (!first_) os_ << ", ";
    first_ = false;
  }
  std::ostringstream& os_;
  bool first_ = true;
};

// --- reading ---------------------------------------------------------------

using JsonValue = std::variant<std::string, std::int64_t, bool, std::nullptr_t>;

/// Appends one Unicode code point as UTF-8.
void append_utf8(std::string* out, std::uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Parses one flat JSON object (string/int/bool/null values only).
class FlatObjectReader {
 public:
  explicit FlatObjectReader(const std::string& text) : text_(text) {}

  Status parse(std::map<std::string, JsonValue>* out) {
    skip_ws();
    if (!consume('{')) return error("expected '{'");
    skip_ws();
    if (consume('}')) return at_end_check();
    for (;;) {
      std::string key;
      if (Status s = parse_string(&key); !s.ok()) return s;
      skip_ws();
      if (!consume(':')) return error("expected ':'");
      JsonValue value;
      if (Status s = parse_value(&value); !s.ok()) return s;
      (*out)[key] = std::move(value);
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume('}')) return at_end_check();
      return error("expected ',' or '}'");
    }
  }

 private:
  Status error(const std::string& what) const {
    return Status::InvalidArgument("protocol frame, offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  Status at_end_check() {
    skip_ws();
    if (pos_ != text_.size()) return error("trailing bytes after object");
    return Status::Ok();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* word) {
    std::size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  Status parse_string(std::string* out) {
    skip_ws();
    if (!consume('"')) return error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          unsigned value = 0;
          if (Status s = parse_hex4(&value); !s.ok()) return s;
          std::uint32_t code_point = value;
          if (value >= 0xD800 && value <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow, and the
            // pair combines into one supplementary-plane code point.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return error("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            unsigned low = 0;
            if (Status s = parse_hex4(&low); !s.ok()) return s;
            if (low < 0xDC00 || low > 0xDFFF) {
              return error("unpaired high surrogate in \\u escape");
            }
            code_point =
                0x10000 + ((value - 0xD800) << 10) + (low - 0xDC00);
          } else if (value >= 0xDC00 && value <= 0xDFFF) {
            return error("unpaired low surrogate in \\u escape");
          }
          // Session keys and query text round-trip losslessly: every escaped
          // code point lands in the string as UTF-8.
          append_utf8(out, code_point);
          break;
        }
        default:
          return error("unknown escape");
      }
    }
    return error("unterminated string");
  }

  /// Reads exactly four hex digits of a \u escape into `*out`.
  Status parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      value <<= 4;
      if (h >= '0' && h <= '9') {
        value |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        value |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        value |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return error("bad \\u escape");
      }
    }
    *out = value;
    return Status::Ok();
  }

  Status parse_value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return error("expected a value");
    const char c = text_[pos_];
    if (c == '"') {
      std::string s;
      if (Status st = parse_string(&s); !st.ok()) return st;
      *out = std::move(s);
      return Status::Ok();
    }
    if (consume_word("true")) {
      *out = true;
      return Status::Ok();
    }
    if (consume_word("false")) {
      *out = false;
      return Status::Ok();
    }
    if (consume_word("null")) {
      *out = nullptr;
      return Status::Ok();
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == start || (c == '-' && pos_ == start + 1)) {
        return error("bad number");
      }
      // from_chars never throws: an arbitrarily long digit run from a
      // hostile client yields InvalidArgument, not std::out_of_range
      // escaping onto a connection thread.
      std::int64_t value = 0;
      const char* first = text_.data() + start;
      const char* last = text_.data() + pos_;
      const std::from_chars_result r = std::from_chars(first, last, value);
      if (r.ec == std::errc::result_out_of_range) {
        return error("number out of range");
      }
      if (r.ec != std::errc() || r.ptr != last) return error("bad number");
      *out = value;
      return Status::Ok();
    }
    if (c == '{' || c == '[') {
      return error("nested values are not part of the flat protocol");
    }
    return error("expected a value");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Typed field access over the parsed map.
class Fields {
 public:
  explicit Fields(const std::map<std::string, JsonValue>& values)
      : values_(values) {}

  Status get_string(const char* key, std::string* out, bool required) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      if (required) return missing(key);
      return Status::Ok();
    }
    if (const auto* s = std::get_if<std::string>(&it->second)) {
      *out = *s;
      return Status::Ok();
    }
    return wrong_type(key, "string");
  }

  Status get_int(const char* key, std::int64_t* out, bool required) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      if (required) return missing(key);
      return Status::Ok();
    }
    if (const auto* v = std::get_if<std::int64_t>(&it->second)) {
      *out = *v;
      return Status::Ok();
    }
    return wrong_type(key, "integer");
  }

  Status get_bool(const char* key, bool* out, bool required) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      if (required) return missing(key);
      return Status::Ok();
    }
    if (const auto* v = std::get_if<bool>(&it->second)) {
      *out = *v;
      return Status::Ok();
    }
    return wrong_type(key, "boolean");
  }

  bool has(const char* key) const { return values_.count(key) != 0; }

 private:
  static Status missing(const char* key) {
    return Status::InvalidArgument(std::string("protocol frame: missing \"") +
                                   key + "\"");
  }
  static Status wrong_type(const char* key, const char* want) {
    return Status::InvalidArgument(std::string("protocol frame: \"") + key +
                                   "\" must be a " + want);
  }
  const std::map<std::string, JsonValue>& values_;
};

}  // namespace

Status LineFramer::feed(std::string_view bytes) {
  if (!status_.ok()) return status_;
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = bytes.find('\n', start);
    if (nl == std::string_view::npos) break;
    partial_.append(bytes.data() + start, nl - start);
    start = nl + 1;
    if (partial_.size() > max_line_bytes_) {
      status_ = Status::ResourceExhausted(
          "protocol line exceeds " + std::to_string(max_line_bytes_) +
          " bytes");
      partial_.clear(); // discard the oversized line: deterministic post-
      return status_;   // overflow state no matter how the bytes arrived
    }
    ready_.push_back(std::move(partial_));
    partial_.clear();
  }
  partial_.append(bytes.data() + start, bytes.size() - start);
  if (partial_.size() > max_line_bytes_) {
    status_ = Status::ResourceExhausted(
        "protocol line exceeds " + std::to_string(max_line_bytes_) + " bytes");
    partial_.clear();
  }
  return status_;
}

bool LineFramer::next(std::string* line) {
  if (ready_.empty()) return false;
  *line = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

std::string to_string(Op op) {
  switch (op) {
    case Op::kHello: return "hello";
    case Op::kAudit: return "audit";
    case Op::kMetrics: return "metrics";
    case Op::kResetSession: return "reset_session";
    case Op::kShutdown: return "shutdown";
    case Op::kAddWorker: return "add_worker";
    case Op::kRemoveWorker: return "remove_worker";
  }
  return "?";
}

std::string status_code_slug(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "ok";
    case Status::Code::kInvalidArgument: return "invalid_argument";
    case Status::Code::kOutOfRange: return "out_of_range";
    case Status::Code::kInternal: return "internal";
    case Status::Code::kInconclusive: return "inconclusive";
    case Status::Code::kResourceExhausted: return "resource_exhausted";
    case Status::Code::kDeadlineExceeded: return "deadline_exceeded";
    case Status::Code::kCancelled: return "cancelled";
    case Status::Code::kUnavailable: return "unavailable";
  }
  return "unknown";
}

std::string serialize_request(const WireRequest& request) {
  std::ostringstream os;
  ObjectWriter w(os);
  w.field("op", to_string(request.op));
  w.field("id", request.id);
  if (!request.user.empty()) w.field("user", request.user);
  if (!request.query.empty()) w.field("query", request.query);
  if (request.answer.has_value()) w.field("answer", *request.answer);
  if (request.deadline_ms != 0) w.field("deadline_ms", request.deadline_ms);
  if (!request.addr.empty()) w.field("addr", request.addr);
  w.finish();
  return os.str();
}

std::string serialize_response(const WireResponse& response) {
  std::ostringstream os;
  ObjectWriter w(os);
  w.field("id", response.id);
  w.field("ok", response.ok);
  if (!response.ok) {
    w.field("error", response.error);
    w.field("code", response.code);
    w.finish();
    return os.str();
  }
  if (!response.verdict.empty() || response.denied) {
    w.field("answer", response.answer);
    w.field("denied", response.denied);
    if (!response.denied) {
      w.field("verdict", response.verdict);
      w.field("method", response.method);
      w.field("certified", response.certified);
      w.field("cached", response.cached);
      w.field("cumulative_verdict", response.cumulative_verdict);
      w.field("cumulative_method", response.cumulative_method);
      w.field("cumulative_cached", response.cumulative_cached);
    }
    w.field("sequence", response.sequence);
  }
  if (!response.audit_query.empty()) {
    w.field("audit_query", response.audit_query);
    w.field("prior", response.prior);
  }
  if (!response.metrics_json.empty()) {
    w.field("metrics_json", response.metrics_json);
  }
  w.finish();
  return os.str();
}

Status parse_request(const std::string& line, WireRequest* out) {
  *out = WireRequest{};
  std::map<std::string, JsonValue> values;
  if (Status s = FlatObjectReader(line).parse(&values); !s.ok()) return s;
  Fields fields(values);

  std::string op;
  if (Status s = fields.get_string("op", &op, /*required=*/true); !s.ok()) {
    return s;
  }
  if (op == "hello") {
    out->op = Op::kHello;
  } else if (op == "audit") {
    out->op = Op::kAudit;
  } else if (op == "metrics") {
    out->op = Op::kMetrics;
  } else if (op == "reset_session") {
    out->op = Op::kResetSession;
  } else if (op == "shutdown") {
    out->op = Op::kShutdown;
  } else if (op == "add_worker") {
    out->op = Op::kAddWorker;
  } else if (op == "remove_worker") {
    out->op = Op::kRemoveWorker;
  } else {
    return Status::InvalidArgument("protocol frame: unknown op '" + op + "'");
  }

  std::int64_t id = 0;
  if (Status s = fields.get_int("id", &id, /*required=*/false); !s.ok()) {
    return s;
  }
  out->id = static_cast<std::uint64_t>(id);

  const bool needs_user = out->op == Op::kAudit || out->op == Op::kResetSession;
  if (Status s = fields.get_string("user", &out->user, needs_user); !s.ok()) {
    return s;
  }
  if (Status s = fields.get_string("query", &out->query,
                                   /*required=*/out->op == Op::kAudit);
      !s.ok()) {
    return s;
  }
  if (fields.has("answer")) {
    bool answer = false;
    if (Status s = fields.get_bool("answer", &answer, /*required=*/true);
        !s.ok()) {
      return s;
    }
    out->answer = answer;
  }
  if (Status s = fields.get_int("deadline_ms", &out->deadline_ms,
                                /*required=*/false);
      !s.ok()) {
    return s;
  }
  if (out->deadline_ms < 0) {
    return Status::InvalidArgument("protocol frame: deadline_ms must be >= 0");
  }
  const bool needs_addr =
      out->op == Op::kAddWorker || out->op == Op::kRemoveWorker;
  if (Status s = fields.get_string("addr", &out->addr, needs_addr); !s.ok()) {
    return s;
  }
  return Status::Ok();
}

Status parse_response(const std::string& line, WireResponse* out) {
  *out = WireResponse{};
  std::map<std::string, JsonValue> values;
  if (Status s = FlatObjectReader(line).parse(&values); !s.ok()) return s;
  Fields fields(values);

  std::int64_t id = 0;
  if (Status s = fields.get_int("id", &id, /*required=*/false); !s.ok()) {
    return s;
  }
  out->id = static_cast<std::uint64_t>(id);
  if (Status s = fields.get_bool("ok", &out->ok, /*required=*/true); !s.ok()) {
    return s;
  }
  if (Status s = fields.get_string("error", &out->error, !out->ok); !s.ok()) {
    return s;
  }
  if (Status s = fields.get_string("code", &out->code, /*required=*/false);
      !s.ok()) {
    return s;
  }
  if (Status s = fields.get_bool("answer", &out->answer, false); !s.ok()) {
    return s;
  }
  if (Status s = fields.get_bool("denied", &out->denied, false); !s.ok()) {
    return s;
  }
  if (Status s = fields.get_string("verdict", &out->verdict, false); !s.ok()) {
    return s;
  }
  if (Status s = fields.get_string("method", &out->method, false); !s.ok()) {
    return s;
  }
  if (Status s = fields.get_bool("certified", &out->certified, false);
      !s.ok()) {
    return s;
  }
  if (Status s = fields.get_bool("cached", &out->cached, false); !s.ok()) {
    return s;
  }
  if (Status s = fields.get_string("cumulative_verdict",
                                   &out->cumulative_verdict, false);
      !s.ok()) {
    return s;
  }
  if (Status s = fields.get_string("cumulative_method",
                                   &out->cumulative_method, false);
      !s.ok()) {
    return s;
  }
  if (Status s = fields.get_bool("cumulative_cached", &out->cumulative_cached,
                                 false);
      !s.ok()) {
    return s;
  }
  std::int64_t sequence = 0;
  if (Status s = fields.get_int("sequence", &sequence, false); !s.ok()) {
    return s;
  }
  out->sequence = static_cast<std::uint64_t>(sequence);
  if (Status s = fields.get_string("audit_query", &out->audit_query, false);
      !s.ok()) {
    return s;
  }
  if (Status s = fields.get_string("prior", &out->prior, false); !s.ok()) {
    return s;
  }
  if (Status s = fields.get_string("metrics_json", &out->metrics_json, false);
      !s.ok()) {
    return s;
  }
  return Status::Ok();
}

WireResponse make_audit_response(std::uint64_t id,
                                 const AuditResponse& response) {
  WireResponse wire;
  wire.id = id;
  if (!response.status.ok()) {
    wire.ok = false;
    wire.error = response.status.to_string();
    wire.code = status_code_slug(response.status.code());
    return wire;
  }
  wire.ok = true;
  wire.answer = response.answer;
  wire.denied = response.denied;
  wire.sequence = response.sequence;
  if (!response.denied) {
    wire.verdict = epi::to_string(response.disclosure.verdict);
    wire.method = response.disclosure.method;
    wire.certified = response.disclosure.certified;
    wire.cached = response.disclosure_cached;
    wire.cumulative_verdict = epi::to_string(response.cumulative.verdict);
    wire.cumulative_method = response.cumulative.method;
    wire.cumulative_cached = response.cumulative_cached;
  }
  return wire;
}

}  // namespace service
}  // namespace epi
