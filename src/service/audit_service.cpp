#include "service/audit_service.h"

#include <stdexcept>
#include <utility>

#include "db/parser.h"
#include "obs/trace.h"

namespace epi {
namespace service {
namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::chrono::steady_clock::time_point kNoDeadline{};

/// Same cache key the offline auditor uses for compiled disclosure sets.
std::string disclosure_key(const std::string& query_text, bool answer) {
  return query_text + (answer ? "\x1f+" : "\x1f-");
}

AuditFinding to_finding(const EngineDecision& d, std::string user,
                        std::string query_text, bool answer) {
  AuditFinding f;
  f.user = std::move(user);
  f.query_text = std::move(query_text);
  f.answer = answer;
  f.verdict = d.verdict;
  f.method = d.method;
  f.certified = d.certified;
  f.numeric_gap = d.numeric_gap;
  f.detail = d.detail;
  return f;
}

/// Shared by try_create and reload: the universe must be non-empty, the
/// initial state a member of {0,1}^n, and the audit query well-formed. The
/// membership test runs in 64 bits: RecordUniverse::add caps n at
/// kMaxSymbolicCoordinates = 32, where a 32-bit `World{1} << n` would
/// overflow (and wrongly reject every nonzero state at the ceiling).
Status validate_scenario_inputs(const RecordUniverse& universe,
                                World initial_state,
                                const std::string& audit_query_text) {
  if (universe.empty()) {
    return Status::InvalidArgument("AuditService: empty record universe");
  }
  if (std::uint64_t{initial_state} >= (std::uint64_t{1} << universe.size())) {
    return Status::InvalidArgument(
        "AuditService: initial state " + std::to_string(initial_state) +
        " outside {0,1}^" + std::to_string(universe.size()));
  }
  QueryPtr parsed;
  return try_parse_query(audit_query_text, &parsed);
}

}  // namespace

Status ServiceOptions::validate() const {
  if (workers == 0) {
    return Status::InvalidArgument("ServiceOptions: workers must be >= 1");
  }
  if (queue_capacity == 0) {
    return Status::InvalidArgument(
        "ServiceOptions: queue_capacity must be >= 1");
  }
  if (cache_capacity > 0 && cache_shards == 0) {
    return Status::InvalidArgument(
        "ServiceOptions: cache_shards must be >= 1 when the cache is on");
  }
  if (default_deadline.count() < 0) {
    return Status::InvalidArgument(
        "ServiceOptions: default_deadline must be >= 0");
  }
  return auditor.validate();
}

AuditService::Scenario::Scenario(RecordUniverse u, World state,
                                 std::string query_text, PriorAssumption p,
                                 const AuditorOptions& opts)
    : universe(std::move(u)),
      db(universe),
      audit_query_text(std::move(query_text)),
      prior(p),
      auditor(universe, p, opts),
      audit_set(parse_query(audit_query_text)
                    ->compile(universe, auditor.resolved_backend())) {
  db.set_state(state);
}

Status AuditService::try_create(RecordUniverse universe, World initial_state,
                                const std::string& audit_query_text,
                                PriorAssumption prior, ServiceOptions options,
                                std::unique_ptr<AuditService>* out) {
  if (const Status s = options.validate(); !s.ok()) return s;
  if (const Status s = validate_scenario_inputs(universe, initial_state,
                                                audit_query_text);
      !s.ok()) {
    return s;
  }
  // Decisions never fan out per pair; concurrency comes from the workers.
  options.auditor.threads = 1;
  std::shared_ptr<Scenario> scenario;
  try {
    scenario = std::make_shared<Scenario>(std::move(universe), initial_state,
                                          audit_query_text, prior,
                                          options.auditor);
  } catch (const std::exception& e) {
    return Status::InvalidArgument(std::string("AuditService: ") + e.what());
  }
  scenario->generation = 1;
  *out = std::unique_ptr<AuditService>(
      new AuditService(std::move(scenario), std::move(options)));
  return Status::Ok();
}

AuditService::AuditService(std::shared_ptr<Scenario> scenario,
                           ServiceOptions options)
    : options_(std::move(options)),
      scenario_(std::move(scenario)),
      next_generation_(2),
      accepted_(&metrics_.counter("service.requests.accepted")),
      rejected_(&metrics_.counter("service.requests.rejected")),
      completed_(&metrics_.counter("service.requests.completed")),
      deadline_expired_(&metrics_.counter("service.requests.deadline_expired")),
      cancelled_count_(&metrics_.counter("service.requests.cancelled")),
      denied_(&metrics_.counter("service.requests.denied")),
      parse_errors_(&metrics_.counter("service.requests.parse_errors")),
      queue_depth_(&metrics_.counter("service.queue.depth")),
      sessions_created_(&metrics_.counter("service.sessions.created")),
      reloads_(&metrics_.counter("service.reloads")),
      incremental_pinned_(&metrics_.counter("service.incremental.pinned")),
      incremental_unchanged_(
          &metrics_.counter("service.incremental.unchanged")),
      incremental_evaluated_(
          &metrics_.counter("service.incremental.evaluated")),
      parse_skips_(&metrics_.counter("service.requests.parse_skips")),
      queue_wait_ns_(&metrics_.histogram("service.request.queue_wait_ns")),
      process_ns_(&metrics_.histogram("service.request.process_ns")) {
  if (options_.cache_capacity > 0) {
    VerdictCache::Options cache_options;
    cache_options.capacity = options_.cache_capacity;
    cache_options.shards = options_.cache_shards;
    cache_ = std::make_unique<VerdictCache>(cache_options, metrics_);
  }
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AuditService::~AuditService() { shutdown(); }

std::unique_ptr<AuditService::Pending> AuditService::make_pending(
    AuditRequest request, Ticket* ticket) {
  auto pending = std::make_unique<Pending>();
  pending->cancelled = std::make_shared<std::atomic<bool>>(false);
  ticket->cancelled_ = pending->cancelled;
  ticket->response = pending->promise.get_future();

  if (request.deadline != kNoDeadline) {
    pending->deadline = request.deadline;
  } else if (options_.default_deadline.count() > 0) {
    pending->deadline =
        std::chrono::steady_clock::now() + options_.default_deadline;
  }
  pending->request = std::move(request);
  pending->enqueue_ns = now_ns();
  return pending;
}

Ticket AuditService::submit(AuditRequest request) {
  Ticket ticket;
  std::unique_ptr<Pending> pending = make_pending(std::move(request), &ticket);

  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!accepting_) {
      rejected_->add(1);
      AuditResponse r;
      r.status = Status::Unavailable("audit service is shutting down");
      pending->promise.set_value(std::move(r));
      return ticket;
    }
    if (queue_.size() >= options_.queue_capacity) {
      rejected_->add(1);
      AuditResponse r;
      r.status = Status::ResourceExhausted(
          "audit service queue full (" +
          std::to_string(options_.queue_capacity) + " waiting); retry later");
      pending->promise.set_value(std::move(r));
      return ticket;
    }
    accepted_->add(1);
    queue_depth_->add(1);
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return ticket;
}

AuditResponse AuditService::process(AuditRequest request) {
  Ticket ticket = submit(std::move(request));
  return ticket.response.get();
}

void AuditService::submit_async(AuditRequest request,
                                std::function<void(AuditResponse)> done) {
  Ticket ticket;  // the promise/future pair goes unused on this path
  std::unique_ptr<Pending> pending = make_pending(std::move(request), &ticket);
  pending->done = std::move(done);

  AuditResponse rejection;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!accepting_) {
      rejected_->add(1);
      rejection.status = Status::Unavailable("audit service is shutting down");
    } else if (queue_.size() >= options_.queue_capacity) {
      rejected_->add(1);
      rejection.status = Status::ResourceExhausted(
          "audit service queue full (" +
          std::to_string(options_.queue_capacity) + " waiting); retry later");
    } else {
      accepted_->add(1);
      queue_depth_->add(1);
      queue_.push_back(std::move(pending));
    }
  }
  if (pending) {  // rejected: resolve inline, outside the queue lock
    pending->resolve(std::move(rejection));
    return;
  }
  queue_cv_.notify_one();
}

std::vector<Ticket> AuditService::submit_many(
    std::vector<AuditRequest> requests) {
  std::vector<Ticket> tickets(requests.size());
  std::vector<std::unique_ptr<Pending>> batch;
  batch.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    batch.push_back(make_pending(std::move(requests[i]), &tickets[i]));
  }

  auto reject_all = [&](const Status& status) {
    rejected_->add(static_cast<std::int64_t>(batch.size()));
    for (std::unique_ptr<Pending>& pending : batch) {
      AuditResponse r;
      r.status = status;
      pending->promise.set_value(std::move(r));
    }
  };

  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!accepting_) {
      reject_all(Status::Unavailable("audit service is shutting down"));
      return tickets;
    }
    if (queue_.size() + batch.size() > options_.queue_capacity) {
      reject_all(Status::ResourceExhausted(
          "audit service queue cannot admit batch of " +
          std::to_string(batch.size()) + " (" +
          std::to_string(options_.queue_capacity - queue_.size()) +
          " slots free); retry later"));
      return tickets;
    }
    accepted_->add(static_cast<std::int64_t>(batch.size()));
    queue_depth_->add(static_cast<std::int64_t>(batch.size()));
    for (std::unique_ptr<Pending>& pending : batch) {
      queue_.push_back(std::move(pending));
    }
  }
  queue_cv_.notify_all();
  return tickets;
}

std::vector<AuditResponse> AuditService::process_many(
    std::vector<AuditRequest> requests) {
  std::vector<Ticket> tickets = submit_many(std::move(requests));
  std::vector<AuditResponse> responses;
  responses.reserve(tickets.size());
  for (Ticket& ticket : tickets) {
    responses.push_back(ticket.response.get());
  }
  return responses;
}

void AuditService::worker_loop() {
  // The worker's engine context, rebuilt when reload() swaps the scenario
  // (stage slots, subcube oracle and the prepared Delta classes for A all
  // belong to one scenario generation).
  std::unique_ptr<AuditContext> ctx;
  std::uint64_t ctx_generation = 0;

  for (;;) {
    std::unique_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      pending = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->add(-1);
    }
    const std::int64_t start_ns = now_ns();
    queue_wait_ns_->record(start_ns - pending->enqueue_ns);

    std::shared_ptr<Scenario> scenario;
    {
      std::shared_lock<std::shared_mutex> lock(scenario_mutex_);
      scenario = scenario_;
    }
    if (!ctx || ctx_generation != scenario->generation) {
      ctx = std::make_unique<AuditContext>();
      configure_context(*ctx, *scenario);
      ctx_generation = scenario->generation;
    }

    AuditResponse response;
    try {
      response = handle(*pending, scenario, *ctx);
    } catch (const std::invalid_argument& e) {
      response.status = Status::InvalidArgument(e.what());
    } catch (const std::exception& e) {
      response.status = Status::Internal(e.what());
    }
    completed_->add(1);
    process_ns_->record(now_ns() - start_ns);
    pending->resolve(std::move(response));
  }
}

void AuditService::configure_context(AuditContext& ctx,
                                     const Scenario& scenario) const {
  ctx.reset_stages(scenario.auditor.engine().stage_names());
  if (scenario.prior == PriorAssumption::kSubcubeKnowledge) {
    ctx.set_interval_oracle(scenario.auditor.shared_subcube_oracle());
    ctx.prepare_subcube(scenario.audit_set);
  }
}

const WorldSet& AuditService::compiled_disclosure(Scenario& scenario,
                                                  const std::string& query_text,
                                                  bool answer, QueryPtr parsed) {
  const std::string key = disclosure_key(query_text, answer);
  std::lock_guard<std::mutex> lock(scenario.compiled_mutex);
  const auto it = scenario.compiled.find(key);
  if (it != scenario.compiled.end()) return it->second;
  WorldSet satisfying =
      parsed->compile(scenario.universe, scenario.auditor.resolved_backend());
  WorldSet disclosed = answer ? std::move(satisfying) : ~satisfying;
  return scenario.compiled.emplace(key, std::move(disclosed)).first->second;
}

const WorldSet* AuditService::find_compiled(Scenario& scenario,
                                            const std::string& query_text,
                                            bool answer) {
  const std::string key = disclosure_key(query_text, answer);
  std::lock_guard<std::mutex> lock(scenario.compiled_mutex);
  const auto it = scenario.compiled.find(key);
  return it == scenario.compiled.end() ? nullptr : &it->second;
}

EngineDecision AuditService::decide(const Scenario& scenario, const WorldSet& b,
                                    AuditContext& ctx, bool* cached) {
  *cached = false;
  VerdictKey key;
  if (cache_) {
    key = VerdictCache::key_for(scenario.audit_set, b, scenario.prior);
    if (std::optional<EngineDecision> hit =
            cache_->lookup(key, scenario.audit_set, b)) {
      *cached = true;
      return *hit;
    }
  }
  EngineDecision decision =
      scenario.auditor.engine().decide(scenario.audit_set, b, ctx);
  if (cache_) cache_->insert(key, scenario.audit_set, b, decision);
  return decision;
}

std::shared_ptr<Session> AuditService::session_for(const std::string& user,
                                                   const Scenario& scenario) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto it = sessions_.find(user);
  if (it != sessions_.end() &&
      it->second->generation() == scenario.generation) {
    return it->second;
  }
  // Missing, or built for a different scenario generation (a worker that
  // raced reload() may have inserted a stale session after the map was
  // cleared): build one matching the scenario serving this request.
  auto session =
      std::make_shared<Session>(user, scenario.universe.size(),
                                scenario.generation);
  if (options_.online_strategy) {
    std::unique_ptr<OnlineAuditSession> online;
    const Status s = OnlineAuditSession::try_create(
        scenario.audit_set, scenario.db.state(), *options_.online_strategy,
        &online);
    if (!s.ok()) {
      // The scenario validated audit_set and state at construction, so
      // this cannot happen; surface loudly if it ever does.
      throw std::logic_error("AuditService: " + s.to_string());
    }
    session->attach_online(std::move(online));
  }
  sessions_created_->add(1);
  if (it != sessions_.end() && it->second->generation() > scenario.generation) {
    // This worker is finishing an in-flight request admitted before a
    // reload(); do not trample the newer session. Reload forgets everyone,
    // so a detached fresh session is the correct old-scenario view.
    return session;
  }
  if (it != sessions_.end()) sessions_.erase(it);
  sessions_.emplace(user, session);
  return session;
}

AuditResponse AuditService::handle(Pending& pending,
                                   const std::shared_ptr<Scenario>& scenario,
                                   AuditContext& ctx) {
  obs::ScopedSpan span("service.request");
  if (span.live()) {
    span.attr("user", pending.request.user);
    span.attr("query", pending.request.query_text);
  }

  AuditResponse response;
  auto expired = [&] {
    return pending.deadline != kNoDeadline &&
           std::chrono::steady_clock::now() > pending.deadline;
  };
  auto cancelled = [&] {
    return pending.cancelled->load(std::memory_order_relaxed);
  };
  auto checkpoint = [&]() -> Status {
    if (cancelled()) {
      cancelled_count_->add(1);
      return Status::Cancelled("request cancelled by caller");
    }
    if (expired()) {
      deadline_expired_->add(1);
      return Status::DeadlineExceeded("request deadline expired");
    }
    return Status::Ok();
  };

  if (Status s = checkpoint(); !s.ok()) {
    response.status = std::move(s);
    return response;
  }
  if (options_.test_hook_pre_decide) options_.test_hook_pre_decide();
  if (Status s = checkpoint(); !s.ok()) {
    response.status = std::move(s);
    return response;
  }

  // Replayed-log requests name a (query, answer) pair the scenario may have
  // compiled already — e.g. a router rebalance replaying a whole session —
  // in which case the parse is skipped outright (parse-once). Live requests
  // always parse: the database / online strategy needs the Query tree.
  QueryPtr parsed;
  const WorldSet* known = nullptr;
  if (pending.request.answer.has_value()) {
    known = find_compiled(*scenario, pending.request.query_text,
                          *pending.request.answer);
    if (known != nullptr) parse_skips_->add(1);
  }
  if (known == nullptr) {
    if (const Status s = try_parse_query(pending.request.query_text, &parsed);
        !s.ok()) {
      parse_errors_->add(1);
      response.status = s;
      return response;
    }
  }

  // Held for the whole request: a concurrent reset_session()/reload() only
  // removes the map entry, never destroys the session under the worker.
  const std::shared_ptr<Session> session_ptr =
      session_for(pending.request.user, *scenario);
  Session& session = *session_ptr;
  std::lock_guard<std::mutex> session_lock(session.mutex());

  bool answer = false;
  if (pending.request.answer.has_value()) {
    // Replayed-log mode: the client tells us what the user saw.
    answer = *pending.request.answer;
  } else if (session.online() != nullptr) {
    // Online mode with an allow/deny strategy: the strategy decides whether
    // answering is simulatably safe before anything is disclosed.
    const WorldSet& true_set = compiled_disclosure(
        *scenario, pending.request.query_text, /*answer=*/true, parsed);
    const OnlineResponse online = session.online()->ask(true_set);
    if (online.denied) {
      denied_->add(1);
      response.denied = true;
      response.sequence = session.disclosures();
      return response;
    }
    answer = online.answer;
  } else {
    // Online mode without a strategy: evaluate against the actual database.
    answer = scenario->db.answer(*parsed);
  }
  response.answer = answer;

  const WorldSet& disclosed =
      known != nullptr
          ? *known
          : compiled_disclosure(*scenario, pending.request.query_text, answer,
                                parsed);
  const EngineDecision disclosure_decision =
      decide(*scenario, disclosed, ctx, &response.disclosure_cached);
  response.disclosure =
      to_finding(disclosure_decision, pending.request.user,
                 pending.request.query_text, answer);

  if (options_.test_hook_pre_absorb) options_.test_hook_pre_absorb();
  if (Status s = checkpoint(); !s.ok()) {
    // The per-disclosure verdict is already computed but the caller is gone.
    // In replayed-log mode the log says the user did see this answer, so the
    // session must still absorb it — otherwise the accumulated-knowledge set
    // under-counts and later cumulative verdicts could falsely report safe.
    // In live mode nothing was shown to the user, so nothing is absorbed.
    if (pending.request.answer.has_value()) {
      response.sequence = session.absorb(disclosed);
    }
    response.status = std::move(s);
    return response;
  }

  response.sequence = session.absorb(disclosed);
  EngineDecision cumulative_decision;
  if (options_.incremental_sessions) {
    // Delta-evaluation against the session's persistent state; byte-identical
    // to the recompute branch below (service-composition model check). This
    // path does not consult the VerdictCache — the session state plays that
    // role without hashing the accumulated set — so cumulative_cached stays
    // false; the incremental counters say how the verdict was served.
    IncrementalContext& inc = session.incremental();
    cumulative_decision = scenario->auditor.engine().decide_incremental(
        scenario->audit_set, session.accumulated(), inc, ctx);
    switch (inc.last_mode) {
      case IncrementalContext::Mode::kPinned:
        incremental_pinned_->add(1);
        break;
      case IncrementalContext::Mode::kUnchanged:
        incremental_unchanged_->add(1);
        break;
      default:
        incremental_evaluated_->add(1);
        break;
    }
  } else {
    cumulative_decision = decide(*scenario, session.accumulated(), ctx,
                                 &response.cumulative_cached);
  }
  response.cumulative = to_finding(
      cumulative_decision, pending.request.user,
      "<conjunction of " + std::to_string(response.sequence) +
          " answered queries>",
      /*answer=*/true);
  return response;
}

Status AuditService::reload(RecordUniverse universe, World initial_state,
                            const std::string& audit_query_text,
                            PriorAssumption prior) {
  if (const Status s = validate_scenario_inputs(universe, initial_state,
                                                audit_query_text);
      !s.ok()) {
    return s;
  }
  std::shared_ptr<Scenario> fresh;
  try {
    fresh = std::make_shared<Scenario>(std::move(universe), initial_state,
                                       audit_query_text, prior,
                                       options_.auditor);
  } catch (const std::exception& e) {
    return Status::InvalidArgument(std::string("AuditService: ") + e.what());
  }
  {
    std::unique_lock<std::shared_mutex> lock(scenario_mutex_);
    fresh->generation = next_generation_++;
    scenario_ = std::move(fresh);
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.clear();
  }
  // Old-generation verdicts must not be served against the new scenario.
  if (cache_) cache_->invalidate_all();
  reloads_->add(1);
  return Status::Ok();
}

Status AuditService::reset_session(const std::string& user) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  sessions_.erase(user);
  return Status::Ok();
}

void AuditService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool AuditService::accepting() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return accepting_;
}

std::size_t AuditService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

std::string AuditService::audit_query() const {
  std::shared_lock<std::shared_mutex> lock(scenario_mutex_);
  return scenario_->audit_query_text;
}

PriorAssumption AuditService::prior() const {
  std::shared_lock<std::shared_mutex> lock(scenario_mutex_);
  return scenario_->prior;
}

obs::MetricsSnapshot AuditService::metrics_snapshot() const {
  return metrics_.snapshot();
}

}  // namespace service
}  // namespace epi
