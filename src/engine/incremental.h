// Per-session incremental-evaluation state for the streaming audit path.
//
// A session's accumulated knowledge S only ever shrinks (Def. 3.9 /
// Prop. 3.10: acquiring B1 then B2 equals acquiring B1 ∩ B2), which makes
// three observations pay off:
//
//  1. Most disclosures do not change S at all (repeat queries, supersets of
//     what the user already knows) — the last decision can be served as-is.
//  2. Some decisions are *monotone* under shrinking S: once A ∩ S = ∅
//     (Thm. 3.11) or a Def. 3.1 subset fact holds under S, it holds for
//     every S' ⊆ S, so the decision can be pinned for the session's rest.
//  3. Stages with heavy derived structure (the §4.1 interval / Δ_K
//     machinery) can update it in O(|S − S'|) instead of rebuilding.
//
// One IncrementalContext lives in each service Session and is mutated only
// under that session's mutex — no internal locking. The hard contract,
// checked by the `service-composition` model check: every decision served
// from or through this state is byte-identical (verdict, method, certified,
// detail) to a from-scratch DecisionEngine::decide of the same (A, S).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/criterion_stage.h"

namespace epi {

struct IncrementalContext {
  /// How decide_incremental resolved the most recent call (for metrics).
  enum class Mode {
    kNone,       ///< no call yet
    kPinned,     ///< served the pinned monotone decision
    kUnchanged,  ///< S did not change since `last` was recorded
    kEvaluated,  ///< ran the cascade (delta-evaluating where stages support it)
  };

  /// `last` reflects a decision for some S this session has seen.
  bool valid = false;
  /// S shrank since `last` was recorded. Set by Session::absorb whenever the
  /// intersection actually changes the accumulated set; cleared only when a
  /// fresh decision is recorded. Tracking dirtiness here (rather than per
  /// absorb call) keeps the state safe across paths that absorb without
  /// deciding, e.g. a deadline expiring between the per-disclosure verdict
  /// and the cumulative one.
  bool dirty = false;
  /// `last` came from a monotone stage decision that was first in its
  /// cascade: it holds byte-identically for every S' ⊆ S, so it is served
  /// without looking at S at all.
  bool pinned = false;
  EngineDecision last;

  /// Per-stage delta state, parallel to the engine's stage list. Entries
  /// stay null for stages without delta support; `probed[i]` records that
  /// make_incremental_state was already asked once.
  std::vector<std::unique_ptr<StageIncrementalState>> stage_states;
  std::vector<bool> probed;

  Mode last_mode = Mode::kNone;

  // Lifetime counters, surfaced through the service metrics registry.
  std::uint64_t served_pinned = 0;
  std::uint64_t served_unchanged = 0;
  std::uint64_t evaluations = 0;

  /// Drops everything: decisions, pins and per-stage states. Required
  /// whenever S can grow again or the scenario changes under the session
  /// (the service instead drops whole sessions on reset/reload, which
  /// subsumes this; replay into a fresh session starts from a fresh
  /// context).
  void invalidate();
};

}  // namespace epi
