#include "engine/incremental.h"

namespace epi {

void IncrementalContext::invalidate() {
  valid = false;
  dirty = false;
  pinned = false;
  last = EngineDecision{};
  stage_states.clear();
  probed.clear();
  last_mode = Mode::kNone;
}

}  // namespace epi
