// Factories for the built-in decision stages. The DecisionEngine assembles
// these into per-prior cascades; applications can interleave their own
// CriterionStage implementations via DecisionEngine::register_stage (see
// docs/extending.md).
#pragma once

#include <memory>
#include <string>

#include "criteria/pipeline.h"
#include "engine/criterion_stage.h"
#include "optimize/coordinate_ascent.h"

namespace epi {

/// Wraps one NamedCriterion table entry (theorem-3.11, miklau-suciu, ...).
/// `distribution_label` prefixes the witness support in the finding's detail
/// when the criterion produces a general witness distribution (e.g.
/// "log-supermodular prior on ").
std::unique_ptr<CriterionStage> make_table_stage(const NamedCriterion& entry,
                                                 std::string distribution_label);

/// Theorem 3.11 as a complete decision (unrestricted priors): safe or unsafe
/// with a two-point witness prior, never unknown.
std::unique_ptr<CriterionStage> make_unrestricted_stage();

/// Projected-gradient / coordinate-ascent search for a violating product
/// prior. Decides kUnsafe (with witness) on success; otherwise records its
/// best numeric gap and cascades.
std::unique_ptr<CriterionStage> make_coordinate_ascent_stage(
    AscentOptions options);

/// SOS certificate for product-prior safety. `enabled` is baked at engine
/// construction (the legacy gate is on the *original* record count, not the
/// projected one).
std::unique_ptr<CriterionStage> make_sos_certificate_stage(bool enabled);

/// Terminal product stage: declares kSafe without a certificate when every
/// proof-backed stage above passed and the optimizer found no violation.
std::unique_ptr<CriterionStage> make_numeric_fallback_stage();

/// Subcube-knowledge decision via the Section 4.1 interval machinery. Uses
/// the AuditContext's prepared Delta classes when they were built for this
/// audit query ("subcube-intervals(prepared)"), else the memoized oracle.
std::unique_ptr<CriterionStage> make_subcube_interval_stage();

}  // namespace epi
