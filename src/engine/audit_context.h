// Per-audit shared state: compiled-query caching, (A, B)-pair verdict
// memoization, the prepared subcube interval oracle, and the per-audit
// metrics registry every decision statistic is recorded into. One
// AuditContext lives for the duration of one Auditor::audit() call and is
// shared — thread-safely — by every worker deciding pairs for it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/criterion_stage.h"
#include "obs/metrics.h"
#include "possibilistic/intervals.h"
#include "worlds/world_set.h"

namespace epi {

/// Decision-path instrumentation for one engine stage, aggregated over an
/// audit: how often the stage ran, how often it decided, and the cumulative
/// wall time spent inside it. Derived from the audit's metrics registry
/// (counters `engine.stage.<idx>.<name>.{invocations,decisions,nanos}`).
struct StageStats {
  std::string name;
  std::size_t invocations = 0;
  std::size_t decisions = 0;
  double wall_seconds = 0.0;
};

class AuditContext {
 public:
  AuditContext();

  AuditContext(const AuditContext&) = delete;
  AuditContext& operator=(const AuditContext&) = delete;

  // --- Per-audit metrics ---------------------------------------------------
  /// Every counter below lives here; AuditReport::metrics is a snapshot of
  /// this registry, and stage_stats() / memo_hits() are views over it.
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::MetricsSnapshot metrics_snapshot() const { return metrics_.snapshot(); }

  // --- Compiled-set cache -------------------------------------------------
  /// Returns the cached WorldSet under `key`, calling `make` on first use.
  /// References stay valid for the context's lifetime. Keys are the
  /// disclosure's (query text, answer) pair, so a query answered the same
  /// way to many users compiles exactly once per audit.
  const WorldSet& compiled(const std::string& key,
                           const std::function<WorldSet()>& make);

  /// Number of cache misses (i.e. actual compilations) so far — the
  /// `engine.compile.misses` counter.
  std::size_t compile_count() const;

  // --- Pair-verdict memoization -------------------------------------------
  /// The memoized decision for (a, b), if any.
  std::optional<EngineDecision> find_memo(const WorldSet& a,
                                          const WorldSet& b) const;
  void memoize(const WorldSet& a, const WorldSet& b, EngineDecision decision);
  /// Number of find_memo hits (cross-section reuse, e.g. a one-query user's
  /// conjunction equals their single disclosure) — the `engine.memo.hits`
  /// counter.
  std::size_t memo_hits() const;

  // --- Subcube interval machinery (kSubcubeKnowledge) ---------------------
  void set_interval_oracle(std::shared_ptr<IntervalOracle> oracle);
  const std::shared_ptr<IntervalOracle>& interval_oracle() const {
    return oracle_;
  }
  /// Precomputes the Delta classes for audit query A (Prop. 4.1
  /// amortization); requires an oracle.
  void prepare_subcube(const WorldSet& a);
  /// The prepared structure when one was built for exactly this A.
  const IntervalOracle::PreparedAudit* prepared_for(const WorldSet& a) const;
  /// Owning variant of prepared_for, for state that must outlive this
  /// context (per-session incremental stage state survives worker-context
  /// rebuilds; see engine/incremental.h). Null on mismatch, like
  /// prepared_for.
  std::shared_ptr<const IntervalOracle::PreparedAudit> shared_prepared_for(
      const WorldSet& a) const;

  // --- Per-stage counters --------------------------------------------------
  /// Installs one counter triplet per stage in the metrics registry; must be
  /// called before decisions run (not thread-safe against record_stage).
  void reset_stages(const std::vector<std::string>& names);
  /// Accumulates one stage invocation (thread-safe).
  void record_stage(std::size_t index, bool decided, std::int64_t nanos);
  std::vector<StageStats> stage_stats() const;

 private:
  struct PairKey {
    WorldSet a;
    WorldSet b;
    bool operator==(const PairKey& o) const { return a == o.a && b == o.b; }
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const {
      // Avalanche-combine the two set hashes via the shared kernel so pairs
      // differing only in B still spread over the whole table.
      return static_cast<std::size_t>(
          bits::hash_combine(k.a.hash(), k.b.hash()));
    }
  };

  /// Registry counters backing one stage's statistics; resolved once in
  /// reset_stages so record_stage stays a couple of relaxed atomic adds.
  struct StageSlot {
    obs::Counter* invocations = nullptr;
    obs::Counter* decisions = nullptr;
    obs::Counter* nanos = nullptr;
  };

  obs::MetricsRegistry metrics_;
  obs::Counter* compile_misses_;  // engine.compile.misses
  obs::Counter* compile_hits_;    // engine.compile.hits
  obs::Counter* memo_hits_c_;     // engine.memo.hits
  obs::Counter* memo_lookups_;    // engine.memo.lookups

  mutable std::mutex compiled_mutex_;
  std::unordered_map<std::string, WorldSet> compiled_;

  mutable std::mutex memo_mutex_;
  std::unordered_map<PairKey, EngineDecision, PairKeyHash> memo_;

  std::shared_ptr<IntervalOracle> oracle_;
  std::optional<WorldSet> prepared_a_;
  std::shared_ptr<const IntervalOracle::PreparedAudit> prepared_;

  std::vector<std::string> stage_names_;
  std::vector<StageSlot> stage_slots_;
};

}  // namespace epi
