// A small fixed-size worker pool for fanning audit decisions out across
// cores. Deliberately minimal: the only primitive is a blocking
// parallel_for whose results the caller writes into pre-sized slots, which
// keeps batch audits deterministic regardless of worker count.
//
// Observability: every helper task records its queue wait (enqueue to
// first instruction) and run time into the process metrics registry
// (`pool.queue_wait_ns` / `pool.task_run_ns` histograms), and — when
// tracing is on — emits a `pool.task` span parented under the span that
// called parallel_for, so pool work appears inside the audit's span tree.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace epi {

class ThreadPool {
 public:
  /// Spawns `threads` workers. `threads` must be >= 1 — resolve "one per
  /// core" via AuditorOptions::resolved_threads() before constructing;
  /// throws std::invalid_argument on 0 rather than silently substituting a
  /// hardware-dependent value. A pool of size 1 spawns no workers at all —
  /// parallel_for then runs inline on the caller, so single-threaded
  /// configurations pay nothing.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (>= 1; counts the caller for the inline case).
  unsigned size() const;

  /// Runs fn(0), ..., fn(count - 1), distributing indices over the workers
  /// plus the calling thread, and blocks until every index has completed.
  /// The first exception thrown by fn is rethrown on the caller after all
  /// in-flight indices finish; remaining unclaimed indices are skipped.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace epi
