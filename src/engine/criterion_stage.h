// First-class decision stages for the DecisionEngine. Each stage wraps one
// of the paper's criteria (or an escalation such as the optimizer / SOS
// certificate) behind a uniform interface: a name for reporting, an
// applicability predicate, and a decide() that either settles the (A, B)
// pair or passes it down the cascade.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "criteria/verdict.h"
#include "probabilistic/distribution.h"
#include "probabilistic/product.h"
#include "worlds/world_set.h"

namespace epi {

class AuditContext;

/// Opaque per-(session, stage) state for delta-evaluation. A stage that can
/// re-derive its machinery incrementally under shrinking disclosure sets
/// (Def. 3.9 composition only ever intersects) returns one of these from
/// make_incremental_state() and updates it in decide_delta(). The engine
/// stores the state in the caller's IncrementalContext; it is only ever
/// touched under the owning session's mutex, so implementations need no
/// internal synchronization.
class StageIncrementalState {
 public:
  virtual ~StageIncrementalState() = default;
};

/// What one stage reports back. verdict == kUnknown means "cannot decide,
/// cascade to the next stage"; numeric_gap is meaningful either way (the
/// coordinate-ascent stage records its best gap even when it fails to find
/// a violating prior).
struct StageDecision {
  Verdict verdict = Verdict::kUnknown;
  std::string method;      ///< deciding criterion label (defaults to the stage name)
  bool certified = false;  ///< proof-backed rather than numerics-only
  double numeric_gap = 0.0;
  /// Unsafe verdicts carry a witness prior: a product witness (lifted and
  /// formatted by the engine, so projection-reduced stages stay oblivious)...
  std::optional<ProductDistribution> witness_product;
  /// ...or a general distribution, described by `detail` directly.
  std::optional<Distribution> witness_distribution;
  std::string detail;  ///< human-readable witness description
  /// Monotone under disclosure composition: the decision (verdict, method,
  /// certified, detail — every byte) is guaranteed to recur for (A, B') for
  /// every B' ⊆ B. Example: once A ∩ B = ∅, any further intersection keeps
  /// A ∩ B' = ∅, so Theorem 3.11 keeps answering Safe the same way. The
  /// engine uses this to pin a session's verdict so later disclosures cost
  /// O(1); stages must only set it when the byte-identity guarantee is real.
  bool monotone = false;
};

/// The engine's final answer for one (A, B) pair. The Auditor turns this
/// into an AuditFinding by attaching the user / query provenance.
struct EngineDecision {
  Verdict verdict = Verdict::kUnknown;
  std::string method;
  bool certified = false;
  double numeric_gap = 0.0;
  std::string detail;
};

/// One stage of the decision cascade. Implementations must be safe to call
/// concurrently from multiple worker threads: decide() is const and any
/// shared mutable state (memo tables, oracles) must synchronize internally
/// or live in the AuditContext.
class CriterionStage {
 public:
  virtual ~CriterionStage() = default;

  /// Stable label used in per-stage statistics and `method` strings.
  virtual std::string_view name() const = 0;

  /// Cheap gate evaluated before decide(); inapplicable stages are skipped
  /// without counting an invocation (e.g. the 3^n box tables above n = 14).
  virtual bool applicable(const WorldSet& a, const WorldSet& b,
                          const AuditContext& ctx) const {
    (void)a;
    (void)b;
    (void)ctx;
    return true;
  }

  /// Decides Safe(A, B) or returns verdict kUnknown to cascade.
  virtual StageDecision decide(const WorldSet& a, const WorldSet& b,
                               AuditContext& ctx) const = 0;

  /// Delta-evaluation opt-in. A stage that can maintain its derived
  /// structures across a session's shrinking disclosure sets returns a
  /// fresh state here; the default (nullptr) keeps the stage on the plain
  /// decide() path. Called lazily, at most once per (session, stage), with
  /// the same (projected / densified) sets decide() would see.
  virtual std::unique_ptr<StageIncrementalState> make_incremental_state(
      const WorldSet& a, const WorldSet& b, AuditContext& ctx) const {
    (void)a;
    (void)b;
    (void)ctx;
    return nullptr;
  }

  /// Decides Safe(A, B) updating `state` from the previous disclosure set to
  /// B (which, on the session path, only ever shrinks). Must return exactly
  /// the bytes decide() would — decide_delta is an optimization, never a
  /// semantic fork. Only called with a state this stage created.
  virtual StageDecision decide_delta(const WorldSet& a, const WorldSet& b,
                                     StageIncrementalState& state,
                                     AuditContext& ctx) const {
    (void)state;
    return decide(a, b, ctx);
  }
};

}  // namespace epi
