// First-class decision stages for the DecisionEngine. Each stage wraps one
// of the paper's criteria (or an escalation such as the optimizer / SOS
// certificate) behind a uniform interface: a name for reporting, an
// applicability predicate, and a decide() that either settles the (A, B)
// pair or passes it down the cascade.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "criteria/verdict.h"
#include "probabilistic/distribution.h"
#include "probabilistic/product.h"
#include "worlds/world_set.h"

namespace epi {

class AuditContext;

/// What one stage reports back. verdict == kUnknown means "cannot decide,
/// cascade to the next stage"; numeric_gap is meaningful either way (the
/// coordinate-ascent stage records its best gap even when it fails to find
/// a violating prior).
struct StageDecision {
  Verdict verdict = Verdict::kUnknown;
  std::string method;      ///< deciding criterion label (defaults to the stage name)
  bool certified = false;  ///< proof-backed rather than numerics-only
  double numeric_gap = 0.0;
  /// Unsafe verdicts carry a witness prior: a product witness (lifted and
  /// formatted by the engine, so projection-reduced stages stay oblivious)...
  std::optional<ProductDistribution> witness_product;
  /// ...or a general distribution, described by `detail` directly.
  std::optional<Distribution> witness_distribution;
  std::string detail;  ///< human-readable witness description
};

/// The engine's final answer for one (A, B) pair. The Auditor turns this
/// into an AuditFinding by attaching the user / query provenance.
struct EngineDecision {
  Verdict verdict = Verdict::kUnknown;
  std::string method;
  bool certified = false;
  double numeric_gap = 0.0;
  std::string detail;
};

/// One stage of the decision cascade. Implementations must be safe to call
/// concurrently from multiple worker threads: decide() is const and any
/// shared mutable state (memo tables, oracles) must synchronize internally
/// or live in the AuditContext.
class CriterionStage {
 public:
  virtual ~CriterionStage() = default;

  /// Stable label used in per-stage statistics and `method` strings.
  virtual std::string_view name() const = 0;

  /// Cheap gate evaluated before decide(); inapplicable stages are skipped
  /// without counting an invocation (e.g. the 3^n box tables above n = 14).
  virtual bool applicable(const WorldSet& a, const WorldSet& b,
                          const AuditContext& ctx) const {
    (void)a;
    (void)b;
    (void)ctx;
    return true;
  }

  /// Decides Safe(A, B) or returns verdict kUnknown to cascade.
  virtual StageDecision decide(const WorldSet& a, const WorldSet& b,
                               AuditContext& ctx) const = 0;
};

}  // namespace epi
