#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace epi {
namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Pool metrics live in the process registry: pools outlive audits and are
/// shared across them. Resolved once; afterwards each record is an atomic
/// add.
struct PoolMetrics {
  obs::Counter& batches = obs::process_metrics().counter("pool.parallel_for.calls");
  obs::Counter& tasks = obs::process_metrics().counter("pool.tasks");
  obs::Histogram& queue_wait = obs::process_metrics().histogram("pool.queue_wait_ns");
  obs::Histogram& run = obs::process_metrics().histogram("pool.task_run_ns");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics* m = new PoolMetrics();  // never destroyed
  return *m;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    throw std::invalid_argument(
        "ThreadPool: thread count must be >= 1 (resolve 0 = one-per-core via "
        "AuditorOptions::resolved_threads() before constructing the pool)");
  }
  // The caller participates in parallel_for, so a pool of size k needs only
  // k - 1 background workers.
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

unsigned ThreadPool::size() const {
  return static_cast<unsigned>(workers_.size()) + 1;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

/// Shared state of one parallel_for: a work-stealing index, the first
/// exception, and a count of drain loops still running.
///
/// Indices are claimed in grains, not one at a time: for the short, cheap
/// decisions a 200-disclosure audit fans out, a per-index fetch_add puts
/// one contended RMW on the same cache line between every two decisions,
/// which is exactly the 2-threads-slower-than-1 crossover BENCH_audit.json
/// used to show. A grain of count/(participants*8) amortizes the claim to
/// ~8 per participant while still rebalancing when items are uneven.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::size_t count = 0;
  std::size_t grain = 1;
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t active_drains = 0;
  std::exception_ptr error;

  void drain(const std::function<void(std::size_t)>& fn) {
    for (;;) {
      const std::size_t begin = next.fetch_add(grain);
      if (begin >= count) break;
      const std::size_t end = std::min(count, begin + grain);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
          // Cancel unclaimed grains (and the rest of this one); indices
          // already in flight on other drains run to completion.
          next.store(count);
          return;
        }
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (workers_.empty() || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  pool_metrics().batches.add(1);
  // Pool tasks run on worker threads whose span context is empty; forward
  // the calling thread's current span so they nest under the batch that
  // scheduled them.
  const std::uint64_t parent_span = obs::current_span();

  auto state = std::make_shared<ForState>();
  state->count = count;
  const std::size_t helpers = std::min<std::size_t>(workers_.size(), count);
  // ~8 claims per participant balances atomic-claim overhead against
  // rebalancing when item costs are skewed (see ForState).
  state->grain = std::max<std::size_t>(1, count / ((helpers + 1) * 8));
  state->active_drains = helpers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      const std::int64_t enqueue_ns = steady_ns();
      tasks_.push([state, &fn, parent_span, enqueue_ns] {
        const std::int64_t start_ns = steady_ns();
        pool_metrics().tasks.add(1);
        pool_metrics().queue_wait.record(start_ns - enqueue_ns);
        {
          obs::SpanContext context(parent_span);
          obs::ScopedSpan span("pool.task");
          if (span.live()) {
            span.attr("queue_wait_ns", std::to_string(start_ns - enqueue_ns));
          }
          state->drain(fn);
        }
        pool_metrics().run.record(steady_ns() - start_ns);
        {
          std::lock_guard<std::mutex> inner(state->mutex);
          --state->active_drains;
        }
        state->done_cv.notify_one();
      });
    }
  }
  cv_.notify_all();

  // The caller drains too; fn's lifetime outlives every drain because we
  // block here until all helper drains have exited.
  {
    obs::ScopedSpan span("pool.task");
    if (span.live()) span.attr("queue_wait_ns", "0");  // inline, never queued
    state->drain(fn);
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&] { return state->active_drains == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace epi
