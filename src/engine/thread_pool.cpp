#include "engine/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

namespace epi {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // The caller participates in parallel_for, so a pool of size k needs only
  // k - 1 background workers.
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

unsigned ThreadPool::size() const {
  return static_cast<unsigned>(workers_.size()) + 1;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

/// Shared state of one parallel_for: a work-stealing index, the first
/// exception, and a count of drain loops still running.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::size_t count = 0;
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t active_drains = 0;
  std::exception_ptr error;

  void drain(const std::function<void(std::size_t)>& fn) {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        // Cancel unclaimed indices; in-flight ones run to completion.
        next.store(count);
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (workers_.empty() || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->count = count;
  const std::size_t helpers = std::min<std::size_t>(workers_.size(), count);
  state->active_drains = helpers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      tasks_.push([state, &fn] {
        state->drain(fn);
        {
          std::lock_guard<std::mutex> inner(state->mutex);
          --state->active_drains;
        }
        state->done_cv.notify_one();
      });
    }
  }
  cv_.notify_all();

  // The caller drains too; fn's lifetime outlives every drain because we
  // block here until all helper drains have exited.
  state->drain(fn);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&] { return state->active_drains == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace epi
