// The DecisionEngine: one ordered cascade of CriterionStage objects per
// prior assumption, replacing the hard-coded switch the Auditor used to
// carry. The engine owns the stage list, handles the product-prior
// projection onto critical coordinates (Section 6's "relevant worlds"
// argument, including witness lifting), memoizes (A, B)-pair verdicts in the
// AuditContext, and accumulates per-stage statistics.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/audit_context.h"
#include "engine/criterion_stage.h"
#include "engine/incremental.h"
#include "engine/thread_pool.h"
#include "optimize/emptiness.h"
#include "util/status.h"

namespace epi {

/// The auditor's assumption about users' prior knowledge.
enum class PriorAssumption {
  kUnrestricted,      ///< any prior (Theorem 3.11 — exact and instant)
  kProduct,           ///< record-wise independence, Pi_m0 (Section 5.1)
  kLogSupermodular,   ///< no negative correlations, Pi_m+ (Section 5)
  /// Possibilistic: the user knows the exact contents of some subset of
  /// records (the subcube family; Section 4.1 machinery, always definite).
  kSubcubeKnowledge,
};

std::string to_string(PriorAssumption prior);

/// Tuning knobs for the decision stages and the batch audit path.
struct AuditorOptions {
  bool enable_sos = true;        ///< SOS certificate stage (product prior)
  unsigned max_sos_records = 4;  ///< skip SOS above this many records
  AscentOptions ascent;          ///< optimizer budget (product prior)
  /// Worker threads for Auditor::audit batch fan-out (0 = one per hardware
  /// thread). Reports are deterministic for every value.
  unsigned threads = 1;
  /// Representation for compiled world sets. kAuto keeps every universe up
  /// to kMaxCoordinates on the dense bitset path (byte-identical to the
  /// pre-backend behavior) and switches to symbolic subcube covers above.
  /// kSymbolic forces covers everywhere (the unrestricted cascade runs
  /// natively on them; other priors densify per pair, so they still cap at
  /// kMaxCoordinates). kDense forces bitsets and therefore rejects
  /// universes past the dense cap.
  SetBackend backend = SetBackend::kAuto;

  /// Rejects contradictory or degenerate settings: an enabled SOS stage that
  /// max_sos_records == 0 gates off for every universe, and an optimizer
  /// budget of zero multistarts or cycles (which would silently demote every
  /// open product-prior pair to the numeric fallback). The Auditor
  /// constructor surfaces the failure instead of clamping.
  Status validate() const;

  /// `threads` with 0 resolved to the hardware concurrency — always >= 1,
  /// never 0. ThreadPool itself rejects 0, so resolve before constructing
  /// one.
  unsigned resolved_threads() const;
};

/// Runs the per-prior stage cascade for (A, B) pairs. Construction is cheap;
/// decide() is const and safe to call from many threads sharing one
/// AuditContext. register_stage() is setup-time only — never call it while
/// decisions are in flight.
class DecisionEngine {
 public:
  /// `records` is the universe size |records| = n; it gates stages whose
  /// cost scales with the unprojected space (e.g. SOS certificates).
  DecisionEngine(unsigned records, PriorAssumption prior,
                 AuditorOptions options = {});

  PriorAssumption prior() const { return prior_; }
  const AuditorOptions& options() const { return options_; }

  const std::vector<std::unique_ptr<CriterionStage>>& stages() const {
    return stages_;
  }
  /// Stage labels in cascade order (for AuditContext::reset_stages).
  std::vector<std::string> stage_names() const;

  /// Inserts a custom stage at `position` (clamped to the list size). Note
  /// that terminal stages such as the product prior's "numeric-only"
  /// fallback always decide, so stages appended after them never run.
  void register_stage(std::unique_ptr<CriterionStage> stage,
                      std::size_t position);

  /// Decides one (A, B) pair: memo lookup, product-prior projection, then
  /// the stage cascade. Per-stage counters land in `ctx` when its slots were
  /// configured with stage_names().
  EngineDecision decide(const WorldSet& a, const WorldSet& b,
                        AuditContext& ctx) const;

  /// Streaming-session variant of decide(): decides Safe(A, S) for the
  /// session's accumulated set S, serving or updating the per-session
  /// `inc` state (see engine/incremental.h). Three tiers, cheapest first:
  /// a pinned monotone decision is returned untouched; an unchanged S
  /// (inc.dirty false) returns the recorded decision; otherwise the cascade
  /// runs with delta-evaluation for stages that support it, and the result
  /// is recorded (and pinned when the deciding stage reported monotone and
  /// ran first). Decisions are byte-identical to decide() for the same
  /// (A, S); this path skips the (A, B)-pair memo and its hashing — the
  /// session state *is* the memo. `inc` must be externally serialized (the
  /// service holds the session mutex).
  EngineDecision decide_incremental(const WorldSet& a, const WorldSet& s,
                                    IncrementalContext& inc,
                                    AuditContext& ctx) const;

  /// Batch sweep: decides A against every set in `bs` in one pass, writing
  /// decisions[i] for bs[i]. With a pool the pairs fan out across its
  /// workers (index-slot writes, so results — and, because decide() memoizes
  /// through the shared ctx, every counter except wall time — are identical
  /// at any worker count); without one they run inline in index order.
  std::vector<EngineDecision> decide_many(const WorldSet& a,
                                          std::span<const WorldSet* const> bs,
                                          AuditContext& ctx,
                                          ThreadPool* pool = nullptr) const;

 private:
  /// run_cascade's answer plus whether it may be pinned for every S' ⊆ S.
  struct CascadeResult {
    EngineDecision decision;
    /// The deciding stage reported StageDecision::monotone, no earlier
    /// stage was invoked (an earlier kUnknown could flip for smaller S),
    /// and no projection prefix depends on S.
    bool monotone = false;
  };

  void build_stages();

  /// The shared densify → project → stage-loop body behind decide() and
  /// decide_incremental() — one code path so the two stay byte-identical by
  /// construction. With `inc` set, stages may carry per-session delta state.
  CascadeResult run_cascade(const WorldSet& a, const WorldSet& b,
                            AuditContext& ctx, IncrementalContext* inc) const;

  unsigned records_;
  PriorAssumption prior_;
  AuditorOptions options_;
  std::vector<std::unique_ptr<CriterionStage>> stages_;
  std::string exhausted_label_;
};

}  // namespace epi
