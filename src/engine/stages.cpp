#include "engine/stages.h"

#include <utility>

#include "criteria/unconditional.h"
#include "engine/audit_context.h"
#include "optimize/positivstellensatz.h"
#include "probabilistic/safe.h"
#include "worlds/finite_set.h"

namespace epi {
namespace {

class TableStage : public CriterionStage {
 public:
  TableStage(const NamedCriterion& entry, std::string distribution_label)
      : entry_(entry), distribution_label_(std::move(distribution_label)) {}

  std::string_view name() const override { return entry_.name; }

  bool applicable(const WorldSet& a, const WorldSet&,
                  const AuditContext&) const override {
    return entry_.max_n == 0 || a.n() <= entry_.max_n;
  }

  StageDecision decide(const WorldSet& a, const WorldSet& b,
                       AuditContext&) const override {
    StageDecision d;
    CriterionOutcome o = entry_.test(a, b);
    if (o.verdict == Verdict::kUnknown) return d;
    d.verdict = o.verdict;
    d.method = entry_.name;
    d.certified = true;
    if (o.witness_distribution) {
      d.detail = distribution_label_ + o.witness_distribution->support().to_string();
      d.witness_distribution = std::move(o.witness_distribution);
    }
    d.witness_product = std::move(o.witness_product);
    return d;
  }

 private:
  NamedCriterion entry_;
  std::string distribution_label_;
};

class UnrestrictedStage : public CriterionStage {
 public:
  std::string_view name() const override { return "theorem-3.11"; }

  StageDecision decide(const WorldSet& a, const WorldSet& b,
                       AuditContext&) const override {
    StageDecision d;
    d.method = "theorem-3.11";
    d.certified = true;
    // unconditionally_safe(a, b) split into its two Thm. 3.11 disjuncts so
    // the first can be flagged monotone: A ∩ B = ∅ survives any further
    // intersection of B (Prop. 3.10 composition), while A ∪ B = Ω does not.
    // Same tests, same order, identical decisions.
    if (a.disjoint_with(b)) {
      d.verdict = Verdict::kSafe;
      d.monotone = true;
    } else if (union_is_universe(a, b)) {
      d.verdict = Verdict::kSafe;
    } else if (a.symbolic() || b.symbolic()) {
      // Same two-point witness as below, but Distribution is a dense 2^n
      // vector — at symbolic scale only the two support worlds are named.
      // The detail string is built to match the dense branch byte for byte
      // (worlds in increasing order, same format), which the backend-parity
      // model check pins.
      d.verdict = Verdict::kUnsafe;
      World w1 = (a & b).min_world();
      World w2 = (~(a | b)).min_world();
      if (w2 < w1) std::swap(w1, w2);
      d.detail = "two-point prior on {" + world_to_string(w1, a.n()) + "," +
                 world_to_string(w2, a.n()) + "}";
    } else {
      d.verdict = Verdict::kUnsafe;
      d.witness_distribution = unrestricted_witness(a, b);
      d.detail = "two-point prior on " + d.witness_distribution->support().to_string();
    }
    return d;
  }
};

class CoordinateAscentStage : public CriterionStage {
 public:
  explicit CoordinateAscentStage(AscentOptions options) : options_(options) {}

  std::string_view name() const override { return "coordinate-ascent"; }

  StageDecision decide(const WorldSet& a, const WorldSet& b,
                       AuditContext&) const override {
    StageDecision d;
    const AscentResult numeric = maximize_product_gap(a, b, options_);
    d.numeric_gap = numeric.max_gap;
    if (numeric.max_gap > 1e-9) {
      d.verdict = Verdict::kUnsafe;
      d.method = "coordinate-ascent";
      d.certified = true;  // the witness itself is the proof
      d.witness_product = ProductDistribution(numeric.argmax);
    }
    return d;
  }

 private:
  AscentOptions options_;
};

class SosCertificateStage : public CriterionStage {
 public:
  explicit SosCertificateStage(bool enabled) : enabled_(enabled) {}

  std::string_view name() const override { return "sos-certificate"; }

  bool applicable(const WorldSet&, const WorldSet&,
                  const AuditContext&) const override {
    return enabled_;
  }

  StageDecision decide(const WorldSet& a, const WorldSet& b,
                       AuditContext&) const override {
    StageDecision d;
    if (sos_product_safety(a, b) == Verdict::kSafe) {
      d.verdict = Verdict::kSafe;
      d.method = "sos-certificate";
      d.certified = true;
    }
    return d;
  }

 private:
  bool enabled_;
};

class NumericFallbackStage : public CriterionStage {
 public:
  std::string_view name() const override { return "numeric-only"; }

  StageDecision decide(const WorldSet&, const WorldSet&,
                       AuditContext&) const override {
    StageDecision d;
    d.verdict = Verdict::kSafe;
    d.method = "numeric-only";
    d.certified = false;
    return d;
  }
};

class SubcubeIntervalStage : public CriterionStage {
 public:
  std::string_view name() const override { return "subcube-intervals"; }

  StageDecision decide(const WorldSet& a, const WorldSet& b,
                       AuditContext& ctx) const override {
    StageDecision d;
    d.certified = true;
    bool safe;
    if (const IntervalOracle::PreparedAudit* prepared = ctx.prepared_for(a)) {
      safe = prepared->safe(to_finite(b));
      d.method = "subcube-intervals(prepared)";
    } else {
      safe = ctx.interval_oracle()->safe_minimal_intervals(to_finite(a),
                                                           to_finite(b));
      d.method = "subcube-intervals";
    }
    d.verdict = safe ? Verdict::kSafe : Verdict::kUnsafe;
    if (!safe) {
      d.detail = "a user knowing some records' exact contents learns A";
    }
    return d;
  }

  /// Session state: the Δ-class counters of Corollary 4.12, maintained
  /// incrementally as S shrinks (see IntervalOracle::IncrementalSafe).
  /// Only offered when the context has Delta classes prepared for exactly
  /// this A — the shared_ptr keeps them alive across worker-context
  /// rebuilds — so the delta path reproduces the "(prepared)" method
  /// string byte for byte.
  struct State : StageIncrementalState {
    explicit State(std::shared_ptr<const IntervalOracle::PreparedAudit> p)
        : index(std::move(p)) {}
    IntervalOracle::IncrementalSafe index;
  };

  std::unique_ptr<StageIncrementalState> make_incremental_state(
      const WorldSet& a, const WorldSet&, AuditContext& ctx) const override {
    std::shared_ptr<const IntervalOracle::PreparedAudit> prepared =
        ctx.shared_prepared_for(a);
    if (!prepared) return nullptr;
    return std::make_unique<State>(std::move(prepared));
  }

  StageDecision decide_delta(const WorldSet&, const WorldSet& b,
                             StageIncrementalState& state,
                             AuditContext&) const override {
    IntervalOracle::IncrementalSafe& index =
        static_cast<State&>(state).index;
    const FiniteSet s = to_finite(b);
    if (!index.initialized() || !index.shrink_to(s)) index.reset(s);
    StageDecision d;
    d.certified = true;
    d.method = "subcube-intervals(prepared)";
    const bool safe = index.safe();
    d.verdict = safe ? Verdict::kSafe : Verdict::kUnsafe;
    if (!safe) {
      d.detail = "a user knowing some records' exact contents learns A";
    }
    // A ∩ S = ∅ is absorbing under composition: Cor. 4.12 quantifies over
    // w1 ∈ A ∩ S, so the Safe decision is byte-identical for every S' ⊆ S.
    d.monotone = safe && index.active_empty();
    return d;
  }
};

}  // namespace

std::unique_ptr<CriterionStage> make_table_stage(const NamedCriterion& entry,
                                                 std::string distribution_label) {
  return std::make_unique<TableStage>(entry, std::move(distribution_label));
}

std::unique_ptr<CriterionStage> make_unrestricted_stage() {
  return std::make_unique<UnrestrictedStage>();
}

std::unique_ptr<CriterionStage> make_coordinate_ascent_stage(
    AscentOptions options) {
  return std::make_unique<CoordinateAscentStage>(options);
}

std::unique_ptr<CriterionStage> make_sos_certificate_stage(bool enabled) {
  return std::make_unique<SosCertificateStage>(enabled);
}

std::unique_ptr<CriterionStage> make_numeric_fallback_stage() {
  return std::make_unique<NumericFallbackStage>();
}

std::unique_ptr<CriterionStage> make_subcube_interval_stage() {
  return std::make_unique<SubcubeIntervalStage>();
}

}  // namespace epi
