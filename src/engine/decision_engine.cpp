#include "engine/decision_engine.h"

#include <chrono>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "criteria/projection.h"
#include "engine/stages.h"
#include "obs/trace.h"

namespace epi {
namespace {

std::string describe_product_witness(const ProductDistribution& p) {
  std::ostringstream os;
  os << "product prior with p = (";
  for (unsigned i = 0; i < p.n(); ++i) {
    os << (i ? ", " : "") << p.param(i);
  }
  os << ")";
  return os.str();
}

/// Lifts a witness found in the projected space back to the full space:
/// projected parameters on kept coordinates, 1/2 on the irrelevant ones (any
/// value preserves the gap).
ProductDistribution lift_witness(const ProjectedPair& projection,
                                 const ProductDistribution& witness,
                                 unsigned original_n) {
  std::vector<double> params(original_n, 0.5);
  for (std::size_t i = 0; i < projection.kept_coordinates.size(); ++i) {
    params[projection.kept_coordinates[i]] =
        witness.param(static_cast<unsigned>(i));
  }
  return ProductDistribution(params);
}

}  // namespace

Status AuditorOptions::validate() const {
  if (enable_sos && max_sos_records == 0) {
    return Status::InvalidArgument(
        "AuditorOptions: enable_sos with max_sos_records == 0 gates the SOS "
        "stage off for every universe; set enable_sos = false instead");
  }
  if (ascent.multistarts <= 0) {
    return Status::InvalidArgument(
        "AuditorOptions: ascent.multistarts must be >= 1 (a zero-budget "
        "optimizer silently demotes open pairs to the numeric fallback)");
  }
  if (ascent.max_cycles <= 0) {
    return Status::InvalidArgument(
        "AuditorOptions: ascent.max_cycles must be >= 1");
  }
  return Status::Ok();
}

unsigned AuditorOptions::resolved_threads() const {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::string to_string(PriorAssumption prior) {
  switch (prior) {
    case PriorAssumption::kUnrestricted:
      return "unrestricted";
    case PriorAssumption::kProduct:
      return "product";
    case PriorAssumption::kLogSupermodular:
      return "log-supermodular";
    case PriorAssumption::kSubcubeKnowledge:
      return "subcube-knowledge";
  }
  return "?";
}

DecisionEngine::DecisionEngine(unsigned records, PriorAssumption prior,
                               AuditorOptions options)
    : records_(records), prior_(prior), options_(options) {
  build_stages();
}

void DecisionEngine::build_stages() {
  switch (prior_) {
    case PriorAssumption::kUnrestricted:
      stages_.push_back(make_unrestricted_stage());
      exhausted_label_ = "exhausted-criteria";
      break;
    case PriorAssumption::kProduct:
      for (const NamedCriterion& entry : product_criteria()) {
        stages_.push_back(make_table_stage(entry, "product prior on "));
      }
      stages_.push_back(make_coordinate_ascent_stage(options_.ascent));
      // The legacy gate evaluates on the original record count (projection
      // may shrink the pair, but the enable decision predates it).
      stages_.push_back(make_sos_certificate_stage(
          options_.enable_sos && records_ <= options_.max_sos_records));
      stages_.push_back(make_numeric_fallback_stage());
      exhausted_label_ = "exhausted-combinatorial-criteria";
      break;
    case PriorAssumption::kLogSupermodular:
      for (const NamedCriterion& entry : supermodular_criteria()) {
        stages_.push_back(make_table_stage(entry, "log-supermodular prior on "));
      }
      exhausted_label_ = "exhausted-supermodular-criteria";
      break;
    case PriorAssumption::kSubcubeKnowledge:
      stages_.push_back(make_subcube_interval_stage());
      exhausted_label_ = "exhausted-interval-criteria";
      break;
  }
}

std::vector<std::string> DecisionEngine::stage_names() const {
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& stage : stages_) names.emplace_back(stage->name());
  return names;
}

void DecisionEngine::register_stage(std::unique_ptr<CriterionStage> stage,
                                    std::size_t position) {
  if (position > stages_.size()) position = stages_.size();
  stages_.insert(stages_.begin() + static_cast<std::ptrdiff_t>(position),
                 std::move(stage));
}

EngineDecision DecisionEngine::decide(const WorldSet& a, const WorldSet& b,
                                      AuditContext& ctx) const {
  obs::ScopedSpan span("engine.decide");
  if (std::optional<EngineDecision> memo = ctx.find_memo(a, b)) {
    if (span.live()) span.attr("memo", "hit");
    return *memo;
  }
  CascadeResult r = run_cascade(a, b, ctx, /*inc=*/nullptr);
  if (span.live()) {
    span.attr("verdict", to_string(r.decision.verdict));
    span.attr("method", r.decision.method);
  }
  ctx.memoize(a, b, r.decision);
  return r.decision;
}

EngineDecision DecisionEngine::decide_incremental(const WorldSet& a,
                                                  const WorldSet& s,
                                                  IncrementalContext& inc,
                                                  AuditContext& ctx) const {
  obs::ScopedSpan span("engine.decide.incremental");
  if (inc.valid && inc.pinned) {
    inc.last_mode = IncrementalContext::Mode::kPinned;
    ++inc.served_pinned;
    if (span.live()) span.attr("mode", "pinned");
    return inc.last;
  }
  if (inc.valid && !inc.dirty) {
    inc.last_mode = IncrementalContext::Mode::kUnchanged;
    ++inc.served_unchanged;
    if (span.live()) span.attr("mode", "unchanged");
    return inc.last;
  }
  if (inc.stage_states.size() != stages_.size()) {
    inc.stage_states.clear();
    inc.stage_states.resize(stages_.size());
    inc.probed.assign(stages_.size(), false);
  }
  CascadeResult r = run_cascade(a, s, ctx, &inc);
  inc.last = r.decision;
  inc.valid = true;
  inc.dirty = false;
  inc.pinned = r.monotone;
  inc.last_mode = IncrementalContext::Mode::kEvaluated;
  ++inc.evaluations;
  if (span.live()) {
    span.attr("mode", "evaluated");
    span.attr("verdict", to_string(inc.last.verdict));
    span.attr("method", inc.last.method);
  }
  return inc.last;
}

DecisionEngine::CascadeResult DecisionEngine::run_cascade(
    const WorldSet& a, const WorldSet& b, AuditContext& ctx,
    IncrementalContext* inc) const {
  const WorldSet* wa = &a;
  const WorldSet* wb = &b;

  // Symbolic pairs: the unrestricted cascade (Theorem 3.11) runs natively on
  // subcube covers; every other prior's stages walk worlds or per-world
  // weights, so the pair is densified first — exact, and within reach
  // whenever n <= kMaxCoordinates (past that, WorldSet::densified throws:
  // those priors genuinely need the dense machinery). The memo below still
  // keys the original sets.
  std::optional<std::pair<WorldSet, WorldSet>> densified;
  if (prior_ != PriorAssumption::kUnrestricted &&
      (a.symbolic() || b.symbolic())) {
    densified.emplace(a.densified(), b.densified());
    wa = &densified->first;
    wb = &densified->second;
  }

  // Product-prior stage 0: drop non-critical coordinates (Section 6's
  // "relevant worlds" argument) — product-family safety is invariant under
  // marginalizing them, and every later stage gets exponentially cheaper.
  std::string prefix;
  std::optional<ProjectedPair> projection;
  if (prior_ == PriorAssumption::kProduct) {
    ProjectedPair p = project_to_critical(*wa, *wb);
    if (p.kept_coordinates.size() < a.n()) {
      prefix = "projected[" + std::to_string(p.kept_coordinates.size()) + "/" +
               std::to_string(a.n()) + "]+";
      projection = std::move(p);
      wa = &projection->a;
      wb = &projection->b;
    }
  }

  CascadeResult out;
  EngineDecision& result = out.decision;
  double numeric_gap = 0.0;
  bool decided = false;
  bool invoked_before = false;
  for (std::size_t i = 0; i < stages_.size() && !decided; ++i) {
    const CriterionStage& stage = *stages_[i];
    if (!stage.applicable(*wa, *wb, ctx)) continue;
    // The span duplicates the counter's interval measurement, but only while
    // tracing is on — the dormant ScopedSpan never reads the clock.
    std::optional<obs::ScopedSpan> stage_span;
    if (obs::tracing_enabled()) {
      stage_span.emplace("engine.stage." + std::string(stage.name()));
    }
    const auto t0 = std::chrono::steady_clock::now();
    StageIncrementalState* state = nullptr;
    if (inc != nullptr) {
      if (!inc->probed[i]) {
        inc->probed[i] = true;
        inc->stage_states[i] = stage.make_incremental_state(*wa, *wb, ctx);
      }
      state = inc->stage_states[i].get();
    }
    StageDecision d = state ? stage.decide_delta(*wa, *wb, *state, ctx)
                            : stage.decide(*wa, *wb, ctx);
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    ctx.record_stage(i, d.verdict != Verdict::kUnknown, elapsed);
    if (stage_span && stage_span->live()) {
      stage_span->attr("decided",
                       d.verdict != Verdict::kUnknown ? "true" : "false");
    }
    if (d.numeric_gap > numeric_gap) numeric_gap = d.numeric_gap;
    if (d.verdict == Verdict::kUnknown) {
      invoked_before = true;
      continue;
    }
    decided = true;
    // A monotone decision may only be pinned when no earlier stage was
    // invoked (an earlier kUnknown might decide differently for a smaller S)
    // and no projection prefix ties the method string to this S.
    out.monotone = d.monotone && !invoked_before && prefix.empty();
    result.verdict = d.verdict;
    result.method = prefix + d.method;
    result.certified = d.certified;
    result.detail = std::move(d.detail);
    if (d.witness_product) {
      const ProductDistribution witness =
          projection ? lift_witness(*projection, *d.witness_product, a.n())
                     : *d.witness_product;
      result.detail = describe_product_witness(witness);
    }
  }
  if (!decided) {
    result.verdict = Verdict::kUnknown;
    result.method = exhausted_label_;
    result.certified = false;
  }
  result.numeric_gap = numeric_gap;
  return out;
}

std::vector<EngineDecision> DecisionEngine::decide_many(
    const WorldSet& a, std::span<const WorldSet* const> bs, AuditContext& ctx,
    ThreadPool* pool) const {
  std::vector<EngineDecision> out(bs.size());
  auto decide_one = [&](std::size_t i) { out[i] = decide(a, *bs[i], ctx); };
  if (pool == nullptr || bs.size() <= 1) {
    for (std::size_t i = 0; i < bs.size(); ++i) decide_one(i);
  } else {
    pool->parallel_for(bs.size(), decide_one);
  }
  return out;
}

}  // namespace epi
