#include "engine/audit_context.h"

#include <stdexcept>

#include "worlds/finite_set.h"

namespace epi {

const WorldSet& AuditContext::compiled(const std::string& key,
                                       const std::function<WorldSet()>& make) {
  {
    std::lock_guard<std::mutex> lock(compiled_mutex_);
    auto it = compiled_.find(key);
    if (it != compiled_.end()) return it->second;
  }
  // Compile outside the lock (parses/compiles can be expensive); a racing
  // duplicate compilation is benign — first insert wins.
  WorldSet made = make();
  std::lock_guard<std::mutex> lock(compiled_mutex_);
  auto [it, inserted] = compiled_.emplace(key, std::move(made));
  if (inserted) compile_count_.fetch_add(1);
  return it->second;
}

std::optional<EngineDecision> AuditContext::find_memo(const WorldSet& a,
                                                      const WorldSet& b) const {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  auto it = memo_.find(PairKey{a, b});
  if (it == memo_.end()) return std::nullopt;
  memo_hits_.fetch_add(1);
  return it->second;
}

void AuditContext::memoize(const WorldSet& a, const WorldSet& b,
                           EngineDecision decision) {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  memo_.emplace(PairKey{a, b}, std::move(decision));
}

void AuditContext::set_interval_oracle(std::shared_ptr<IntervalOracle> oracle) {
  oracle_ = std::move(oracle);
}

void AuditContext::prepare_subcube(const WorldSet& a) {
  if (!oracle_) {
    throw std::logic_error("AuditContext::prepare_subcube: no interval oracle");
  }
  prepared_a_ = a;
  prepared_ = oracle_->prepare(to_finite(a));
}

const IntervalOracle::PreparedAudit* AuditContext::prepared_for(
    const WorldSet& a) const {
  if (!prepared_ || !prepared_a_ || *prepared_a_ != a) return nullptr;
  return &*prepared_;
}

void AuditContext::reset_stages(const std::vector<std::string>& names) {
  stage_names_ = names;
  stage_slots_.clear();
  stage_slots_.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    stage_slots_.push_back(std::make_unique<StageSlot>());
  }
}

void AuditContext::record_stage(std::size_t index, bool decided,
                                std::int64_t nanos) {
  if (index >= stage_slots_.size()) return;  // unconfigured context: no stats
  StageSlot& slot = *stage_slots_[index];
  slot.invocations.fetch_add(1);
  if (decided) slot.decisions.fetch_add(1);
  slot.nanos.fetch_add(nanos);
}

std::vector<StageStats> AuditContext::stage_stats() const {
  std::vector<StageStats> out;
  out.reserve(stage_names_.size());
  for (std::size_t i = 0; i < stage_names_.size(); ++i) {
    StageStats s;
    s.name = stage_names_[i];
    s.invocations = stage_slots_[i]->invocations.load();
    s.decisions = stage_slots_[i]->decisions.load();
    s.wall_seconds = static_cast<double>(stage_slots_[i]->nanos.load()) * 1e-9;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace epi
