#include "engine/audit_context.h"

#include <cstdio>
#include <stdexcept>

#include "worlds/finite_set.h"

namespace epi {
namespace {

/// `engine.stage.<idx>.<name>.<kind>` — the naming scheme AuditReport's
/// stage_stats() view reverses (see docs/observability.md). The zero-padded
/// index keeps snapshot ordering equal to cascade ordering.
std::string stage_metric_name(std::size_t index, const std::string& stage,
                              const char* kind) {
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "engine.stage.%02zu.", index);
  return std::string(prefix) + stage + "." + kind;
}

}  // namespace

AuditContext::AuditContext()
    : compile_misses_(&metrics_.counter("engine.compile.misses")),
      compile_hits_(&metrics_.counter("engine.compile.hits")),
      memo_hits_c_(&metrics_.counter("engine.memo.hits")),
      memo_lookups_(&metrics_.counter("engine.memo.lookups")) {}

const WorldSet& AuditContext::compiled(const std::string& key,
                                       const std::function<WorldSet()>& make) {
  {
    std::lock_guard<std::mutex> lock(compiled_mutex_);
    auto it = compiled_.find(key);
    if (it != compiled_.end()) {
      compile_hits_->add(1);
      return it->second;
    }
  }
  // Compile outside the lock (parses/compiles can be expensive); a racing
  // duplicate compilation is benign — first insert wins.
  WorldSet made = make();
  std::lock_guard<std::mutex> lock(compiled_mutex_);
  auto [it, inserted] = compiled_.emplace(key, std::move(made));
  if (inserted) {
    compile_misses_->add(1);
  } else {
    compile_hits_->add(1);
  }
  return it->second;
}

std::size_t AuditContext::compile_count() const {
  return static_cast<std::size_t>(compile_misses_->value());
}

std::optional<EngineDecision> AuditContext::find_memo(const WorldSet& a,
                                                      const WorldSet& b) const {
  memo_lookups_->add(1);
  std::lock_guard<std::mutex> lock(memo_mutex_);
  auto it = memo_.find(PairKey{a, b});
  if (it == memo_.end()) return std::nullopt;
  memo_hits_c_->add(1);
  return it->second;
}

std::size_t AuditContext::memo_hits() const {
  return static_cast<std::size_t>(memo_hits_c_->value());
}

void AuditContext::memoize(const WorldSet& a, const WorldSet& b,
                           EngineDecision decision) {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  memo_.emplace(PairKey{a, b}, std::move(decision));
}

void AuditContext::set_interval_oracle(std::shared_ptr<IntervalOracle> oracle) {
  oracle_ = std::move(oracle);
}

void AuditContext::prepare_subcube(const WorldSet& a) {
  if (!oracle_) {
    throw std::logic_error("AuditContext::prepare_subcube: no interval oracle");
  }
  prepared_a_ = a;
  prepared_ = std::make_shared<const IntervalOracle::PreparedAudit>(
      oracle_->prepare(to_finite(a)));
}

const IntervalOracle::PreparedAudit* AuditContext::prepared_for(
    const WorldSet& a) const {
  if (!prepared_ || !prepared_a_ || *prepared_a_ != a) return nullptr;
  return prepared_.get();
}

std::shared_ptr<const IntervalOracle::PreparedAudit>
AuditContext::shared_prepared_for(const WorldSet& a) const {
  if (!prepared_ || !prepared_a_ || *prepared_a_ != a) return nullptr;
  return prepared_;
}

void AuditContext::reset_stages(const std::vector<std::string>& names) {
  stage_names_ = names;
  stage_slots_.clear();
  stage_slots_.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    StageSlot slot;
    slot.invocations =
        &metrics_.counter(stage_metric_name(i, names[i], "invocations"));
    slot.decisions =
        &metrics_.counter(stage_metric_name(i, names[i], "decisions"));
    slot.nanos = &metrics_.counter(stage_metric_name(i, names[i], "nanos"));
    stage_slots_.push_back(slot);
  }
}

void AuditContext::record_stage(std::size_t index, bool decided,
                                std::int64_t nanos) {
  if (index >= stage_slots_.size()) return;  // unconfigured context: no stats
  const StageSlot& slot = stage_slots_[index];
  slot.invocations->add(1);
  if (decided) slot.decisions->add(1);
  slot.nanos->add(nanos);
}

std::vector<StageStats> AuditContext::stage_stats() const {
  std::vector<StageStats> out;
  out.reserve(stage_names_.size());
  for (std::size_t i = 0; i < stage_names_.size(); ++i) {
    StageStats s;
    s.name = stage_names_[i];
    s.invocations = static_cast<std::size_t>(stage_slots_[i].invocations->value());
    s.decisions = static_cast<std::size_t>(stage_slots_[i].decisions->value());
    s.wall_seconds = static_cast<double>(stage_slots_[i].nanos->value()) * 1e-9;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace epi
