// Internal: the built-in family singletons, one accessor per translation
// unit, assembled into the registry by family.cpp. Explicit accessors (not
// static self-registration) so a static-library link never drops a family.
#pragma once

#include "workloads/family.h"

namespace epi {
namespace workloads {

const WorkloadFamily& hospital_family();
const WorkloadFamily& aggregate_family();
const WorkloadFamily& policy_family();
const WorkloadFamily& collusion_family();
const WorkloadFamily& rectangles_family();

/// Parses `text`, evaluates it at `state` (the consistent answer every
/// built-in family records) and appends the answered request to `stream`.
/// InvalidArgument when the generated text does not parse — a generator bug
/// surfaced instead of swallowed.
Status push_request(const RecordUniverse& universe, World state,
                    std::string user, std::string text,
                    std::vector<StreamRequest>* stream);

}  // namespace workloads
}  // namespace epi
