// The `policy` family: controlled-query-evaluation streams in the style of
// Cima et al.'s *Epistemic Dependencies* — a declarative rule set of denial
// patterns (implications the user must not come to know, protected atoms,
// forbidden conjunctions) generates the audited properties, while a few
// clients run long sessions of atoms/implications against one fixed
// database. Sessions are monotone and consistent by construction, which is
// exactly the shape the incremental-session tiers (pins, unchanged-S
// replay, Δ-evaluation) are built for; the subcube-knowledge prior routes
// every decision through the Section 4.1 interval machinery.
#include "workloads/families.h"

#include <set>

#include "possibilistic/subcubes.h"
#include "util/rng.h"

namespace epi {
namespace workloads {
namespace {

constexpr unsigned kDefaultRecords = 10;
constexpr unsigned kDefaultRequests = 48;
constexpr unsigned kDefaultUsers = 2;

class PolicyFamily final : public WorkloadFamily {
 public:
  std::string_view name() const override { return "policy"; }
  std::string_view description() const override {
    return "long monotone client sessions audited against a declarative "
           "denial rule set (Cima-et-al-style controlled query evaluation), "
           "under the subcube-knowledge prior";
  }
  WorkloadShape shape() const override {
    WorkloadShape shape;
    shape.min_users = 1;
    shape.min_requests = 1;
    shape.counting_queries = false;
    shape.consistent_answers = true;
    // The Section 4.1 oracle enumerates the subcube family; stay under its
    // ceiling so the prior the family declares is actually runnable.
    shape.max_coordinates = kMaxSubcubeEnumerationCoordinates;
    return shape;
  }
  Status generate(const FamilyOptions& options,
                  GeneratedWorkload* out) const override {
    if (out == nullptr) {
      return Status::InvalidArgument("policy: null output");
    }
    const unsigned records =
        options.records != 0 ? options.records : kDefaultRecords;
    const unsigned requests =
        options.requests != 0 ? options.requests : kDefaultRequests;
    const unsigned users = options.users != 0 ? options.users : kDefaultUsers;
    if (records < 2 || records > kMaxSubcubeEnumerationCoordinates) {
      return Status::InvalidArgument(
          "policy: records must be in [2, " +
          std::to_string(kMaxSubcubeEnumerationCoordinates) +
          "] (subcube-knowledge prior)");
    }

    GeneratedWorkload generated;
    generated.prior = PriorAssumption::kSubcubeKnowledge;
    for (unsigned r = 0; r < records; ++r) {
      generated.universe.add("fact" + std::to_string(r));
    }
    const std::vector<std::string> names = generated.universe.names();

    Rng rng(options.seed);
    generated.initial_state = static_cast<World>(rng.next_bits(records));

    auto distinct_pair = [&](std::string* lhs, std::string* rhs) {
      const std::size_t i = rng.next_below(names.size());
      std::size_t j = rng.next_below(names.size() - 1);
      if (j >= i) ++j;
      *lhs = names[i];
      *rhs = names[j];
    };

    // The rule set: denial patterns become the audited properties. Dedup
    // keeps the first occurrence's order.
    const std::size_t rules = std::min<std::size_t>(6, records);
    std::set<std::string> seen;
    for (std::size_t r = 0; r < rules; ++r) {
      std::string text;
      std::string lhs, rhs;
      switch (rng.next_below(3)) {
        case 0:  // denial of implication: the user must not learn lhs -> rhs
          distinct_pair(&lhs, &rhs);
          text = lhs + " -> " + rhs;
          break;
        case 1:  // protected atom
          text = names[rng.next_below(names.size())];
          break;
        default:  // forbidden conjunction
          distinct_pair(&lhs, &rhs);
          text = "!(" + lhs + " & " + rhs + ")";
          break;
      }
      if (seen.insert(text).second) {
        generated.audit_queries.push_back(std::move(text));
      }
    }

    // Long per-client sessions of atoms and implications.
    for (unsigned q = 0; q < requests; ++q) {
      const std::string user = "client" + std::to_string(rng.next_below(users));
      std::string text;
      std::string lhs, rhs;
      const std::uint64_t kind = rng.next_below(20);
      if (kind < 8) {
        text = names[rng.next_below(names.size())];
      } else if (kind < 14) {
        distinct_pair(&lhs, &rhs);
        text = lhs + " -> " + rhs;
      } else if (kind < 17) {
        distinct_pair(&lhs, &rhs);
        text = lhs + " & " + rhs;
      } else {
        text = "!" + names[rng.next_below(names.size())];
      }
      if (Status pushed =
              push_request(generated.universe, generated.initial_state, user,
                           std::move(text), &generated.stream);
          !pushed.ok()) {
        return pushed;
      }
    }

    *out = std::move(generated);
    return Status::Ok();
  }
};

}  // namespace

const WorkloadFamily& policy_family() {
  static const PolicyFamily family;
  return family;
}

}  // namespace workloads
}  // namespace epi
