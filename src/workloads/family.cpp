#include "workloads/family.h"

#include <set>
#include <sstream>

#include "db/parser.h"
#include "workloads/families.h"
#include "worlds/finite_set.h"

namespace epi {
namespace workloads {

AuditLog GeneratedWorkload::to_log() const {
  AuditLog log;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    log.record_with_answer(stream[i].user, stream[i].query_text,
                           stream[i].answer, "t" + std::to_string(i));
  }
  return log;
}

const std::vector<const WorkloadFamily*>& all_families() {
  static const std::vector<const WorkloadFamily*> families = {
      &hospital_family(), &aggregate_family(), &policy_family(),
      &collusion_family(), &rectangles_family()};
  return families;
}

const WorkloadFamily* find_family(std::string_view name) {
  for (const WorkloadFamily* family : all_families()) {
    if (family->name() == name) return family;
  }
  return nullptr;
}

std::vector<std::string> family_names() {
  std::vector<std::string> names;
  for (const WorkloadFamily* family : all_families()) {
    names.emplace_back(family->name());
  }
  return names;
}

Status validate_workload(const WorkloadFamily& family,
                         const GeneratedWorkload& workload) {
  const WorkloadShape shape = family.shape();
  const std::string tag = "workload '" + std::string(family.name()) + "': ";
  if (workload.universe.empty()) {
    return Status::InvalidArgument(tag + "empty universe");
  }
  if (workload.universe.size() > shape.max_coordinates) {
    return Status::InvalidArgument(
        tag + "universe has " + std::to_string(workload.universe.size()) +
        " records, above the family ceiling of " +
        std::to_string(shape.max_coordinates));
  }
  if (workload.stream.size() < shape.min_requests) {
    return Status::InvalidArgument(
        tag + "stream has " + std::to_string(workload.stream.size()) +
        " requests, below the declared floor of " +
        std::to_string(shape.min_requests));
  }
  std::set<std::string> users;
  bool counting = false;
  for (std::size_t i = 0; i < workload.stream.size(); ++i) {
    const StreamRequest& request = workload.stream[i];
    users.insert(request.user);
    QueryPtr query;
    if (Status parsed = try_parse_query(request.query_text, &query);
        !parsed.ok()) {
      return Status::InvalidArgument(tag + "stream query #" +
                                     std::to_string(i) + " does not parse: " +
                                     parsed.message());
    }
    counting = counting ||
               request.query_text.find("atleast(") != std::string::npos ||
               request.query_text.find("atmost(") != std::string::npos;
    if (shape.consistent_answers &&
        query->evaluate(workload.universe, workload.initial_state) !=
            request.answer) {
      return Status::InvalidArgument(
          tag + "stream answer #" + std::to_string(i) +
          " contradicts initial_state for \"" + request.query_text + "\"");
    }
  }
  if (users.size() < shape.min_users) {
    return Status::InvalidArgument(
        tag + "stream covers " + std::to_string(users.size()) +
        " users, below the declared floor of " +
        std::to_string(shape.min_users));
  }
  if (shape.counting_queries && !counting) {
    return Status::InvalidArgument(
        tag + "declared counting queries but the stream has none");
  }
  if (workload.audit_queries.empty()) {
    return Status::InvalidArgument(tag + "no audit queries");
  }
  for (const std::string& text : workload.audit_queries) {
    QueryPtr query;
    if (Status parsed = try_parse_query(text, &query); !parsed.ok()) {
      return Status::InvalidArgument(tag + "audit query \"" + text +
                                     "\" does not parse: " + parsed.message());
    }
  }
  return Status::Ok();
}

std::string to_scenario_script(const WorkloadFamily& family,
                               const GeneratedWorkload& workload) {
  std::ostringstream os;
  os << "# workload family: " << family.name() << "\n";
  const std::vector<std::string> names = workload.universe.names();
  for (const std::string& name : names) os << "record " << name << "\n";
  for (unsigned c = 0; c < workload.universe.size(); ++c) {
    if ((workload.initial_state >> c) & 1u) os << "insert " << names[c] << "\n";
  }
  os << "prior " << to_string(workload.prior) << "\n";
  for (std::size_t i = 0; i < workload.stream.size(); ++i) {
    const StreamRequest& request = workload.stream[i];
    os << "query " << request.user << " @t" << i << " " << request.query_text
       << "\n";
  }
  for (const std::string& text : workload.audit_queries) {
    os << "audit " << text << "\n";
  }
  return os.str();
}

Status push_request(const RecordUniverse& universe, World state,
                    std::string user, std::string text,
                    std::vector<StreamRequest>* stream) {
  QueryPtr query;
  if (Status parsed = try_parse_query(text, &query); !parsed.ok()) {
    return Status::InvalidArgument("generated query \"" + text +
                                   "\" does not parse: " + parsed.message());
  }
  const bool answer = query->evaluate(universe, state);
  stream->push_back(StreamRequest{std::move(user), std::move(text), answer});
  return Status::Ok();
}

Status collusion_users(const GeneratedWorkload& workload,
                       std::vector<CollusionUser>* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("collusion_users: null output");
  }
  const unsigned n = workload.universe.size();
  if (n == 0 || n > kMaxCoordinates) {
    return Status::InvalidArgument(
        "collusion_users: needs a dense universe (1.." +
        std::to_string(kMaxCoordinates) + " records), got " +
        std::to_string(n));
  }
  const std::size_t omega = std::size_t{1} << n;
  std::vector<CollusionUser> users;
  auto user_of = [&](const std::string& name) -> CollusionUser& {
    for (CollusionUser& user : users) {
      if (user.name == name) return user;
    }
    users.push_back(CollusionUser{name, {FiniteSet::universe(omega)}, {}});
    return users.back();
  };
  for (const StreamRequest& request : workload.stream) {
    QueryPtr query;
    if (Status parsed = try_parse_query(request.query_text, &query);
        !parsed.ok()) {
      return parsed;
    }
    WorldSet satisfying = query->compile(workload.universe);
    user_of(request.user)
        .disclosures.push_back(
            to_finite(request.answer ? satisfying : ~satisfying));
  }
  *out = std::move(users);
  return Status::Ok();
}

}  // namespace workloads
}  // namespace epi
