// The `collusion` family: a fleet of agents, each probing an overlapping
// slice of the record space, followed by a `coalition` pseudo-user that
// replays the first two agents' requests into one session — pooling
// disclosures by intersection exactly as Section 4.1's collusion semantics
// prescribe (and as collusion_users()/audit_coalitions analyze directly).
// The log-supermodular prior routes verdicts through the supermodular
// cascade; the shared slices make agents' knowledge genuinely overlap.
#include "workloads/families.h"

#include "util/rng.h"

namespace epi {
namespace workloads {
namespace {

constexpr unsigned kDefaultRecords = 8;
constexpr unsigned kDefaultRequests = 36;
constexpr unsigned kDefaultAgents = 3;

class CollusionFamily final : public WorkloadFamily {
 public:
  std::string_view name() const override { return "collusion"; }
  std::string_view description() const override {
    return "agent fleet over overlapping record slices plus a coalition "
           "user pooling the first two agents' disclosures (Section 4.1 "
           "collusion), under the log-supermodular prior";
  }
  WorkloadShape shape() const override {
    WorkloadShape shape;
    shape.min_users = 3;  // >= 2 agents plus the coalition replay
    shape.min_requests = 2;
    shape.counting_queries = true;
    shape.consistent_answers = true;
    return shape;
  }
  Status generate(const FamilyOptions& options,
                  GeneratedWorkload* out) const override {
    if (out == nullptr) {
      return Status::InvalidArgument("collusion: null output");
    }
    const unsigned records =
        options.records != 0 ? options.records : kDefaultRecords;
    const unsigned requests =
        options.requests != 0 ? options.requests : kDefaultRequests;
    const unsigned agents = options.users != 0 ? options.users : kDefaultAgents;
    if (records < 2 || records > kMaxCoordinates) {
      return Status::InvalidArgument(
          "collusion: records must be in [2, " +
          std::to_string(kMaxCoordinates) + "]");
    }
    if (agents < 2) {
      return Status::InvalidArgument("collusion: users (agents) must be >= 2");
    }
    if (requests < 2) {
      // One agent request cannot cover agents 0 and 1, so the coalition
      // would pool a single agent — below the declared user floor.
      return Status::InvalidArgument("collusion: requests must be >= 2");
    }

    GeneratedWorkload generated;
    generated.prior = PriorAssumption::kLogSupermodular;
    for (unsigned r = 0; r < records; ++r) {
      generated.universe.add("acct" + std::to_string(r));
    }
    const std::vector<std::string> names = generated.universe.names();

    Rng rng(options.seed);
    generated.initial_state = static_cast<World>(rng.next_bits(records));

    // Agent k sees a contiguous window of the records; windows overlap so
    // pooled knowledge is strictly sharper than any one agent's.
    const unsigned window =
        std::max(2u, records / agents + 1);
    auto slice_name = [&](unsigned agent) {
      const unsigned span = records > window ? records - window : 0;
      const unsigned start =
          agents > 1 ? (agent * span) / (agents - 1) : 0;
      return names[start + rng.next_below(std::min(window, records))];
    };

    auto slice_query = [&](unsigned agent, bool force_counting) {
      const std::uint64_t kind = force_counting ? 6 : rng.next_below(10);
      if (kind < 4) return slice_name(agent);
      if (kind < 6) return "!" + slice_name(agent);
      if (kind < 8) {
        // Counting threshold over a small sample of the slice.
        const std::size_t sample = 2 + rng.next_below(2);
        std::string body;
        for (std::size_t i = 0; i < sample; ++i) body += ", " + slice_name(agent);
        const unsigned k = 1 + static_cast<unsigned>(rng.next_below(sample));
        return (rng.next_bool() ? "atleast(" : "atmost(") + std::to_string(k) +
               body + ")";
      }
      return slice_name(agent) + " & " + slice_name(agent);
    };

    // Agent phase: each request from a random agent inside its slice. The
    // round-robin floor guarantees agents 0 and 1 (the future coalition)
    // both appear whenever requests >= 2.
    for (unsigned q = 0; q < requests; ++q) {
      const unsigned agent = q < agents ? q : static_cast<unsigned>(
                                                  rng.next_below(agents));
      if (Status pushed = push_request(
              generated.universe, generated.initial_state,
              "agent" + std::to_string(agent), slice_query(agent, q == 0),
              &generated.stream);
          !pushed.ok()) {
        return pushed;
      }
    }

    // Coalition phase: one pseudo-user re-issues agents 0 and 1's requests,
    // so its session's accumulated knowledge is exactly the pooled
    // intersection of the two agents' disclosures (Prop. 3.10).
    const std::size_t agent_phase = generated.stream.size();
    for (std::size_t i = 0; i < agent_phase; ++i) {
      const StreamRequest& request = generated.stream[i];
      if (request.user == "agent0" || request.user == "agent1") {
        generated.stream.push_back(
            StreamRequest{"coalition", request.query_text, request.answer});
      }
    }

    // Sensitive properties: one record per coalition slice plus the
    // cross-slice conjunction only pooled knowledge can pin down.
    generated.audit_queries.push_back(names.front());
    generated.audit_queries.push_back(names.back());
    generated.audit_queries.push_back(names.front() + " & " + names.back());

    *out = std::move(generated);
    return Status::Ok();
  }
};

}  // namespace

const WorkloadFamily& collusion_family() {
  static const CollusionFamily family;
  return family;
}

}  // namespace workloads
}  // namespace epi
