// The `hospital` family: the original core/workload.h generator promoted
// into the registry unchanged — same record names, same query mix, same
// seed-for-seed output — so existing callers (bench_service_throughput,
// E13, workload_test.cpp) and the family consumers draw identical traffic.
#include "workloads/families.h"

#include "core/workload.h"

namespace epi {
namespace workloads {
namespace {

class HospitalFamily final : public WorkloadFamily {
 public:
  std::string_view name() const override { return "hospital"; }
  std::string_view description() const override {
    return "hospital-style mix of point lookups, implications, negations "
           "and counting thresholds (core/workload.h, the original bench "
           "scenario)";
  }
  WorkloadShape shape() const override {
    WorkloadShape shape;
    shape.min_users = 1;
    shape.min_requests = 1;
    // The mix draws counting queries with probability ~0.2 per request, so
    // short streams may legitimately contain none — not a guarantee here.
    shape.counting_queries = false;
    shape.consistent_answers = true;
    return shape;
  }
  Status generate(const FamilyOptions& options,
                  GeneratedWorkload* out) const override {
    if (out == nullptr) {
      return Status::InvalidArgument("hospital: null output");
    }
    WorkloadOptions workload_options;
    workload_options.seed = options.seed;
    if (options.records != 0) workload_options.patients = options.records;
    if (options.requests != 0) {
      workload_options.queries = static_cast<int>(options.requests);
    }
    if (options.users != 0) {
      workload_options.users = static_cast<int>(options.users);
    }
    Workload workload{RecordUniverse{}};
    if (Status made = try_make_hospital_workload(workload_options, &workload);
        !made.ok()) {
      return made;
    }
    GeneratedWorkload generated;
    generated.universe = workload.universe;
    generated.initial_state = workload.database.state();
    generated.prior = PriorAssumption::kProduct;
    for (const Disclosure& entry : workload.log.entries()) {
      generated.stream.push_back(
          StreamRequest{entry.user, entry.query_text, entry.answer});
    }
    generated.audit_queries = workload.audit_candidates;
    *out = std::move(generated);
    return Status::Ok();
  }
};

}  // namespace

const WorkloadFamily& hospital_family() {
  static const HospitalFamily family;
  return family;
}

}  // namespace workloads
}  // namespace epi
