// The `rectangles` family: scaled-up Example 4.9 — worlds are occupancy
// patterns of a width x height cell grid and observers probe axis-aligned
// sub-rectangles (all-occupied conjunctions, occupancy thresholds, single
// cells). Under the unrestricted prior the whole stream runs on Thm. 3.11,
// which the symbolic subcube-cover backend evaluates without a dense 2^n
// bitset — so `records` sweeps past the 26-coordinate dense wall up to the
// backend's 32-coordinate ceiling (the MatchVector packing limit).
#include "workloads/families.h"

#include "util/rng.h"

namespace epi {
namespace workloads {
namespace {

constexpr unsigned kDefaultCells = 24;
constexpr unsigned kDefaultRequests = 40;
constexpr unsigned kDefaultUsers = 2;

/// Widest grid no taller than wide: h = largest divisor of `cells` with
/// h * h <= cells, w = cells / h (primes degrade to a 1 x p strip).
void factor_grid(unsigned cells, unsigned* width, unsigned* height) {
  unsigned h = 1;
  for (unsigned d = 1; d * d <= cells; ++d) {
    if (cells % d == 0) h = d;
  }
  *height = h;
  *width = cells / h;
}

class RectanglesFamily final : public WorkloadFamily {
 public:
  std::string_view name() const override { return "rectangles"; }
  std::string_view description() const override {
    return "Example 4.9 cell grids probed by sub-rectangle conjunctions and "
           "occupancy thresholds under the unrestricted prior; `records` "
           "(grid cells) sweeps to the symbolic backend's 32-coordinate "
           "ceiling";
  }
  WorkloadShape shape() const override {
    WorkloadShape shape;
    shape.min_users = 1;
    shape.min_requests = 1;
    shape.counting_queries = true;
    shape.consistent_answers = true;
    shape.max_coordinates = kMaxSymbolicCoordinates;
    return shape;
  }
  Status generate(const FamilyOptions& options,
                  GeneratedWorkload* out) const override {
    if (out == nullptr) {
      return Status::InvalidArgument("rectangles: null output");
    }
    const unsigned cells =
        options.records != 0 ? options.records : kDefaultCells;
    const unsigned requests =
        options.requests != 0 ? options.requests : kDefaultRequests;
    const unsigned users = options.users != 0 ? options.users : kDefaultUsers;
    if (cells < 2 || cells > kMaxSymbolicCoordinates) {
      return Status::InvalidArgument(
          "rectangles: records (grid cells) must be in [2, " +
          std::to_string(kMaxSymbolicCoordinates) + "]");
    }
    unsigned width = 0;
    unsigned height = 0;
    factor_grid(cells, &width, &height);

    GeneratedWorkload generated;
    generated.prior = PriorAssumption::kUnrestricted;
    // Coordinate (y - 1) * width + (x - 1) is cell c<x>_<y>, matching
    // GridDomain's row-major 1-based layout.
    for (unsigned y = 1; y <= height; ++y) {
      for (unsigned x = 1; x <= width; ++x) {
        generated.universe.add(
            Record{"c" + std::to_string(x) + "_" + std::to_string(y),
                   {{"x", std::to_string(x)}, {"y", std::to_string(y)}}});
      }
    }
    const std::vector<std::string> names = generated.universe.names();

    Rng rng(options.seed);
    generated.initial_state = static_cast<World>(rng.next_bits(cells));

    // A random sub-rectangle with at most `max_area` cells, returned as the
    // member names in row-major order.
    auto block = [&](unsigned max_area) {
      const unsigned block_w = 1 + static_cast<unsigned>(rng.next_below(
                                       std::min(width, max_area)));
      const unsigned max_h = std::max(1u, max_area / block_w);
      const unsigned block_h = 1 + static_cast<unsigned>(rng.next_below(
                                       std::min(height, max_h)));
      const unsigned x1 = 1 + static_cast<unsigned>(
                                  rng.next_below(width - block_w + 1));
      const unsigned y1 = 1 + static_cast<unsigned>(
                                  rng.next_below(height - block_h + 1));
      std::vector<std::string> members;
      for (unsigned y = y1; y < y1 + block_h; ++y) {
        for (unsigned x = x1; x < x1 + block_w; ++x) {
          members.push_back(names[(y - 1) * width + (x - 1)]);
        }
      }
      return members;
    };

    for (unsigned q = 0; q < requests; ++q) {
      const std::string user =
          "observer" + std::to_string(rng.next_below(users));
      std::string text;
      const std::uint64_t kind = q == 0 ? 4 : rng.next_below(10);
      if (kind < 4) {
        // All cells of a small rectangle occupied (a pure conjunction — the
        // symbolic backend's single-cylinder case).
        std::string conjunction;
        for (const std::string& member : block(4)) {
          conjunction += conjunction.empty() ? member : " & " + member;
        }
        text = conjunction;
      } else if (kind < 7) {
        // Occupancy threshold over a rectangle (C(m, k) cube covers).
        const std::vector<std::string> members = block(6);
        std::string body;
        for (const std::string& member : members) body += ", " + member;
        const unsigned k =
            1 + static_cast<unsigned>(rng.next_below(members.size()));
        text = (rng.next_bool() ? "atleast(" : "atmost(") + std::to_string(k) +
               body + ")";
      } else if (kind < 9) {
        text = names[rng.next_below(names.size())];
      } else {
        text = "!" + names[rng.next_below(names.size())];
      }
      if (Status pushed =
              push_request(generated.universe, generated.initial_state, user,
                           std::move(text), &generated.stream);
          !pushed.ok()) {
        return pushed;
      }
    }

    // Sensitive properties: one corner cell and a 2-cell block conjunction.
    generated.audit_queries.push_back(names.front());
    if (names.size() >= 2) {
      generated.audit_queries.push_back(names[0] + " & " + names[1]);
    }

    *out = std::move(generated);
    return Status::Ok();
  }
};

}  // namespace

const WorkloadFamily& rectangles_family() {
  static const RectanglesFamily family;
  return family;
}

}  // namespace workloads
}  // namespace epi
