// The workload-family registry: named scenario generators behind one
// interface, so every consumer — the `workload-parity` model check, the
// bench family axes, the `epi_workload` CLI and the replay scripts — draws
// its traffic from the same five families instead of the single synthetic
// hospital mix the perf work was tuned on.
//
// Families (see docs/workloads.md for the catalog):
//   hospital    the original core/workload.h mix, promoted unchanged
//   aggregate   count-threshold disclosures over attribute groups
//               (Breutigam–Reischuk-style statistical audits)
//   policy      long monotone sessions whose audited properties come from a
//               declarative denial rule set (Cima et al.-style CQE)
//   collusion   agent fleets pooling disclosures (Section 4.1 collusion)
//   rectangles  scaled-up Ex. 4.9 grids, sweepable to the symbolic
//               backend's 32-coordinate ceiling
//
// Every family is deterministic: the same FamilyOptions produce a
// byte-identical GeneratedWorkload (tests/golden/workloads/ pins the
// streams), and every family's answers are consistent with one fixed
// database state, so replaying the stream through the AuditService must
// reproduce the offline Auditor verdict for verdict — the workload-parity
// check's contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/audit_log.h"
#include "engine/decision_engine.h"
#include "possibilistic/collusion.h"
#include "util/status.h"

namespace epi {
namespace workloads {

/// One replayed request: who asked what, and the answer they saw.
struct StreamRequest {
  std::string user;
  std::string query_text;
  bool answer = false;
};

/// Declared invariants of a family's output. validate_workload() checks a
/// generated instance against its family's shape; tests and the
/// workload-parity check assert on it, so these are guarantees, not hints.
struct WorkloadShape {
  /// The stream covers at least this many distinct users.
  std::size_t min_users = 1;
  /// The stream holds at least this many requests.
  std::size_t min_requests = 1;
  /// The stream contains at least one atleast/atmost counting query.
  bool counting_queries = false;
  /// Every answer equals the query evaluated at `initial_state` — which
  /// makes every session monotone and never inconsistent: the actual world
  /// stays inside each user's shrinking knowledge set.
  bool consistent_answers = false;
  /// Universe ceiling the family may generate up to (kMaxCoordinates for
  /// dense-only families, kMaxSymbolicCoordinates for rectangles).
  unsigned max_coordinates = kMaxCoordinates;
};

/// Size and seed knobs shared by every family. Zero means "family default";
/// each family documents how `records` is interpreted (hospital: patients,
/// aggregate/policy/collusion: records, rectangles: grid cells).
struct FamilyOptions {
  std::uint64_t seed = 2008;
  unsigned records = 0;   ///< universe size knob (0 = family default)
  unsigned requests = 0;  ///< stream length target (0 = family default)
  unsigned users = 0;     ///< distinct users/agents (0 = family default)
};

/// A generated instance: the scenario (universe + actual state + prior the
/// family is designed for), the request stream, and the sensitive
/// properties to audit against it.
struct GeneratedWorkload {
  RecordUniverse universe;
  World initial_state = 0;
  PriorAssumption prior = PriorAssumption::kUnrestricted;
  std::vector<StreamRequest> stream;
  std::vector<std::string> audit_queries;

  /// The stream as an offline AuditLog (record_with_answer per request,
  /// timestamps "t<k>") — the input Auditor::audit_many expects.
  AuditLog to_log() const;
};

/// One named scenario generator.
class WorkloadFamily {
 public:
  virtual ~WorkloadFamily() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  /// The invariants every generate() output satisfies.
  virtual WorkloadShape shape() const = 0;
  /// Builds an instance. Deterministic in `options`; rejects out-of-range
  /// knobs with InvalidArgument and leaves `*out` untouched on failure.
  virtual Status generate(const FamilyOptions& options,
                          GeneratedWorkload* out) const = 0;
};

/// Every registered family, in catalog order (hospital first).
const std::vector<const WorkloadFamily*>& all_families();
/// Lookup by name; nullptr when unknown.
const WorkloadFamily* find_family(std::string_view name);
/// Registered names, in catalog order.
std::vector<std::string> family_names();

/// Checks a generated instance against its family's declared shape:
/// universe bounds, stream/user floors, query parseability, the
/// counting-query guarantee, and (consistent_answers) that every answer
/// matches evaluation at initial_state.
Status validate_workload(const WorkloadFamily& family,
                         const GeneratedWorkload& workload);

/// The instance as a scenario script (core/scenario.h): record/insert
/// directives rebuilding initial_state, the prior, the query stream, then
/// one audit directive per sensitive property. Running it through
/// run_scenario (or audit_cli / audit_server --scenario) reproduces the
/// stream's answers exactly — valid for consistent_answers families, which
/// all five built-ins are.
std::string to_scenario_script(const WorkloadFamily& family,
                               const GeneratedWorkload& workload);

/// The per-user collusion view (possibilistic/collusion.h): each user
/// becomes a CollusionUser with an unrestricted prior family and their
/// disclosed sets as FiniteSets over the 2^n world space, ready for
/// audit_coalitions. Dense universes only (n <= kMaxCoordinates; the 2^n
/// FiniteSets are explicit).
Status collusion_users(const GeneratedWorkload& workload,
                       std::vector<CollusionUser>* out);

}  // namespace workloads
}  // namespace epi
