// The `aggregate` family: statistical audits in the style of Breutigam–
// Reischuk's *Statistical Privacy* — analysts ask count thresholds over
// attribute groups (sums/counts as disclosed properties) while the audited
// properties are individual records and a group-majority threshold. The
// counting shapes stress the C(m, k) threshold compilation and, under the
// product prior, the counting branches of the cascade.
#include "workloads/families.h"

#include "util/rng.h"

namespace epi {
namespace workloads {
namespace {

constexpr unsigned kDefaultRecords = 8;
constexpr unsigned kDefaultRequests = 40;
constexpr unsigned kDefaultUsers = 3;
constexpr unsigned kGroupSize = 4;

class AggregateFamily final : public WorkloadFamily {
 public:
  std::string_view name() const override { return "aggregate"; }
  std::string_view description() const override {
    return "count-threshold disclosures over attribute groups with "
           "individual records as the sensitive properties "
           "(Breutigam-Reischuk-style statistical audits)";
  }
  WorkloadShape shape() const override {
    WorkloadShape shape;
    shape.min_users = 1;
    shape.min_requests = 1;
    shape.counting_queries = true;
    shape.consistent_answers = true;
    return shape;
  }
  Status generate(const FamilyOptions& options,
                  GeneratedWorkload* out) const override {
    if (out == nullptr) {
      return Status::InvalidArgument("aggregate: null output");
    }
    const unsigned records =
        options.records != 0 ? options.records : kDefaultRecords;
    const unsigned requests =
        options.requests != 0 ? options.requests : kDefaultRequests;
    const unsigned users = options.users != 0 ? options.users : kDefaultUsers;
    if (records < 2 || records > kMaxCoordinates) {
      return Status::InvalidArgument(
          "aggregate: records must be in [2, " +
          std::to_string(kMaxCoordinates) + "]");
    }

    GeneratedWorkload generated;
    generated.prior = PriorAssumption::kProduct;
    // Group g<j> holds members g<j>_m<0..3>; the last group may be short.
    std::vector<std::vector<std::string>> groups;
    for (unsigned r = 0; r < records; ++r) {
      const unsigned group = r / kGroupSize;
      const std::string group_name = "g" + std::to_string(group);
      const std::string member =
          group_name + "_m" + std::to_string(r % kGroupSize);
      generated.universe.add(
          Record{member, {{"group", group_name}}});
      if (group >= groups.size()) groups.emplace_back();
      groups[group].push_back(member);
    }
    const std::vector<std::string> names = generated.universe.names();

    Rng rng(options.seed);
    generated.initial_state = static_cast<World>(rng.next_bits(records));

    auto group_count_query = [&]() -> std::string {
      const std::vector<std::string>& group =
          groups[rng.next_below(groups.size())];
      std::string body;
      for (const std::string& member : group) body += ", " + member;
      const unsigned k = 1 + static_cast<unsigned>(rng.next_below(group.size()));
      return (rng.next_bool() ? "atleast(" : "atmost(") + std::to_string(k) +
             body + ")";
    };

    for (unsigned q = 0; q < requests; ++q) {
      const std::string user =
          "analyst" + std::to_string(rng.next_below(users));
      std::string text;
      // Request 0 is always a group count, making the counting-query shape
      // guarantee unconditional even for one-request streams.
      const std::uint64_t kind = q == 0 ? 0 : rng.next_below(10);
      if (kind < 6) {
        text = group_count_query();
      } else if (kind < 7) {
        // Cross-group count over a small sample (repeats allowed — the
        // parser and threshold compiler accept them).
        const std::size_t sample = 2 + rng.next_below(2);
        std::string body;
        for (std::size_t i = 0; i < sample; ++i) {
          body += ", " + names[rng.next_below(names.size())];
        }
        const unsigned k = 1 + static_cast<unsigned>(rng.next_below(sample));
        text = "atleast(" + std::to_string(k) + body + ")";
      } else if (kind < 9) {
        // Point drill-down on one individual.
        text = names[rng.next_below(names.size())];
      } else {
        text = "!" + names[rng.next_below(names.size())];
      }
      if (Status pushed =
              push_request(generated.universe, generated.initial_state, user,
                           std::move(text), &generated.stream);
          !pushed.ok()) {
        return pushed;
      }
    }

    // Sensitive properties: two individuals' records plus a group majority.
    generated.audit_queries.push_back(names[0]);
    if (names.size() > 1) generated.audit_queries.push_back(names.back());
    std::string body;
    for (const std::string& member : groups[0]) body += ", " + member;
    generated.audit_queries.push_back(
        "atleast(" + std::to_string((groups[0].size() + 1) / 2) + body + ")");

    *out = std::move(generated);
    return Status::Ok();
  }
};

}  // namespace

const WorkloadFamily& aggregate_family() {
  static const AggregateFamily family;
  return family;
}

}  // namespace workloads
}  // namespace epi
