// The Miklau-Suciu perfect-secrecy criterion (Theorem 5.7): A and B are
// independent under every product distribution iff they share no critical
// coordinates. Independence implies Safe_{Pi_m0}(A,B) (with equality of the
// two sides), so this is a sufficient criterion for epistemic privacy — the
// paper's baseline for comparison.
#pragma once

#include "worlds/world_set.h"

namespace epi {

/// Theorem 5.7: true iff critical(A) ∩ critical(B) = {}; equivalent to
/// P[AB] = P[A]*P[B] for every product distribution P.
bool miklau_suciu_independent(const WorldSet& a, const WorldSet& b);

/// The shared critical coordinates (empty mask means the criterion passes).
World shared_critical_coordinates(const WorldSet& a, const WorldSet& b);

}  // namespace epi
