#include "criteria/unconditional.h"

namespace epi {

bool unconditionally_safe(const WorldSet& a, const WorldSet& b) {
  // Thm. 3.11: A∩B = ∅ or A∪B = Omega. union_is_universe is a fused
  // early-exit word scan — no A∪B is allocated.
  return a.disjoint_with(b) || union_is_universe(a, b);
}

bool unconditionally_safe_known_world(const WorldSet& a, const WorldSet& b,
                                      World actual_world) {
  if (unconditionally_safe(a, b)) return true;
  return b.contains(actual_world) && !a.contains(actual_world);
}

}  // namespace epi
