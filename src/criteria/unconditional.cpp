#include "criteria/unconditional.h"

namespace epi {

bool unconditionally_safe(const WorldSet& a, const WorldSet& b) {
  return a.disjoint_with(b) || (a | b).is_universe();
}

bool unconditionally_safe_known_world(const WorldSet& a, const WorldSet& b,
                                      World actual_world) {
  if (unconditionally_safe(a, b)) return true;
  return b.contains(actual_world) && !a.contains(actual_world);
}

}  // namespace epi
