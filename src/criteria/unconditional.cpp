#include "criteria/unconditional.h"

namespace epi {

bool unconditionally_safe(const WorldSet& a, const WorldSet& b) {
  // Thm. 3.11: A∩B = ∅ or A∪B = Omega. union_is_universe is a fused
  // early-exit word scan — no A∪B is allocated.
  return a.disjoint_with(b) || union_is_universe(a, b);
}

bool unconditionally_safe_known_world(const WorldSet& a, const WorldSet& b,
                                      World actual_world) {
  if (unconditionally_safe(a, b)) return true;
  // Safe iff omega* is not in A ∩ B: "omega* in B - A" covers the truthful
  // disclosures the paper presumes, and omega* outside B makes Definition
  // 3.1 vacuous (no admissible pair has its world in B). Found by the model
  // checker — see the matching fix in possibilistic/safe.cpp.
  return !(a.contains(actual_world) && b.contains(actual_world));
}

}  // namespace epi
