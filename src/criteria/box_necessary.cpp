#include "criteria/box_necessary.h"

#include <stdexcept>

#include "probabilistic/witness.h"

namespace epi {

BoxNecessaryResult box_necessary_criterion(const WorldSet& a, const WorldSet& b) {
  if (a.n() != b.n()) throw std::invalid_argument("box_necessary: mismatched n");
  const TernaryTable ab = TernaryTable::box_counts(a & b);
  const TernaryTable not_a_b = TernaryTable::box_counts(b - a);
  const TernaryTable a_not_b = TernaryTable::box_counts(a - b);
  const TernaryTable neither = TernaryTable::box_counts(~(a | b));

  BoxNecessaryResult result;
  result.holds = true;
  for (std::size_t code = 0; code < ab.size(); ++code) {
    const std::int64_t lhs = not_a_b.at(code) * a_not_b.at(code);
    const std::int64_t rhs = ab.at(code) * neither.at(code);
    if (lhs < rhs) {
      result.holds = false;
      const MatchVector w = ab.vector_of(code);
      result.failing_vector = w;
      result.witness = box_witness(a.n(), w.stars, w.values);
      return result;
    }
  }
  return result;
}

}  // namespace epi
