#include "criteria/cancellation.h"

#include <stdexcept>

namespace epi {

CancellationResult cancellation_criterion(const WorldSet& a, const WorldSet& b) {
  if (a.n() != b.n()) throw std::invalid_argument("cancellation: mismatched n");
  const WorldSet ab = a & b;
  const WorldSet not_a_b = b - a;      // A'B
  const WorldSet a_not_b = a - b;      // AB'
  const WorldSet neither = ~(a | b);   // A'B'

  auto positive = circ_counts(not_a_b, a_not_b);
  auto negative = circ_counts(ab, neither);

  CancellationResult result;
  result.holds = true;
  for (const auto& [key, neg_count] : negative) {
    const auto it = positive.find(key);
    const std::int64_t pos_count = it == positive.end() ? 0 : it->second;
    if (pos_count < neg_count) {
      result.holds = false;
      MatchVector w;
      w.stars = static_cast<World>(key >> 32);
      w.values = static_cast<World>(key & 0xFFFFFFFFull);
      result.failing_vector = w;
      result.positive_pairs = pos_count;
      result.negative_pairs = neg_count;
      return result;
    }
  }
  return result;
}

}  // namespace epi
