#include "criteria/supermodular.h"

#include <stdexcept>

#include "probabilistic/witness.h"

namespace epi {

bool supermodular_necessary(const WorldSet& a, const WorldSet& b) {
  return !supermodular_witness(a, b).has_value();
}

std::optional<Distribution> supermodular_necessary_witness(const WorldSet& a,
                                                           const WorldSet& b) {
  return supermodular_witness(a, b);
}

bool supermodular_sufficient(const WorldSet& a, const WorldSet& b) {
  if (a.n() != b.n()) throw std::invalid_argument("supermodular: mismatched n");
  if (a.disjoint_with(b) || union_is_universe(a, b)) {
    // Unconditionally safe (Theorem 3.11), detected by the fused scans
    // before any intermediate set is allocated; the setwise conditions
    // below hold vacuously as well.
    return true;
  }
  const WorldSet ab = a & b;
  const WorldSet neither = ~(a | b);
  const WorldSet meet = ab.setwise_meet(neither);
  const WorldSet join = ab.setwise_join(neither);
  const WorldSet a_minus_b = a - b;
  const WorldSet b_minus_a = b - a;
  const bool branch1 = meet.subset_of(a_minus_b) && join.subset_of(b_minus_a);
  const bool branch2 = join.subset_of(a_minus_b) && meet.subset_of(b_minus_a);
  return branch1 || branch2;
}

bool four_functions_pointwise(const std::vector<double>& alpha,
                              const std::vector<double>& beta,
                              const std::vector<double>& gamma,
                              const std::vector<double>& delta, unsigned n,
                              double tol) {
  const std::size_t size = std::size_t{1} << n;
  if (alpha.size() != size || beta.size() != size || gamma.size() != size ||
      delta.size() != size) {
    throw std::invalid_argument("four_functions: arrays must have size 2^n");
  }
  for (std::size_t u = 0; u < size; ++u) {
    for (std::size_t v = 0; v < size; ++v) {
      if (alpha[u] * beta[v] > gamma[u | v] * delta[u & v] + tol) return false;
    }
  }
  return true;
}

}  // namespace epi
