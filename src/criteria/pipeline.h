// Staged decision procedures combining the paper's criteria. Cheap
// combinatorial tests run first; every definite verdict carries the name of
// the deciding criterion, and unsafe verdicts carry a witness prior.
//
// The criteria themselves are exposed as ordered tables of NamedCriterion;
// run_criteria() walks a table in order and is the single cascade runner the
// DecisionEngine (src/engine/) builds on — there is exactly one way to run a
// cascade. (The legacy decide_*_safety wrappers are gone; callers go through
// run_criteria or the engine.)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "criteria/verdict.h"
#include "probabilistic/distribution.h"
#include "probabilistic/product.h"
#include "worlds/world_set.h"

namespace epi {

/// A staged decision with provenance.
struct PipelineResult {
  Verdict verdict = Verdict::kUnknown;
  /// Which criterion decided (e.g. "miklau-suciu", "cancellation").
  std::string criterion;
  /// For unsafe verdicts: a general witness prior...
  std::optional<Distribution> witness_distribution;
  /// ...or a product witness when the deciding criterion produces one.
  std::optional<ProductDistribution> witness_product;
};

/// One criterion's answer: kUnknown passes the pair to the next entry.
struct CriterionOutcome {
  Verdict verdict = Verdict::kUnknown;
  std::optional<Distribution> witness_distribution;
  std::optional<ProductDistribution> witness_product;
};

/// A named, ordered entry of a decision cascade.
struct NamedCriterion {
  const char* name;
  /// Skip the criterion when a.n() > max_n (0 = no limit). Used for the
  /// memory-bound 3^n box tables.
  unsigned max_n;
  CriterionOutcome (*test)(const WorldSet& a, const WorldSet& b);
};

/// The unrestricted cascade (all priors): Theorem 3.11 alone, and it always
/// decides — safe or unsafe with a witness prior.
const std::vector<NamedCriterion>& unrestricted_criteria();

/// The product-prior cascade (Pi_m0): Theorem 3.11, Miklau-Suciu (Thm 5.7),
/// monotonicity, cancellation (Prop 5.9) for "safe"; the box-count criterion
/// (Prop 5.10, n <= 14) for "unsafe".
const std::vector<NamedCriterion>& product_criteria();

/// The log-supermodular cascade (Pi_m+): Theorem 3.11 and Proposition 5.4
/// for "safe"; Proposition 5.2 (4-point witness) and — since Pi_m0 ⊆ Pi_m+ —
/// the box-count criterion for "unsafe".
const std::vector<NamedCriterion>& supermodular_criteria();

/// Runs a cascade in order; the first definite verdict wins and carries the
/// deciding criterion's name. When every entry passes (or is skipped by its
/// max_n gate) the result is kUnknown labelled `exhausted_label` — the
/// caller's cue to escalate to the optimizer / algebraic layer.
PipelineResult run_criteria(const std::vector<NamedCriterion>& cascade,
                            const WorldSet& a, const WorldSet& b,
                            const char* exhausted_label);

}  // namespace epi
