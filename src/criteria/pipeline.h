// Staged decision procedures combining the paper's criteria. Cheap
// combinatorial tests run first; every definite verdict carries the name of
// the deciding criterion, and unsafe verdicts carry a witness prior.
#pragma once

#include <optional>
#include <string>

#include "criteria/verdict.h"
#include "probabilistic/distribution.h"
#include "probabilistic/product.h"
#include "worlds/world_set.h"

namespace epi {

/// A staged decision with provenance.
struct PipelineResult {
  Verdict verdict = Verdict::kUnknown;
  /// Which criterion decided (e.g. "miklau-suciu", "cancellation").
  std::string criterion;
  /// For unsafe verdicts: a general witness prior...
  std::optional<Distribution> witness_distribution;
  /// ...or a product witness when the deciding criterion produces one.
  std::optional<ProductDistribution> witness_product;
};

/// Decides Safe over all priors (Theorem 3.11) — always definite.
PipelineResult decide_unrestricted_safety(const WorldSet& a, const WorldSet& b);

/// Decides Safe_{Pi_m0}(A,B) (product priors) via, in order: Theorem 3.11,
/// Miklau-Suciu (Thm 5.7), monotonicity, cancellation (Prop 5.9) for "safe";
/// the box-count criterion (Prop 5.10) for "unsafe"; otherwise unknown
/// (escalate to the optimizer / algebraic layer).
PipelineResult decide_product_safety(const WorldSet& a, const WorldSet& b);

/// Decides Safe_{Pi_m+}(A,B) (log-supermodular priors) via Theorem 3.11 and
/// Proposition 5.4 for "safe", Proposition 5.2 for "unsafe" (with a 4-point
/// witness); otherwise unknown.
PipelineResult decide_supermodular_safety(const WorldSet& a, const WorldSet& b);

}  // namespace epi
