#include "criteria/miklau_suciu.h"

#include "worlds/monotone.h"

namespace epi {

World shared_critical_coordinates(const WorldSet& a, const WorldSet& b) {
  return critical_coordinates(a) & critical_coordinates(b);
}

bool miklau_suciu_independent(const WorldSet& a, const WorldSet& b) {
  return shared_critical_coordinates(a, b) == 0;
}

}  // namespace epi
