#include "criteria/pipeline.h"

#include "criteria/box_necessary.h"
#include "criteria/cancellation.h"
#include "criteria/miklau_suciu.h"
#include "criteria/monotonicity.h"
#include "criteria/supermodular.h"
#include "criteria/unconditional.h"
#include "probabilistic/safe.h"

namespace epi {

PipelineResult decide_unrestricted_safety(const WorldSet& a, const WorldSet& b) {
  PipelineResult r;
  if (unconditionally_safe(a, b)) {
    r.verdict = Verdict::kSafe;
    r.criterion = "theorem-3.11";
  } else {
    r.verdict = Verdict::kUnsafe;
    r.criterion = "theorem-3.11";
    r.witness_distribution = unrestricted_witness(a, b);
  }
  return r;
}

PipelineResult decide_product_safety(const WorldSet& a, const WorldSet& b) {
  PipelineResult r;
  if (unconditionally_safe(a, b)) {
    r.verdict = Verdict::kSafe;
    r.criterion = "theorem-3.11";
    return r;
  }
  if (miklau_suciu_independent(a, b)) {
    r.verdict = Verdict::kSafe;
    r.criterion = "miklau-suciu";
    return r;
  }
  if (monotonicity_criterion(a, b)) {
    r.verdict = Verdict::kSafe;
    r.criterion = "monotonicity";
    return r;
  }
  if (cancellation_criterion(a, b).holds) {
    r.verdict = Verdict::kSafe;
    r.criterion = "cancellation";
    return r;
  }
  // The 3^n box tables are memory-bound; above the TernaryTable limit the
  // stage is skipped rather than failing the whole pipeline.
  if (a.n() <= 14) {
    BoxNecessaryResult box = box_necessary_criterion(a, b);
    if (!box.holds) {
      r.verdict = Verdict::kUnsafe;
      r.criterion = "box-necessary";
      r.witness_product = box.witness;
      return r;
    }
  }
  r.verdict = Verdict::kUnknown;
  r.criterion = "exhausted-combinatorial-criteria";
  return r;
}

PipelineResult decide_supermodular_safety(const WorldSet& a, const WorldSet& b) {
  PipelineResult r;
  if (unconditionally_safe(a, b)) {
    r.verdict = Verdict::kSafe;
    r.criterion = "theorem-3.11";
    return r;
  }
  if (supermodular_sufficient(a, b)) {
    r.verdict = Verdict::kSafe;
    r.criterion = "four-functions-sufficient";
    return r;
  }
  if (auto witness = supermodular_necessary_witness(a, b)) {
    r.verdict = Verdict::kUnsafe;
    r.criterion = "supermodular-necessary";
    r.witness_distribution = std::move(witness);
    return r;
  }
  // Product priors are log-supermodular (Pi_m0 ⊆ Pi_m+), so a product
  // witness from the box criterion also refutes Pi_m+ safety.
  if (a.n() > 14) {
    r.verdict = Verdict::kUnknown;
    r.criterion = "exhausted-supermodular-criteria";
    return r;
  }
  BoxNecessaryResult box = box_necessary_criterion(a, b);
  if (!box.holds) {
    r.verdict = Verdict::kUnsafe;
    r.criterion = "box-necessary";
    r.witness_product = box.witness;
    return r;
  }
  r.verdict = Verdict::kUnknown;
  r.criterion = "exhausted-supermodular-criteria";
  return r;
}

}  // namespace epi
