#include "criteria/pipeline.h"

#include "criteria/box_necessary.h"
#include "criteria/cancellation.h"
#include "criteria/miklau_suciu.h"
#include "criteria/monotonicity.h"
#include "criteria/supermodular.h"
#include "criteria/unconditional.h"
#include "probabilistic/safe.h"

namespace epi {
namespace {

CriterionOutcome safe_when(bool holds) {
  CriterionOutcome o;
  if (holds) o.verdict = Verdict::kSafe;
  return o;
}

CriterionOutcome theorem_311(const WorldSet& a, const WorldSet& b) {
  return safe_when(unconditionally_safe(a, b));
}

CriterionOutcome miklau_suciu(const WorldSet& a, const WorldSet& b) {
  return safe_when(miklau_suciu_independent(a, b));
}

CriterionOutcome monotonicity(const WorldSet& a, const WorldSet& b) {
  return safe_when(monotonicity_criterion(a, b));
}

CriterionOutcome cancellation(const WorldSet& a, const WorldSet& b) {
  return safe_when(cancellation_criterion(a, b).holds);
}

CriterionOutcome box_necessary(const WorldSet& a, const WorldSet& b) {
  CriterionOutcome o;
  BoxNecessaryResult box = box_necessary_criterion(a, b);
  if (!box.holds) {
    o.verdict = Verdict::kUnsafe;
    o.witness_product = std::move(box.witness);
  }
  return o;
}

CriterionOutcome four_functions(const WorldSet& a, const WorldSet& b) {
  return safe_when(supermodular_sufficient(a, b));
}

CriterionOutcome supermodular_refutation(const WorldSet& a, const WorldSet& b) {
  CriterionOutcome o;
  if (auto witness = supermodular_necessary_witness(a, b)) {
    o.verdict = Verdict::kUnsafe;
    o.witness_distribution = std::move(witness);
  }
  return o;
}

// Theorem 3.11 is complete over the unrestricted prior family: every pair is
// decided, unsafe ones with an explicit witness prior.
CriterionOutcome theorem_311_definite(const WorldSet& a, const WorldSet& b) {
  CriterionOutcome o;
  if (unconditionally_safe(a, b)) {
    o.verdict = Verdict::kSafe;
  } else {
    o.verdict = Verdict::kUnsafe;
    o.witness_distribution = unrestricted_witness(a, b);
  }
  return o;
}

// The 3^n box tables are memory-bound; above the TernaryTable limit the
// stage is skipped rather than failing the whole cascade.
constexpr unsigned kBoxTableMaxN = 14;

}  // namespace

const std::vector<NamedCriterion>& unrestricted_criteria() {
  static const std::vector<NamedCriterion> kTable = {
      {"theorem-3.11", 0, theorem_311_definite},
  };
  return kTable;
}

const std::vector<NamedCriterion>& product_criteria() {
  static const std::vector<NamedCriterion> kTable = {
      {"theorem-3.11", 0, theorem_311},
      {"miklau-suciu", 0, miklau_suciu},
      {"monotonicity", 0, monotonicity},
      {"cancellation", 0, cancellation},
      {"box-necessary", kBoxTableMaxN, box_necessary},
  };
  return kTable;
}

const std::vector<NamedCriterion>& supermodular_criteria() {
  static const std::vector<NamedCriterion> kTable = {
      {"theorem-3.11", 0, theorem_311},
      {"four-functions-sufficient", 0, four_functions},
      {"supermodular-necessary", 0, supermodular_refutation},
      {"box-necessary", kBoxTableMaxN, box_necessary},
  };
  return kTable;
}

PipelineResult run_criteria(const std::vector<NamedCriterion>& cascade,
                            const WorldSet& a, const WorldSet& b,
                            const char* exhausted_label) {
  PipelineResult r;
  for (const NamedCriterion& c : cascade) {
    if (c.max_n != 0 && a.n() > c.max_n) continue;
    CriterionOutcome o = c.test(a, b);
    if (o.verdict == Verdict::kUnknown) continue;
    r.verdict = o.verdict;
    r.criterion = c.name;
    r.witness_distribution = std::move(o.witness_distribution);
    r.witness_product = std::move(o.witness_product);
    return r;
  }
  r.verdict = Verdict::kUnknown;
  r.criterion = exhausted_label;
  return r;
}

}  // namespace epi
