// Dimension reduction to the *relevant* coordinates — the operational form
// of Section 6's observation that "N does not need to be the number of
// possible worlds, but rather only the potentially much smaller number of
// possible relevant worlds".
//
// Coordinates critical for neither A nor B cannot influence membership in
// either set, and for every prior family considered in the paper
// (unrestricted, Pi_m+, Pi_m0) safety is invariant under marginalizing them
// out: both sets are cylinders over the critical coordinates, and the
// induced prior on those coordinates stays in the same family. Projecting
// first can shrink 2^n to 2^|critical| before any decision procedure runs.
#pragma once

#include <vector>

#include "worlds/world_set.h"

namespace epi {

/// The projection of a pair (A, B) onto their joint critical coordinates.
struct ProjectedPair {
  WorldSet a;
  WorldSet b;
  /// Original indices of the kept coordinates, in new-coordinate order.
  std::vector<unsigned> kept_coordinates;

  ProjectedPair() : a(1), b(1) {}

  unsigned original_n() const { return original_n_; }
  /// Maps a world of the projected space back to a representative world of
  /// the original space (irrelevant coordinates set to 0).
  World lift(World projected) const;

 private:
  friend ProjectedPair project_to_critical(const WorldSet&, const WorldSet&);
  unsigned original_n_ = 0;
};

/// Projects A and B onto the union of their critical coordinates. When the
/// union is empty (both sets trivial), one dummy coordinate is kept so the
/// result remains a valid world space; membership semantics are preserved:
/// w in A  <=>  compress(w) in projected.a for every original w.
ProjectedPair project_to_critical(const WorldSet& a, const WorldSet& b);

/// Compresses an original-space world onto the kept coordinates.
World compress_world(const ProjectedPair& projection, World original);

}  // namespace epi
