// The monotonicity criterion (Section 5.1): Safe_{Pi_m0}(A,B) holds whenever
// there is a mask z such that z ^ A is an up-set and z ^ B is a down-set.
// The z = 0 case is Corollary 5.5 ("a negative answer to a monotone query
// protects a positive answer to another monotone query"), valid for the whole
// log-supermodular family Pi_m+.
#pragma once

#include <optional>

#include "worlds/world_set.h"

namespace epi {

/// Finds a mask z with z ^ A an up-set and z ^ B a down-set, in O(n * 2^n)
/// via per-coordinate direction analysis; nullopt when no mask exists.
std::optional<World> monotonicity_mask(const WorldSet& a, const WorldSet& b);

/// True when some mask exists (the monotonicity criterion passes, implying
/// Safe_{Pi_m0}(A,B)).
bool monotonicity_criterion(const WorldSet& a, const WorldSet& b);

/// Corollary 5.5 exactly: A is an up-set and B is a down-set, or vice versa
/// — sufficient for Safe over all log-supermodular priors Pi_m+.
bool upset_downset_criterion(const WorldSet& a, const WorldSet& b);

}  // namespace epi
