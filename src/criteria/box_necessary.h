// The box-counting necessary criterion for product-family safety
// (Proposition 5.10): if Safe_{Pi_m0}(A,B), then for every w in {0,1,*}^n
//   |A'B ∩ Box(w)| * |AB' ∩ Box(w)|  >=  |AB ∩ Box(w)| * |A'B' ∩ Box(w)|.
// A violation at w yields an explicit product-prior witness concentrated on
// Box(w) whose safety gap is positive.
#pragma once

#include <optional>

#include "probabilistic/product.h"
#include "worlds/match_vector.h"
#include "worlds/world_set.h"

namespace epi {

/// Outcome of the box-count test.
struct BoxNecessaryResult {
  bool holds = false;
  /// When violated: the offending box and the witness prior on it.
  std::optional<MatchVector> failing_vector;
  std::optional<ProductDistribution> witness;
};

/// Proposition 5.10, checked over all 3^n boxes in O(n * 3^n). Requires
/// n <= 14 (TernaryTable memory limit).
BoxNecessaryResult box_necessary_criterion(const WorldSet& a, const WorldSet& b);

}  // namespace epi
