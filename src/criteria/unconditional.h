// Theorem 3.11: privacy with unrestricted prior knowledge, on the hypercube
// representation used by the probabilistic sections.
#pragma once

#include "worlds/world_set.h"

namespace epi {

/// Theorem 3.11, conditions 1-4: with no constraints on prior knowledge
/// (possibilistic or probabilistic, known or unknown actual world in the
/// probabilistic case), A is private given B iff A ∩ B = {} or A ∪ B = Omega.
/// Remark 3.12: when omega* in A∩B (the practically interesting case), this
/// reduces to testing whether "A or B" is a tautology.
///
/// The two disjuncts behave differently under session composition
/// (Prop. 3.10, B only shrinks): A ∩ B = {} survives every further
/// intersection of B, while A ∪ B = Omega can stop holding. The engine's
/// UnrestrictedStage tests them separately so the first can pin the
/// session-long Safe verdict (DESIGN.md §11); this combined form stays the
/// single-audit surface.
bool unconditionally_safe(const WorldSet& a, const WorldSet& b);

/// Theorem 3.11, second part: possibilistic privacy when the auditor knows
/// the actual world (K = {omega*} (x) P(Omega)): additionally safe when
/// omega* is not in A ∩ B — "omega* in B - A" for the truthful disclosures
/// the paper presumes, and vacuously for omega* outside B.
bool unconditionally_safe_known_world(const WorldSet& a, const WorldSet& b,
                                      World actual_world);

}  // namespace epi
