// Criteria for privacy over the log-supermodular family Pi_m+ (Section 5):
// the necessary criterion of Proposition 5.2 (with a constructive witness on
// violation) and the sufficient criterion of Proposition 5.4, derived from
// the Four Functions Theorem (Theorem 5.3).
#pragma once

#include <optional>

#include "probabilistic/distribution.h"
#include "worlds/world_set.h"

namespace epi {

/// Proposition 5.2 (necessary): if Safe_{Pi_m+}(A,B), then for every
/// w1 in A∩B and w2 outside A∪B, the meet or the join of w1, w2 lies in the
/// symmetric difference (A-B) ∪ (B-A).
bool supermodular_necessary(const WorldSet& a, const WorldSet& b);

/// Constructive contrapositive of Prop. 5.2: a log-supermodular prior with a
/// positive safety gap, when the necessary criterion fails.
std::optional<Distribution> supermodular_necessary_witness(const WorldSet& a,
                                                           const WorldSet& b);

/// Proposition 5.4 (sufficient, via the Four Functions Theorem): either of
///   AB /\ A'B' ⊆ A-B  and  AB \/ A'B' ⊆ B-A, or
///   AB \/ A'B' ⊆ A-B  and  AB /\ A'B' ⊆ B-A
/// (setwise meet/join) establishes Safe_{Pi_m+}(A,B).
bool supermodular_sufficient(const WorldSet& a, const WorldSet& b);

/// The Ahlswede-Daykin Four Functions Theorem (Theorem 5.3), element-wise
/// side: checks alpha(u) beta(v) <= gamma(u \/ v) delta(u /\ v) for all
/// pairs, which by the theorem lifts to all subsets. Exposed for tests and
/// for verifying Prop. 5.4's derivation.
bool four_functions_pointwise(const std::vector<double>& alpha,
                              const std::vector<double>& beta,
                              const std::vector<double>& gamma,
                              const std::vector<double>& delta, unsigned n,
                              double tol = 1e-12);

}  // namespace epi
