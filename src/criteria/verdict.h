// Three-valued verdicts for privacy tests. Sound criteria never return a
// wrong definite answer; Unknown cascades to the next (more expensive) stage.
#pragma once

#include <string>

namespace epi {

enum class Verdict {
  kSafe,     ///< privacy of A is provably preserved under disclosure of B
  kUnsafe,   ///< an admissible prior gaining confidence in A exists
  kUnknown,  ///< this criterion cannot decide; escalate
};

/// "safe" / "unsafe" / "unknown".
std::string to_string(Verdict v);

}  // namespace epi
