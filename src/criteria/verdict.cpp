#include "criteria/verdict.h"

namespace epi {

std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::kSafe:
      return "safe";
    case Verdict::kUnsafe:
      return "unsafe";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

}  // namespace epi
