#include "criteria/monotonicity.h"

#include <stdexcept>

#include "worlds/monotone.h"

namespace epi {

std::optional<World> monotonicity_mask(const WorldSet& a, const WorldSet& b) {
  if (a.n() != b.n()) throw std::invalid_argument("monotonicity: mismatched n");
  // z ^ A is an up-set in coordinate i iff A is increasing in i (z_i = 0) or
  // decreasing in i (z_i = 1); z ^ B down-set is the mirror condition. Each
  // coordinate is decided independently.
  World z = 0;
  for (unsigned i = 0; i < a.n(); ++i) {
    const CoordinateDirection da = coordinate_direction(a, i);
    const CoordinateDirection db = coordinate_direction(b, i);
    const bool zero_ok = da.increasing && db.decreasing;
    const bool one_ok = da.decreasing && db.increasing;
    if (zero_ok) continue;  // prefer z_i = 0
    if (one_ok) {
      z |= World{1} << i;
      continue;
    }
    return std::nullopt;
  }
  return z;
}

bool monotonicity_criterion(const WorldSet& a, const WorldSet& b) {
  return monotonicity_mask(a, b).has_value();
}

bool upset_downset_criterion(const WorldSet& a, const WorldSet& b) {
  return (is_upset(a) && is_downset(b)) || (is_downset(a) && is_upset(b));
}

}  // namespace epi
