#include "criteria/projection.h"

#include <stdexcept>

#include "worlds/monotone.h"

namespace epi {

World ProjectedPair::lift(World projected) const {
  World original = 0;
  for (std::size_t i = 0; i < kept_coordinates.size(); ++i) {
    if (world_bit(projected, static_cast<unsigned>(i))) {
      original |= World{1} << kept_coordinates[i];
    }
  }
  return original;
}

World compress_world(const ProjectedPair& projection, World original) {
  World compressed = 0;
  for (std::size_t i = 0; i < projection.kept_coordinates.size(); ++i) {
    if (world_bit(original, projection.kept_coordinates[i])) {
      compressed |= World{1} << i;
    }
  }
  return compressed;
}

ProjectedPair project_to_critical(const WorldSet& a, const WorldSet& b) {
  if (a.n() != b.n()) {
    throw std::invalid_argument("project_to_critical: mismatched n");
  }
  const World critical = critical_coordinates(a) | critical_coordinates(b);

  ProjectedPair out;
  out.original_n_ = a.n();
  for (unsigned i = 0; i < a.n(); ++i) {
    if (world_bit(critical, i)) out.kept_coordinates.push_back(i);
  }
  if (out.kept_coordinates.empty()) {
    // Both sets are trivial (empty or the universe); keep one coordinate so
    // downstream code still has a valid world space.
    out.kept_coordinates.push_back(0);
  }
  const unsigned new_n = static_cast<unsigned>(out.kept_coordinates.size());
  out.a = WorldSet(new_n);
  out.b = WorldSet(new_n);
  // Membership is decided by the critical coordinates alone, so lifting any
  // representative (irrelevant coordinates zeroed) answers membership.
  const std::size_t new_size = std::size_t{1} << new_n;
  for (World w = 0; w < new_size; ++w) {
    const World representative = out.lift(w);
    if (a.contains(representative)) out.a.insert(w);
    if (b.contains(representative)) out.b.insert(w);
  }
  return out;
}

}  // namespace epi
