// Exporters for the observability layer: machine-readable JSON and
// human-readable text, for both span trees and metric registries, plus a
// JSON importer so traces round-trip (tests and external tooling validate
// emitted files by parsing them back).
//
// Trace JSON schema (stable; docs/observability.md):
//   { "trace": { "span_count": N,
//                "spans": [ { "id": 1, "parent": 0, "name": "...",
//                             "start_ns": 0, "duration_ns": 0,
//                             "attrs": { "key": "value", ... } }, ... ] } }
// Metrics JSON schema:
//   { "metrics": { "counters": { "name": value, ... },
//                  "histograms": { "name": { "count": N, "sum": S,
//                                            "min": m, "max": M,
//                                            "buckets": [[i, n], ...] },
//                                  ... } } }
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace epi {
namespace obs {

/// Serializes the trace's finished spans (sorted by id).
std::string trace_to_json(const Trace& trace);
std::string spans_to_json(const std::vector<SpanRecord>& spans);

/// Parses trace JSON back into span records. Accepts exactly the schema
/// above; returns InvalidArgument naming the first offending construct.
Status spans_from_json(const std::string& json, std::vector<SpanRecord>* out);

/// Indented span tree with durations — the human-readable view. Orphan
/// spans (parent not in the trace, e.g. emitted while their parent was
/// still open) print at the root level.
std::string trace_to_text(const Trace& trace);
std::string spans_to_text(const std::vector<SpanRecord>& spans);

std::string metrics_to_json(const MetricsSnapshot& snapshot);
/// Aligned name/value table; histograms render count/sum/min/max.
std::string metrics_to_text(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace epi
