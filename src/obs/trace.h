// Span-tree tracing for the audit engine. A Trace collects finished spans
// (name, monotonic start/duration, parent id, string attributes); ScopedSpan
// is the RAII entry point that hot paths plant unconditionally.
//
// Cost model: tracing is off by default. A ScopedSpan constructed while
// tracing is off performs exactly one relaxed atomic load and leaves every
// member zero-initialized — no clock reads, no allocation, no locking —
// so instrumentation stays in release builds at negligible cost (the
// bench_audit_throughput no-op gate pins it under 2%). Compiling with
// EPI_OBS_NOOP makes tracing_enabled() constexpr-false and lets the
// optimizer delete the instrumentation outright (used by CI to measure the
// no-op sink against a stripped build).
//
// Parenting is per-thread: each thread carries a current-span id, spans
// nest lexically, and code that moves work across threads (ThreadPool)
// forwards the caller's id via SpanContext so pool tasks appear under the
// span that scheduled them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace epi {
namespace obs {

/// One finished span. Ids are 1-based and unique within a Trace; parent == 0
/// means root. Times are nanoseconds on the steady clock, relative to the
/// Trace's construction.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// A collecting sink: spans append as they finish (thread-safe). Install
/// one with install_trace() to turn tracing on.
class Trace {
 public:
  Trace();

  /// Nanoseconds since this trace began (steady clock).
  std::int64_t now_ns() const;
  std::uint64_t next_id() { return ids_.fetch_add(1, std::memory_order_relaxed) + 1; }

  void append(SpanRecord record);
  /// Copy of the finished spans, sorted by id (construction order). Spans
  /// still open at the time of the call are absent.
  std::vector<SpanRecord> spans() const;
  std::size_t size() const;

 private:
  const std::int64_t epoch_ns_;
  std::atomic<std::uint64_t> ids_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

#ifdef EPI_OBS_NOOP
constexpr bool tracing_enabled() { return false; }
#else
/// True while a Trace is installed. One relaxed atomic load.
bool tracing_enabled();
#endif

/// Installs `trace` as the process-wide sink and turns tracing on
/// (uninstall with a null pointer). Not meant for concurrent flipping while
/// spans are open; the intended pattern is enable -> run -> disable.
void install_trace(std::shared_ptr<Trace> trace);
/// The installed sink (null when tracing is off).
std::shared_ptr<Trace> active_trace();

/// The calling thread's current span id (0 when none) — the parent the next
/// ScopedSpan on this thread will attach to.
std::uint64_t current_span();

/// Adopts `span_id` as the thread's current span for the scope's lifetime.
/// Used to forward span parentage across thread hops (pool tasks).
class SpanContext {
 public:
  explicit SpanContext(std::uint64_t span_id);
  ~SpanContext();
  SpanContext(const SpanContext&) = delete;
  SpanContext& operator=(const SpanContext&) = delete;

 private:
  std::uint64_t saved_;
};

/// RAII span. When tracing is off, construction/destruction are near-free
/// no-ops (see the cost model above).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Whether this span is actually recording (tracing was on at entry).
  bool live() const { return live_; }
  /// This span's id (0 when not live).
  std::uint64_t id() const { return id_; }

  /// Attaches a key/value attribute; no-op when not live. Values are
  /// stringified by the caller so dormant call sites pay nothing — guard
  /// expensive formatting with live().
  void attr(std::string_view key, std::string value);

 private:
  bool live_ = false;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::int64_t start_ns_ = 0;
  std::shared_ptr<Trace> trace_;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attributes_;
};

}  // namespace obs
}  // namespace epi
