// Named counters and histograms for the audit engine's observability layer.
//
// Two registries exist in practice: a process-wide one (process_metrics())
// for subsystems whose state outlives any single audit (parser, interval
// oracle, thread pool), and one per AuditContext for per-audit decision
// statistics. Counter/Histogram handles returned by a registry are stable
// for the registry's lifetime, so hot paths resolve a metric once and then
// pay a single relaxed atomic add per event.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace epi {
namespace obs {

/// A monotonically adjustable integer metric. All operations are thread-safe
/// and wait-free; relaxed ordering is deliberate — metrics are reporting
/// data, never synchronization.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Overwrites the value (used by legacy reset hooks, not by hot paths).
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A log2-bucketed histogram of non-negative samples (typically
/// nanoseconds). Bucket i counts samples whose bit width is i, i.e. sample
/// s lands in bucket floor(log2(s)) + 1 (bucket 0 holds s == 0), which
/// keeps record() branch-free and lock-free.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::int64_t sample);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Minimum / maximum recorded sample; 0 when empty.
  std::int64_t min() const;
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::int64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{0};
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
};

/// Point-in-time value of one counter.
struct CounterSample {
  std::string name;
  std::int64_t value = 0;
};

/// Point-in-time value of one histogram. `buckets` is sparse: (index, count)
/// pairs for the non-empty log2 buckets only.
struct HistogramSample {
  std::string name;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::vector<std::pair<std::size_t, std::int64_t>> buckets;
};

/// A consistent-enough copy of a registry (each metric is read atomically;
/// the set as a whole is not a snapshot isolation barrier — fine for
/// reporting). Samples are sorted by name.
class MetricsSnapshot {
 public:
  std::vector<CounterSample> counters;
  std::vector<HistogramSample> histograms;

  /// The named counter's value, or 0 when absent.
  std::int64_t counter(std::string_view name) const;
  /// The named histogram, or nullptr when absent.
  const HistogramSample* histogram(std::string_view name) const;
  bool empty() const { return counters.empty() && histograms.empty(); }
};

/// Thread-safe name -> metric registry. find-or-create is mutex-guarded and
/// intended for setup paths; hot paths hold onto the returned reference.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry (parser, oracle, pool metrics). Never reset in
/// production code paths; audit_cli --metrics prints it on exit.
MetricsRegistry& process_metrics();

}  // namespace obs
}  // namespace epi
