#include "obs/trace.h"

#include <algorithm>
#include <chrono>

namespace epi {
namespace obs {
namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<bool> g_enabled{false};
std::mutex g_trace_mutex;
std::shared_ptr<Trace> g_trace;

thread_local std::uint64_t t_current_span = 0;

}  // namespace

Trace::Trace() : epoch_ns_(steady_now_ns()) {}

std::int64_t Trace::now_ns() const { return steady_now_ns() - epoch_ns_; }

void Trace::append(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Trace::spans() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.id < b.id; });
  return out;
}

std::size_t Trace::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

#ifndef EPI_OBS_NOOP
bool tracing_enabled() { return g_enabled.load(std::memory_order_relaxed); }
#endif

void install_trace(std::shared_ptr<Trace> trace) {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  g_trace = std::move(trace);
  g_enabled.store(g_trace != nullptr, std::memory_order_relaxed);
}

std::shared_ptr<Trace> active_trace() {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  return g_trace;
}

std::uint64_t current_span() { return t_current_span; }

SpanContext::SpanContext(std::uint64_t span_id) : saved_(t_current_span) {
  t_current_span = span_id;
}

SpanContext::~SpanContext() { t_current_span = saved_; }

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!tracing_enabled()) return;
  trace_ = active_trace();
  if (!trace_) return;  // raced with uninstall; stay dormant
  live_ = true;
  name_ = std::string(name);
  id_ = trace_->next_id();
  parent_ = t_current_span;
  t_current_span = id_;
  start_ns_ = trace_->now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!live_) return;
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = std::move(name_);
  record.start_ns = start_ns_;
  record.duration_ns = trace_->now_ns() - start_ns_;
  record.attributes = std::move(attributes_);
  t_current_span = parent_;
  trace_->append(std::move(record));
}

void ScopedSpan::attr(std::string_view key, std::string value) {
  if (!live_) return;
  attributes_.emplace_back(std::string(key), std::move(value));
}

}  // namespace obs
}  // namespace epi
