#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <unordered_map>

namespace epi {
namespace obs {
namespace {

// --- JSON writing ----------------------------------------------------------

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_span_json(std::ostringstream& os, const SpanRecord& s,
                      const char* indent) {
  os << indent << "{\"id\": " << s.id << ", \"parent\": " << s.parent
     << ", \"name\": ";
  append_json_string(os, s.name);
  os << ", \"start_ns\": " << s.start_ns
     << ", \"duration_ns\": " << s.duration_ns;
  if (!s.attributes.empty()) {
    os << ", \"attrs\": {";
    bool first = true;
    for (const auto& [key, value] : s.attributes) {
      if (!first) os << ", ";
      first = false;
      append_json_string(os, key);
      os << ": ";
      append_json_string(os, value);
    }
    os << "}";
  }
  os << "}";
}

// --- JSON reading ----------------------------------------------------------

/// Minimal recursive-descent reader for the exporter's own schema (objects,
/// arrays, strings, integers). Positions in error messages are byte offsets.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Status error(const std::string& what) {
    return Status::InvalidArgument("trace JSON, offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status expect(char c) {
    if (!consume(c)) return error(std::string("expected '") + c + "'");
    return Status::Ok();
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  Status parse_string(std::string* out) {
    if (Status s = expect('"'); !s.ok()) return s;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return error("bad \\u escape digit");
          }
          // The exporter only emits \u for control bytes; reject the rest
          // rather than implementing UTF-16 surrogates.
          if (code > 0x7F) return error("non-ASCII \\u escape unsupported");
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return error(std::string("unknown escape '\\") + esc + "'");
      }
    }
    return error("unterminated string");
  }

  Status parse_int(std::int64_t* out) {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return error("expected integer");
    }
    *out = std::stoll(text_.substr(start, pos_ - start));
    return Status::Ok();
  }

  /// Skips any value (used for unknown keys, keeping the reader forward
  /// compatible with added fields).
  Status skip_value() {
    skip_ws();
    if (pos_ >= text_.size()) return error("expected value");
    const char c = text_[pos_];
    if (c == '"') {
      std::string ignored;
      return parse_string(&ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      skip_ws();
      if (consume(close)) return Status::Ok();
      for (;;) {
        if (c == '{') {
          std::string key;
          if (Status s = parse_string(&key); !s.ok()) return s;
          if (Status s = expect(':'); !s.ok()) return s;
        }
        if (Status s = skip_value(); !s.ok()) return s;
        if (consume(close)) return Status::Ok();
        if (Status s = expect(','); !s.ok()) return s;
      }
    }
    // Bare literal: integer / true / false / null.
    while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '-' || text_[pos_] == '.')) {
      ++pos_;
    }
    return Status::Ok();
  }

  Status parse_attrs(std::vector<std::pair<std::string, std::string>>* out) {
    if (Status s = expect('{'); !s.ok()) return s;
    if (consume('}')) return Status::Ok();
    for (;;) {
      std::string key, value;
      if (Status s = parse_string(&key); !s.ok()) return s;
      if (Status s = expect(':'); !s.ok()) return s;
      if (Status s = parse_string(&value); !s.ok()) return s;
      out->emplace_back(std::move(key), std::move(value));
      if (consume('}')) return Status::Ok();
      if (Status s = expect(','); !s.ok()) return s;
    }
  }

  Status parse_span(SpanRecord* span) {
    if (Status s = expect('{'); !s.ok()) return s;
    bool have_id = false, have_name = false;
    if (!consume('}')) {
      for (;;) {
        std::string key;
        if (Status s = parse_string(&key); !s.ok()) return s;
        if (Status s = expect(':'); !s.ok()) return s;
        std::int64_t n = 0;
        if (key == "id") {
          if (Status s = parse_int(&n); !s.ok()) return s;
          span->id = static_cast<std::uint64_t>(n);
          have_id = true;
        } else if (key == "parent") {
          if (Status s = parse_int(&n); !s.ok()) return s;
          span->parent = static_cast<std::uint64_t>(n);
        } else if (key == "name") {
          if (Status s = parse_string(&span->name); !s.ok()) return s;
          have_name = true;
        } else if (key == "start_ns") {
          if (Status s = parse_int(&span->start_ns); !s.ok()) return s;
        } else if (key == "duration_ns") {
          if (Status s = parse_int(&span->duration_ns); !s.ok()) return s;
        } else if (key == "attrs") {
          if (Status s = parse_attrs(&span->attributes); !s.ok()) return s;
        } else {
          if (Status s = skip_value(); !s.ok()) return s;
        }
        if (consume('}')) break;
        if (Status s = expect(','); !s.ok()) return s;
      }
    }
    if (!have_id) return error("span without \"id\"");
    if (!have_name) return error("span without \"name\"");
    return Status::Ok();
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string spans_to_json(const std::vector<SpanRecord>& spans) {
  std::ostringstream os;
  os << "{\n  \"trace\": {\n    \"span_count\": " << spans.size()
     << ",\n    \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    os << (i ? ",\n" : "\n");
    append_span_json(os, spans[i], "      ");
  }
  os << (spans.empty() ? "]" : "\n    ]") << "\n  }\n}\n";
  return os.str();
}

std::string trace_to_json(const Trace& trace) {
  return spans_to_json(trace.spans());
}

Status spans_from_json(const std::string& json, std::vector<SpanRecord>* out) {
  out->clear();
  JsonReader r(json);
  if (Status s = r.expect('{'); !s.ok()) return s;
  std::string key;
  if (Status s = r.parse_string(&key); !s.ok()) return s;
  if (key != "trace") return r.error("expected top-level \"trace\" object");
  if (Status s = r.expect(':'); !s.ok()) return s;
  if (Status s = r.expect('{'); !s.ok()) return s;
  std::int64_t declared_count = -1;
  if (!r.consume('}')) {
    for (;;) {
      if (Status s = r.parse_string(&key); !s.ok()) return s;
      if (Status s = r.expect(':'); !s.ok()) return s;
      if (key == "span_count") {
        if (Status s = r.parse_int(&declared_count); !s.ok()) return s;
      } else if (key == "spans") {
        if (Status s = r.expect('['); !s.ok()) return s;
        if (!r.consume(']')) {
          for (;;) {
            SpanRecord span;
            if (Status s = r.parse_span(&span); !s.ok()) return s;
            out->push_back(std::move(span));
            if (r.consume(']')) break;
            if (Status s = r.expect(','); !s.ok()) return s;
          }
        }
      } else {
        if (Status s = r.skip_value(); !s.ok()) return s;
      }
      if (r.consume('}')) break;
      if (Status s = r.expect(','); !s.ok()) return s;
    }
  }
  if (Status s = r.expect('}'); !s.ok()) return s;
  if (!r.at_end()) return r.error("trailing content after trace object");
  if (declared_count >= 0 &&
      declared_count != static_cast<std::int64_t>(out->size())) {
    return Status::InvalidArgument(
        "trace JSON: span_count " + std::to_string(declared_count) +
        " does not match " + std::to_string(out->size()) + " spans");
  }
  return Status::Ok();
}

namespace {

void append_span_text(std::ostringstream& os, const SpanRecord& span,
                      const std::unordered_map<std::uint64_t,
                                               std::vector<const SpanRecord*>>& children,
                      int depth) {
  os << std::string(static_cast<std::size_t>(depth) * 2, ' ') << span.name
     << "  [" << std::fixed << std::setprecision(3)
     << static_cast<double>(span.duration_ns) * 1e-6 << " ms]";
  for (const auto& [key, value] : span.attributes) {
    os << " " << key << "=" << value;
  }
  os << "\n";
  const auto it = children.find(span.id);
  if (it == children.end()) return;
  for (const SpanRecord* child : it->second) {
    append_span_text(os, *child, children, depth + 1);
  }
}

}  // namespace

std::string spans_to_text(const std::vector<SpanRecord>& spans) {
  std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> children;
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : spans) by_id.emplace(s.id, &s);
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent != 0 && by_id.count(s.parent)) {
      children[s.parent].push_back(&s);
    } else {
      roots.push_back(&s);
    }
  }
  std::ostringstream os;
  os << "trace: " << spans.size() << " spans\n";
  for (const SpanRecord* root : roots) {
    append_span_text(os, *root, children, 1);
  }
  return os.str();
}

std::string trace_to_text(const Trace& trace) {
  return spans_to_text(trace.spans());
}

std::string metrics_to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"metrics\": {\n    \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i ? ",\n      " : "\n      ");
    append_json_string(os, snapshot.counters[i].name);
    os << ": " << snapshot.counters[i].value;
  }
  os << (snapshot.counters.empty() ? "}" : "\n    }")
     << ",\n    \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    os << (i ? ",\n      " : "\n      ");
    append_json_string(os, h.name);
    os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"min\": " << h.min << ", \"max\": " << h.max << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b ? ", " : "") << "[" << h.buckets[b].first << ", "
         << h.buckets[b].second << "]";
    }
    os << "]}";
  }
  os << (snapshot.histograms.empty() ? "}" : "\n    }") << "\n  }\n}\n";
  return os.str();
}

std::string metrics_to_text(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  std::size_t width = 8;
  for (const CounterSample& c : snapshot.counters) {
    width = std::max(width, c.name.size());
  }
  for (const HistogramSample& h : snapshot.histograms) {
    width = std::max(width, h.name.size());
  }
  for (const CounterSample& c : snapshot.counters) {
    os << "  " << std::left << std::setw(static_cast<int>(width) + 2) << c.name
       << std::right << std::setw(12) << c.value << "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    os << "  " << std::left << std::setw(static_cast<int>(width) + 2) << h.name
       << std::right << "count=" << h.count << " sum=" << h.sum
       << " min=" << h.min << " max=" << h.max << "\n";
  }
  if (snapshot.empty()) os << "  (no metrics recorded)\n";
  return os.str();
}

}  // namespace obs
}  // namespace epi
