#include "obs/metrics.h"

#include <algorithm>

namespace epi {
namespace obs {

void Histogram::record(std::int64_t sample) {
  if (sample < 0) sample = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  // log2 bucket: 0 for sample == 0, else bit width of the sample.
  const std::size_t b =
      sample == 0 ? 0
                  : static_cast<std::size_t>(
                        64 - __builtin_clzll(static_cast<std::uint64_t>(sample)));
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  // Lossy min/max races are acceptable: a concurrent tighter bound may win
  // either way, never producing a value that was not observed.
  std::int64_t seen = min_.load(std::memory_order_relaxed);
  while (sample < seen &&
         !min_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
}

std::int64_t Histogram::min() const {
  const std::int64_t m = min_.load(std::memory_order_relaxed);
  return m == INT64_MAX ? 0 : m;
}

std::int64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const CounterSample& s, std::string_view n) { return s.name < n; });
  if (it == counters.end() || it->name != name) return 0;
  return it->value;
}

const HistogramSample* MetricsSnapshot::histogram(std::string_view name) const {
  const auto it = std::lower_bound(
      histograms.begin(), histograms.end(), name,
      [](const HistogramSample& s, std::string_view n) { return s.name < n; });
  if (it == histograms.end() || it->name != name) return nullptr;
  return &*it;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back(CounterSample{name, c->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::int64_t n = h->bucket(b);
      if (n != 0) s.buckets.emplace_back(b, n);
    }
    snap.histograms.push_back(std::move(s));
  }
  // std::map iteration is already name-sorted; keep the invariant explicit.
  return snap;
}

MetricsRegistry& process_metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace obs
}  // namespace epi
