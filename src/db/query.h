// Boolean queries over record membership: the query language whose answers
// are the disclosed properties B and audited properties A. A query compiles
// to the WorldSet of databases satisfying it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "db/record.h"
#include "worlds/subcube_cover.h"
#include "worlds/world_set.h"

namespace epi {

/// AST of a Boolean query. Atoms assert the presence of a named record.
class Query {
 public:
  virtual ~Query() = default;

  /// True when the database `w` (under `universe`'s coordinates) satisfies
  /// the query.
  virtual bool evaluate(const RecordUniverse& universe, World w) const = 0;

  /// Readable form, fully parenthesized.
  virtual std::string to_string() const = 0;

  /// The set of satisfying databases. Boolean connectives compile to bitset
  /// algebra on their children (word-parallel); only leaf shapes that truly
  /// depend on counting fall back to a per-world scan.
  virtual WorldSet compile(const RecordUniverse& universe) const;

  /// The same set as a symbolic subcube cover, built without ever touching a
  /// 2^n bitset: atoms are single cylinders, connectives combine child
  /// covers, counting queries expand into their C(m, k) threshold cubes.
  /// The base-class fallback densifies and converts — valid only up to
  /// kMaxCoordinates, so shapes reachable at n > 26 all override.
  virtual SubcubeCover compile_cover(const RecordUniverse& universe) const;

  /// Backend-dispatching compile: dense (exact current behavior) or the
  /// symbolic cover path, with kAuto resolved against the universe size.
  WorldSet compile(const RecordUniverse& universe, SetBackend backend) const;
};

using QueryPtr = std::shared_ptr<const Query>;

/// "record in omega".
QueryPtr atom(std::string record_name);
/// Counting query "at least k of the named records are present" — the
/// aggregate shape of COUNT(*) >= k audits. Monotone in every coordinate.
QueryPtr at_least(unsigned k, std::vector<std::string> record_names);
/// "at most k of the named records are present" (anti-monotone).
QueryPtr at_most(unsigned k, std::vector<std::string> record_names);
/// Constant true/false.
QueryPtr constant(bool value);
QueryPtr operator!(const QueryPtr& q);
QueryPtr operator&(const QueryPtr& lhs, const QueryPtr& rhs);
QueryPtr operator|(const QueryPtr& lhs, const QueryPtr& rhs);
/// Material implication lhs -> rhs.
QueryPtr implies(const QueryPtr& lhs, const QueryPtr& rhs);

}  // namespace epi
