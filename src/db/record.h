// Records and the record universe. In the paper's model (Section 5 onward) a
// database omega is a subset of potential records; the auditor restricts
// attention to the *relevant* records (Section 6's "possible relevant
// worlds"), each of which becomes one coordinate of Omega = {0,1}^n.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "worlds/world.h"

namespace epi {

/// A potential database record: a stable name plus free-form attributes
/// (e.g. "bob_hiv" -> {patient: Bob, fact: HIV-positive}).
struct Record {
  std::string name;
  std::map<std::string, std::string> attributes;
};

/// The ordered set of relevant records; record i is coordinate i of the
/// world space {0,1}^n.
class RecordUniverse {
 public:
  RecordUniverse() = default;

  /// Adds a record and returns its coordinate. Throws std::invalid_argument
  /// on duplicate names or when exceeding kMaxCoordinates.
  unsigned add(Record record);
  /// Shorthand for attribute-less records.
  unsigned add(const std::string& name);

  unsigned size() const { return static_cast<unsigned>(records_.size()); }
  bool empty() const { return records_.empty(); }

  const Record& record(unsigned coordinate) const { return records_.at(coordinate); }
  /// Coordinate of a record name, or nullopt when unknown.
  std::optional<unsigned> coordinate_of(const std::string& name) const;

  /// All record names in coordinate order.
  std::vector<std::string> names() const;

 private:
  std::vector<Record> records_;
  std::map<std::string, unsigned> index_;
};

}  // namespace epi
