// Text syntax for Boolean queries:
//   expr    := implied
//   implied := or ("->" implied)?          (right associative)
//   or      := and ("|" and)*
//   and     := unary ("&" unary)*
//   unary   := "!" unary | "(" expr ")" | "true" | "false" | identifier
// Identifiers are record names: [A-Za-z_][A-Za-z0-9_]*.
#pragma once

#include <string>

#include "db/query.h"

namespace epi {

/// Thrown on malformed query text; what() pinpoints the offending position.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses the query grammar above.
QueryPtr parse_query(const std::string& text);

}  // namespace epi
