// Text syntax for Boolean queries:
//   expr    := implied
//   implied := or ("->" implied)?          (right associative)
//   or      := and ("|" and)*
//   and     := unary ("&" unary)*
//   unary   := "!" unary | "(" expr ")" | "true" | "false" | identifier
// Identifiers are record names: [A-Za-z_][A-Za-z0-9_]*.
#pragma once

#include <string>
#include <string_view>

#include "db/query.h"
#include "util/status.h"

namespace epi {

/// Thrown on malformed query text; what() pinpoints the offending position.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses the query grammar above; throws ParseError on malformed text.
/// Takes a view — callers batch-auditing spans of query texts (or slicing
/// scenario scripts) parse without materializing a std::string per call.
QueryPtr parse_query(std::string_view text);

/// Status-first variant for callers routing errors across module
/// boundaries (the audit CLI, scenario scripts): never throws, returns
/// InvalidArgument naming the query and the offending position. `*out` is
/// null on failure.
Status try_parse_query(std::string_view text, QueryPtr* out);

/// Instrumentation: process-wide number of parse_query calls (a view over
/// the `parser.parse.calls` counter in obs::process_metrics()). Lets tests
/// (and telemetry) assert that batch audits parse each query exactly once
/// instead of re-parsing per disclosure or per user.
std::size_t parse_query_call_count();
void reset_parse_query_call_count();

}  // namespace epi
