// Text syntax for Boolean queries:
//   expr    := implied
//   implied := or ("->" implied)?          (right associative)
//   or      := and ("|" and)*
//   and     := unary ("&" unary)*
//   unary   := "!" unary | "(" expr ")" | "true" | "false" | identifier
// Identifiers are record names: [A-Za-z_][A-Za-z0-9_]*.
#pragma once

#include <string>

#include "db/query.h"

namespace epi {

/// Thrown on malformed query text; what() pinpoints the offending position.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses the query grammar above.
QueryPtr parse_query(const std::string& text);

/// Instrumentation: process-wide number of parse_query calls. Lets tests
/// (and telemetry) assert that batch audits parse each query exactly once
/// instead of re-parsing per disclosure or per user.
std::size_t parse_query_call_count();
void reset_parse_query_call_count();

}  // namespace epi
