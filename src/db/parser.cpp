#include "db/parser.h"

#include <cctype>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace epi {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  QueryPtr parse() {
    QueryPtr q = parse_implied();
    skip_spaces();
    if (pos_ != text_.size()) {
      fail("unexpected trailing input");
    }
    return q;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("parse error at position " + std::to_string(pos_) + ": " +
                     message);
  }

  void skip_spaces() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(std::string_view token) {
    skip_spaces();
    if (text_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  QueryPtr parse_implied() {
    QueryPtr lhs = parse_or();
    if (consume("->")) {
      return implies(lhs, parse_implied());  // right associative
    }
    return lhs;
  }

  QueryPtr parse_or() {
    QueryPtr q = parse_and();
    for (;;) {
      skip_spaces();
      // Don't swallow the '-' of '->' or mistake '||'-style input.
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
        q = q | parse_and();
      } else {
        return q;
      }
    }
  }

  QueryPtr parse_and() {
    QueryPtr q = parse_unary();
    for (;;) {
      skip_spaces();
      if (pos_ < text_.size() && text_[pos_] == '&') {
        ++pos_;
        q = q & parse_unary();
      } else {
        return q;
      }
    }
  }

  // "atleast(k, r1, r2, ...)" / "atmost(k, r1, ...)" — the head keyword has
  // already been consumed.
  QueryPtr parse_count(bool is_at_least) {
    skip_spaces();
    if (pos_ >= text_.size() || text_[pos_] != '(') fail("expected '(' after count keyword");
    ++pos_;
    skip_spaces();
    const std::size_t digits_start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == digits_start) fail("expected a count");
    const unsigned k = static_cast<unsigned>(
        std::stoul(std::string(text_.substr(digits_start, pos_ - digits_start))));
    std::vector<std::string> names;
    while (consume(",")) {
      skip_spaces();
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      if (pos_ == start) fail("expected a record name");
      names.emplace_back(text_.substr(start, pos_ - start));
    }
    skip_spaces();
    if (pos_ >= text_.size() || text_[pos_] != ')') fail("expected ')'");
    ++pos_;
    if (names.empty()) fail("counting query needs at least one record");
    return is_at_least ? at_least(k, std::move(names)) : at_most(k, std::move(names));
  }

  QueryPtr parse_unary() {
    skip_spaces();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '!') {
      ++pos_;
      return !parse_unary();
    }
    if (c == '(') {
      ++pos_;
      QueryPtr q = parse_implied();
      skip_spaces();
      if (pos_ >= text_.size() || text_[pos_] != ')') fail("expected ')'");
      ++pos_;
      return q;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      const std::string name(text_.substr(start, pos_ - start));
      if (name == "true") return constant(true);
      if (name == "false") return constant(false);
      if (name == "atleast" || name == "atmost") return parse_count(name == "atleast");
      return atom(name);
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Process-metrics counter backing parse_query_call_count() — the legacy
/// accessors are views over the `parser.parse.calls` registry entry.
obs::Counter& parse_calls_counter() {
  static obs::Counter& counter =
      obs::process_metrics().counter("parser.parse.calls");
  return counter;
}

}  // namespace

QueryPtr parse_query(std::string_view text) {
  parse_calls_counter().add(1);
  obs::ScopedSpan span("parser.parse");
  if (span.live()) span.attr("text", std::string(text));
  return Parser(text).parse();
}

Status try_parse_query(std::string_view text, QueryPtr* out) {
  try {
    *out = parse_query(text);
    return Status::Ok();
  } catch (const ParseError& e) {
    *out = nullptr;
    return Status::InvalidArgument("query '" + std::string(text) +
                                   "': " + e.what());
  }
}

std::size_t parse_query_call_count() {
  return static_cast<std::size_t>(parse_calls_counter().value());
}

void reset_parse_query_call_count() { parse_calls_counter().set(0); }

}  // namespace epi
