#include "db/query.h"

#include <algorithm>
#include <stdexcept>

namespace epi {
namespace {

/// Appends one cube per j-subset of `coords`, fixing the chosen coordinates
/// to `value` (1 or 0) and starring everything else. Guarded by the caller.
void emit_threshold_cubes(const std::vector<unsigned>& coords, unsigned j,
                          bool value, unsigned n,
                          std::vector<MatchVector>& out) {
  // Iterative combination walk (lexicographic) to keep stack depth flat.
  std::vector<std::size_t> idx(j);
  for (unsigned i = 0; i < j; ++i) idx[i] = i;
  while (true) {
    MatchVector cube;
    cube.stars = coordinate_mask(n);
    for (std::size_t i : idx) {
      const World bit = World{1} << coords[i];
      cube.stars &= ~bit;
      if (value) cube.values |= bit;
    }
    out.push_back(cube);
    // Advance to the next combination.
    std::size_t pos = j;
    while (pos > 0 && idx[pos - 1] == coords.size() - (j - (pos - 1))) --pos;
    if (pos == 0) break;
    ++idx[pos - 1];
    for (std::size_t i = pos; i < j; ++i) idx[i] = idx[i - 1] + 1;
  }
}

/// C(m, j), capped: returns kMaxCubes + 1 as soon as the count exceeds it.
std::size_t capped_binomial(std::size_t m, std::size_t j) {
  if (j > m) return 0;
  j = std::min(j, m - j);
  unsigned long long c = 1;
  for (std::size_t i = 0; i < j; ++i) {
    c = c * (m - i) / (i + 1);
    if (c > SubcubeCover::kMaxCubes) return SubcubeCover::kMaxCubes + 1;
  }
  return static_cast<std::size_t>(c);
}

class AtomQuery : public Query {
 public:
  explicit AtomQuery(std::string name) : name_(std::move(name)) {}

  bool evaluate(const RecordUniverse& universe, World w) const override {
    return world_bit(w, coordinate(universe));
  }

  WorldSet compile(const RecordUniverse& universe) const override {
    // The cylinder "record i present" directly.
    const unsigned i = coordinate(universe);
    WorldSet s(universe.size());
    const std::size_t size = s.omega_size();
    for (World w = 0; w < size; ++w) {
      if (world_bit(w, i)) s.insert(w);
    }
    return s;
  }

  SubcubeCover compile_cover(const RecordUniverse& universe) const override {
    // The same cylinder as a single cube: coordinate i fixed to 1.
    const unsigned n = universe.size();
    const World bit = World{1} << coordinate(universe);
    return SubcubeCover::cube(
        n, MatchVector{coordinate_mask(n) & ~bit, bit});
  }

  std::string to_string() const override { return name_; }

 private:
  unsigned coordinate(const RecordUniverse& universe) const {
    const auto coord = universe.coordinate_of(name_);
    if (!coord) {
      throw std::invalid_argument("query references unknown record '" + name_ + "'");
    }
    return *coord;
  }

  std::string name_;
};

class ConstQuery : public Query {
 public:
  explicit ConstQuery(bool value) : value_(value) {}
  bool evaluate(const RecordUniverse&, World) const override { return value_; }
  WorldSet compile(const RecordUniverse& universe) const override {
    return value_ ? WorldSet::universe(universe.size()) : WorldSet(universe.size());
  }
  SubcubeCover compile_cover(const RecordUniverse& universe) const override {
    return value_ ? SubcubeCover::universe(universe.size())
                  : SubcubeCover::empty(universe.size());
  }
  std::string to_string() const override { return value_ ? "true" : "false"; }

 private:
  bool value_;
};

class NotQuery : public Query {
 public:
  explicit NotQuery(QueryPtr inner) : inner_(std::move(inner)) {}
  bool evaluate(const RecordUniverse& u, World w) const override {
    return !inner_->evaluate(u, w);
  }
  WorldSet compile(const RecordUniverse& u) const override {
    return ~inner_->compile(u);
  }
  SubcubeCover compile_cover(const RecordUniverse& u) const override {
    return inner_->compile_cover(u).complement();
  }
  std::string to_string() const override { return "!" + inner_->to_string(); }

 private:
  QueryPtr inner_;
};

class CountQuery : public Query {
 public:
  CountQuery(bool at_least, unsigned k, std::vector<std::string> names)
      : at_least_(at_least), k_(k), names_(std::move(names)) {
    if (names_.empty()) {
      throw std::invalid_argument("counting query needs at least one record");
    }
  }

  bool evaluate(const RecordUniverse& universe, World w) const override {
    unsigned present = 0;
    for (const std::string& name : names_) {
      const auto coord = universe.coordinate_of(name);
      if (!coord) {
        throw std::invalid_argument("query references unknown record '" + name + "'");
      }
      present += world_bit(w, *coord);
    }
    return at_least_ ? present >= k_ : present <= k_;
  }

  SubcubeCover compile_cover(const RecordUniverse& universe) const override {
    const unsigned n = universe.size();
    std::vector<unsigned> coords;
    coords.reserve(names_.size());
    for (const std::string& name : names_) {
      const auto coord = universe.coordinate_of(name);
      if (!coord) {
        throw std::invalid_argument("query references unknown record '" + name + "'");
      }
      coords.push_back(*coord);
    }
    std::sort(coords.begin(), coords.end());
    if (std::adjacent_find(coords.begin(), coords.end()) != coords.end()) {
      // A repeated record counts twice in evaluate(); the threshold-cube
      // expansion below assumes distinct coordinates, so defer to the
      // densify-and-convert fallback (valid up to the dense cap).
      return Query::compile_cover(universe);
    }
    const unsigned m = static_cast<unsigned>(coords.size());
    // "at least k of m present" = union of cubes fixing some k coordinates
    // to 1; "at most k present" = "at least m - k absent", fixing m - k
    // coordinates to 0. Everything else is starred.
    const bool value = at_least_;
    unsigned j;
    if (at_least_) {
      if (k_ == 0) return SubcubeCover::universe(n);
      if (k_ > m) return SubcubeCover::empty(n);
      j = k_;
    } else {
      if (k_ >= m) return SubcubeCover::universe(n);
      j = m - k_;
    }
    if (capped_binomial(m, j) > SubcubeCover::kMaxCubes) {
      throw std::invalid_argument(
          "counting query over " + std::to_string(m) +
          " records is too wide for the symbolic backend (C(m, k) cubes)");
    }
    std::vector<MatchVector> cubes;
    emit_threshold_cubes(coords, j, value, n, cubes);
    return SubcubeCover::from_cubes(n, std::move(cubes));
  }

  std::string to_string() const override {
    std::string s = at_least_ ? "atleast(" : "atmost(";
    s += std::to_string(k_);
    for (const std::string& name : names_) s += ", " + name;
    return s + ")";
  }

 private:
  bool at_least_;
  unsigned k_;
  std::vector<std::string> names_;
};

enum class BinaryOp { kAnd, kOr, kImplies };

class BinaryQuery : public Query {
 public:
  BinaryQuery(BinaryOp op, QueryPtr lhs, QueryPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  bool evaluate(const RecordUniverse& u, World w) const override {
    switch (op_) {
      case BinaryOp::kAnd:
        return lhs_->evaluate(u, w) && rhs_->evaluate(u, w);
      case BinaryOp::kOr:
        return lhs_->evaluate(u, w) || rhs_->evaluate(u, w);
      case BinaryOp::kImplies:
        return !lhs_->evaluate(u, w) || rhs_->evaluate(u, w);
    }
    return false;
  }

  WorldSet compile(const RecordUniverse& u) const override {
    const WorldSet lhs = lhs_->compile(u);
    const WorldSet rhs = rhs_->compile(u);
    switch (op_) {
      case BinaryOp::kAnd:
        return lhs & rhs;
      case BinaryOp::kOr:
        return lhs | rhs;
      case BinaryOp::kImplies:
        return (~lhs) | rhs;
    }
    return lhs;
  }

  SubcubeCover compile_cover(const RecordUniverse& u) const override {
    const SubcubeCover lhs = lhs_->compile_cover(u);
    const SubcubeCover rhs = rhs_->compile_cover(u);
    switch (op_) {
      case BinaryOp::kAnd:
        return lhs.intersect(rhs);
      case BinaryOp::kOr:
        return lhs.unite(rhs);
      case BinaryOp::kImplies:
        return lhs.complement().unite(rhs);
    }
    return lhs;
  }

  std::string to_string() const override {
    const char* symbol = op_ == BinaryOp::kAnd ? " & "
                         : op_ == BinaryOp::kOr ? " | "
                                                : " -> ";
    return "(" + lhs_->to_string() + symbol + rhs_->to_string() + ")";
  }

 private:
  BinaryOp op_;
  QueryPtr lhs_;
  QueryPtr rhs_;
};

}  // namespace

WorldSet Query::compile(const RecordUniverse& universe) const {
  if (universe.empty()) {
    throw std::invalid_argument("Query::compile: empty record universe");
  }
  WorldSet result(universe.size());
  const std::size_t size = result.omega_size();
  for (World w = 0; w < size; ++w) {
    if (evaluate(universe, w)) result.insert(w);
  }
  return result;
}

SubcubeCover Query::compile_cover(const RecordUniverse& universe) const {
  if (universe.empty()) {
    throw std::invalid_argument("Query::compile_cover: empty record universe");
  }
  if (universe.size() > kMaxCoordinates) {
    throw std::invalid_argument(
        "Query::compile_cover: query shape '" + to_string() +
        "' has no native symbolic compilation and the universe is too large "
        "to densify first");
  }
  const WorldSet dense = compile(universe);
  return SubcubeCover::from_dense(dense.word_data(), dense.word_count(),
                                  universe.size());
}

WorldSet Query::compile(const RecordUniverse& universe,
                        SetBackend backend) const {
  if (universe.empty()) {
    throw std::invalid_argument("Query::compile: empty record universe");
  }
  if (resolve_backend(backend, universe.size()) == SetBackend::kDense) {
    return compile(universe);
  }
  return WorldSet::from_cover(compile_cover(universe));
}

QueryPtr atom(std::string record_name) {
  return std::make_shared<AtomQuery>(std::move(record_name));
}

QueryPtr constant(bool value) { return std::make_shared<ConstQuery>(value); }

QueryPtr at_least(unsigned k, std::vector<std::string> record_names) {
  return std::make_shared<CountQuery>(true, k, std::move(record_names));
}

QueryPtr at_most(unsigned k, std::vector<std::string> record_names) {
  return std::make_shared<CountQuery>(false, k, std::move(record_names));
}

QueryPtr operator!(const QueryPtr& q) { return std::make_shared<NotQuery>(q); }

QueryPtr operator&(const QueryPtr& lhs, const QueryPtr& rhs) {
  return std::make_shared<BinaryQuery>(BinaryOp::kAnd, lhs, rhs);
}

QueryPtr operator|(const QueryPtr& lhs, const QueryPtr& rhs) {
  return std::make_shared<BinaryQuery>(BinaryOp::kOr, lhs, rhs);
}

QueryPtr implies(const QueryPtr& lhs, const QueryPtr& rhs) {
  return std::make_shared<BinaryQuery>(BinaryOp::kImplies, lhs, rhs);
}

}  // namespace epi
