#include "db/query.h"

#include <stdexcept>

namespace epi {
namespace {

class AtomQuery : public Query {
 public:
  explicit AtomQuery(std::string name) : name_(std::move(name)) {}

  bool evaluate(const RecordUniverse& universe, World w) const override {
    return world_bit(w, coordinate(universe));
  }

  WorldSet compile(const RecordUniverse& universe) const override {
    // The cylinder "record i present" directly.
    const unsigned i = coordinate(universe);
    WorldSet s(universe.size());
    const std::size_t size = s.omega_size();
    for (World w = 0; w < size; ++w) {
      if (world_bit(w, i)) s.insert(w);
    }
    return s;
  }

  std::string to_string() const override { return name_; }

 private:
  unsigned coordinate(const RecordUniverse& universe) const {
    const auto coord = universe.coordinate_of(name_);
    if (!coord) {
      throw std::invalid_argument("query references unknown record '" + name_ + "'");
    }
    return *coord;
  }

  std::string name_;
};

class ConstQuery : public Query {
 public:
  explicit ConstQuery(bool value) : value_(value) {}
  bool evaluate(const RecordUniverse&, World) const override { return value_; }
  WorldSet compile(const RecordUniverse& universe) const override {
    return value_ ? WorldSet::universe(universe.size()) : WorldSet(universe.size());
  }
  std::string to_string() const override { return value_ ? "true" : "false"; }

 private:
  bool value_;
};

class NotQuery : public Query {
 public:
  explicit NotQuery(QueryPtr inner) : inner_(std::move(inner)) {}
  bool evaluate(const RecordUniverse& u, World w) const override {
    return !inner_->evaluate(u, w);
  }
  WorldSet compile(const RecordUniverse& u) const override {
    return ~inner_->compile(u);
  }
  std::string to_string() const override { return "!" + inner_->to_string(); }

 private:
  QueryPtr inner_;
};

class CountQuery : public Query {
 public:
  CountQuery(bool at_least, unsigned k, std::vector<std::string> names)
      : at_least_(at_least), k_(k), names_(std::move(names)) {
    if (names_.empty()) {
      throw std::invalid_argument("counting query needs at least one record");
    }
  }

  bool evaluate(const RecordUniverse& universe, World w) const override {
    unsigned present = 0;
    for (const std::string& name : names_) {
      const auto coord = universe.coordinate_of(name);
      if (!coord) {
        throw std::invalid_argument("query references unknown record '" + name + "'");
      }
      present += world_bit(w, *coord);
    }
    return at_least_ ? present >= k_ : present <= k_;
  }

  std::string to_string() const override {
    std::string s = at_least_ ? "atleast(" : "atmost(";
    s += std::to_string(k_);
    for (const std::string& name : names_) s += ", " + name;
    return s + ")";
  }

 private:
  bool at_least_;
  unsigned k_;
  std::vector<std::string> names_;
};

enum class BinaryOp { kAnd, kOr, kImplies };

class BinaryQuery : public Query {
 public:
  BinaryQuery(BinaryOp op, QueryPtr lhs, QueryPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  bool evaluate(const RecordUniverse& u, World w) const override {
    switch (op_) {
      case BinaryOp::kAnd:
        return lhs_->evaluate(u, w) && rhs_->evaluate(u, w);
      case BinaryOp::kOr:
        return lhs_->evaluate(u, w) || rhs_->evaluate(u, w);
      case BinaryOp::kImplies:
        return !lhs_->evaluate(u, w) || rhs_->evaluate(u, w);
    }
    return false;
  }

  WorldSet compile(const RecordUniverse& u) const override {
    const WorldSet lhs = lhs_->compile(u);
    const WorldSet rhs = rhs_->compile(u);
    switch (op_) {
      case BinaryOp::kAnd:
        return lhs & rhs;
      case BinaryOp::kOr:
        return lhs | rhs;
      case BinaryOp::kImplies:
        return (~lhs) | rhs;
    }
    return lhs;
  }

  std::string to_string() const override {
    const char* symbol = op_ == BinaryOp::kAnd ? " & "
                         : op_ == BinaryOp::kOr ? " | "
                                                : " -> ";
    return "(" + lhs_->to_string() + symbol + rhs_->to_string() + ")";
  }

 private:
  BinaryOp op_;
  QueryPtr lhs_;
  QueryPtr rhs_;
};

}  // namespace

WorldSet Query::compile(const RecordUniverse& universe) const {
  if (universe.empty()) {
    throw std::invalid_argument("Query::compile: empty record universe");
  }
  WorldSet result(universe.size());
  const std::size_t size = result.omega_size();
  for (World w = 0; w < size; ++w) {
    if (evaluate(universe, w)) result.insert(w);
  }
  return result;
}

QueryPtr atom(std::string record_name) {
  return std::make_shared<AtomQuery>(std::move(record_name));
}

QueryPtr constant(bool value) { return std::make_shared<ConstQuery>(value); }

QueryPtr at_least(unsigned k, std::vector<std::string> record_names) {
  return std::make_shared<CountQuery>(true, k, std::move(record_names));
}

QueryPtr at_most(unsigned k, std::vector<std::string> record_names) {
  return std::make_shared<CountQuery>(false, k, std::move(record_names));
}

QueryPtr operator!(const QueryPtr& q) { return std::make_shared<NotQuery>(q); }

QueryPtr operator&(const QueryPtr& lhs, const QueryPtr& rhs) {
  return std::make_shared<BinaryQuery>(BinaryOp::kAnd, lhs, rhs);
}

QueryPtr operator|(const QueryPtr& lhs, const QueryPtr& rhs) {
  return std::make_shared<BinaryQuery>(BinaryOp::kOr, lhs, rhs);
}

QueryPtr implies(const QueryPtr& lhs, const QueryPtr& rhs) {
  return std::make_shared<BinaryQuery>(BinaryOp::kImplies, lhs, rhs);
}

}  // namespace epi
