// A tiny in-memory database: the record universe plus the actual database
// state omega* and its history. Enough substrate to stage the paper's
// auditing scenarios end to end.
#pragma once

#include <string>
#include <vector>

#include "db/query.h"
#include "db/record.h"

namespace epi {

/// The actual database: which relevant records are currently present.
class InMemoryDatabase {
 public:
  explicit InMemoryDatabase(RecordUniverse universe)
      : universe_(std::move(universe)) {}

  const RecordUniverse& universe() const { return universe_; }

  /// Inserts/removes a record by name; throws on unknown records.
  void insert(const std::string& record_name);
  void remove(const std::string& record_name);
  bool contains(const std::string& record_name) const;

  /// The current world omega*.
  World state() const { return state_; }
  void set_state(World w) { state_ = w; }

  /// Evaluates a query against the current state (the user-visible answer).
  bool answer(const Query& query) const;
  bool answer(const std::string& query_text) const;

  /// Readable dump "name=0/1, ...".
  std::string to_string() const;

 private:
  unsigned coordinate(const std::string& record_name) const;

  RecordUniverse universe_;
  World state_ = 0;
};

}  // namespace epi
