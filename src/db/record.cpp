#include "db/record.h"

#include <stdexcept>

namespace epi {

unsigned RecordUniverse::add(Record record) {
  if (record.name.empty()) {
    throw std::invalid_argument("RecordUniverse::add: empty record name");
  }
  if (index_.count(record.name)) {
    throw std::invalid_argument("RecordUniverse::add: duplicate record '" +
                                record.name + "'");
  }
  if (records_.size() >= kMaxSymbolicCoordinates) {
    throw std::invalid_argument(
        "RecordUniverse::add: too many relevant records (max " +
        std::to_string(kMaxSymbolicCoordinates) + ")");
  }
  const unsigned coordinate = static_cast<unsigned>(records_.size());
  index_.emplace(record.name, coordinate);
  records_.push_back(std::move(record));
  return coordinate;
}

unsigned RecordUniverse::add(const std::string& name) {
  return add(Record{name, {}});
}

std::optional<unsigned> RecordUniverse::coordinate_of(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> RecordUniverse::names() const {
  std::vector<std::string> out;
  out.reserve(records_.size());
  for (const Record& r : records_) out.push_back(r.name);
  return out;
}

}  // namespace epi
