#include "db/database.h"

#include <stdexcept>

#include "db/parser.h"

namespace epi {

unsigned InMemoryDatabase::coordinate(const std::string& record_name) const {
  const auto coord = universe_.coordinate_of(record_name);
  if (!coord) {
    throw std::invalid_argument("unknown record '" + record_name + "'");
  }
  return *coord;
}

void InMemoryDatabase::insert(const std::string& record_name) {
  state_ = world_with_bit(state_, coordinate(record_name), true);
}

void InMemoryDatabase::remove(const std::string& record_name) {
  state_ = world_with_bit(state_, coordinate(record_name), false);
}

bool InMemoryDatabase::contains(const std::string& record_name) const {
  return world_bit(state_, coordinate(record_name));
}

bool InMemoryDatabase::answer(const Query& query) const {
  return query.evaluate(universe_, state_);
}

bool InMemoryDatabase::answer(const std::string& query_text) const {
  return answer(*parse_query(query_text));
}

std::string InMemoryDatabase::to_string() const {
  std::string out;
  for (unsigned i = 0; i < universe_.size(); ++i) {
    if (!out.empty()) out += ", ";
    out += universe_.record(i).name;
    out += world_bit(state_, i) ? "=1" : "=0";
  }
  return out;
}

}  // namespace epi
