// Product distributions over {0,1}^n (Equation (17) of the paper): every
// coordinate (database record) independent with its own Bernoulli parameter.
// This is the prior-knowledge family Pi_m0 used by Miklau-Suciu and by the
// paper's Section 5.1.
#pragma once

#include <vector>

#include "probabilistic/distribution.h"
#include "util/rng.h"
#include "worlds/world_set.h"

namespace epi {

/// A product distribution with Bernoulli parameters p_1..p_n in [0,1].
class ProductDistribution {
 public:
  /// Parameters must lie in [0,1].
  explicit ProductDistribution(std::vector<double> params);

  /// All parameters equal to p.
  static ProductDistribution constant(unsigned n, double p);
  /// Independent uniform parameters.
  static ProductDistribution random(unsigned n, Rng& rng);

  unsigned n() const { return static_cast<unsigned>(params_.size()); }
  const std::vector<double>& params() const { return params_; }
  double param(unsigned i) const { return params_[i]; }
  void set_param(unsigned i, double p);

  /// P(omega) = prod p_i^{omega[i]} (1-p_i)^{1-omega[i]}.
  double prob(World w) const;

  /// P[A], by summation over members of A. O(|A| * n).
  double prob(const WorldSet& a) const;

  /// P[AB] - P[A]*P[B] (positive = the prior gains confidence in A from B).
  double safety_gap(const WorldSet& a, const WorldSet& b) const;

  /// Dense expansion (2^n weights).
  Distribution to_distribution() const;

 private:
  std::vector<double> params_;
};

}  // namespace epi
