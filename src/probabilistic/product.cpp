#include "probabilistic/product.h"

#include <stdexcept>

namespace epi {

ProductDistribution::ProductDistribution(std::vector<double> params)
    : params_(std::move(params)) {
  if (params_.empty() || params_.size() > kMaxCoordinates) {
    throw std::invalid_argument("ProductDistribution: n out of range");
  }
  for (double p : params_) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument("ProductDistribution: parameter outside [0,1]");
    }
  }
}

ProductDistribution ProductDistribution::constant(unsigned n, double p) {
  return ProductDistribution(std::vector<double>(n, p));
}

ProductDistribution ProductDistribution::random(unsigned n, Rng& rng) {
  std::vector<double> params(n);
  for (double& p : params) p = rng.next_double();
  return ProductDistribution(std::move(params));
}

void ProductDistribution::set_param(unsigned i, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("set_param: parameter outside [0,1]");
  }
  params_.at(i) = p;
}

double ProductDistribution::prob(World w) const {
  double prod = 1.0;
  for (unsigned i = 0; i < params_.size(); ++i) {
    prod *= world_bit(w, i) ? params_[i] : 1.0 - params_[i];
  }
  return prod;
}

double ProductDistribution::prob(const WorldSet& a) const {
  if (a.n() != n()) throw std::invalid_argument("prob: mismatched n");
  double sum = 0.0;
  a.visit([&](World w) { sum += prob(w); });
  return sum;
}

double ProductDistribution::safety_gap(const WorldSet& a, const WorldSet& b) const {
  // Fused P[A∩B]: per-world weights are recomputed either way, but the scan
  // skips the intermediate WorldSet allocation. Ascending order keeps the
  // accumulated double bit-identical to prob(a & b).
  double pab = 0.0;
  visit_intersection(a, b, [&](World w) { pab += prob(w); });
  return pab - prob(a) * prob(b);
}

Distribution ProductDistribution::to_distribution() const {
  const std::size_t size = std::size_t{1} << params_.size();
  std::vector<double> weights(size);
  for (std::size_t w = 0; w < size; ++w) {
    weights[w] = prob(static_cast<World>(w));
  }
  return Distribution(n(), std::move(weights), /*normalize=*/true);
}

}  // namespace epi
