// A practically-motivated algebraic family (Section 6's framework applied):
// "the auditor assumes the user's prior puts the probability of each record
// r_i inside [lo_i, hi_i]" — linear constraints on the world weights. The
// family is convex, so the maximal safety gap is found reliably by the
// projected-gradient emptiness search, and membership testing is exact.
#pragma once

#include <vector>

#include "optimize/emptiness.h"
#include "probabilistic/distribution.h"

namespace epi {

/// Builds the algebraic family { P : lo_i <= P[record i present] <= hi_i }.
/// Bounds vectors must have size n with 0 <= lo_i <= hi_i <= 1.
AlgebraicFamily marginal_bounds_family(unsigned n, const std::vector<double>& lo,
                                       const std::vector<double>& hi);

/// Exact membership test (evaluates the marginals directly).
bool satisfies_marginal_bounds(const Distribution& p, const std::vector<double>& lo,
                               const std::vector<double>& hi, double tol = 1e-9);

/// Per-coordinate marginals P[omega[i] = 1].
std::vector<double> marginals(const Distribution& p);

}  // namespace epi
