#include "probabilistic/distribution.h"

#include <cmath>
#include <stdexcept>

namespace epi {

Distribution::Distribution(unsigned n, std::vector<double> weights, bool normalize)
    : n_(n), weights_(std::move(weights)) {
  if (n == 0 || n > kMaxCoordinates) {
    throw std::invalid_argument("Distribution: n out of range");
  }
  if (weights_.size() != (std::size_t{1} << n)) {
    throw std::invalid_argument("Distribution: weights size must be 2^n");
  }
  double sum = 0.0;
  for (double w : weights_) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("Distribution: weights must be finite and >= 0");
    }
    sum += w;
  }
  if (normalize) {
    if (sum <= 0.0) throw std::invalid_argument("Distribution: zero total mass");
    for (double& w : weights_) w /= sum;
  } else if (std::abs(sum - 1.0) > kSumTolerance) {
    throw std::invalid_argument("Distribution: weights must sum to 1");
  }
}

Distribution Distribution::uniform(unsigned n) {
  const std::size_t size = std::size_t{1} << n;
  return Distribution(n, std::vector<double>(size, 1.0 / static_cast<double>(size)));
}

Distribution Distribution::point_mass(unsigned n, World w) {
  std::vector<double> weights(std::size_t{1} << n, 0.0);
  weights.at(w) = 1.0;
  return Distribution(n, std::move(weights));
}

Distribution Distribution::uniform_on(const WorldSet& support) {
  if (support.is_empty()) {
    throw std::invalid_argument("uniform_on: empty support");
  }
  std::vector<double> weights(support.omega_size(), 0.0);
  const double p = 1.0 / static_cast<double>(support.count());
  support.visit([&](World w) { weights[w] = p; });
  return Distribution(support.n(), std::move(weights));
}

Distribution Distribution::random(unsigned n, Rng& rng) {
  const std::size_t size = std::size_t{1} << n;
  std::vector<double> weights(size);
  double sum = 0.0;
  for (double& w : weights) {
    // Exponential variates normalized to the simplex give uniform Dirichlet(1).
    w = -std::log(1.0 - rng.next_double());
    sum += w;
  }
  for (double& w : weights) w /= sum;
  return Distribution(n, std::move(weights));
}

double Distribution::prob(const WorldSet& a) const {
  if (a.n() != n_) throw std::invalid_argument("prob: mismatched n");
  return masked_weight_sum(a, weights_.data());
}

double Distribution::prob_intersection(const WorldSet& a, const WorldSet& b) const {
  if (a.n() != n_ || b.n() != n_) {
    throw std::invalid_argument("prob_intersection: mismatched n");
  }
  return intersection_weight_sum(a, b, weights_.data());
}

double Distribution::conditional(const WorldSet& a, const WorldSet& b) const {
  const double pb = prob(b);
  if (pb <= 0.0) throw std::domain_error("conditional: P[B] == 0");
  return prob_intersection(a, b) / pb;
}

Distribution Distribution::conditioned_on(const WorldSet& b) const {
  const double pb = prob(b);
  if (pb <= 0.0) throw std::domain_error("conditioned_on: P[B] == 0");
  std::vector<double> weights(weights_.size(), 0.0);
  b.visit([&](World w) { weights[w] = weights_[w] / pb; });
  return Distribution(n_, std::move(weights), /*normalize=*/true);
}

WorldSet Distribution::support() const {
  WorldSet s(n_);
  for (std::size_t w = 0; w < weights_.size(); ++w) {
    if (weights_[w] > 0.0) s.insert(static_cast<World>(w));
  }
  return s;
}

double Distribution::safety_gap(const WorldSet& a, const WorldSet& b) const {
  // P[A∩B] via the fused kernel scan: no intermediate WorldSet, and the
  // ascending-world accumulation order matches the old prob(a & b) exactly,
  // so the double is bit-identical.
  return prob_intersection(a, b) - prob(a) * prob(b);
}

}  // namespace epi
