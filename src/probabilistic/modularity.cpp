#include "probabilistic/modularity.h"

#include <cmath>

namespace epi {
namespace {

Distribution random_ising(unsigned n, Rng& rng, double field_scale,
                          double coupling_scale, bool supermodular) {
  // Random fields in [-field_scale, field_scale]; couplings in
  // [0, coupling_scale] (negated for the submodular case).
  std::vector<double> h(n);
  for (double& v : h) v = (2.0 * rng.next_double() - 1.0) * field_scale;
  std::vector<std::vector<double>> j(n, std::vector<double>(n, 0.0));
  for (unsigned a = 0; a < n; ++a) {
    for (unsigned b = a + 1; b < n; ++b) {
      double coupling = rng.next_double() * coupling_scale;
      j[a][b] = supermodular ? coupling : -coupling;
    }
  }
  const std::size_t size = std::size_t{1} << n;
  std::vector<double> weights(size);
  for (std::size_t w = 0; w < size; ++w) {
    double energy = 0.0;
    for (unsigned a = 0; a < n; ++a) {
      if (!world_bit(static_cast<World>(w), a)) continue;
      energy += h[a];
      for (unsigned b = a + 1; b < n; ++b) {
        if (world_bit(static_cast<World>(w), b)) energy += j[a][b];
      }
    }
    weights[w] = std::exp(energy);
  }
  return Distribution(n, std::move(weights), /*normalize=*/true);
}

}  // namespace

bool is_log_supermodular(const Distribution& p, double tol) {
  const std::size_t size = p.omega_size();
  for (std::size_t w1 = 0; w1 < size; ++w1) {
    for (std::size_t w2 = w1 + 1; w2 < size; ++w2) {
      const World u = static_cast<World>(w1);
      const World v = static_cast<World>(w2);
      if (world_leq(u, v) || world_leq(v, u)) continue;  // trivially satisfied
      if (p.prob(u) * p.prob(v) >
          p.prob(world_meet(u, v)) * p.prob(world_join(u, v)) + tol) {
        return false;
      }
    }
  }
  return true;
}

bool is_log_submodular(const Distribution& p, double tol) {
  const std::size_t size = p.omega_size();
  for (std::size_t w1 = 0; w1 < size; ++w1) {
    for (std::size_t w2 = w1 + 1; w2 < size; ++w2) {
      const World u = static_cast<World>(w1);
      const World v = static_cast<World>(w2);
      if (world_leq(u, v) || world_leq(v, u)) continue;
      if (p.prob(u) * p.prob(v) + tol <
          p.prob(world_meet(u, v)) * p.prob(world_join(u, v))) {
        return false;
      }
    }
  }
  return true;
}

bool is_product(const Distribution& p, double tol) {
  const std::size_t size = p.omega_size();
  for (std::size_t w1 = 0; w1 < size; ++w1) {
    for (std::size_t w2 = w1 + 1; w2 < size; ++w2) {
      const World u = static_cast<World>(w1);
      const World v = static_cast<World>(w2);
      if (world_leq(u, v) || world_leq(v, u)) continue;
      const double lhs = p.prob(u) * p.prob(v);
      const double rhs = p.prob(world_meet(u, v)) * p.prob(world_join(u, v));
      if (std::abs(lhs - rhs) > tol) return false;
    }
  }
  return true;
}

Distribution random_log_supermodular(unsigned n, Rng& rng, double field_scale,
                                     double coupling_scale) {
  return random_ising(n, rng, field_scale, coupling_scale, /*supermodular=*/true);
}

Distribution random_log_submodular(unsigned n, Rng& rng, double field_scale,
                                   double coupling_scale) {
  return random_ising(n, rng, field_scale, coupling_scale, /*supermodular=*/false);
}

}  // namespace epi
