#include "probabilistic/witness.h"

namespace epi {

std::optional<Distribution> supermodular_witness(const WorldSet& a,
                                                 const WorldSet& b) {
  const WorldSet outside = ~(a | b);
  const WorldSet sym_diff = a ^ b;  // (A-B) ∪ (B-A)
  std::optional<Distribution> result;
  visit_intersection(a, b, [&](World w1) {
    if (result) return;
    outside.visit([&](World w2) {
      if (result) return;
      const World meet = world_meet(w1, w2);
      const World join = world_join(w1, w2);
      if (sym_diff.contains(meet) || sym_diff.contains(join)) return;
      // The support {meet, w1, w2, join} is a sublattice; the uniform
      // distribution on any sublattice is log-supermodular. Its mass sits
      // entirely in A∩B and outside A∪B, so P[AB] = P[A] = P[B] with
      // 0 < P[AB] < 1, giving P[AB] > P[A]*P[B].
      WorldSet support(a.n());
      support.insert(meet);
      support.insert(w1);
      support.insert(w2);
      support.insert(join);
      result = Distribution::uniform_on(support);
    });
  });
  return result;
}

ProductDistribution box_witness(unsigned n, World stars, World values) {
  std::vector<double> params(n);
  for (unsigned i = 0; i < n; ++i) {
    if (world_bit(stars, i)) {
      params[i] = 0.5;
    } else {
      params[i] = world_bit(values, i) ? 1.0 : 0.0;
    }
  }
  return ProductDistribution(std::move(params));
}

}  // namespace epi
