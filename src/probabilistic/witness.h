// Constructive unsafety witnesses: explicit admissible priors that gain
// confidence in A upon learning B. Every negative verdict produced by the
// library can be re-checked against one of these.
#pragma once

#include <optional>

#include "probabilistic/distribution.h"
#include "probabilistic/product.h"

namespace epi {

/// The four-point log-supermodular witness behind Proposition 5.2: if there
/// are w1 in A∩B and w2 outside A∪B whose meet and join both avoid the
/// symmetric-difference regions A-B and B-A, then the uniform distribution
/// on the sublattice {w1 /\ w2, w1, w2, w1 \/ w2} is log-supermodular and
/// has P[AB] > P[A]*P[B]. Returns nullopt when no such pair exists (i.e. the
/// necessary criterion of Prop. 5.2 holds).
std::optional<Distribution> supermodular_witness(const WorldSet& a,
                                                 const WorldSet& b);

/// A product-distribution witness concentrated on Box(w): parameters are
/// w[i] on fixed coordinates and 1/2 on stars. If the box-counting necessary
/// criterion (Prop. 5.10) fails at w, this prior has a positive safety gap.
ProductDistribution box_witness(unsigned n, World stars, World values);

}  // namespace epi
