// Log-supermodular / log-submodular distributions (Definition 5.1) and
// generators for them. Pi_m+ (log-supermodular) forbids negative correlations
// between positive events; Pi_m0 = Pi_m+ ∩ Pi_m- is exactly the product
// family (Equation (18)).
#pragma once

#include "probabilistic/distribution.h"
#include "util/rng.h"

namespace epi {

/// Definition 5.1: P is log-supermodular when
/// P(w1) P(w2) <= P(w1 /\ w2) P(w1 \/ w2) for all pairs.
bool is_log_supermodular(const Distribution& p, double tol = 1e-12);

/// Definition 5.1 with the inequality reversed.
bool is_log_submodular(const Distribution& p, double tol = 1e-12);

/// Equation (18): P is a product distribution iff equality holds everywhere
/// (equivalently, P in Pi_m+ ∩ Pi_m-).
bool is_product(const Distribution& p, double tol = 1e-9);

/// A random log-supermodular distribution: a pairwise Ising model
/// P(w) ∝ exp(sum_i h_i w_i + sum_{i<j} J_ij w_i w_j) with J_ij >= 0.
/// Nonnegative pairwise couplings make the log-density supermodular, hence
/// P in Pi_m+.
Distribution random_log_supermodular(unsigned n, Rng& rng,
                                     double field_scale = 1.0,
                                     double coupling_scale = 1.0);

/// Same with J_ij <= 0: a random log-submodular distribution.
Distribution random_log_submodular(unsigned n, Rng& rng,
                                   double field_scale = 1.0,
                                   double coupling_scale = 1.0);

}  // namespace epi
