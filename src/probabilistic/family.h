// Probabilistic knowledge worlds (Definition 2.2) and explicit second-level
// knowledge sets over them.
#pragma once

#include <vector>

#include "probabilistic/distribution.h"

namespace epi {

/// A probabilistic knowledge world (omega, P) with P(omega) > 0 (Remark 2.3).
struct ProbKnowledgeWorld {
  World world;
  Distribution prior;

  ProbKnowledgeWorld(World w, Distribution p);
};

/// An explicit, finite second-level knowledge set K ⊆ Omega_prob.
class ProbSecondLevelKnowledge {
 public:
  explicit ProbSecondLevelKnowledge(unsigned n) : n_(n) {}

  /// The product C (x) Pi of Definition 2.5: consistent pairs (omega, P)
  /// with omega in C, P in Pi, P(omega) > 0.
  static ProbSecondLevelKnowledge product(const WorldSet& c,
                                          const std::vector<Distribution>& pi);

  /// Adds a pair; throws std::invalid_argument when inconsistent.
  void add(World world, Distribution prior);

  unsigned n() const { return n_; }
  const std::vector<ProbKnowledgeWorld>& pairs() const { return pairs_; }
  bool empty() const { return pairs_.empty(); }
  std::size_t size() const { return pairs_.size(); }

  /// Membership up to L-infinity tolerance on the weights.
  bool contains(World world, const Distribution& prior, double tol = 1e-9) const;

  /// Definition 3.9 (probabilistic): B is K-preserving when for every
  /// (omega, P) in K with omega in B, (omega, P(.|B)) is also in K.
  bool is_preserving(const WorldSet& b, double tol = 1e-9) const;

 private:
  unsigned n_;
  std::vector<ProbKnowledgeWorld> pairs_;
};

}  // namespace epi
