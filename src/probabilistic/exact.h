// Exact-rational probability distributions: the double-based Distribution
// answers "is the gap positive?" up to tolerances, while audits of record
// may need verdicts that cannot be an artifact of rounding. This backend
// carries exact numerators/denominators end to end, so witness checks and
// small-case safety decisions are rigorous.
#pragma once

#include <vector>

#include "probabilistic/distribution.h"
#include "util/rational.h"
#include "worlds/world_set.h"

namespace epi {

/// A probability distribution over {0,1}^n with exact rational weights.
class ExactDistribution {
 public:
  /// Weights must be nonnegative and sum to exactly 1.
  ExactDistribution(unsigned n, std::vector<Rational> weights);

  /// Uniform over a non-empty support (exact 1/|S| weights).
  static ExactDistribution uniform_on(const WorldSet& support);
  /// The product distribution with exact Bernoulli parameters.
  static ExactDistribution product(const std::vector<Rational>& params);

  unsigned n() const { return n_; }
  std::size_t omega_size() const { return weights_.size(); }

  Rational prob(World w) const { return weights_[w]; }
  Rational prob(const WorldSet& a) const;

  /// P[A∩B] via the fused intersection scan — no intermediate WorldSet.
  Rational prob_intersection(const WorldSet& a, const WorldSet& b) const;

  /// P[A | B]; throws std::domain_error when P[B] = 0.
  Rational conditional(const WorldSet& a, const WorldSet& b) const;

  /// The posterior P(. | B) (Section 3.3), exactly.
  ExactDistribution conditioned_on(const WorldSet& b) const;

  /// P[AB] - P[A]*P[B], exactly. Positive iff this prior gains confidence
  /// in A upon learning B.
  Rational safety_gap(const WorldSet& a, const WorldSet& b) const;

  /// Definition 5.1, exactly (no tolerance).
  bool is_log_supermodular() const;

  /// Nearest double-weight distribution (for interop).
  Distribution to_double() const;

 private:
  unsigned n_;
  std::vector<Rational> weights_;
};

}  // namespace epi
