#include "probabilistic/safe.h"

namespace epi {

std::optional<ProbKnowledgeWorld> find_probabilistic_violation(
    const ProbSecondLevelKnowledge& k, const WorldSet& a, const WorldSet& b) {
  for (const ProbKnowledgeWorld& kw : k.pairs()) {
    if (!b.contains(kw.world)) continue;
    if (kw.prior.conditional(a, b) > kw.prior.prob(a) + kSafetyTolerance) {
      return kw;
    }
  }
  return std::nullopt;
}

bool safe_probabilistic(const ProbSecondLevelKnowledge& k, const WorldSet& a,
                        const WorldSet& b) {
  return !find_probabilistic_violation(k, a, b).has_value();
}

bool safe_family(const std::vector<Distribution>& pi, const WorldSet& c,
                 const WorldSet& a, const WorldSet& b) {
  for (const Distribution& p : pi) {
    if (p.prob_intersection(b, c) <= 0.0) continue;  // P[B∩C], fused
    if (p.safety_gap(a, b) > kSafetyTolerance) return false;
  }
  return true;
}

bool safe_family_lifted(const std::vector<Distribution>& pi, const WorldSet& a,
                        const WorldSet& b) {
  for (const Distribution& p : pi) {
    if (p.safety_gap(a, b) > kSafetyTolerance) return false;
  }
  return true;
}

bool safe_unrestricted_prob(const WorldSet& a, const WorldSet& b) {
  // Thm. 3.11, both disjuncts as fused word scans.
  return a.disjoint_with(b) || union_is_universe(a, b);
}

std::optional<Distribution> unrestricted_witness(const WorldSet& a,
                                                 const WorldSet& b) {
  const WorldSet ab = a & b;
  const WorldSet outside = ~(a | b);
  if (ab.is_empty() || outside.is_empty()) return std::nullopt;
  WorldSet support(a.n());
  support.insert(ab.min_world());
  support.insert(outside.min_world());
  // P[AB] = 1/2, P[A] = P[B] = 1/2, so the gap is 1/2 - 1/4 = 1/4 > 0.
  return Distribution::uniform_on(support);
}

}  // namespace epi
