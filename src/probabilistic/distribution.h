// Probability distributions over Omega = {0,1}^n — the knowledge of a
// probabilistic agent (Definition 2.2 of the paper).
#pragma once

#include <vector>

#include "util/rng.h"
#include "worlds/world_set.h"

namespace epi {

/// A dense probability distribution P : {0,1}^n -> R+, sum = 1.
class Distribution {
 public:
  /// Distribution from explicit weights (size must be 2^n); weights must be
  /// nonnegative and sum to 1 within `kSumTolerance` unless `normalize`.
  Distribution(unsigned n, std::vector<double> weights, bool normalize = false);

  /// Uniform distribution over {0,1}^n.
  static Distribution uniform(unsigned n);
  /// All mass on one world.
  static Distribution point_mass(unsigned n, World w);
  /// Uniform over the worlds of a non-empty set.
  static Distribution uniform_on(const WorldSet& support);
  /// Random point of the probability simplex (exponential spacings).
  static Distribution random(unsigned n, Rng& rng);

  unsigned n() const { return n_; }
  std::size_t omega_size() const { return weights_.size(); }

  /// P(omega).
  double prob(World w) const { return weights_[w]; }
  /// P[A] = sum of member weights.
  double prob(const WorldSet& a) const;

  /// P[A∩B] in one fused word scan — no intermediate WorldSet. Accumulates
  /// in ascending world order, so the result is bit-identical to
  /// prob(a & b).
  double prob_intersection(const WorldSet& a, const WorldSet& b) const;

  /// P[A | B]; throws std::domain_error when P[B] == 0.
  double conditional(const WorldSet& a, const WorldSet& b) const;

  /// The posterior P(. | B) of Section 3.3; throws when P[B] == 0.
  Distribution conditioned_on(const WorldSet& b) const;

  /// supp(P) = worlds of positive weight.
  WorldSet support() const;

  /// The epistemic safety gap P[AB] - P[A]*P[B]; A is unsafe to keep private
  /// under disclosure of B for this prior iff the gap is positive
  /// (Propositions 3.6 / 3.8).
  double safety_gap(const WorldSet& a, const WorldSet& b) const;

  const std::vector<double>& weights() const { return weights_; }

  static constexpr double kSumTolerance = 1e-9;

 private:
  unsigned n_;
  std::vector<double> weights_;
};

}  // namespace epi
