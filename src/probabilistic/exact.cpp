#include "probabilistic/exact.h"

#include <stdexcept>

namespace epi {

ExactDistribution::ExactDistribution(unsigned n, std::vector<Rational> weights)
    : n_(n), weights_(std::move(weights)) {
  if (n == 0 || n > kMaxCoordinates) {
    throw std::invalid_argument("ExactDistribution: n out of range");
  }
  if (weights_.size() != (std::size_t{1} << n)) {
    throw std::invalid_argument("ExactDistribution: weights size must be 2^n");
  }
  Rational sum;
  for (const Rational& w : weights_) {
    if (w.is_negative()) {
      throw std::invalid_argument("ExactDistribution: negative weight");
    }
    sum += w;
  }
  if (sum != Rational(1)) {
    throw std::invalid_argument("ExactDistribution: weights must sum to 1, got " +
                                sum.to_string());
  }
}

ExactDistribution ExactDistribution::uniform_on(const WorldSet& support) {
  if (support.is_empty()) {
    throw std::invalid_argument("uniform_on: empty support");
  }
  std::vector<Rational> weights(support.omega_size());
  const Rational w(1, static_cast<std::int64_t>(support.count()));
  support.visit([&](World world) { weights[world] = w; });
  return ExactDistribution(support.n(), std::move(weights));
}

ExactDistribution ExactDistribution::product(const std::vector<Rational>& params) {
  const unsigned n = static_cast<unsigned>(params.size());
  for (const Rational& p : params) {
    if (p.is_negative() || p > Rational(1)) {
      throw std::invalid_argument("product: parameter outside [0,1]");
    }
  }
  const std::size_t size = std::size_t{1} << n;
  std::vector<Rational> weights(size);
  for (std::size_t w = 0; w < size; ++w) {
    Rational prod(1);
    for (unsigned i = 0; i < n; ++i) {
      prod *= world_bit(static_cast<World>(w), i) ? params[i]
                                                  : Rational(1) - params[i];
    }
    weights[w] = prod;
  }
  return ExactDistribution(n, std::move(weights));
}

Rational ExactDistribution::prob(const WorldSet& a) const {
  if (a.n() != n_) throw std::invalid_argument("prob: mismatched n");
  Rational sum;
  a.visit([&](World w) { sum += weights_[w]; });
  return sum;
}

Rational ExactDistribution::prob_intersection(const WorldSet& a,
                                              const WorldSet& b) const {
  if (a.n() != n_ || b.n() != n_) {
    throw std::invalid_argument("prob_intersection: mismatched n");
  }
  Rational sum;
  visit_intersection(a, b, [&](World w) { sum += weights_[w]; });
  return sum;
}

Rational ExactDistribution::conditional(const WorldSet& a, const WorldSet& b) const {
  const Rational pb = prob(b);
  if (pb.is_zero()) throw std::domain_error("conditional: P[B] = 0");
  return prob_intersection(a, b) / pb;
}

ExactDistribution ExactDistribution::conditioned_on(const WorldSet& b) const {
  const Rational pb = prob(b);
  if (pb.is_zero()) throw std::domain_error("conditioned_on: P[B] = 0");
  std::vector<Rational> weights(weights_.size());
  b.visit([&](World w) { weights[w] = weights_[w] / pb; });
  return ExactDistribution(n_, std::move(weights));
}

Rational ExactDistribution::safety_gap(const WorldSet& a, const WorldSet& b) const {
  return prob_intersection(a, b) - prob(a) * prob(b);
}

bool ExactDistribution::is_log_supermodular() const {
  const std::size_t size = weights_.size();
  for (std::size_t x = 0; x < size; ++x) {
    for (std::size_t y = x + 1; y < size; ++y) {
      const World u = static_cast<World>(x);
      const World v = static_cast<World>(y);
      if (world_leq(u, v) || world_leq(v, u)) continue;
      if (weights_[u] * weights_[v] >
          weights_[world_meet(u, v)] * weights_[world_join(u, v)]) {
        return false;
      }
    }
  }
  return true;
}

Distribution ExactDistribution::to_double() const {
  std::vector<double> weights(weights_.size());
  for (std::size_t w = 0; w < weights_.size(); ++w) {
    weights[w] = weights_[w].to_double();
  }
  return Distribution(n_, std::move(weights), /*normalize=*/true);
}

}  // namespace epi
