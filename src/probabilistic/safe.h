// The probabilistic privacy predicate Safe_K(A,B) (Definition 3.4), its
// family forms (Propositions 3.6 / 3.8) and the unrestricted-prior
// characterization (Theorem 3.11).
#pragma once

#include <optional>
#include <vector>

#include "probabilistic/family.h"

namespace epi {

/// Numerical slack for probability comparisons.
inline constexpr double kSafetyTolerance = 1e-12;

/// Definition 3.4: A is K-private given B iff for every (omega, P) in K with
/// omega in B: P[A | B] <= P[A].
bool safe_probabilistic(const ProbSecondLevelKnowledge& k, const WorldSet& a,
                        const WorldSet& b);

/// The violating pair, if any: an admissible prior that gains confidence.
std::optional<ProbKnowledgeWorld> find_probabilistic_violation(
    const ProbSecondLevelKnowledge& k, const WorldSet& a, const WorldSet& b);

/// Proposition 3.6: Safe_{C,Pi}(A,B) iff every P in Pi with P[BC] > 0 has
/// P[AB] <= P[A]*P[B].
bool safe_family(const std::vector<Distribution>& pi, const WorldSet& c,
                 const WorldSet& a, const WorldSet& b);

/// Equation (11): Safe_Pi(A,B) — the C-free form valid for C-liftable
/// families (Proposition 3.8): P[AB] <= P[A]*P[B] for every P in Pi.
bool safe_family_lifted(const std::vector<Distribution>& pi, const WorldSet& a,
                        const WorldSet& b);

/// Theorem 3.11 (probabilistic): Safe for K = Omega_prob — and equally for
/// K = {omega*} (x) P_prob(Omega) — iff A ∩ B = {} or A ∪ B = Omega.
bool safe_unrestricted_prob(const WorldSet& a, const WorldSet& b);

/// Constructive converse of Theorem 3.11: when A∩B != {} and A∪B != Omega,
/// returns a two-point prior gaining confidence in A upon learning B
/// (P uniform on {w1 in A∩B, w2 outside A∪B}); nullopt when safe.
std::optional<Distribution> unrestricted_witness(const WorldSet& a,
                                                 const WorldSet& b);

}  // namespace epi
