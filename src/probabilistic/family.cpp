#include "probabilistic/family.h"

#include <cmath>
#include <stdexcept>

namespace epi {

ProbKnowledgeWorld::ProbKnowledgeWorld(World w, Distribution p)
    : world(w), prior(std::move(p)) {
  if (prior.prob(world) <= 0.0) {
    throw std::invalid_argument(
        "ProbKnowledgeWorld: inconsistent pair (P(world) == 0)");
  }
}

ProbSecondLevelKnowledge ProbSecondLevelKnowledge::product(
    const WorldSet& c, const std::vector<Distribution>& pi) {
  ProbSecondLevelKnowledge k(c.n());
  for (const Distribution& p : pi) {
    if (p.n() != c.n()) throw std::invalid_argument("product: mismatched n");
    c.visit([&](World w) {
      if (p.prob(w) > 0.0) k.add(w, p);
    });
  }
  return k;
}

void ProbSecondLevelKnowledge::add(World world, Distribution prior) {
  if (prior.n() != n_) throw std::invalid_argument("add: mismatched n");
  pairs_.emplace_back(world, std::move(prior));
}

bool ProbSecondLevelKnowledge::contains(World world, const Distribution& prior,
                                        double tol) const {
  for (const auto& kw : pairs_) {
    if (kw.world != world) continue;
    bool equal = true;
    for (std::size_t w = 0; w < kw.prior.omega_size(); ++w) {
      if (std::abs(kw.prior.prob(static_cast<World>(w)) -
                   prior.prob(static_cast<World>(w))) > tol) {
        equal = false;
        break;
      }
    }
    if (equal) return true;
  }
  return false;
}

bool ProbSecondLevelKnowledge::is_preserving(const WorldSet& b, double tol) const {
  for (const auto& kw : pairs_) {
    if (!b.contains(kw.world)) continue;
    const Distribution posterior = kw.prior.conditioned_on(b);
    if (!contains(kw.world, posterior, tol)) return false;
  }
  return true;
}

}  // namespace epi
