#include "probabilistic/marginal_family.h"

#include <stdexcept>

namespace epi {

AlgebraicFamily marginal_bounds_family(unsigned n, const std::vector<double>& lo,
                                       const std::vector<double>& hi) {
  if (lo.size() != n || hi.size() != n) {
    throw std::invalid_argument("marginal_bounds_family: bounds size mismatch");
  }
  AlgebraicFamily family;
  family.name = "marginal-bounds";
  family.nvars = std::size_t{1} << n;
  for (unsigned i = 0; i < n; ++i) {
    if (!(0.0 <= lo[i] && lo[i] <= hi[i] && hi[i] <= 1.0)) {
      throw std::invalid_argument("marginal_bounds_family: bad bounds");
    }
    // marginal_i(p) = sum over worlds with bit i set of p_w.
    Polynomial marginal(family.nvars);
    for (std::size_t w = 0; w < family.nvars; ++w) {
      if (world_bit(static_cast<World>(w), i)) {
        marginal += Polynomial::variable(family.nvars, w);
      }
    }
    family.inequalities.push_back(marginal - Polynomial::constant(family.nvars, lo[i]));
    family.inequalities.push_back(Polynomial::constant(family.nvars, hi[i]) - marginal);
  }
  return family;
}

std::vector<double> marginals(const Distribution& p) {
  std::vector<double> out(p.n(), 0.0);
  for (std::size_t w = 0; w < p.omega_size(); ++w) {
    for (unsigned i = 0; i < p.n(); ++i) {
      if (world_bit(static_cast<World>(w), i)) out[i] += p.prob(static_cast<World>(w));
    }
  }
  return out;
}

bool satisfies_marginal_bounds(const Distribution& p, const std::vector<double>& lo,
                               const std::vector<double>& hi, double tol) {
  const std::vector<double> m = marginals(p);
  if (lo.size() != m.size() || hi.size() != m.size()) {
    throw std::invalid_argument("satisfies_marginal_bounds: size mismatch");
  }
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i] < lo[i] - tol || m[i] > hi[i] + tol) return false;
  }
  return true;
}

}  // namespace epi
