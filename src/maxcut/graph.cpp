#include "maxcut/graph.h"

#include <stdexcept>

namespace epi {

Graph::Graph(std::size_t vertex_count) : vertex_count_(vertex_count) {
  if (vertex_count == 0) throw std::invalid_argument("Graph: empty vertex set");
}

Graph Graph::random(std::size_t vertex_count, double edge_probability, Rng& rng) {
  Graph g(vertex_count);
  for (std::size_t u = 0; u < vertex_count; ++u) {
    for (std::size_t v = u + 1; v < vertex_count; ++v) {
      if (rng.next_bool(edge_probability)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph Graph::cycle(std::size_t vertex_count) {
  Graph g(vertex_count);
  if (vertex_count < 3) throw std::invalid_argument("cycle needs >= 3 vertices");
  for (std::size_t v = 0; v < vertex_count; ++v) {
    g.add_edge(v, (v + 1) % vertex_count);
  }
  return g;
}

Graph Graph::complete(std::size_t vertex_count) {
  Graph g(vertex_count);
  for (std::size_t u = 0; u < vertex_count; ++u) {
    for (std::size_t v = u + 1; v < vertex_count; ++v) g.add_edge(u, v);
  }
  return g;
}

void Graph::add_edge(std::size_t u, std::size_t v) {
  if (u >= vertex_count_ || v >= vertex_count_) {
    throw std::out_of_range("add_edge: vertex out of range");
  }
  if (u == v) throw std::invalid_argument("add_edge: loops not allowed");
  if (has_edge(u, v)) throw std::invalid_argument("add_edge: duplicate edge");
  edges_.emplace_back(u < v ? u : v, u < v ? v : u);
}

bool Graph::has_edge(std::size_t u, std::size_t v) const {
  if (u > v) std::swap(u, v);
  for (const auto& e : edges_) {
    if (e.first == u && e.second == v) return true;
  }
  return false;
}

std::size_t Graph::cut_value(const std::vector<bool>& side) const {
  if (side.size() != vertex_count_) {
    throw std::invalid_argument("cut_value: side size mismatch");
  }
  std::size_t value = 0;
  for (const auto& [u, v] : edges_) {
    value += side[u] != side[v];
  }
  return value;
}

}  // namespace epi
