// A reconstruction of the Theorem 6.2 reduction: deciding Safe_Pi(A,B) for
// general algebraic families Pi is NP-hard, via MAX-CUT. (The paper defers
// the proof details to its full version; this module rebuilds a reduction
// with the same shape — see DESIGN.md.)
//
// Construction: given a graph G on t vertices and a bound k, build a family
// Pi_{G,k} over the 2^n world weights (2^n >= t + 2) with degree-<=2
// constraints:
//   * per-vertex weights y_v in {0, delta} (quadratic y_v^2 = delta y_v),
//   * unused worlds pinned to weight 0,
//   * the two designated worlds a*, b* share the leftover mass equally,
//   * sum over edges of (y_u + y_v - (2/delta) y_u y_v) >= k delta
//     (each edge term equals delta times the cut indicator).
// Members of Pi_{G,k} correspond exactly to the cuts of value >= k. With
// A = B = {a*}, every member has P[AB] - P[A]P[B] = p(1 - p) > 0, so
//   Safe_{Pi_{G,k}}(A, B)  <=>  Pi_{G,k} empty  <=>  maxcut(G) < k.
#pragma once

#include "maxcut/graph.h"
#include "optimize/emptiness.h"
#include "probabilistic/distribution.h"
#include "worlds/world_set.h"

namespace epi {

/// The reduction output.
struct MaxCutReduction {
  AlgebraicFamily family;  ///< Pi_{G,k} over 2^n weight variables
  unsigned n = 0;          ///< world coordinates (2^n >= t + 2)
  WorldSet a;              ///< audited property {a*}
  WorldSet b;              ///< disclosed property {a*}
  World astar = 0;
  World bstar = 0;
  double delta = 0.0;      ///< per-vertex weight quantum
  std::size_t cut_bound = 0;

  MaxCutReduction() : a(1), b(1) {}

  /// The family member encoding a concrete cut; the distribution satisfies
  /// every constraint and violates safety. Only valid for cuts of value
  /// >= cut_bound.
  Distribution distribution_for_cut(const Graph& g,
                                    const std::vector<bool>& side) const;

  /// Rounds an arbitrary weight vector (e.g. the relaxation's best iterate)
  /// to the cut it most resembles: vertex v goes to the right side when its
  /// weight exceeds delta / 2.
  std::vector<bool> cut_from_weights(const Graph& g,
                                     const std::vector<double>& weights) const;

  /// Exact emptiness decision by enumerating all 2^t cuts — the exponential
  /// "honest" decision procedure whose cost growth the hardness experiment
  /// measures. Returns true when Pi_{G,k} is non-empty (i.e. unsafe).
  bool nonempty_exact(const Graph& g) const;
};

/// Builds Pi_{G,k}, A and B for "is there a cut of size >= k".
MaxCutReduction reduce_maxcut_to_safety(const Graph& g, std::size_t k);

}  // namespace epi
