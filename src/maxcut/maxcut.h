// Exact and heuristic MAX-CUT solvers.
#pragma once

#include <vector>

#include "maxcut/graph.h"

namespace epi {

/// A cut and its value.
struct CutResult {
  std::size_t value = 0;
  std::vector<bool> side;
};

/// Exact maximum cut by exhaustive enumeration over 2^(n-1) assignments
/// (vertex 0 pinned to the left side). Guarded to n <= 26.
CutResult max_cut_exact(const Graph& g);

/// Randomized local search (single-vertex flips from random starts) —
/// the fast heuristic baseline.
CutResult max_cut_local_search(const Graph& g, Rng& rng, int restarts = 16);

/// Exact maximum cut by branch & bound: vertices are assigned in order with
/// the optimistic bound "current cut + every edge touching an unassigned
/// vertex could still be cut", warm-started by local search. Much faster
/// than enumeration on sparse graphs; exact for any size that terminates.
CutResult max_cut_branch_bound(const Graph& g);

}  // namespace epi
