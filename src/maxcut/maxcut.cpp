#include "maxcut/maxcut.h"

#include <stdexcept>

namespace epi {

CutResult max_cut_exact(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n > 26) throw std::invalid_argument("max_cut_exact: graph too large");
  CutResult best;
  best.side.assign(n, false);
  std::vector<bool> side(n, false);
  const std::size_t assignments = std::size_t{1} << (n - 1);
  for (std::size_t mask = 0; mask < assignments; ++mask) {
    for (std::size_t v = 1; v < n; ++v) side[v] = (mask >> (v - 1)) & 1;
    const std::size_t value = g.cut_value(side);
    if (value > best.value || (mask == 0 && best.value == 0)) {
      best.value = value;
      best.side = side;
    }
  }
  return best;
}

CutResult max_cut_local_search(const Graph& g, Rng& rng, int restarts) {
  const std::size_t n = g.vertex_count();
  CutResult best;
  best.side.assign(n, false);
  best.value = 0;
  for (int restart = 0; restart < restarts; ++restart) {
    std::vector<bool> side(n);
    for (std::size_t v = 0; v < n; ++v) side[v] = rng.next_bool();
    bool improved = true;
    std::size_t value = g.cut_value(side);
    while (improved) {
      improved = false;
      for (std::size_t v = 0; v < n; ++v) {
        side[v] = !side[v];
        const std::size_t flipped = g.cut_value(side);
        if (flipped > value) {
          value = flipped;
          improved = true;
        } else {
          side[v] = !side[v];
        }
      }
    }
    if (value > best.value) {
      best.value = value;
      best.side = side;
    }
  }
  return best;
}

namespace {

struct BnbState {
  const Graph* graph;
  std::vector<std::vector<std::size_t>> adjacency;
  std::vector<int> side;  // -1 unassigned, 0/1 assigned
  std::size_t current_cut = 0;
  std::size_t undecided_edges = 0;  // edges with >= 1 unassigned endpoint
  CutResult best;

  void assign(std::size_t v, int s, std::size_t& gained, std::size_t& decided) {
    side[v] = s;
    gained = 0;
    decided = 0;
    for (std::size_t u : adjacency[v]) {
      if (side[u] < 0) continue;
      ++decided;                    // this edge is now fully decided
      gained += side[u] != s;
    }
    current_cut += gained;
    undecided_edges -= decided;
  }

  void unassign(std::size_t v, std::size_t gained, std::size_t decided) {
    side[v] = -1;
    current_cut -= gained;
    undecided_edges += decided;
  }

  void search(std::size_t v) {
    const std::size_t n = graph->vertex_count();
    if (v == n) {
      if (current_cut > best.value) {
        best.value = current_cut;
        for (std::size_t i = 0; i < n; ++i) best.side[i] = side[i] == 1;
      }
      return;
    }
    // Optimistic bound: every still-undecided edge could be cut.
    if (current_cut + undecided_edges <= best.value) return;
    for (int s = 0; s < (v == 0 ? 1 : 2); ++s) {  // pin vertex 0 by symmetry
      std::size_t gained = 0, decided = 0;
      assign(v, s, gained, decided);
      search(v + 1);
      unassign(v, gained, decided);
    }
  }
};

}  // namespace

CutResult max_cut_branch_bound(const Graph& g) {
  BnbState state;
  state.graph = &g;
  const std::size_t n = g.vertex_count();
  state.adjacency.assign(n, {});
  for (const auto& [u, v] : g.edges()) {
    state.adjacency[u].push_back(v);
    state.adjacency[v].push_back(u);
  }
  state.side.assign(n, -1);
  state.undecided_edges = g.edge_count();
  // Warm start with local search so pruning bites immediately.
  Rng rng(0xBB);
  state.best = max_cut_local_search(g, rng, 8);
  // The warm start is a lower bound only; search may improve it.
  state.search(0);
  return state.best;
}

}  // namespace epi
