#include "maxcut/reduction.h"

#include <stdexcept>

namespace epi {

MaxCutReduction reduce_maxcut_to_safety(const Graph& g, std::size_t k) {
  const std::size_t t = g.vertex_count();
  unsigned n = 1;
  while ((std::size_t{1} << n) < t + 2) ++n;
  const std::size_t nvars = std::size_t{1} << n;

  MaxCutReduction r;
  r.n = n;
  r.astar = static_cast<World>(t);
  r.bstar = static_cast<World>(t + 1);
  r.delta = 0.5 / static_cast<double>(t);
  r.cut_bound = k;
  r.a = WorldSet::singleton(n, r.astar);
  r.b = WorldSet::singleton(n, r.astar);

  AlgebraicFamily& family = r.family;
  family.name = "maxcut(" + std::to_string(t) + " vertices, k=" + std::to_string(k) + ")";
  family.nvars = nvars;

  // Vertex weights binary in {0, delta}: y^2 - delta*y = 0 as two inequalities.
  for (std::size_t v = 0; v < t; ++v) {
    const Polynomial y = Polynomial::variable(nvars, v);
    const Polynomial binary = y * y - y * r.delta;
    family.inequalities.push_back(binary);
    family.inequalities.push_back(-binary);
  }
  // Unused worlds carry no mass: p_x <= 0 (p_x >= 0 is the simplex).
  for (std::size_t x = t + 2; x < nvars; ++x) {
    family.inequalities.push_back(-Polynomial::variable(nvars, x));
  }
  // a* and b* split the leftover mass equally: p_a* - p_b* = 0.
  const Polynomial balance =
      Polynomial::variable(nvars, r.astar) - Polynomial::variable(nvars, r.bstar);
  family.inequalities.push_back(balance);
  family.inequalities.push_back(-balance);
  // Cut value at least k: sum over edges of (y_u + y_v - (2/delta) y_u y_v)
  // >= k * delta.
  Polynomial cut(nvars);
  for (const auto& [u, v] : g.edges()) {
    const Polynomial yu = Polynomial::variable(nvars, u);
    const Polynomial yv = Polynomial::variable(nvars, v);
    cut += yu + yv - yu * yv * (2.0 / r.delta);
  }
  cut -= Polynomial::constant(nvars, static_cast<double>(k) * r.delta);
  family.inequalities.push_back(cut);
  return r;
}

Distribution MaxCutReduction::distribution_for_cut(
    const Graph& g, const std::vector<bool>& side) const {
  const std::size_t t = g.vertex_count();
  if (side.size() != t) {
    throw std::invalid_argument("distribution_for_cut: side size mismatch");
  }
  std::vector<double> weights(std::size_t{1} << n, 0.0);
  double used = 0.0;
  for (std::size_t v = 0; v < t; ++v) {
    if (side[v]) {
      weights[v] = delta;
      used += delta;
    }
  }
  weights[astar] = (1.0 - used) / 2.0;
  weights[bstar] = (1.0 - used) / 2.0;
  return Distribution(n, std::move(weights));
}

std::vector<bool> MaxCutReduction::cut_from_weights(
    const Graph& g, const std::vector<double>& weights) const {
  const std::size_t t = g.vertex_count();
  if (weights.size() != (std::size_t{1} << n)) {
    throw std::invalid_argument("cut_from_weights: weight vector size mismatch");
  }
  // Threshold rounding: try every vertex weight as the threshold and keep
  // the cut of largest value (the relaxation often meets the cut constraint
  // with fractional weights, so no single fixed threshold is right).
  std::vector<bool> best(t, false);
  std::size_t best_value = 0;
  std::vector<bool> side(t);
  for (std::size_t pivot = 0; pivot <= t; ++pivot) {
    const double threshold = pivot == t ? delta / 2.0 : weights[pivot];
    for (std::size_t v = 0; v < t; ++v) side[v] = weights[v] >= threshold;
    const std::size_t value = g.cut_value(side);
    if (value > best_value) {
      best_value = value;
      best = side;
    }
  }
  return best;
}

bool MaxCutReduction::nonempty_exact(const Graph& g) const {
  const std::size_t t = g.vertex_count();
  std::vector<bool> side(t, false);
  const std::size_t assignments = std::size_t{1} << t;
  for (std::size_t mask = 0; mask < assignments; ++mask) {
    for (std::size_t v = 0; v < t; ++v) side[v] = (mask >> v) & 1;
    if (g.cut_value(side) >= cut_bound) return true;
  }
  return false;
}

}  // namespace epi
