// Simple undirected graphs — the substrate for the Theorem 6.2 hardness
// demonstration (reduction from MAX-CUT).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace epi {

/// An undirected simple graph on vertices 0..n-1.
class Graph {
 public:
  explicit Graph(std::size_t vertex_count);

  /// Erdos-Renyi G(n, p).
  static Graph random(std::size_t vertex_count, double edge_probability, Rng& rng);
  /// The cycle C_n.
  static Graph cycle(std::size_t vertex_count);
  /// The complete graph K_n.
  static Graph complete(std::size_t vertex_count);

  std::size_t vertex_count() const { return vertex_count_; }
  std::size_t edge_count() const { return edges_.size(); }
  const std::vector<std::pair<std::size_t, std::size_t>>& edges() const {
    return edges_;
  }

  /// Adds edge {u, v}; throws on loops, duplicates or out-of-range vertices.
  void add_edge(std::size_t u, std::size_t v);
  bool has_edge(std::size_t u, std::size_t v) const;

  /// Number of edges crossing the cut defined by `side` (side[v] = true puts
  /// v on the right side).
  std::size_t cut_value(const std::vector<bool>& side) const;

 private:
  std::size_t vertex_count_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
};

}  // namespace epi
