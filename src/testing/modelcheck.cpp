#include "testing/modelcheck.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "criteria/pipeline.h"
#include "criteria/unconditional.h"
#include "db/parser.h"
#include "possibilistic/intervals.h"
#include "possibilistic/laminar.h"
#include "possibilistic/rectangles.h"
#include "possibilistic/safe.h"
#include "possibilistic/subcubes.h"
#include "probabilistic/modularity.h"
#include "probabilistic/safe.h"
#include "service/audit_service.h"
#include "testing/generators.h"
#include "testing/oracle.h"
#include "workloads/family.h"
#include "worlds/dense_bits.h"

namespace epi {
namespace testing {
namespace {

// --- Case plumbing ----------------------------------------------------------

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 1469598103934665603ull;
  for (; *s; ++s) h = (h ^ static_cast<unsigned char>(*s)) * 1099511628211ull;
  return h;
}

/// Every (seed, check, case) triple gets its own Rng, so one case replays
/// identically whether the whole suite or just that case runs.
Rng case_rng(std::uint64_t seed, const char* check, std::uint64_t case_index) {
  return Rng(bits::hash_combine(bits::hash_combine(seed, fnv1a(check)),
                                case_index));
}

/// One scenario's verdicts. Each check function appends a description per
/// disagreement; the driver attaches the repro command line.
using Failures = std::vector<std::string>;

std::string verdict_name(Verdict v) { return to_string(v); }

std::string pair_text(const FiniteSet& a, const FiniteSet& b) {
  std::ostringstream os;
  os << "m=" << a.universe_size() << " A=" << a.to_string()
     << " B=" << b.to_string();
  return os.str();
}

std::string pair_text(const WorldSet& a, const WorldSet& b) {
  std::ostringstream os;
  os << "n=" << a.n() << " A=" << a.to_string() << " B=" << b.to_string();
  return os.str();
}

// --- Check 1: possibilistic-unrestricted (Def. 3.1 vs Theorem 3.11) ---------

void check_possibilistic_unrestricted(Rng& rng, const ModelCheckOptions& opt,
                                      Failures& out) {
  const std::size_t m = 1 + rng.next_below(opt.max_m);
  FiniteSet a = random_finite_set(rng, m);
  FiniteSet b = random_finite_set(rng, m);

  const PossOracleResult oracle = oracle_possibilistic_full(a, b);
  if (safe_unrestricted(a, b) != oracle.safe) {
    auto disagrees = [](const FiniteSet& na, const FiniteSet& nb) {
      return safe_unrestricted(na, nb) != oracle_possibilistic_full(na, nb).safe;
    };
    auto [ua, ub] = shrink_universe(a, b, disagrees);
    auto [sa, sb] = shrink_pair(ua, ub, disagrees);
    std::ostringstream os;
    os << "safe_unrestricted=" << !oracle.safe << " but Def. 3.1 oracle says "
       << (oracle.safe ? "safe" : "unsafe") << "; " << pair_text(a, b)
       << "; shrunk: " << pair_text(sa, sb);
    out.push_back(os.str());
  }

  // The library's general Def. 3.1 evaluator over the explicit full K must
  // agree with the oracle's own enumeration, and its violation witness must
  // actually violate (m <= 7 keeps the materialized K small).
  if (m <= 7) {
    const SecondLevelKnowledge k = SecondLevelKnowledge::full(m);
    if (safe_possibilistic(k, a, b) != oracle.safe) {
      out.push_back("safe_possibilistic(full K) disagrees with oracle; " +
                    pair_text(a, b));
    }
    if (const auto v = find_possibilistic_violation(k, a, b)) {
      bool s_subset_a = true, s_cap_b_subset_a = true;
      for (std::size_t e = 0; e < m; ++e) {
        if (!v->knowledge.contains(e) || a.contains(e)) continue;
        s_subset_a = false;
        if (b.contains(e)) s_cap_b_subset_a = false;
      }
      if (!(b.contains(v->world) && s_cap_b_subset_a && !s_subset_a)) {
        out.push_back("find_possibilistic_violation returned a non-violating "
                      "pair; " + pair_text(a, b));
      }
    } else if (!oracle.safe) {
      out.push_back("oracle found a violation but "
                    "find_possibilistic_violation did not; " + pair_text(a, b));
    }
  }

  // Known-world variant (Theorem 3.11, second part) on a few sampled worlds.
  for (int i = 0; i < 3; ++i) {
    const std::size_t w = rng.next_below(m);
    if (safe_unrestricted_known_world(a, b, w) !=
        oracle_possibilistic_known_world(a, b, w).safe) {
      std::ostringstream os;
      os << "safe_unrestricted_known_world disagrees with the Def. 3.1 "
            "oracle at world " << w << "; " << pair_text(a, b);
      out.push_back(os.str());
      break;
    }
  }
}

// --- Check 2: probabilistic-unrestricted (Def. 3.4 vs Theorem 3.11) ---------

void check_probabilistic_unrestricted(Rng& rng, const ModelCheckOptions& opt,
                                      Failures& out) {
  const unsigned n = 1 + static_cast<unsigned>(rng.next_below(opt.max_n));
  WorldSet a = random_world_set(rng, n);
  WorldSet b = random_world_set(rng, n);

  const UnrestrictedProbOracleResult oracle = oracle_unrestricted_prob(a, b);
  auto shrunk_text = [&](auto&& disagrees) {
    auto [ca, cb] = shrink_coordinates(a, b, disagrees);
    auto [sa, sb] = shrink_pair(ca, cb, disagrees);
    return pair_text(sa, sb);
  };

  if (unconditionally_safe(a, b) != oracle.safe) {
    auto bad = [](const WorldSet& x, const WorldSet& y) {
      return unconditionally_safe(x, y) != oracle_unrestricted_prob(x, y).safe;
    };
    out.push_back("unconditionally_safe disagrees with the two-point-prior "
                  "oracle; " + pair_text(a, b) + "; shrunk: " +
                  shrunk_text(bad));
  }
  if (safe_unrestricted_prob(a, b) != oracle.safe) {
    out.push_back("safe_unrestricted_prob disagrees with the oracle; " +
                  pair_text(a, b));
  }

  // The unrestricted cascade is exact: always definite, matching, and its
  // Unsafe witness priors must have a strictly positive gap.
  const PipelineResult r =
      run_criteria(unrestricted_criteria(), a, b, "exhausted");
  if (r.verdict == Verdict::kUnknown ||
      (r.verdict == Verdict::kSafe) != oracle.safe) {
    out.push_back("unrestricted_criteria verdict " + verdict_name(r.verdict) +
                  " vs oracle " + (oracle.safe ? "safe" : "unsafe") + "; " +
                  pair_text(a, b));
  }
  if (r.verdict == Verdict::kUnsafe) {
    if (!r.witness_distribution) {
      out.push_back("unrestricted Unsafe verdict without a witness prior; " +
                    pair_text(a, b));
    } else if (oracle_double_gap(*r.witness_distribution, a, b) <= 0.0) {
      out.push_back("unrestricted Unsafe witness prior has non-positive "
                    "gap; " + pair_text(a, b));
    }
  }
  const std::optional<Distribution> w = unrestricted_witness(a, b);
  if (w.has_value() == oracle.safe) {
    out.push_back("unrestricted_witness presence contradicts the oracle; " +
                  pair_text(a, b));
  } else if (w && oracle_double_gap(*w, a, b) <= 0.0) {
    out.push_back("unrestricted_witness gap is not positive; " +
                  pair_text(a, b));
  }

  // Theorem 3.11 equates the possibilistic and probabilistic unrestricted
  // predicates; cross-check the two *oracles* against each other (n <= 3
  // keeps the 2^(2^n) possibilistic enumeration small).
  if (n <= 3) {
    const FiniteSet fa = to_finite(a), fb = to_finite(b);
    if (oracle_possibilistic_full(fa, fb).safe != oracle.safe) {
      out.push_back("possibilistic and probabilistic oracles disagree on an "
                    "unrestricted pair; " + pair_text(a, b));
    }
    const World star = static_cast<World>(rng.next_below(a.omega_size()));
    if (unconditionally_safe_known_world(a, b, star) !=
        oracle_possibilistic_known_world(fa, fb, star).safe) {
      std::ostringstream os;
      os << "unconditionally_safe_known_world disagrees with the oracle at "
            "world " << star << "; " << pair_text(a, b);
      out.push_back(os.str());
    }
  }
}

// --- Check 3: sigma-intervals (Section 4.1 vs Def. 3.1 over C x Sigma) ------

void check_sigma_intervals(Rng& rng, const ModelCheckOptions& opt,
                           Failures& out) {
  // Draw a knowledge family: explicit intersection-closed, laminar hierarchy,
  // the full power set, or Example 4.9's integer-rectangle grid.
  std::shared_ptr<const SigmaFamily> family;
  const char* kind;
  std::size_t m;
  switch (rng.next_below(4)) {
    case 0: {
      m = 2 + rng.next_below(opt.max_m - 1);
      family = std::make_shared<ExplicitSigma>(random_closed_family(rng, m));
      kind = "explicit-closure";
      break;
    }
    case 1: {
      m = 2 + rng.next_below(opt.max_m - 1);
      family = std::make_shared<LaminarSigma>(random_laminar(rng, m));
      kind = "laminar";
      break;
    }
    case 2: {
      m = 2 + rng.next_below(opt.max_m - 1);
      family = std::make_shared<PowerSetSigma>(m);
      kind = "powerset";
      break;
    }
    default: {
      const std::size_t w = 1 + rng.next_below(3);
      const std::size_t h = 1 + rng.next_below(3);
      m = w * h;
      family = std::make_shared<RectangleSigma>(GridDomain(w, h));
      kind = "rectangles";
      break;
    }
  }
  const FiniteSet c = random_finite_set(rng, m);
  FiniteSet a = random_finite_set(rng, m);
  FiniteSet b = random_finite_set(rng, m);

  // Ground truth: Def. 3.1 over the materialized K = C (x) Sigma.
  const std::vector<FiniteSet> sets = family->enumerate();
  const SecondLevelKnowledge k = SecondLevelKnowledge::product(c, sets);
  const bool truth = oracle_possibilistic(k, a, b).safe;

  auto complain = [&](const char* what, bool got) {
    if (got == truth) return;
    // The family and C stay fixed; shrink A and B against the full chain.
    auto bad = [&](const FiniteSet& x, const FiniteSet& y) {
      const bool o = oracle_possibilistic(k, x, y).safe;
      IntervalOracle io(family, c);
      return safe_possibilistic(k, x, y) != o ||
             safe_c_sigma(c, *family, x, y) != o ||
             io.safe_all_intervals(x, y) != o ||
             io.safe_minimal_intervals(x, y) != o ||
             io.prepare(x).safe(y) != o;
    };
    auto [sa, sb] = shrink_pair(a, b, bad);
    std::ostringstream os;
    os << what << " says " << (got ? "safe" : "unsafe") << " but Def. 3.1 over "
       << kind << " K says " << (truth ? "safe" : "unsafe") << "; C="
       << c.to_string() << " " << pair_text(a, b) << "; shrunk: "
       << pair_text(sa, sb);
    out.push_back(os.str());
  };

  complain("safe_possibilistic", safe_possibilistic(k, a, b));
  complain("safe_c_sigma (Prop. 3.3)", safe_c_sigma(c, *family, a, b));

  IntervalOracle io(family, c);
  complain("safe_all_intervals (Prop. 4.5)", io.safe_all_intervals(a, b));
  complain("safe_minimal_intervals (Cor. 4.12)",
           io.safe_minimal_intervals(a, b));
  complain("PreparedAudit::safe (Cor. 4.12, amortized)", io.prepare(a).safe(b));

  // Corollary 4.14 where the family is tight: Safe iff beta(w1) subseteq B
  // for every w1 in A cap B.
  if (io.has_tight_intervals()) {
    const auto beta = io.beta(a);
    if (!beta) {
      out.push_back(std::string("tight intervals but no beta map (") + kind +
                    "); " + pair_text(a, b));
    } else {
      bool via_beta = true;
      for (std::size_t w1 = 0; w1 < m && via_beta; ++w1) {
        if (a.contains(w1) && b.contains(w1) &&
            !(*beta)[w1].subset_of(b)) {
          via_beta = false;
        }
      }
      complain("beta margin (Cor. 4.14)", via_beta);
    }
  }
}

// --- Checks 4/5 shared: sampled-family refutation of a Safe verdict ---------

/// A Safe verdict over a prior family is refuted by any sampled member with
/// an exactly positive gap. Returns the violating sample's index.
std::optional<std::size_t> refute_safe(const std::vector<ExactDistribution>& pi,
                                       const WorldSet& a, const WorldSet& b) {
  const ProbOracleResult r = oracle_family(pi, a, b);
  return r.violating_prior;
}

std::vector<ExactDistribution> sample_products(Rng& rng, unsigned n,
                                               std::size_t count) {
  std::vector<ExactDistribution> pi;
  pi.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pi.push_back(random_exact_product(rng, n));
  }
  // For tiny n, the full {0, 1/2, 1}^n parameter grid is cheap and covers
  // every corner the random draw misses.
  if (n <= 3) {
    std::vector<Rational> params(n);
    std::size_t total = 1;
    for (unsigned i = 0; i < n; ++i) total *= 3;
    for (std::size_t q = 0; q < total; ++q) {
      std::size_t rest = q;
      for (unsigned i = 0; i < n; ++i) {
        params[i] = Rational(static_cast<std::int64_t>(rest % 3), 2);
        rest /= 3;
      }
      pi.push_back(ExactDistribution::product(params));
    }
  }
  return pi;
}

// --- Check 4: product-cascade (Pi_m0) ---------------------------------------

void check_product_cascade(Rng& rng, const ModelCheckOptions& opt,
                           Failures& out) {
  const unsigned n = 1 + static_cast<unsigned>(rng.next_below(opt.max_n));
  WorldSet a = random_world_set(rng, n);
  WorldSet b = random_world_set(rng, n);
  const std::uint64_t sample_seed = rng.next_u64();

  const PipelineResult r = run_criteria(product_criteria(), a, b, "exhausted");
  if (r.verdict == Verdict::kSafe) {
    Rng srng(sample_seed);
    const auto pi = sample_products(srng, n, opt.prior_samples);
    if (const auto bad = refute_safe(pi, a, b)) {
      // Shrink against "cascade Safe but some sampled product violates",
      // regenerating the samples at each candidate size from the same seed.
      auto still = [&](const WorldSet& x, const WorldSet& y) {
        if (run_criteria(product_criteria(), x, y, "exhausted").verdict !=
            Verdict::kSafe) {
          return false;
        }
        Rng r2(sample_seed);
        return refute_safe(sample_products(r2, x.n(), opt.prior_samples), x, y)
            .has_value();
      };
      auto [ca, cb] = shrink_coordinates(a, b, still);
      auto [sa, sb] = shrink_pair(ca, cb, still);
      std::ostringstream os;
      os << "product cascade (" << r.criterion << ") claims Safe but exact "
            "product prior #" << *bad << " gains confidence; " << pair_text(a, b)
         << "; shrunk: " << pair_text(sa, sb);
      out.push_back(os.str());
    }
  } else if (r.verdict == Verdict::kUnsafe) {
    // Necessary side: the verdict must come with a witness that really lies
    // in Pi_m0 and really has a positive gap.
    if (r.witness_product) {
      for (const double p : r.witness_product->params()) {
        if (p < 0.0 || p > 1.0) {
          out.push_back("product witness parameter outside [0,1]; " +
                        pair_text(a, b));
          break;
        }
      }
      if (r.witness_product->safety_gap(a, b) <= 0.0) {
        out.push_back("product cascade (" + r.criterion +
                      ") Unsafe witness has non-positive gap; " +
                      pair_text(a, b));
      }
    } else if (r.witness_distribution) {
      if (!is_product(*r.witness_distribution)) {
        out.push_back("product cascade Unsafe witness is not a product "
                      "prior; " + pair_text(a, b));
      } else if (oracle_double_gap(*r.witness_distribution, a, b) <= 0.0) {
        out.push_back("product cascade Unsafe witness has non-positive "
                      "gap; " + pair_text(a, b));
      }
    } else {
      out.push_back("product cascade (" + r.criterion +
                    ") Unsafe without a witness; " + pair_text(a, b));
    }
  }
}

// --- Check 5: supermodular-cascade (Pi_m+) ----------------------------------

void check_supermodular_cascade(Rng& rng, const ModelCheckOptions& opt,
                                Failures& out) {
  const unsigned n =
      1 + static_cast<unsigned>(rng.next_below(std::min(opt.max_n, 4u)));
  WorldSet a = random_world_set(rng, n);
  WorldSet b = random_world_set(rng, n);
  const std::uint64_t sample_seed = rng.next_u64();

  // Pi_m0 subseteq Pi_m+ (Equation (18)): sample both kinds, and self-check
  // the Ising generator against the exact Definition 5.1 test.
  auto sample_family = [&](Rng& srng, unsigned dim) {
    std::vector<ExactDistribution> pi;
    for (std::size_t i = 0; i < opt.prior_samples / 2; ++i) {
      pi.push_back(random_exact_log_supermodular(srng, dim));
      pi.push_back(random_exact_product(srng, dim));
    }
    return pi;
  };
  {
    Rng srng(sample_seed);
    for (const ExactDistribution& p : sample_family(srng, n)) {
      if (!p.is_log_supermodular()) {
        out.push_back("generator produced a prior outside Pi_m+ at n=" +
                      std::to_string(n));
        return;  // the generator is broken; scenario verdicts are meaningless
      }
    }
  }

  const PipelineResult sup =
      run_criteria(supermodular_criteria(), a, b, "exhausted");
  const PipelineResult prod =
      run_criteria(product_criteria(), a, b, "exhausted");

  if (sup.verdict == Verdict::kSafe) {
    Rng srng(sample_seed);
    if (const auto bad = refute_safe(sample_family(srng, n), a, b)) {
      auto still = [&](const WorldSet& x, const WorldSet& y) {
        if (run_criteria(supermodular_criteria(), x, y, "exhausted").verdict !=
            Verdict::kSafe) {
          return false;
        }
        Rng r2(sample_seed);
        return refute_safe(sample_family(r2, x.n()), x, y).has_value();
      };
      auto [ca, cb] = shrink_coordinates(a, b, still);
      auto [sa, sb] = shrink_pair(ca, cb, still);
      std::ostringstream os;
      os << "supermodular cascade (" << sup.criterion << ") claims Safe but "
            "sampled Pi_m+ prior #" << *bad << " gains confidence; "
         << pair_text(a, b) << "; shrunk: " << pair_text(sa, sb);
      out.push_back(os.str());
    }
    // Pi_m0 subseteq Pi_m+: Safe over the superset family implies Safe over
    // products, so a *verified* product-side Unsafe witness is a
    // contradiction.
    if (prod.verdict == Verdict::kUnsafe && prod.witness_product &&
        prod.witness_product->safety_gap(a, b) > 0.0) {
      out.push_back("supermodular cascade Safe but the product cascade holds "
                    "a verified violating product prior (Pi_m0 subseteq "
                    "Pi_m+ broken); " + pair_text(a, b));
    }
  } else if (sup.verdict == Verdict::kUnsafe) {
    if (sup.witness_distribution) {
      if (oracle_double_gap(*sup.witness_distribution, a, b) <= 0.0) {
        out.push_back("supermodular cascade (" + sup.criterion +
                      ") Unsafe witness has non-positive gap; " +
                      pair_text(a, b));
      } else if (!is_log_supermodular(*sup.witness_distribution, 1e-9)) {
        out.push_back("supermodular cascade Unsafe witness lies outside "
                      "Pi_m+; " + pair_text(a, b));
      }
    } else if (sup.witness_product) {
      // Product priors are log-supermodular by Equation (18).
      if (sup.witness_product->safety_gap(a, b) <= 0.0) {
        out.push_back("supermodular cascade (" + sup.criterion +
                      ") Unsafe product witness has non-positive gap; " +
                      pair_text(a, b));
      }
    } else {
      out.push_back("supermodular cascade (" + sup.criterion +
                    ") Unsafe without a witness; " + pair_text(a, b));
    }
  }
}

// --- Check 6: engine-parity -------------------------------------------------

RecordUniverse make_universe(unsigned n) {
  RecordUniverse u;
  for (unsigned i = 0; i < n; ++i) u.add("r" + std::to_string(i));
  return u;
}

void check_engine_parity(Rng& rng, const ModelCheckOptions& opt,
                         Failures& out) {
  static constexpr PriorAssumption kPriors[] = {
      PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
      PriorAssumption::kLogSupermodular, PriorAssumption::kSubcubeKnowledge};
  const PriorAssumption prior = kPriors[rng.next_below(4)];
  const unsigned n = 1 + static_cast<unsigned>(rng.next_below(opt.max_n));
  const WorldSet a = random_world_set(rng, n);
  const WorldSet b = random_world_set(rng, n);

  const Auditor auditor(make_universe(n), prior);
  const AuditFinding d1 = auditor.audit_sets(a, b);
  const AuditFinding d2 = auditor.audit_sets(a, b);
  if (d1.verdict != d2.verdict || d1.method != d2.method ||
      d1.certified != d2.certified) {
    out.push_back("engine decision not deterministic under " +
                  to_string(prior) + "; " + pair_text(a, b));
    return;
  }

  switch (prior) {
    case PriorAssumption::kUnrestricted: {
      const bool safe = oracle_unrestricted_prob(a, b).safe;
      if (!d1.certified || (d1.verdict == Verdict::kSafe) != safe ||
          d1.verdict == Verdict::kUnknown) {
        out.push_back("engine (unrestricted) verdict " +
                      verdict_name(d1.verdict) + " vs oracle " +
                      (safe ? "safe" : "unsafe") + "; " + pair_text(a, b));
      }
      break;
    }
    case PriorAssumption::kProduct:
    case PriorAssumption::kLogSupermodular: {
      // The engine (with projection, SOS, optimizer) and the raw criterion
      // table are independent paths; certified verdicts must never cross.
      const auto& table = prior == PriorAssumption::kProduct
                              ? product_criteria()
                              : supermodular_criteria();
      const PipelineResult r = run_criteria(table, a, b, "exhausted");
      if (r.verdict != Verdict::kUnknown && d1.certified &&
          d1.verdict != Verdict::kUnknown && d1.verdict != r.verdict) {
        out.push_back("engine (" + to_string(prior) + ", " + d1.method +
                      ") says " + verdict_name(d1.verdict) +
                      " but the criterion table (" + r.criterion + ") says " +
                      verdict_name(r.verdict) + "; " + pair_text(a, b));
      }
      // Any certified Safe must survive sampled exact members of the family.
      if (d1.certified && d1.verdict == Verdict::kSafe) {
        Rng srng(bits::hash_combine(fnv1a("engine-samples"), rng.next_u64()));
        std::vector<ExactDistribution> pi =
            sample_products(srng, n, opt.prior_samples);
        if (prior == PriorAssumption::kLogSupermodular) {
          for (std::size_t i = 0; i < opt.prior_samples && n <= 5; ++i) {
            pi.push_back(random_exact_log_supermodular(srng, n));
          }
        }
        if (refute_safe(pi, a, b)) {
          out.push_back("engine (" + to_string(prior) + ", " + d1.method +
                        ") certified Safe refuted by a sampled exact "
                        "prior; " + pair_text(a, b));
        }
      }
      break;
    }
    case PriorAssumption::kSubcubeKnowledge: {
      // Ground truth from Def. 3.1 over the materialized subcube family
      // (3^n knowledge sets, C = Omega).
      const SubcubeSigma sigma(n);
      const SecondLevelKnowledge k = SecondLevelKnowledge::product(
          FiniteSet::universe(sigma.universe_size()), sigma.enumerate());
      const bool safe =
          oracle_possibilistic(k, to_finite(a), to_finite(b)).safe;
      if (d1.verdict == Verdict::kUnknown ||
          (d1.verdict == Verdict::kSafe) != safe) {
        out.push_back("engine (subcube-knowledge, " + d1.method + ") says " +
                      verdict_name(d1.verdict) + " but Def. 3.1 over the "
                      "subcube family says " + (safe ? "safe" : "unsafe") +
                      "; " + pair_text(a, b));
      }
      break;
    }
  }
}

// --- Check 7: service-composition (Def. 3.9 / Prop. 3.10) -------------------

void check_service_composition(Rng& rng, const ModelCheckOptions& opt,
                               Failures& out) {
  (void)opt;
  static constexpr PriorAssumption kPriors[] = {
      PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
      PriorAssumption::kLogSupermodular, PriorAssumption::kSubcubeKnowledge};
  const PriorAssumption prior = kPriors[rng.next_below(4)];
  const unsigned n = 2 + static_cast<unsigned>(rng.next_below(2));
  const RecordUniverse universe = make_universe(n);
  const std::vector<std::string> names = universe.names();
  const std::string audit_query = random_query_text(rng, names, 2);
  const World initial_state =
      static_cast<World>(rng.next_bits(static_cast<unsigned>(n)));

  // A short replayed log for two users.
  static const char* kUsers[] = {"alice", "bob"};
  AuditLog log;
  const std::size_t disclosures = 1 + rng.next_below(5);
  for (std::size_t i = 0; i < disclosures; ++i) {
    log.record_with_answer(kUsers[rng.next_below(2)],
                           random_query_text(rng, names, 2), rng.next_bool());
  }

  // Offline reference: one Auditor over the whole log.
  AuditorOptions options;
  options.threads = 1;
  const Auditor auditor(universe, prior, options);
  const AuditReport report = auditor.audit(log, audit_query);

  // Online: the same log replayed through an AuditService session.
  service::ServiceOptions service_options;
  service_options.auditor = options;
  service_options.workers = 2;
  std::unique_ptr<service::AuditService> svc;
  const Status created = service::AuditService::try_create(
      universe, initial_state, audit_query, prior, service_options, &svc);
  if (!created.ok()) {
    out.push_back("AuditService::try_create rejected a well-formed "
                  "scenario: " + created.to_string() + "; audit query \"" +
                  audit_query + "\"");
    return;
  }

  auto mismatch = [&](const char* which, std::size_t index,
                      const AuditFinding& got, const AuditFinding& want) {
    if (got.verdict == want.verdict && got.method == want.method &&
        got.certified == want.certified && got.detail == want.detail) {
      return;
    }
    std::ostringstream os;
    os << which << " finding #" << index << " diverges from the offline "
       << "auditor under " << to_string(prior) << ": service=("
       << verdict_name(got.verdict) << ", " << got.method << ") offline=("
       << verdict_name(want.verdict) << ", " << want.method
       << "); audit query \"" << audit_query << "\"";
    out.push_back(os.str());
  };

  std::unordered_map<std::string, AuditFinding> last_cumulative;
  for (std::size_t i = 0; i < log.entries().size(); ++i) {
    const Disclosure& entry = log.entries()[i];
    service::AuditRequest request;
    request.user = entry.user;
    request.query_text = entry.query_text;
    request.answer = entry.answer;
    const service::AuditResponse response = svc->process(std::move(request));
    if (!response.status.ok()) {
      out.push_back("service rejected replayed disclosure #" +
                    std::to_string(i) + ": " + response.status.to_string());
      return;
    }
    mismatch("per-disclosure", i, response.disclosure,
             report.per_disclosure[i]);
    last_cumulative[entry.user] = response.cumulative;
  }

  // Prop. 3.10: the session's final cumulative verdict per user must equal
  // the offline per-user conjunction finding...
  for (const AuditFinding& want : report.per_user_cumulative) {
    mismatch("cumulative", 0, last_cumulative.at(want.user), want);
  }
  // ...and, structurally, deciding Safe(A, B1 cap ... cap Bk) directly.
  const WorldSet audit_set = parse_query(audit_query)->compile(universe);
  for (const char* user : kUsers) {
    const auto it = last_cumulative.find(user);
    if (it == last_cumulative.end()) continue;
    WorldSet acc = WorldSet::universe(n);
    for (const Disclosure& entry : log.entries()) {
      if (entry.user == user) acc &= entry.disclosed_set(universe);
    }
    const AuditFinding direct = auditor.audit_sets(audit_set, acc);
    if (direct.verdict != it->second.verdict) {
      out.push_back(std::string("cumulative verdict for ") + user +
                    " differs from a direct decision of the intersected "
                    "disclosures (Prop. 3.10); audit query \"" + audit_query +
                    "\"");
    }
  }

  // --- Incremental vs full-recompute differential -------------------------
  // Two services over the same scenario, one with per-session delta
  // evaluation (the default) and one forced onto the PR 3
  // recompute-every-request path, driven through a random interleaving of
  // disclose / reset_session / replay ops. The contract is byte-identity at
  // *every* step: verdicts, methods, certified flags, details and sequence
  // numbers (cached flags excepted — the incremental path deliberately
  // bypasses the cumulative verdict cache). The `replay` op mirrors a
  // router rebalance: reset both sessions, then re-send the user's logged
  // (query, answer) script, which must land both services back on
  // byte-identical verdicts (Prop. 3.10 makes replay exact).
  service::ServiceOptions recompute_options = service_options;
  recompute_options.incremental_sessions = false;
  std::unique_ptr<service::AuditService> inc_svc;
  std::unique_ptr<service::AuditService> rec_svc;
  if (!service::AuditService::try_create(universe, initial_state, audit_query,
                                         prior, service_options, &inc_svc)
           .ok() ||
      !service::AuditService::try_create(universe, initial_state, audit_query,
                                         prior, recompute_options, &rec_svc)
           .ok()) {
    out.push_back("AuditService::try_create rejected the differential pair; "
                  "audit query \"" + audit_query + "\"");
    return;
  }

  auto diff_step = [&](const char* op, std::size_t step,
                       const service::AuditResponse& inc,
                       const service::AuditResponse& rec) {
    auto finding_equal = [](const AuditFinding& x, const AuditFinding& y) {
      return x.verdict == y.verdict && x.method == y.method &&
             x.certified == y.certified && x.detail == y.detail &&
             x.numeric_gap == y.numeric_gap;
    };
    if (inc.status.code() == rec.status.code() && inc.answer == rec.answer &&
        inc.denied == rec.denied && inc.sequence == rec.sequence &&
        finding_equal(inc.disclosure, rec.disclosure) &&
        finding_equal(inc.cumulative, rec.cumulative)) {
      return;
    }
    std::ostringstream os;
    os << "incremental/recompute divergence at " << op << " step " << step
       << " under " << to_string(prior) << ": incremental=(cum "
       << verdict_name(inc.cumulative.verdict) << ", " << inc.cumulative.method
       << ", seq " << inc.sequence << ") recompute=(cum "
       << verdict_name(rec.cumulative.verdict) << ", " << rec.cumulative.method
       << ", seq " << rec.sequence << "); audit query \"" << audit_query
       << "\"";
    out.push_back(os.str());
  };

  auto send_both = [&](const char* op, std::size_t step,
                       const service::AuditRequest& request) {
    service::AuditRequest inc_request = request;
    service::AuditRequest rec_request = request;
    const service::AuditResponse inc_response =
        inc_svc->process(std::move(inc_request));
    const service::AuditResponse rec_response =
        rec_svc->process(std::move(rec_request));
    diff_step(op, step, inc_response, rec_response);
    return inc_response;
  };

  std::unordered_map<std::string, std::vector<std::pair<std::string, bool>>>
      scripts;
  const std::size_t ops = 3 + rng.next_below(6);
  for (std::size_t step = 0; step < ops; ++step) {
    const std::string user = kUsers[rng.next_below(2)];
    const std::uint64_t kind = rng.next_below(8);
    if (kind < 5) {
      // Disclose: replayed-log mode with a random recorded answer. Repeats
      // of earlier queries are likely at this query size, exercising the
      // unchanged-S fast path against recompute.
      service::AuditRequest request;
      request.user = user;
      request.query_text = random_query_text(rng, names, 2);
      request.answer = rng.next_bool();
      const service::AuditResponse response =
          send_both("disclose", step, request);
      if (response.status.ok()) {
        scripts[user].emplace_back(request.query_text, *request.answer);
      }
    } else if (kind < 6) {
      // Reset: both sessions forget; incremental state must die with them.
      inc_svc->reset_session(user);
      rec_svc->reset_session(user);
      scripts[user].clear();
    } else {
      // Replay: a rebalance in miniature — reset, then re-send the script.
      inc_svc->reset_session(user);
      rec_svc->reset_session(user);
      const auto script = scripts[user];  // copy: send_both appends nothing
      for (std::size_t k = 0; k < script.size(); ++k) {
        service::AuditRequest request;
        request.user = user;
        request.query_text = script[k].first;
        request.answer = script[k].second;
        const service::AuditResponse response =
            send_both("replay", step * 100 + k, request);
        if (response.sequence != k + 1) {
          out.push_back("replayed sequence numbers restarted wrong: got " +
                        std::to_string(response.sequence) + " want " +
                        std::to_string(k + 1) + "; audit query \"" +
                        audit_query + "\"");
        }
      }
    }
  }

  // Endgame: every user's cumulative verdict must equal a direct decision
  // of their surviving script's intersection (Prop. 3.10), on both axes.
  for (const char* user : kUsers) {
    const auto it = scripts.find(user);
    if (it == scripts.end() || it->second.empty()) continue;
    WorldSet acc = WorldSet::universe(n);
    for (const auto& [query_text, answer] : it->second) {
      WorldSet satisfying = parse_query(query_text)->compile(universe);
      acc &= answer ? satisfying : ~satisfying;
    }
    const AuditFinding direct = auditor.audit_sets(audit_set, acc);
    service::AuditRequest probe;
    probe.user = user;
    probe.query_text = it->second.back().first;
    probe.answer = it->second.back().second;
    const service::AuditResponse last = send_both("endgame", 0, probe);
    if (last.status.ok() && direct.verdict != last.cumulative.verdict) {
      out.push_back(std::string("incremental cumulative verdict for ") + user +
                    " differs from the direct Prop. 3.10 decision; audit "
                    "query \"" + audit_query + "\"");
    }
  }
}

// --- Check 8: fused-kernels -------------------------------------------------

void check_fused_kernels(Rng& rng, const ModelCheckOptions& opt,
                         Failures& out) {
  (void)opt;
  // Universe sizes straddle the 64-bit word boundary on the FiniteSet side.
  const std::size_t m = 1 + rng.next_below(80);
  const FiniteSet s = random_finite_set(rng, m);
  const FiniteSet fb = random_finite_set(rng, m);
  const FiniteSet fa = random_finite_set(rng, m);

  bool subset = true, inter_subset = true, disjoint = true, cover = true;
  std::size_t inter_count = 0;
  for (std::size_t e = 0; e < m; ++e) {
    const bool in_s = s.contains(e), in_a = fa.contains(e),
               in_b = fb.contains(e);
    if (in_s && !in_a) subset = false;
    if (in_s && in_b && !in_a) inter_subset = false;
    if (in_s && in_b && in_a) disjoint = false;
    if (in_s && in_b) ++inter_count;
    if (!in_s && !in_b) cover = false;
  }
  if (s.subset_of(fa) != subset ||
      intersection_subset_of(s, fb, fa) != inter_subset ||
      intersection_count(s, fb) != inter_count ||
      intersection_disjoint(s, fb, fa) != disjoint ||
      union_is_universe(s, fb) != cover) {
    out.push_back("a FiniteSet fused kernel disagrees with the per-element "
                  "loop; m=" + std::to_string(m) + " S=" + s.to_string() +
                  " B=" + fb.to_string() + " A=" + fa.to_string());
  }

  const unsigned n = 1 + static_cast<unsigned>(rng.next_below(6));
  const WorldSet ws = random_world_set(rng, n);
  const WorldSet wb = random_world_set(rng, n);
  const WorldSet wa = random_world_set(rng, n);
  bool w_inter_subset = true, w_cover = true;
  std::size_t w_count = 0;
  for (std::size_t w = 0; w < ws.omega_size(); ++w) {
    const World world = static_cast<World>(w);
    const bool in_s = ws.contains(world), in_a = wa.contains(world),
               in_b = wb.contains(world);
    if (in_s && in_b && !in_a) w_inter_subset = false;
    if (in_s && in_b) ++w_count;
    if (!in_s && !in_b) w_cover = false;
  }
  if (intersection_subset_of(ws, wb, wa) != w_inter_subset ||
      intersection_count(ws, wb) != w_count ||
      union_is_universe(ws, wb) != w_cover) {
    out.push_back("a WorldSet fused kernel disagrees with the per-element "
                  "loop; " + pair_text(ws, wb));
  }

  // ISA-tier parity: every SIMD table available on this host must return
  // bit-identical results to the scalar reference — verdicts, counts, AND
  // the double weight sums (compared with exact ==; the SIMD paths keep the
  // ascending scalar accumulation order so this must hold exactly). Word
  // counts are drawn past the dispatch threshold and off the 4/8-word block
  // boundaries so the vector main loops and the scalar tails both run.
  {
    const std::size_t nw = bits::kIsaDispatchWords + rng.next_below(16);
    const std::size_t bits_m = nw * bits::kWordBits - rng.next_below(bits::kWordBits);
    std::vector<bits::Word> xs(nw), ys(nw), zs(nw);
    std::vector<double> weights(nw * bits::kWordBits);
    for (std::size_t i = 0; i < nw; ++i) {
      // Mix dense, sparse and zero words so the zero-block skips, the
      // early-exit branches and the all-ones universe path all trigger.
      const auto word = [&rng]() -> bits::Word {
        switch (rng.next_below(4)) {
          case 0: return 0;
          case 1: return ~bits::Word{0};
          case 2: return rng.next_u64() & rng.next_u64() & rng.next_u64();
          default: return rng.next_u64();
        }
      };
      xs[i] = word();
      ys[i] = word();
      zs[i] = word();
    }
    const bits::Word tail = bits::tail_mask(bits_m);
    xs[nw - 1] &= tail;
    ys[nw - 1] &= tail;
    zs[nw - 1] &= tail;
    for (double& weight : weights) weight = rng.next_double();

    const bits::Isa* ref = bits::isa_for(bits::IsaTier::kScalar);
    for (bits::IsaTier tier :
         {bits::IsaTier::kScalar, bits::IsaTier::kAvx2, bits::IsaTier::kAvx512}) {
      const bits::Isa* isa = bits::isa_for(tier);
      if (isa == nullptr) continue;  // tier not runnable on this host
      const bool ok =
          isa->count(xs.data(), nw) == ref->count(xs.data(), nw) &&
          isa->subset_of(xs.data(), ys.data(), nw) ==
              ref->subset_of(xs.data(), ys.data(), nw) &&
          isa->disjoint(xs.data(), ys.data(), nw) ==
              ref->disjoint(xs.data(), ys.data(), nw) &&
          isa->intersection_subset_of(xs.data(), ys.data(), zs.data(), nw) ==
              ref->intersection_subset_of(xs.data(), ys.data(), zs.data(), nw) &&
          isa->intersection_count(xs.data(), ys.data(), nw) ==
              ref->intersection_count(xs.data(), ys.data(), nw) &&
          isa->intersection3_empty(xs.data(), ys.data(), zs.data(), nw) ==
              ref->intersection3_empty(xs.data(), ys.data(), zs.data(), nw) &&
          isa->union_is_universe(xs.data(), ys.data(), nw, bits_m) ==
              ref->union_is_universe(xs.data(), ys.data(), nw, bits_m) &&
          isa->masked_weight_sum(xs.data(), nw, weights.data()) ==
              ref->masked_weight_sum(xs.data(), nw, weights.data()) &&
          isa->intersection_weight_sum(xs.data(), ys.data(), nw,
                                       weights.data()) ==
              ref->intersection_weight_sum(xs.data(), ys.data(), nw,
                                           weights.data());
      if (!ok) {
        out.push_back(std::string("ISA tier ") + isa->name +
                      " disagrees with the scalar reference on a fused "
                      "kernel; nw=" + std::to_string(nw) +
                      " m=" + std::to_string(bits_m));
      }
    }
  }
}

void check_backend_parity(Rng& rng, const ModelCheckOptions& opt,
                          Failures& out) {
  // The symbolic subcube-cover backend must be observationally identical to
  // the dense bitset backend: same set algebra, same fused predicates, same
  // engine verdicts (method and detail strings included — the auditor's
  // reports must not depend on the representation).
  const unsigned n = 1 + static_cast<unsigned>(rng.next_below(opt.max_n));
  const WorldSet a = random_world_set(rng, n);
  const WorldSet b = random_world_set(rng, n);
  const WorldSet c = random_world_set(rng, n);
  const WorldSet sa = a.symbolized();
  const WorldSet sb = b.symbolized();
  const WorldSet sc = c.symbolized();

  if (sa.densified() != a || sb.densified() != b) {
    out.push_back("dense -> symbolic -> dense round-trip lost worlds; " +
                  pair_text(a, b));
    return;
  }
  if (sa.count() != a.count() || sa.is_empty() != a.is_empty() ||
      sa.is_universe() != a.is_universe() ||
      (!a.is_empty() && sa.min_world() != a.min_world())) {
    out.push_back("symbolic cardinality/extrema disagree with dense; " +
                  pair_text(a, b));
    return;
  }
  if ((sa & sb) != (a & b) || (sa | sb) != (a | b) || (sa - sb) != (a - b) ||
      (sa ^ sb) != (a ^ b) || ~sa != ~a) {
    out.push_back("symbolic Boolean algebra disagrees with dense; " +
                  pair_text(a, b));
    return;
  }
  if (sa.subset_of(sb) != a.subset_of(b) ||
      sa.disjoint_with(sb) != a.disjoint_with(b) || (sa == sb) != (a == b)) {
    out.push_back("symbolic comparisons disagree with dense; " + pair_text(a, b));
    return;
  }
  if (intersection_subset_of(sa, sb, sc) != intersection_subset_of(a, b, c) ||
      intersection_count(sa, sb) != intersection_count(a, b) ||
      intersection3_empty(sa, sb, sc) != intersection3_empty(a, b, c) ||
      union_is_universe(sa, sb) != union_is_universe(a, b)) {
    out.push_back("a fused predicate disagrees across backends; " +
                  pair_text(a, b));
    return;
  }
  if (sa.hash() != (a.symbolized()).hash() ||
      sa.hash() != WorldSet::from_cover(sa.cover()).hash()) {
    out.push_back("symbolic hash not stable across copies; " + pair_text(a, b));
    return;
  }

  // Engine parity: one prior per case, like check_engine_parity. Every
  // prior accepts symbolic inputs (non-unrestricted ones densify at this n).
  static constexpr PriorAssumption kPriors[] = {
      PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
      PriorAssumption::kLogSupermodular, PriorAssumption::kSubcubeKnowledge};
  const PriorAssumption prior = kPriors[rng.next_below(4)];
  const Auditor auditor(make_universe(n), prior);
  const AuditFinding dense = auditor.audit_sets(a, b);
  const AuditFinding symbolic = auditor.audit_sets(sa, sb);
  if (dense.verdict != symbolic.verdict || dense.method != symbolic.method ||
      dense.certified != symbolic.certified ||
      dense.detail != symbolic.detail) {
    out.push_back(
        "engine (" + to_string(prior) + ") verdicts diverge across backends: "
        "dense " + verdict_name(dense.verdict) + "/" + dense.method +
        " [" + dense.detail + "] vs symbolic " +
        verdict_name(symbolic.verdict) + "/" + symbolic.method + " [" +
        symbolic.detail + "]; " + pair_text(a, b));
  }
}

// --- Check 10: workload-parity ----------------------------------------------
// Every registered workload family, generated at sweep-friendly sizes, must
// (a) regenerate byte-identically from the same options, (b) satisfy its own
// declared shape, and (c) replay through AuditService incremental sessions
// onto findings byte-identical to the offline Auditor over the same log —
// the named-family analogue of check_service_composition, run on traffic the
// engine was NOT tuned on.

void check_workload_parity(Rng& rng, const ModelCheckOptions& opt,
                           Failures& out) {
  (void)opt;
  const std::vector<const workloads::WorkloadFamily*>& families =
      workloads::all_families();
  const workloads::WorkloadFamily& family =
      *families[rng.next_below(families.size())];

  workloads::FamilyOptions family_options;
  family_options.seed = rng.next_u64();
  family_options.requests = 3 + static_cast<unsigned>(rng.next_below(8));
  family_options.users = 1 + static_cast<unsigned>(rng.next_below(3));
  if (family.name() == "policy") {
    family_options.records = 3 + static_cast<unsigned>(rng.next_below(6));
    family_options.requests += 4;  // longer sessions are the family's point
  } else if (family.name() == "collusion") {
    family_options.records = 4 + static_cast<unsigned>(rng.next_below(5));
    family_options.users = 2 + static_cast<unsigned>(rng.next_below(2));
    family_options.requests = std::max(4u, family_options.requests);
  } else if (family.name() == "rectangles") {
    // Mostly small dense grids; one case in eight crosses the dense wall so
    // the symbolic service path sees family traffic too.
    static constexpr unsigned kDenseCells[] = {4, 6, 8, 9, 10, 12};
    family_options.records =
        rng.next_below(8) == 0
            ? 27 + static_cast<unsigned>(rng.next_below(6))
            : kDenseCells[rng.next_below(6)];
  } else {
    family_options.records = 3 + static_cast<unsigned>(rng.next_below(4));
  }

  const std::string tag = "family '" + std::string(family.name()) +
                          "' (seed " + std::to_string(family_options.seed) +
                          ", records " + std::to_string(family_options.records) +
                          ", requests " +
                          std::to_string(family_options.requests) + ", users " +
                          std::to_string(family_options.users) + ")";

  workloads::GeneratedWorkload workload;
  if (Status generated = family.generate(family_options, &workload);
      !generated.ok()) {
    out.push_back(tag + " failed to generate: " + generated.to_string());
    return;
  }
  if (Status valid = workloads::validate_workload(family, workload);
      !valid.ok()) {
    out.push_back(tag + " violates its declared shape: " + valid.to_string());
    return;
  }

  // Determinism: the same options must reproduce the instance byte for byte.
  workloads::GeneratedWorkload again;
  if (!family.generate(family_options, &again).ok() ||
      again.initial_state != workload.initial_state ||
      again.universe.names() != workload.universe.names() ||
      again.audit_queries != workload.audit_queries ||
      again.stream.size() != workload.stream.size()) {
    out.push_back(tag + " is not deterministic (scenario drifted)");
    return;
  }
  for (std::size_t i = 0; i < workload.stream.size(); ++i) {
    if (again.stream[i].user != workload.stream[i].user ||
        again.stream[i].query_text != workload.stream[i].query_text ||
        again.stream[i].answer != workload.stream[i].answer) {
      out.push_back(tag + " is not deterministic (stream entry #" +
                    std::to_string(i) + " drifted)");
      return;
    }
  }

  // Offline reference: one batch audit of the whole log.
  AuditorOptions auditor_options;
  auditor_options.threads = 1;
  const Auditor auditor(workload.universe, workload.prior, auditor_options);
  const AuditLog log = workload.to_log();
  const std::size_t audits = std::min<std::size_t>(2, workload.audit_queries.size());
  const std::span<const std::string> audit_queries(workload.audit_queries.data(),
                                                   audits);
  std::vector<AuditReport> reports;
  if (Status audited = auditor.try_audit_many(log, audit_queries, &reports);
      !audited.ok()) {
    out.push_back(tag + " offline audit failed: " + audited.to_string());
    return;
  }

  // Service replay, one incremental-session service per audited property.
  for (std::size_t a = 0; a < audits; ++a) {
    service::ServiceOptions service_options;
    service_options.auditor = auditor_options;
    service_options.workers = 2;
    std::unique_ptr<service::AuditService> svc;
    if (Status created = service::AuditService::try_create(
            workload.universe, workload.initial_state,
            workload.audit_queries[a], workload.prior, service_options, &svc);
        !created.ok()) {
      out.push_back(tag + ": AuditService::try_create rejected audit query \"" +
                    workload.audit_queries[a] + "\": " + created.to_string());
      return;
    }
    const AuditReport& report = reports[a];
    auto mismatch = [&](const char* which, std::size_t index,
                        const AuditFinding& got, const AuditFinding& want) {
      if (got.verdict == want.verdict && got.method == want.method &&
          got.certified == want.certified && got.detail == want.detail) {
        return;
      }
      std::ostringstream os;
      os << tag << ": " << which << " finding #" << index
         << " diverges from the offline auditor under "
         << to_string(workload.prior) << ": service=("
         << verdict_name(got.verdict) << ", " << got.method << ") offline=("
         << verdict_name(want.verdict) << ", " << want.method
         << "); audit query \"" << workload.audit_queries[a] << "\"";
      out.push_back(os.str());
    };

    std::unordered_map<std::string, AuditFinding> last_cumulative;
    for (std::size_t i = 0; i < workload.stream.size(); ++i) {
      const workloads::StreamRequest& entry = workload.stream[i];
      service::AuditRequest request;
      request.user = entry.user;
      request.query_text = entry.query_text;
      request.answer = entry.answer;
      const service::AuditResponse response = svc->process(std::move(request));
      if (!response.status.ok()) {
        out.push_back(tag + ": service rejected replayed request #" +
                      std::to_string(i) + ": " + response.status.to_string());
        return;
      }
      mismatch("per-disclosure", i, response.disclosure,
               report.per_disclosure[i]);
      last_cumulative[entry.user] = response.cumulative;
    }
    for (const AuditFinding& want : report.per_user_cumulative) {
      mismatch("cumulative", 0, last_cumulative.at(want.user), want);
    }
  }
}

// --- Driver -----------------------------------------------------------------

struct Check {
  const char* name;
  void (*fn)(Rng&, const ModelCheckOptions&, Failures&);
};

constexpr Check kChecks[] = {
    {"possibilistic-unrestricted", check_possibilistic_unrestricted},
    {"probabilistic-unrestricted", check_probabilistic_unrestricted},
    {"sigma-intervals", check_sigma_intervals},
    {"product-cascade", check_product_cascade},
    {"supermodular-cascade", check_supermodular_cascade},
    {"engine-parity", check_engine_parity},
    {"service-composition", check_service_composition},
    {"fused-kernels", check_fused_kernels},
    {"backend-parity", check_backend_parity},
    {"workload-parity", check_workload_parity},
};

}  // namespace

std::vector<std::string> check_names() {
  std::vector<std::string> names;
  for (const Check& c : kChecks) names.emplace_back(c.name);
  return names;
}

ModelCheckReport run_model_check(const ModelCheckOptions& options,
                                 std::ostream* progress) {
  ModelCheckReport report;
  for (const Check& check : kChecks) {
    if (!options.only_check.empty() && options.only_check != check.name) {
      continue;
    }
    CheckSummary summary;
    summary.name = check.name;
    const std::uint64_t first = options.only_case.value_or(0);
    const std::uint64_t last =
        options.only_case ? *options.only_case + 1 : options.cases_per_check;
    for (std::uint64_t i = first; i < last; ++i) {
      Rng rng = case_rng(options.seed, check.name, i);
      Failures failures;
      check.fn(rng, options, failures);
      ++summary.cases;
      for (std::string& description : failures) {
        ++summary.failures;
        CheckFailure failure;
        failure.check = check.name;
        failure.case_index = i;
        failure.description =
            std::move(description) + "; repro: epi_modelcheck --seed=" +
            std::to_string(options.seed) + " --check=" + check.name +
            " --case=" + std::to_string(i);
        report.failures.push_back(std::move(failure));
      }
      if (summary.failures >= options.max_failures_per_check) break;
    }
    report.total_cases += summary.cases;
    if (progress) {
      *progress << check.name << ": " << summary.cases << " cases, "
                << summary.failures << " failures" << std::endl;
    }
    report.summaries.push_back(std::move(summary));
  }
  return report;
}

}  // namespace testing
}  // namespace epi
