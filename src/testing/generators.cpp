#include "testing/generators.h"

#include <algorithm>
#include <stdexcept>

namespace epi {
namespace testing {
namespace {

/// Shared density palette: the first entries are the exact corners the
/// uniform sampler essentially never hits.
enum class SetShape {
  kEmpty,
  kUniverse,
  kSingleton,
  kCoSingleton,
  kBernoulli,  // density drawn from {0.1, 0.3, 0.5, 0.7, 0.9}
};

SetShape random_shape(Rng& rng) {
  switch (rng.next_below(10)) {
    case 0: return SetShape::kEmpty;
    case 1: return SetShape::kUniverse;
    case 2: return SetShape::kSingleton;
    case 3: return SetShape::kCoSingleton;
    default: return SetShape::kBernoulli;
  }
}

double random_density(Rng& rng) {
  static constexpr double kDensities[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  return kDensities[rng.next_below(5)];
}

}  // namespace

FiniteSet random_finite_set(Rng& rng, std::size_t m) {
  switch (random_shape(rng)) {
    case SetShape::kEmpty: return FiniteSet::empty(m);
    case SetShape::kUniverse: return FiniteSet::universe(m);
    case SetShape::kSingleton: return FiniteSet::singleton(m, rng.next_below(m));
    case SetShape::kCoSingleton: {
      FiniteSet s = FiniteSet::universe(m);
      s.erase(rng.next_below(m));
      return s;
    }
    case SetShape::kBernoulli: break;
  }
  return FiniteSet::random(m, rng, random_density(rng));
}

WorldSet random_world_set(Rng& rng, unsigned n) {
  switch (random_shape(rng)) {
    case SetShape::kEmpty: return WorldSet::empty(n);
    case SetShape::kUniverse: return WorldSet::universe(n);
    case SetShape::kSingleton:
      return WorldSet::singleton(
          n, static_cast<World>(rng.next_below(std::size_t{1} << n)));
    case SetShape::kCoSingleton: {
      WorldSet s = WorldSet::universe(n);
      s.erase(static_cast<World>(rng.next_below(std::size_t{1} << n)));
      return s;
    }
    case SetShape::kBernoulli: break;
  }
  return WorldSet::random(n, rng, random_density(rng));
}

std::vector<FiniteSet> random_closed_family(Rng& rng, std::size_t m) {
  std::vector<FiniteSet> members;
  members.push_back(FiniteSet::universe(m));
  const std::size_t extra = 1 + rng.next_below(5);
  for (std::size_t i = 0; i < extra; ++i) {
    FiniteSet s = random_finite_set(rng, m);
    if (s.is_empty()) continue;  // empty knowledge is inconsistent (Rem. 2.3)
    if (std::find(members.begin(), members.end(), s) == members.end()) {
      members.push_back(std::move(s));
    }
  }
  // Close under pairwise intersection (fixpoint): Definition 4.3's property,
  // constructed rather than assumed.
  bool grew = true;
  while (grew) {
    grew = false;
    const std::size_t count = members.size();
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t j = i + 1; j < count; ++j) {
        FiniteSet meet = members[i] & members[j];
        if (meet.is_empty()) continue;
        if (std::find(members.begin(), members.end(), meet) == members.end()) {
          members.push_back(std::move(meet));
          grew = true;
        }
      }
    }
  }
  return members;
}

namespace {

void split_group(LaminarSigma& tree, LaminarSigma::NodeId node,
                 const FiniteSet& members, Rng& rng) {
  const std::size_t count = members.count();
  if (count <= 1) return;
  if (rng.next_below(4) == 0) return;  // stop early with probability 1/4
  // Partition the members into two non-empty halves at a random pivot.
  const std::vector<std::size_t> elements = members.to_vector();
  const std::size_t pivot = 1 + rng.next_below(count - 1);
  FiniteSet left(members.universe_size());
  FiniteSet right(members.universe_size());
  for (std::size_t i = 0; i < elements.size(); ++i) {
    (i < pivot ? left : right).insert(elements[i]);
  }
  const auto left_id = tree.add_group(node, left);
  const auto right_id = tree.add_group(node, right);
  split_group(tree, left_id, left, rng);
  split_group(tree, right_id, right, rng);
}

}  // namespace

LaminarSigma random_laminar(Rng& rng, std::size_t m) {
  LaminarSigma tree(m);
  split_group(tree, LaminarSigma::kRoot, FiniteSet::universe(m), rng);
  return tree;
}

ExactDistribution random_exact_distribution(Rng& rng, unsigned n) {
  const std::size_t size = std::size_t{1} << n;
  std::vector<std::int64_t> numerators(size);
  std::int64_t total = 0;
  for (std::int64_t& v : numerators) {
    v = static_cast<std::int64_t>(rng.next_below(17));
    total += v;
  }
  if (total == 0) {
    numerators[rng.next_below(size)] = 1;
    total = 1;
  }
  std::vector<Rational> weights;
  weights.reserve(size);
  for (const std::int64_t v : numerators) weights.emplace_back(v, total);
  return ExactDistribution(n, std::move(weights));
}

std::vector<Rational> random_rational_params(Rng& rng, unsigned n) {
  std::vector<Rational> params;
  params.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    params.emplace_back(static_cast<std::int64_t>(rng.next_below(9)), 8);
  }
  return params;
}

ExactDistribution random_exact_product(Rng& rng, unsigned n) {
  return ExactDistribution::product(random_rational_params(rng, n));
}

ExactDistribution random_exact_log_supermodular(Rng& rng, unsigned n) {
  if (n > 5) {
    throw std::invalid_argument(
        "random_exact_log_supermodular: n > 5 risks rational overflow");
  }
  // Fields f_i in {1/2, 1, 3/2, 2}; couplings g_ij in {1, 3/2, 2} (>= 1,
  // which is what makes log w supermodular).
  static const Rational kFields[] = {Rational(1, 2), Rational(1),
                                     Rational(3, 2), Rational(2)};
  static const Rational kCouplings[] = {Rational(1), Rational(3, 2),
                                        Rational(2)};
  std::vector<Rational> f(n);
  for (Rational& v : f) v = kFields[rng.next_below(4)];
  std::vector<std::vector<Rational>> g(n, std::vector<Rational>(n, Rational(1)));
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = i + 1; j < n; ++j) {
      g[i][j] = kCouplings[rng.next_below(3)];
    }
  }
  const std::size_t size = std::size_t{1} << n;
  std::vector<Rational> weights(size, Rational(1));
  Rational total;
  for (std::size_t w = 0; w < size; ++w) {
    for (unsigned i = 0; i < n; ++i) {
      if (!world_bit(static_cast<World>(w), i)) continue;
      weights[w] *= f[i];
      for (unsigned j = i + 1; j < n; ++j) {
        if (world_bit(static_cast<World>(w), j)) weights[w] *= g[i][j];
      }
    }
    total += weights[w];
  }
  for (Rational& v : weights) v /= total;
  return ExactDistribution(n, std::move(weights));
}

std::string random_query_text(Rng& rng, const std::vector<std::string>& records,
                              unsigned depth) {
  if (records.empty()) {
    throw std::invalid_argument("random_query_text: no records");
  }
  // Leaves: atoms dominate, with the occasional constant and counting query.
  if (depth == 0 || rng.next_below(3) == 0) {
    switch (rng.next_below(8)) {
      case 0: return "true";
      case 1: return "false";
      case 2:
      case 3: {
        // atleast/atmost over a random non-empty prefix-shuffled subset.
        const bool least = rng.next_bool();
        const std::size_t count = 1 + rng.next_below(records.size());
        const std::vector<std::size_t> perm = rng.permutation(records.size());
        std::string text = least ? "atleast(" : "atmost(";
        text += std::to_string(rng.next_below(count + 1));
        for (std::size_t i = 0; i < count; ++i) {
          text += ", " + records[perm[i]];
        }
        return text + ")";
      }
      default: return records[rng.next_below(records.size())];
    }
  }
  switch (rng.next_below(4)) {
    case 0: return "!" + random_query_text(rng, records, depth - 1);
    case 1:
      return "(" + random_query_text(rng, records, depth - 1) + " & " +
             random_query_text(rng, records, depth - 1) + ")";
    case 2:
      return "(" + random_query_text(rng, records, depth - 1) + " | " +
             random_query_text(rng, records, depth - 1) + ")";
    default:
      return "(" + random_query_text(rng, records, depth - 1) + " -> " +
             random_query_text(rng, records, depth - 1) + ")";
  }
}

FiniteSet drop_world(const FiniteSet& s, std::size_t dropped) {
  if (s.universe_size() < 2 || dropped >= s.universe_size()) {
    throw std::invalid_argument("drop_world: bad universe or element");
  }
  FiniteSet out(s.universe_size() - 1);
  for (std::size_t e = 0; e < s.universe_size(); ++e) {
    if (e == dropped || !s.contains(e)) continue;
    out.insert(e < dropped ? e : e - 1);
  }
  return out;
}

WorldSet restrict_coordinate(const WorldSet& s, unsigned i) {
  if (s.n() < 2 || i >= s.n()) {
    throw std::invalid_argument("restrict_coordinate: bad n or coordinate");
  }
  WorldSet out(s.n() - 1);
  const World low_mask = (World{1} << i) - 1;
  s.visit([&](World w) {
    if (world_bit(w, i)) return;  // keep the coordinate-0 slice only
    out.insert((w & low_mask) | ((w >> (i + 1)) << i));
  });
  return out;
}

}  // namespace testing
}  // namespace epi
