// Seeded random scenario generators for the model-checking harness, plus the
// deterministic shrinker that reduces a failing case to a minimal
// counterexample. Everything is a pure function of the epi::Rng handed in,
// so a (seed, case) pair replays bit-identically across runs and platforms
// (docs/testing.md shows the CLI repro workflow).
//
// The generators deliberately over-sample the degenerate corners (empty set,
// full universe, singletons, complements) where quantifier slips in the
// criteria hide: a uniform-density sampler almost never produces A ∪ B =
// Omega, which is half of Theorem 3.11.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "possibilistic/laminar.h"
#include "probabilistic/exact.h"
#include "util/rng.h"
#include "worlds/finite_set.h"
#include "worlds/world_set.h"

namespace epi {
namespace testing {

// --- Random sets ------------------------------------------------------------

/// A random subset of {0,...,m-1} drawn from a palette of densities that
/// includes the exact corners: empty, universe, singleton, co-singleton, and
/// Bernoulli densities {0.1, 0.3, 0.5, 0.7, 0.9}.
FiniteSet random_finite_set(Rng& rng, std::size_t m);

/// Same palette over Omega = {0,1}^n.
WorldSet random_world_set(Rng& rng, unsigned n);

// --- Random knowledge families ---------------------------------------------

/// A random intersection-closed explicit family over {0,...,m-1}: a handful
/// of random member sets (universe always included, so every world has at
/// least one admissible knowledge set), closed under pairwise intersection.
std::vector<FiniteSet> random_closed_family(Rng& rng, std::size_t m);

/// A random laminar hierarchy over {0,...,m-1}: recursively partitions
/// random groups until they reach singleton size or the coin says stop.
LaminarSigma random_laminar(Rng& rng, std::size_t m);

// --- Random exact-rational priors -------------------------------------------

/// A random exact distribution over {0,1}^n: integer weights in [0, 16]
/// (at least one positive) over denominator = their sum.
ExactDistribution random_exact_distribution(Rng& rng, unsigned n);

/// Random Bernoulli parameters in {0, 1/8, ..., 8/8} for a product prior.
std::vector<Rational> random_rational_params(Rng& rng, unsigned n);

/// A random member of Pi_m0: the exact product prior over
/// random_rational_params.
ExactDistribution random_exact_product(Rng& rng, unsigned n);

/// A random member of Pi_m+ with exact rational weights: a multiplicative
/// Ising model w(omega) = prod_i f_i^{omega_i} * prod_{i<j} g_ij^{omega_i
/// omega_j} with rational f_i > 0 and couplings g_ij >= 1, normalized
/// exactly. log w is supermodular because every pairwise coupling is
/// nonneg., so the distribution is log-supermodular (Definition 5.1); the
/// modelcheck suite re-verifies via ExactDistribution::is_log_supermodular.
/// Requires n <= 5 to keep the 64-bit rationals far from overflow.
ExactDistribution random_exact_log_supermodular(Rng& rng, unsigned n);

// --- Random queries ---------------------------------------------------------

/// A random query string over the given record names, drawn from the
/// db/parser.h grammar (atoms, !, &, |, ->, true/false, atleast/atmost).
/// Always parseable; depth is bounded by `depth`.
std::string random_query_text(Rng& rng, const std::vector<std::string>& records,
                              unsigned depth = 3);

// --- Deterministic shrinking ------------------------------------------------

/// Greedily removes elements from (a, b) while `still_fails(a, b)` holds,
/// lowest elements first, until no single-element removal keeps the failure
/// alive. Deterministic: the result depends only on the inputs. SetT is
/// FiniteSet or WorldSet (anything with to_vector / erase / contains).
template <typename SetT, typename Pred>
std::pair<SetT, SetT> shrink_pair(SetT a, SetT b, Pred&& still_fails) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (SetT* side : {&a, &b}) {
      for (const auto e : side->to_vector()) {
        SetT saved = *side;
        side->erase(e);
        if (still_fails(a, b)) {
          progress = true;  // keep the smaller set
        } else {
          *side = std::move(saved);
        }
      }
    }
  }
  return {std::move(a), std::move(b)};
}

/// Re-indexes `s` into a universe with element `dropped` removed (elements
/// above shift down by one). Helper for shrink_universe.
FiniteSet drop_world(const FiniteSet& s, std::size_t dropped);

/// The half of Omega = {0,1}^n with coordinate `i` equal to 0, re-indexed
/// into {0,1}^(n-1). Helper for shrink_coordinates.
WorldSet restrict_coordinate(const WorldSet& s, unsigned i);

/// Shrinks the *universe* of a failing FiniteSet pair: repeatedly drops any
/// single world whose removal keeps `still_fails(a', b')` true (highest
/// world first, deterministic). The predicate must accept pairs over any
/// universe size.
template <typename Pred>
std::pair<FiniteSet, FiniteSet> shrink_universe(FiniteSet a, FiniteSet b,
                                                Pred&& still_fails) {
  bool progress = true;
  while (progress && a.universe_size() > 1) {
    progress = false;
    for (std::size_t e = a.universe_size(); e-- > 0;) {
      FiniteSet na = drop_world(a, e);
      FiniteSet nb = drop_world(b, e);
      if (still_fails(na, nb)) {
        a = std::move(na);
        b = std::move(nb);
        progress = true;
        break;  // universe size changed; restart the scan
      }
    }
  }
  return {std::move(a), std::move(b)};
}

/// Shrinks the *dimension* of a failing WorldSet pair: repeatedly projects
/// out any coordinate (fixing it to 0) whose removal keeps the failure
/// alive. The predicate must accept pairs of any n >= 1.
template <typename Pred>
std::pair<WorldSet, WorldSet> shrink_coordinates(WorldSet a, WorldSet b,
                                                 Pred&& still_fails) {
  bool progress = true;
  while (progress && a.n() > 1) {
    progress = false;
    for (unsigned i = a.n(); i-- > 0;) {
      WorldSet na = restrict_coordinate(a, i);
      WorldSet nb = restrict_coordinate(b, i);
      if (still_fails(na, nb)) {
        a = std::move(na);
        b = std::move(nb);
        progress = true;
        break;
      }
    }
  }
  return {std::move(a), std::move(b)};
}

}  // namespace testing
}  // namespace epi
