#include "testing/oracle.h"

#include <stdexcept>

namespace epi {
namespace testing {
namespace {

/// Def. 3.1's per-pair test, written as plain element loops so the oracle
/// shares nothing with the fused intersection_subset_of kernel it checks:
/// omega in B, (S ∩ B) ⊆ A, and S ⊄ A.
bool pair_violates(std::size_t world, const FiniteSet& s, const FiniteSet& a,
                   const FiniteSet& b) {
  if (!b.contains(world)) return false;
  const std::size_t m = s.universe_size();
  bool s_subset_a = true;
  bool s_cap_b_subset_a = true;
  for (std::size_t e = 0; e < m; ++e) {
    if (!s.contains(e)) continue;
    if (!a.contains(e)) {
      s_subset_a = false;
      if (b.contains(e)) s_cap_b_subset_a = false;
    }
  }
  return s_cap_b_subset_a && !s_subset_a;
}

void check_universe(const FiniteSet& a, const FiniteSet& b) {
  if (a.universe_size() != b.universe_size()) {
    throw std::invalid_argument("oracle: mismatched universes");
  }
  if (a.universe_size() > kMaxOracleUniverse) {
    throw std::invalid_argument("oracle: universe too large for enumeration");
  }
}

FiniteSet set_from_mask(std::size_t m, std::uint32_t mask) {
  FiniteSet s(m);
  for (std::size_t e = 0; e < m; ++e) {
    if ((mask >> e) & 1u) s.insert(e);
  }
  return s;
}

}  // namespace

PossOracleResult oracle_possibilistic(const SecondLevelKnowledge& k,
                                      const FiniteSet& a, const FiniteSet& b) {
  PossOracleResult r;
  for (const KnowledgeWorld& kw : k.pairs()) {
    if (pair_violates(kw.world, kw.knowledge, a, b)) {
      r.safe = false;
      r.violation = kw;
      return r;
    }
  }
  return r;
}

PossOracleResult oracle_possibilistic_full(const FiniteSet& a,
                                           const FiniteSet& b) {
  check_universe(a, b);
  const std::size_t m = a.universe_size();
  PossOracleResult r;
  const std::uint32_t masks = static_cast<std::uint32_t>((1u << m) - 1u);
  // Every (omega, S) with omega in S: S runs over all non-empty subsets.
  for (std::uint32_t mask = 1; mask <= masks; ++mask) {
    const FiniteSet s = set_from_mask(m, mask);
    for (std::size_t world = 0; world < m; ++world) {
      if (!s.contains(world)) continue;
      if (pair_violates(world, s, a, b)) {
        r.safe = false;
        r.violation = KnowledgeWorld(world, s);
        return r;
      }
    }
  }
  return r;
}

PossOracleResult oracle_possibilistic_known_world(const FiniteSet& a,
                                                  const FiniteSet& b,
                                                  std::size_t actual_world) {
  check_universe(a, b);
  const std::size_t m = a.universe_size();
  if (actual_world >= m) {
    throw std::invalid_argument("oracle: actual world outside the universe");
  }
  PossOracleResult r;
  const std::uint32_t masks = static_cast<std::uint32_t>((1u << m) - 1u);
  for (std::uint32_t mask = 1; mask <= masks; ++mask) {
    const FiniteSet s = set_from_mask(m, mask);
    if (!s.contains(actual_world)) continue;
    if (pair_violates(actual_world, s, a, b)) {
      r.safe = false;
      r.violation = KnowledgeWorld(actual_world, s);
      return r;
    }
  }
  return r;
}

Rational oracle_exact_gap(const ExactDistribution& p, const WorldSet& a,
                          const WorldSet& b) {
  if (p.n() != a.n() || a.n() != b.n()) {
    throw std::invalid_argument("oracle_exact_gap: mismatched n");
  }
  Rational pa, pb, pab;
  const std::size_t size = p.omega_size();
  for (std::size_t w = 0; w < size; ++w) {
    const World world = static_cast<World>(w);
    const Rational weight = p.prob(world);
    if (weight.is_zero()) continue;
    const bool in_a = a.contains(world);
    const bool in_b = b.contains(world);
    if (in_a) pa += weight;
    if (in_b) pb += weight;
    if (in_a && in_b) pab += weight;
  }
  return pab - pa * pb;
}

double oracle_double_gap(const Distribution& p, const WorldSet& a,
                         const WorldSet& b) {
  if (p.n() != a.n() || a.n() != b.n()) {
    throw std::invalid_argument("oracle_double_gap: mismatched n");
  }
  double pa = 0.0, pb = 0.0, pab = 0.0;
  const std::size_t size = p.omega_size();
  for (std::size_t w = 0; w < size; ++w) {
    const World world = static_cast<World>(w);
    const double weight = p.prob(world);
    const bool in_a = a.contains(world);
    const bool in_b = b.contains(world);
    if (in_a) pa += weight;
    if (in_b) pb += weight;
    if (in_a && in_b) pab += weight;
  }
  return pab - pa * pb;
}

ProbOracleResult oracle_family(const std::vector<ExactDistribution>& pi,
                               const WorldSet& a, const WorldSet& b) {
  ProbOracleResult r;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const Rational gap = oracle_exact_gap(pi[i], a, b);
    if (gap.is_positive()) {
      r.safe = false;
      r.violating_prior = i;
      r.gap = gap;
      return r;
    }
  }
  return r;
}

UnrestrictedProbOracleResult oracle_unrestricted_prob(const WorldSet& a,
                                                      const WorldSet& b) {
  if (a.n() != b.n()) {
    throw std::invalid_argument("oracle_unrestricted_prob: mismatched n");
  }
  UnrestrictedProbOracleResult r;
  // See the header: the gap maximum over the whole simplex is attained by a
  // uniform two-point prior on one world of A∩B and one outside A∪B, so
  // searching those two regions decides safety over ALL priors exactly.
  const std::size_t size = a.omega_size();
  for (std::size_t w = 0; w < size && !(r.inside && r.outside); ++w) {
    const World world = static_cast<World>(w);
    const bool in_a = a.contains(world);
    const bool in_b = b.contains(world);
    if (in_a && in_b && !r.inside) r.inside = world;
    if (!in_a && !in_b && !r.outside) r.outside = world;
  }
  r.safe = !(r.inside && r.outside);
  if (r.safe) {
    r.inside.reset();
    r.outside.reset();
  }
  return r;
}

}  // namespace testing
}  // namespace epi
