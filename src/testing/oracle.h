// Brute-force reference oracles for the model-checking harness: privacy
// decided directly from the paper's definitions (Def. 3.1 possibilistic,
// Def. 3.4 / Prop. 3.6 probabilistic) by exhaustive enumeration, with exact
// rational arithmetic on the probabilistic side so no verdict hinges on a
// floating-point tolerance.
//
// These implementations are deliberately naive: per-element contains() loops
// instead of the fused word-scan kernels, full enumeration of knowledge
// worlds instead of interval machinery, exact rationals instead of doubles.
// Every fast path in src/criteria/, src/possibilistic/, src/probabilistic/
// and src/engine/ is differentially tested against them (src/testing/
// modelcheck.cpp), so the oracle must share no code with the paths it
// checks. Never call these in production paths — they are exponential.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "possibilistic/knowledge.h"
#include "probabilistic/exact.h"
#include "util/rational.h"
#include "worlds/finite_set.h"
#include "worlds/world_set.h"

namespace epi {
namespace testing {

/// Largest finite universe the full possibilistic enumeration accepts
/// (2^m knowledge sets, each scanned element-wise: m = 16 is ~1M pairs).
inline constexpr std::size_t kMaxOracleUniverse = 16;

// --- Possibilistic (Definition 3.1) -----------------------------------------

/// Outcome of a possibilistic oracle run; on "unsafe" `violation` holds a
/// knowledge world (omega, S) witnessing the leak: omega in B, S ∩ B ⊆ A,
/// S ⊄ A — an admissible agent who did not know A and learns it from B.
struct PossOracleResult {
  bool safe = true;
  std::optional<KnowledgeWorld> violation;
};

/// Definition 3.1 over an explicit second-level knowledge set K, decided by
/// a per-pair, per-element loop (no fused predicates).
PossOracleResult oracle_possibilistic(const SecondLevelKnowledge& k,
                                      const FiniteSet& a, const FiniteSet& b);

/// Definition 3.1 over the full Omega_poss = { (omega, S) : omega in S }:
/// enumerates all 2^m knowledge sets. Throws std::invalid_argument when the
/// universe exceeds kMaxOracleUniverse. The reference point for
/// Theorem 3.11's unrestricted criterion.
PossOracleResult oracle_possibilistic_full(const FiniteSet& a,
                                           const FiniteSet& b);

/// Definition 3.1 over K = {omega*} (x) P(Omega) (auditor knows the actual
/// world): enumerates all S containing omega*. Reference for the second part
/// of Theorem 3.11.
PossOracleResult oracle_possibilistic_known_world(const FiniteSet& a,
                                                  const FiniteSet& b,
                                                  std::size_t actual_world);

// --- Probabilistic (Definition 3.4 / Proposition 3.6) -----------------------

/// P[A∩B] - P[A]·P[B], exactly, by a naive per-world contains() loop
/// (deliberately not ExactDistribution::safety_gap, which rides the fused
/// kernel scans under test).
Rational oracle_exact_gap(const ExactDistribution& p, const WorldSet& a,
                          const WorldSet& b);

/// Same naive region accumulation on a double-weight prior — used to verify
/// the witnesses criteria attach to "unsafe" verdicts.
double oracle_double_gap(const Distribution& p, const WorldSet& a,
                         const WorldSet& b);

/// Outcome of a family oracle run; on "unsafe" `violating_prior` indexes the
/// member of Pi whose exact gap `gap` is positive.
struct ProbOracleResult {
  bool safe = true;
  std::optional<std::size_t> violating_prior;
  Rational gap;
};

/// Equation (11) (the C-lifted family form of Prop. 3.6): Safe_Pi(A,B) iff
/// every P in Pi has P[AB] <= P[A]·P[B], decided exactly.
ProbOracleResult oracle_family(const std::vector<ExactDistribution>& pi,
                               const WorldSet& a, const WorldSet& b);

/// Outcome of the unrestricted-prior probabilistic oracle; on "unsafe" the
/// two-point witness prior is uniform on {inside, outside}.
struct UnrestrictedProbOracleResult {
  bool safe = true;
  std::optional<World> inside;   ///< a world of A ∩ B
  std::optional<World> outside;  ///< a world of Omega - (A ∪ B)
};

/// Safety over ALL priors (K = Omega_prob), decided exactly by maximizing
/// the gap over two-point priors. This is complete, not just sound: the gap
/// P[AB] - P[A]·P[B] depends on P only through the masses (x, y, z) it
/// places on the regions A∩B, A-B, B-A, and equals x - (x+y)(x+z); since
/// df/dy = -(x+z) <= 0 and df/dz = -(x+y) <= 0, the maximum over the
/// simplex puts y = z = 0, i.e. all non-x mass outside A∪B, giving
/// x - x^2 — positive iff some mass can sit in A∩B (A∩B != {}) AND the
/// remainder can avoid A∪B (A∪B != Omega). The uniform two-point prior on
/// one world of each region attains gap 1/4. This rederives Theorem 3.11
/// from Def. 3.4 without touching src/criteria/.
UnrestrictedProbOracleResult oracle_unrestricted_prob(const WorldSet& a,
                                                      const WorldSet& b);

}  // namespace testing
}  // namespace epi
