// The differential model checker: seeded random scenarios (generators.h)
// decided twice — once by the production criteria / engine / service paths,
// once by the brute-force definition oracles (oracle.h) — with any
// disagreement shrunk to a minimal counterexample and reported with a
// reproduction command line.
//
// The checks assert the paper's implication structure, not blanket equality:
// sufficient criteria must never claim Safe when the oracle says unsafe,
// necessary criteria must never claim Unsafe when the oracle says safe,
// exact criteria (Theorem 3.11, the Section 4.1 interval tests) must match
// the oracle bit for bit, and every Unsafe verdict's attached witness must
// actually violate safety inside its claimed prior family.
//
// Entry points: the `epi_modelcheck` CLI (tools/modelcheck_main.cpp) and
// tests/modelcheck_test.cpp. docs/testing.md documents the repro workflow.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace epi {
namespace testing {

struct ModelCheckOptions {
  /// Master seed; every (check, case) derives its own Rng from it, so one
  /// case replays identically regardless of which other checks ran.
  std::uint64_t seed = 2008;
  /// Scenarios per check. The default across the 10 checks totals 12,500.
  std::uint64_t cases_per_check = 1250;
  /// When non-empty, run only the named check (see check_names()).
  std::string only_check;
  /// When set, run only this case index (for reproducing one failure).
  std::optional<std::uint64_t> only_case;
  /// Largest finite universe |Omega| for possibilistic scenarios.
  unsigned max_m = 9;
  /// Largest hypercube dimension n for probabilistic scenarios.
  unsigned max_n = 4;
  /// Exact-rational priors sampled per Safe verdict in the family checks.
  std::size_t prior_samples = 12;
  /// Failures recorded per check before it stops early (avoids a single
  /// systematic bug flooding the report).
  std::size_t max_failures_per_check = 5;
};

/// One oracle disagreement (or witness/implication violation), shrunk.
struct CheckFailure {
  std::string check;
  std::uint64_t case_index = 0;
  /// Human-readable description: what disagreed, the (shrunk) scenario, and
  /// the `epi_modelcheck --seed=... --check=... --case=...` repro line.
  std::string description;
};

/// Per-check aggregate.
struct CheckSummary {
  std::string name;
  std::uint64_t cases = 0;
  std::uint64_t failures = 0;
};

struct ModelCheckReport {
  std::vector<CheckSummary> summaries;
  std::vector<CheckFailure> failures;
  std::uint64_t total_cases = 0;
  bool ok() const { return failures.empty(); }
};

/// Names of all checks, in execution order: possibilistic-unrestricted,
/// probabilistic-unrestricted, sigma-intervals, product-cascade,
/// supermodular-cascade, engine-parity, service-composition, fused-kernels,
/// backend-parity (dense vs symbolic subcube-cover representation), and
/// workload-parity (every registered workload family replayed through
/// AuditService incremental sessions against the offline Auditor).
std::vector<std::string> check_names();

/// Runs the configured checks; when `progress` is non-null, one line per
/// check is streamed to it as the run advances.
ModelCheckReport run_model_check(const ModelCheckOptions& options,
                                 std::ostream* progress = nullptr);

}  // namespace testing
}  // namespace epi
