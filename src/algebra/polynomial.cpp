#include "algebra/polynomial.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace epi {

Polynomial Polynomial::constant(std::size_t nvars, double c) {
  Polynomial p(nvars);
  p.add_term(Monomial(nvars), c);
  return p;
}

Polynomial Polynomial::variable(std::size_t nvars, std::size_t i) {
  Polynomial p(nvars);
  p.add_term(Monomial::variable(nvars, i), 1.0);
  return p;
}

Polynomial Polynomial::term(double coeff, const Monomial& m) {
  Polynomial p(m.nvars());
  p.add_term(m, coeff);
  return p;
}

double Polynomial::coefficient(const Monomial& m) const {
  auto it = terms_.find(m.exponents());
  return it == terms_.end() ? 0.0 : it->second;
}

void Polynomial::add_term(const Monomial& m, double coeff) {
  if (m.nvars() != nvars_) {
    throw std::invalid_argument("add_term: variable count mismatch");
  }
  if (coeff == 0.0) return;
  auto [it, inserted] = terms_.emplace(m.exponents(), coeff);
  if (!inserted) {
    it->second += coeff;
    if (it->second == 0.0) terms_.erase(it);
  }
}

bool Polynomial::is_zero(double tol) const {
  for (const auto& [exps, coeff] : terms_) {
    if (std::abs(coeff) > tol) return false;
  }
  return true;
}

unsigned Polynomial::degree() const {
  unsigned d = 0;
  for (const auto& [exps, coeff] : terms_) {
    unsigned term_degree = 0;
    for (unsigned e : exps) term_degree += e;
    d = std::max(d, term_degree);
  }
  return d;
}

Polynomial Polynomial::operator+(const Polynomial& o) const {
  Polynomial r = *this;
  return r += o;
}

Polynomial Polynomial::operator-(const Polynomial& o) const {
  Polynomial r = *this;
  return r -= o;
}

Polynomial& Polynomial::operator+=(const Polynomial& o) {
  if (nvars_ != o.nvars_) throw std::invalid_argument("Polynomial+: nvars mismatch");
  for (const auto& [exps, coeff] : o.terms_) add_term(Monomial(exps), coeff);
  return *this;
}

Polynomial& Polynomial::operator-=(const Polynomial& o) {
  if (nvars_ != o.nvars_) throw std::invalid_argument("Polynomial-: nvars mismatch");
  for (const auto& [exps, coeff] : o.terms_) add_term(Monomial(exps), -coeff);
  return *this;
}

Polynomial Polynomial::operator*(const Polynomial& o) const {
  if (nvars_ != o.nvars_) throw std::invalid_argument("Polynomial*: nvars mismatch");
  Polynomial r(nvars_);
  for (const auto& [e1, c1] : terms_) {
    for (const auto& [e2, c2] : o.terms_) {
      r.add_term(Monomial(e1) * Monomial(e2), c1 * c2);
    }
  }
  return r;
}

Polynomial Polynomial::operator*(double s) const {
  Polynomial r(nvars_);
  for (const auto& [exps, coeff] : terms_) r.add_term(Monomial(exps), coeff * s);
  return r;
}

Polynomial Polynomial::operator-() const { return *this * -1.0; }

Polynomial Polynomial::pow(unsigned k) const {
  Polynomial r = Polynomial::constant(nvars_, 1.0);
  for (unsigned i = 0; i < k; ++i) r = r * *this;
  return r;
}

double Polynomial::eval(const std::vector<double>& x) const {
  double v = 0.0;
  for (const auto& [exps, coeff] : terms_) {
    v += coeff * Monomial(exps).eval(x);
  }
  return v;
}

Polynomial Polynomial::derivative(std::size_t i) const {
  if (i >= nvars_) throw std::out_of_range("derivative: variable out of range");
  Polynomial r(nvars_);
  for (const auto& [exps, coeff] : terms_) {
    if (exps[i] == 0) continue;
    std::vector<unsigned> de = exps;
    de[i] -= 1;
    r.add_term(Monomial(std::move(de)), coeff * exps[i]);
  }
  return r;
}

double Polynomial::max_coeff_difference(const Polynomial& o) const {
  double worst = 0.0;
  for (const auto& [exps, coeff] : terms_) {
    worst = std::max(worst, std::abs(coeff - o.coefficient(Monomial(exps))));
  }
  for (const auto& [exps, coeff] : o.terms_) {
    worst = std::max(worst, std::abs(coeff - coefficient(Monomial(exps))));
  }
  return worst;
}

Polynomial Polynomial::pruned(double tol) const {
  Polynomial r(nvars_);
  for (const auto& [exps, coeff] : terms_) {
    if (std::abs(coeff) > tol) r.add_term(Monomial(exps), coeff);
  }
  return r;
}

std::string Polynomial::to_string() const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (const auto& [exps, coeff] : terms_) {
    const double c = coeff;
    if (first) {
      if (c < 0) os << "-";
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    first = false;
    const Monomial m{std::vector<unsigned>(exps)};
    const double mag = std::abs(c);
    if (m.degree() == 0) {
      os << mag;
    } else if (mag == 1.0) {
      os << m.to_string();
    } else {
      os << mag << "*" << m.to_string();
    }
  }
  return os.str();
}

Polynomial motzkin_polynomial() {
  const std::size_t s = 3;
  Polynomial x = Polynomial::variable(s, 0);
  Polynomial y = Polynomial::variable(s, 1);
  Polynomial z = Polynomial::variable(s, 2);
  return x.pow(4) * y.pow(2) + x.pow(2) * y.pow(4) + z.pow(6) -
         x.pow(2) * y.pow(2) * z.pow(2) * 3.0;
}

}  // namespace epi
