// Polynomial encodings of the safety question (Section 6):
//  * in Bernoulli parameters p_1..p_n for product families (Section 6.1), and
//  * in world weights p_x, x in {0,1}^n, for general algebraic families.
#pragma once

#include "algebra/polynomial.h"
#include "worlds/world_set.h"

namespace epi {

/// P[X] as a polynomial in the Bernoulli parameters p_0..p_{n-1}:
/// sum over members of prod p_i^{x[i]} (1-p_i)^{1-x[i]} (Equation (17)).
Polynomial event_probability_in_params(const WorldSet& x);

/// The product-prior safety *margin* P[A]P[B] - P[AB] as a polynomial in
/// p_0..p_{n-1}. Safe_{Pi_m0}(A,B) holds iff this polynomial is nonnegative
/// on the box [0,1]^n.
Polynomial product_safety_margin(const WorldSet& a, const WorldSet& b);

/// The same margin in the factored form P[A'B] P[AB'] - P[AB] P[A'B'] used
/// by the cancellation criterion; identical as a polynomial (asserted by
/// tests), exposed for the Prop. 5.9 cross-check.
Polynomial product_safety_margin_factored(const WorldSet& a, const WorldSet& b);

/// P[X] as a polynomial in 2^n world-weight variables p_x (one per world):
/// simply the sum of the members' variables. Used by general algebraic
/// families Pi over the weight simplex (Section 6).
Polynomial event_probability_in_weights(const WorldSet& x);

/// The weight-space safety margin P[A]P[B] - P[AB] over 2^n variables.
Polynomial weight_safety_margin(const WorldSet& a, const WorldSet& b);

/// The log-supermodularity constraints p_{x/\y} p_{x\/y} - p_x p_y >= 0 for
/// all incomparable pairs, as polynomials in the 2^n weight variables —
/// the algebraic description of Pi_m+ given in Section 6.
std::vector<Polynomial> supermodularity_constraints_in_weights(unsigned n);

}  // namespace epi
