// Sparse multivariate polynomials over double coefficients. Used to express
// the product-prior safety gap, the constraints of algebraic families Pi
// (Section 6), and the SOS certificates of Section 6.2.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "algebra/monomial.h"

namespace epi {

/// A polynomial sum of coeff * monomial, with a fixed variable count.
class Polynomial {
 public:
  /// The zero polynomial over `nvars` variables.
  explicit Polynomial(std::size_t nvars) : nvars_(nvars) {}

  /// The constant c.
  static Polynomial constant(std::size_t nvars, double c);
  /// The variable x_i.
  static Polynomial variable(std::size_t nvars, std::size_t i);
  /// coeff * m.
  static Polynomial term(double coeff, const Monomial& m);

  std::size_t nvars() const { return nvars_; }

  /// Coefficient of a monomial (0 when absent).
  double coefficient(const Monomial& m) const;
  /// Adds coeff * m (dropping the term if it cancels out).
  void add_term(const Monomial& m, double coeff);

  /// Terms in deterministic (lexicographic exponent) order.
  const std::map<std::vector<unsigned>, double>& terms() const { return terms_; }

  bool is_zero(double tol = 0.0) const;
  unsigned degree() const;

  Polynomial operator+(const Polynomial& o) const;
  Polynomial operator-(const Polynomial& o) const;
  Polynomial operator*(const Polynomial& o) const;
  Polynomial operator*(double s) const;
  Polynomial operator-() const;

  Polynomial& operator+=(const Polynomial& o);
  Polynomial& operator-=(const Polynomial& o);

  /// this^k (k >= 0).
  Polynomial pow(unsigned k) const;

  double eval(const std::vector<double>& x) const;

  /// d/dx_i.
  Polynomial derivative(std::size_t i) const;

  /// Largest |coefficient| difference against another polynomial.
  double max_coeff_difference(const Polynomial& o) const;

  /// Drops terms with |coeff| <= tol.
  Polynomial pruned(double tol) const;

  /// "2*x0*x1 - x2^2 + 1".
  std::string to_string() const;

 private:
  std::size_t nvars_;
  std::map<std::vector<unsigned>, double> terms_;
};

/// The Motzkin polynomial x^4 y^2 + x^2 y^4 + z^6 - 3 x^2 y^2 z^2:
/// nonnegative on R^3 yet not a sum of squares (Section 6.2).
Polynomial motzkin_polynomial();

}  // namespace epi
