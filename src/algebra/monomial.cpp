#include "algebra/monomial.h"

#include <cmath>
#include <stdexcept>

namespace epi {

Monomial Monomial::variable(std::size_t nvars, std::size_t i, unsigned power) {
  if (i >= nvars) throw std::out_of_range("Monomial::variable: index out of range");
  std::vector<unsigned> exps(nvars, 0);
  exps[i] = power;
  return Monomial(std::move(exps));
}

unsigned Monomial::degree() const {
  unsigned d = 0;
  for (unsigned e : exps_) d += e;
  return d;
}

Monomial Monomial::operator*(const Monomial& o) const {
  if (exps_.size() != o.exps_.size()) {
    throw std::invalid_argument("Monomial*: variable count mismatch");
  }
  std::vector<unsigned> exps(exps_.size());
  for (std::size_t i = 0; i < exps_.size(); ++i) exps[i] = exps_[i] + o.exps_[i];
  return Monomial(std::move(exps));
}

double Monomial::eval(const std::vector<double>& x) const {
  if (x.size() != exps_.size()) {
    throw std::invalid_argument("Monomial::eval: point dimension mismatch");
  }
  double v = 1.0;
  for (std::size_t i = 0; i < exps_.size(); ++i) {
    for (unsigned e = 0; e < exps_[i]; ++e) v *= x[i];
  }
  return v;
}

std::string Monomial::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < exps_.size(); ++i) {
    if (exps_[i] == 0) continue;
    if (!s.empty()) s += "*";
    s += "x" + std::to_string(i);
    if (exps_[i] > 1) s += "^" + std::to_string(exps_[i]);
  }
  return s.empty() ? "1" : s;
}

namespace {

void enumerate(std::size_t nvars, unsigned remaining, std::size_t var,
               std::vector<unsigned>& current, std::vector<Monomial>& out) {
  if (var == nvars) {
    out.emplace_back(current);
    return;
  }
  for (unsigned e = 0; e <= remaining; ++e) {
    current[var] = e;
    enumerate(nvars, remaining - e, var + 1, current, out);
  }
  current[var] = 0;
}

}  // namespace

std::vector<Monomial> monomials_up_to_degree(std::size_t nvars, unsigned max_degree) {
  std::vector<Monomial> out;
  std::vector<unsigned> current(nvars, 0);
  enumerate(nvars, max_degree, 0, current, out);
  return out;
}

}  // namespace epi
