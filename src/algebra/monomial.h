// Monomials over a fixed variable set x_0..x_{s-1}, the building block of the
// sparse multivariate polynomials used by Section 6's algebraic machinery.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace epi {

/// A monomial prod x_i^{e_i}, stored as its exponent vector.
class Monomial {
 public:
  /// The constant monomial 1 over `nvars` variables.
  explicit Monomial(std::size_t nvars) : exps_(nvars, 0) {}
  /// Monomial from an explicit exponent vector.
  explicit Monomial(std::vector<unsigned> exps) : exps_(std::move(exps)) {}
  /// x_i over `nvars` variables.
  static Monomial variable(std::size_t nvars, std::size_t i, unsigned power = 1);

  std::size_t nvars() const { return exps_.size(); }
  unsigned exponent(std::size_t i) const { return exps_[i]; }
  const std::vector<unsigned>& exponents() const { return exps_; }

  /// Total degree.
  unsigned degree() const;

  /// Product of two monomials (exponent-wise sum).
  Monomial operator*(const Monomial& o) const;

  /// Value at a point.
  double eval(const std::vector<double>& x) const;

  bool operator==(const Monomial& o) const { return exps_ == o.exps_; }
  bool operator<(const Monomial& o) const { return exps_ < o.exps_; }

  /// "x0^2*x3" ("1" for the constant monomial).
  std::string to_string() const;

 private:
  std::vector<unsigned> exps_;
};

/// All monomials over `nvars` variables of total degree <= max_degree,
/// in lexicographic exponent order. Count = C(nvars + max_degree, max_degree).
std::vector<Monomial> monomials_up_to_degree(std::size_t nvars, unsigned max_degree);

}  // namespace epi
