#include "algebra/safety_polynomial.h"

namespace epi {

Polynomial event_probability_in_params(const WorldSet& x) {
  const unsigned n = x.n();
  Polynomial result(n);
  x.visit([&](World w) {
    Polynomial term = Polynomial::constant(n, 1.0);
    for (unsigned i = 0; i < n; ++i) {
      const Polynomial pi = Polynomial::variable(n, i);
      if (world_bit(w, i)) {
        term = term * pi;
      } else {
        term = term * (Polynomial::constant(n, 1.0) - pi);
      }
    }
    result += term;
  });
  return result;
}

Polynomial product_safety_margin(const WorldSet& a, const WorldSet& b) {
  const Polynomial pa = event_probability_in_params(a);
  const Polynomial pb = event_probability_in_params(b);
  const Polynomial pab = event_probability_in_params(a & b);
  return pa * pb - pab;
}

Polynomial product_safety_margin_factored(const WorldSet& a, const WorldSet& b) {
  const Polynomial p_ab = event_probability_in_params(a & b);
  const Polynomial p_not_a_b = event_probability_in_params(b - a);
  const Polynomial p_a_not_b = event_probability_in_params(a - b);
  const Polynomial p_neither = event_probability_in_params(~(a | b));
  return p_not_a_b * p_a_not_b - p_ab * p_neither;
}

Polynomial event_probability_in_weights(const WorldSet& x) {
  const std::size_t nvars = x.omega_size();
  Polynomial result(nvars);
  x.visit([&](World w) { result += Polynomial::variable(nvars, w); });
  return result;
}

Polynomial weight_safety_margin(const WorldSet& a, const WorldSet& b) {
  const Polynomial pa = event_probability_in_weights(a);
  const Polynomial pb = event_probability_in_weights(b);
  const Polynomial pab = event_probability_in_weights(a & b);
  return pa * pb - pab;
}

std::vector<Polynomial> supermodularity_constraints_in_weights(unsigned n) {
  const std::size_t size = std::size_t{1} << n;
  std::vector<Polynomial> constraints;
  for (std::size_t x = 0; x < size; ++x) {
    for (std::size_t y = x + 1; y < size; ++y) {
      const World u = static_cast<World>(x);
      const World v = static_cast<World>(y);
      if (world_leq(u, v) || world_leq(v, u)) continue;
      const Polynomial meet_join =
          Polynomial::variable(size, world_meet(u, v)) *
          Polynomial::variable(size, world_join(u, v));
      const Polynomial direct =
          Polynomial::variable(size, u) * Polynomial::variable(size, v);
      constraints.push_back(meet_join - direct);
    }
  }
  return constraints;
}

}  // namespace epi
