#include "net/shard_router.h"

#include <unistd.h>

#include <cstdio>
#include <utility>

#include "worlds/dense_bits.h"

namespace epi {
namespace net {
namespace {

using service::Op;
using service::WireRequest;
using service::WireResponse;

/// FNV-1a over the session key, finalized through mix64 so ring points get
/// full avalanche. Stable across processes (no std::hash).
std::uint64_t hash_key(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return bits::mix64(h);
}

}  // namespace

Status ShardRouter::try_create(RouterOptions options,
                               std::unique_ptr<ShardRouter>* out) {
  if (options.vnodes == 0) {
    return Status::InvalidArgument("router vnodes must be >= 1");
  }
  std::unique_ptr<ShardRouter> router(new ShardRouter(options));
  if (const Status s =
          EventLoop::try_create(router.get(), options.loop, &router->loop_);
      !s.ok()) {
    return s;
  }
  *out = std::move(router);
  return Status::Ok();
}

Status ShardRouter::add_listener(Address* addr) {
  return loop_->add_listener(addr);
}

Status ShardRouter::run() {
  schedule_health_check();
  return loop_->run();
}

// --- connection bookkeeping -------------------------------------------------

void ShardRouter::on_open(EventLoop::ConnId conn) {
  if (adopting_upstream_) return;  // add_worker's dial, not a client
  clients_.insert(conn);
}

void ShardRouter::on_close(EventLoop::ConnId conn, const Status& why) {
  (void)why;
  auto up_it = upstream_by_conn_.find(conn);
  if (up_it != upstream_by_conn_.end()) {
    Upstream* up = up_it->second;
    if (draining_) {
      // Expected: the worker drained its shutdown and hung up.
      for (const Forward& f : up->fifo) {
        if (f.kind == Forward::Kind::kAudit ||
            f.kind == Forward::Kind::kReset ||
            f.kind == Forward::Kind::kPassthrough) {
          send_error(f.client, f.request.id,
                     Status::Unavailable("router shutting down"));
        }
      }
      upstream_by_conn_.erase(up_it);
      upstreams_.erase(up->key);
      maybe_finish_drain();
      return;
    }
    worker_died(up->key);
    return;
  }
  clients_.erase(conn);
  maybe_finish_drain();
}

// --- the hash ring ----------------------------------------------------------

void ShardRouter::rebuild_ring() {
  ring_.clear();
  for (const auto& [key, up] : upstreams_) {
    if (!up->in_ring) continue;
    const std::uint64_t base = hash_key(key);
    for (unsigned v = 0; v < options_.vnodes; ++v) {
      ring_.emplace(bits::hash_combine(base, v), key);
    }
  }
}

std::string ShardRouter::ring_owner(const std::string& user) const {
  if (ring_.empty()) return "";
  auto it = ring_.lower_bound(hash_key(user));
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

ShardRouter::Upstream* ShardRouter::first_worker() {
  if (ring_.empty()) return nullptr;
  return upstream_by_key(ring_.begin()->second);
}

ShardRouter::Upstream* ShardRouter::upstream_by_key(const std::string& key) {
  auto it = upstreams_.find(key);
  return it == upstreams_.end() ? nullptr : it->second.get();
}

// --- membership -------------------------------------------------------------

Status ShardRouter::add_worker(const Address& addr) {
  const std::string key = addr.to_string();
  if (upstreams_.find(key) != upstreams_.end()) {
    return Status::InvalidArgument("'" + key + "' is already a worker");
  }
  int fd = -1;
  if (const Status s = connect_to(addr, &fd); !s.ok()) return s;
  EventLoop::ConnId conn = 0;
  adopting_upstream_ = true;
  const Status adopted = loop_->adopt(fd, &conn);
  adopting_upstream_ = false;
  if (!adopted.ok()) {
    ::close(fd);
    return adopted;
  }
  auto up = std::make_unique<Upstream>();
  up->addr = addr;
  up->key = key;
  up->conn = conn;
  upstream_by_conn_.emplace(conn, up.get());
  upstreams_.emplace(key, std::move(up));
  rebuild_ring();
  rebalance_all();
  return Status::Ok();
}

void ShardRouter::worker_died(const std::string& key) {
  auto it = upstreams_.find(key);
  if (it == upstreams_.end()) return;
  Upstream* up = it->second.get();
  std::fprintf(stderr, "shard_router: worker %s is gone (%zu frames in flight)\n",
               key.c_str(), up->fifo.size());

  // Its un-acked client jobs re-queue ahead of held traffic, in FIFO order:
  // whatever the dead worker absorbed without acking died with it, so the
  // next owner decides them fresh against the replayed (acked) prefix.
  std::unordered_map<std::string, std::vector<HeldJob>> redispatch;
  for (Forward& f : up->fifo) {
    switch (f.kind) {
      case Forward::Kind::kAudit:
      case Forward::Kind::kReset: {
        SessionState& s = sessions_[f.user];
        if (s.in_flight > 0) --s.in_flight;
        redispatch[f.user].push_back(
            HeldJob{f.client, std::move(f.request)});
        break;
      }
      case Forward::Kind::kPassthrough:
        send_error(f.client, f.request.id,
                   Status::Unavailable("worker '" + key + "' died"));
        break;
      case Forward::Kind::kPing:
      case Forward::Kind::kReplay:  // its replay restarts via rebalance_all
      case Forward::Kind::kShutdown:
        break;
    }
  }
  for (auto& [user, jobs] : redispatch) {
    SessionState& s = sessions_[user];
    s.held.insert(s.held.begin(), std::make_move_iterator(jobs.begin()),
                  std::make_move_iterator(jobs.end()));
  }

  const EventLoop::ConnId conn = up->conn;
  upstream_by_conn_.erase(conn);
  upstreams_.erase(it);
  loop_->close_connection(conn);  // no-op when the close is what got us here
  rebuild_ring();
  rebalance_all();
}

// --- rebalance --------------------------------------------------------------

void ShardRouter::rebalance_all() {
  for (auto& [user, s] : sessions_) {
    const std::string target = ring_owner(user);
    if (s.replaying) {
      // Let an intact replay finish; restart it when its target changed or
      // vanished mid-flight.
      if (s.owner == target && upstream_by_key(s.owner) != nullptr) continue;
      if (target.empty()) {
        s.replaying = false;
        s.replay_outstanding = 0;
        s.owner.clear();
        finish_replay(user, s);  // drains held as Unavailable via forward
        continue;
      }
      start_replay(user, s, target);
      continue;
    }
    if (target.empty()) {
      s.owner.clear();  // log survives for the next add_worker
      s.rebalance_pending = false;
      while (!s.held.empty()) {
        send_error(s.held.front().client, s.held.front().request.id,
                   Status::Unavailable("no workers in the ring"));
        s.held.pop_front();
      }
      continue;
    }
    if (s.owner == target) continue;
    if (s.owner.empty() && s.log.empty() && s.in_flight == 0) {
      // Nothing to move: a never-assigned (or ring-emptied, fully reset)
      // session just picks up its owner.
      s.rebalance_pending = false;
      if (!s.held.empty()) {
        s.owner = target;
        finish_replay(user, s);
      }
      continue;
    }
    if (s.in_flight > 0) {
      // Acked disclosures enter the log; moving before the un-acked ones
      // drain would replay a log missing them.
      s.rebalance_pending = true;
      continue;
    }
    start_replay(user, s, target);
  }
}

void ShardRouter::start_replay(const std::string& user, SessionState& state,
                               const std::string& new_owner) {
  Upstream* up = upstream_by_key(new_owner);
  if (up == nullptr) return;  // rebalance_all re-runs on the next change
  state.replaying = true;
  state.rebalance_pending = false;
  state.owner = new_owner;
  state.replay_outstanding = 1 + state.log.size();

  WireRequest reset;
  reset.op = Op::kResetSession;
  reset.user = user;
  loop_->send_line(up->conn, serialize_request(reset));
  Forward f;
  f.kind = Forward::Kind::kReplay;
  f.user = user;
  up->fifo.push_back(f);

  for (const LogEntry& entry : state.log) {
    // Serialized once at ack time; replay is a verbatim byte send.
    loop_->send_line(up->conn, entry.replay_frame);
    up->fifo.push_back(f);
  }
}

void ShardRouter::finish_replay(const std::string& user, SessionState& state) {
  state.replaying = false;
  while (!state.held.empty() && !state.replaying && !state.rebalance_pending) {
    HeldJob job = std::move(state.held.front());
    state.held.pop_front();
    forward_job(job.client, state, std::move(job.request));
  }
  (void)user;
}

// --- request routing --------------------------------------------------------

void ShardRouter::send_error(EventLoop::ConnId client, std::uint64_t id,
                             const Status& s) {
  WireResponse response;
  response.id = id;
  response.error = s.to_string();
  response.code = service::status_code_slug(s.code());
  loop_->send_line(client, serialize_response(response));
}

void ShardRouter::route_job(EventLoop::ConnId client, WireRequest request) {
  SessionState& s = sessions_[request.user];
  if (s.replaying || s.rebalance_pending) {
    s.held.push_back(HeldJob{client, std::move(request)});
    return;
  }
  if (s.owner.empty()) {
    const std::string owner = ring_owner(request.user);
    if (owner.empty()) {
      send_error(client, request.id,
                 Status::Unavailable("no workers in the ring"));
      if (s.log.empty() && s.held.empty() && s.in_flight == 0) {
        sessions_.erase(request.user);
      }
      return;
    }
    s.owner = owner;
  }
  forward_job(client, s, std::move(request));
}

void ShardRouter::forward_job(EventLoop::ConnId client, SessionState& state,
                              WireRequest request) {
  Upstream* up =
      state.owner.empty() ? nullptr : upstream_by_key(state.owner);
  if (up == nullptr) {
    send_error(client, request.id,
               Status::Unavailable("no worker owns this session"));
    return;
  }
  loop_->send_line(up->conn, serialize_request(request));
  Forward f;
  f.kind = request.op == Op::kAudit ? Forward::Kind::kAudit
                                    : Forward::Kind::kReset;
  f.client = client;
  f.user = request.user;
  f.request = std::move(request);
  up->fifo.push_back(std::move(f));
  ++state.in_flight;
}

void ShardRouter::on_line(EventLoop::ConnId conn, std::string line) {
  if (line.empty()) return;
  auto up_it = upstream_by_conn_.find(conn);
  if (up_it != upstream_by_conn_.end()) {
    handle_upstream_line(*up_it->second, line);
    return;
  }
  handle_client_line(conn, line);
}

void ShardRouter::handle_client_line(EventLoop::ConnId conn,
                                     const std::string& line) {
  WireRequest request;
  if (const Status s = parse_request(line, &request); !s.ok()) {
    send_error(conn, 0, s);
    return;
  }
  if (draining_) {
    send_error(conn, request.id, Status::Unavailable("router shutting down"));
    return;
  }
  switch (request.op) {
    case Op::kAudit:
    case Op::kResetSession:
      route_job(conn, std::move(request));
      return;
    case Op::kHello:
    case Op::kMetrics: {
      // No session key to route by: the first in-ring worker answers.
      Upstream* up = first_worker();
      if (up == nullptr) {
        send_error(conn, request.id,
                   Status::Unavailable("no workers in the ring"));
        return;
      }
      loop_->send_line(up->conn, serialize_request(request));
      Forward f;
      f.kind = Forward::Kind::kPassthrough;
      f.client = conn;
      f.request = std::move(request);
      up->fifo.push_back(std::move(f));
      return;
    }
    case Op::kAddWorker: {
      Address addr;
      Status s = parse_address(request.addr, &addr);
      if (s.ok()) s = add_worker(addr);
      WireResponse response;
      response.id = request.id;
      response.ok = s.ok();
      if (!s.ok()) {
        response.error = s.to_string();
        response.code = service::status_code_slug(s.code());
      }
      loop_->send_line(conn, serialize_response(response));
      return;
    }
    case Op::kRemoveWorker: {
      Upstream* up = upstream_by_key(request.addr);
      if (up == nullptr || !up->in_ring) {
        send_error(conn, request.id,
                   Status::InvalidArgument("'" + request.addr +
                                           "' is not an in-ring worker"));
        return;
      }
      // Graceful drain-out: off the ring now, sessions replay to their new
      // owners; the connection survives until its in-flight frames ack.
      up->in_ring = false;
      rebuild_ring();
      rebalance_all();
      WireResponse response;
      response.id = request.id;
      response.ok = true;
      loop_->send_line(conn, serialize_response(response));
      if (up->fifo.empty()) {
        const EventLoop::ConnId worker_conn = up->conn;
        upstream_by_conn_.erase(worker_conn);
        upstreams_.erase(up->key);
        loop_->close_connection(worker_conn);
      }
      return;
    }
    case Op::kShutdown: {
      WireResponse response;
      response.id = request.id;
      response.ok = true;
      loop_->send_line(conn, serialize_response(response));
      begin_shutdown();
      return;
    }
  }
}

void ShardRouter::handle_upstream_line(Upstream& upstream,
                                       const std::string& line) {
  upstream.missed_pings = 0;  // any traffic proves liveness
  if (upstream.fifo.empty()) {
    std::fprintf(stderr,
                 "shard_router: unexpected frame from %s (empty fifo)\n",
                 upstream.key.c_str());
    return;
  }
  Forward f = std::move(upstream.fifo.front());
  upstream.fifo.pop_front();

  switch (f.kind) {
    case Forward::Kind::kPing:
    case Forward::Kind::kShutdown:
      break;
    case Forward::Kind::kPassthrough:
      loop_->send_line(f.client, line);
      break;
    case Forward::Kind::kReplay: {
      auto it = sessions_.find(f.user);
      if (it == sessions_.end() || !it->second.replaying) break;
      WireResponse response;
      if (!parse_response(line, &response).ok() || !response.ok) {
        std::fprintf(stderr,
                     "shard_router: replay frame for '%s' failed: %s\n",
                     f.user.c_str(), line.c_str());
      }
      if (--it->second.replay_outstanding == 0) {
        finish_replay(f.user, it->second);
      }
      break;
    }
    case Forward::Kind::kAudit:
    case Forward::Kind::kReset: {
      loop_->send_line(f.client, line);  // verbatim: the worker's bytes
      auto it = sessions_.find(f.user);
      if (it == sessions_.end()) break;
      SessionState& s = it->second;
      if (s.in_flight > 0) --s.in_flight;
      WireResponse response;
      if (parse_response(line, &response).ok() && response.ok) {
        if (f.kind == Forward::Kind::kReset) {
          s.log.clear();
        } else if (!response.denied) {
          // An acked successful disclosure: this is the replay script. The
          // replayed-log frame is built and serialized here, once, so every
          // future rebalance replays it as stored bytes.
          LogEntry entry;
          entry.query = f.request.query;
          entry.answer = response.answer;
          WireRequest replay;
          replay.op = Op::kAudit;
          replay.user = f.user;
          replay.query = entry.query;
          replay.answer = entry.answer;
          entry.replay_frame = serialize_request(replay);
          s.log.push_back(std::move(entry));
        }
      }
      if (s.rebalance_pending && s.in_flight == 0) {
        const std::string target = ring_owner(f.user);
        if (target.empty()) {
          s.rebalance_pending = false;
          s.owner.clear();
        } else {
          start_replay(f.user, s, target);
        }
      }
      break;
    }
  }

  // A drained-out worker leaves once its last in-flight frame acks.
  if (!upstream.in_ring && !draining_ && upstream.fifo.empty()) {
    const EventLoop::ConnId conn = upstream.conn;
    const std::string key = upstream.key;
    upstream_by_conn_.erase(conn);
    upstreams_.erase(key);
    loop_->close_connection(conn);
  }
}

// --- health & shutdown ------------------------------------------------------

void ShardRouter::schedule_health_check() {
  if (draining_ || options_.health_interval.count() <= 0 ||
      health_timer_armed_) {
    return;
  }
  health_timer_armed_ = true;
  loop_->post_at(
      std::chrono::steady_clock::now() + options_.health_interval, [this] {
        health_timer_armed_ = false;
        if (draining_) return;
        std::vector<std::string> dead;
        for (const auto& [key, up] : upstreams_) {
          if (up->missed_pings >= options_.health_max_missed) {
            dead.push_back(key);
          }
        }
        for (const std::string& key : dead) worker_died(key);
        for (const auto& [key, up] : upstreams_) {
          WireRequest ping;
          ping.op = Op::kHello;
          loop_->send_line(up->conn, serialize_request(ping));
          Forward f;
          f.kind = Forward::Kind::kPing;
          up->fifo.push_back(std::move(f));
          ++up->missed_pings;
        }
        schedule_health_check();
      });
}

void ShardRouter::begin_shutdown() {
  if (draining_) return;
  draining_ = true;
  loop_->close_listeners();
  for (auto& [user, s] : sessions_) {
    while (!s.held.empty()) {
      send_error(s.held.front().client, s.held.front().request.id,
                 Status::Unavailable("router shutting down"));
      s.held.pop_front();
    }
  }
  for (const auto& [key, up] : upstreams_) {
    WireRequest request;
    request.op = Op::kShutdown;
    loop_->send_line(up->conn, serialize_request(request));
    Forward f;
    f.kind = Forward::Kind::kShutdown;
    up->fifo.push_back(std::move(f));
  }
  maybe_finish_drain();
}

void ShardRouter::maybe_finish_drain() {
  if (!draining_ || !upstreams_.empty()) return;
  // Workers have drained and hung up; flush-and-close every client.
  const std::vector<EventLoop::ConnId> open(clients_.begin(), clients_.end());
  for (const EventLoop::ConnId conn : open) loop_->close_connection(conn);
  if (loop_->connection_count() == 0) loop_->stop();
}

}  // namespace net
}  // namespace epi
