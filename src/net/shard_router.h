// ShardRouter: the front process of a horizontally sharded deployment.
// Clients speak the ordinary JSON-lines protocol to the router; the router
// consistent-hashes each session key (the `user`) onto one of N worker
// processes (each an audit_server) and relays verbatim, so verdicts are the
// workers' bytes, not a re-serialization.
//
// Invariants that keep sharded verdicts byte-identical to one offline
// `Auditor::audit` of the same per-user log:
//
//  * Session affinity — all of a user's disclosures go to one worker, in
//    arrival order, so that worker's Session holds exactly the user's
//    accumulated knowledge (B1 ∩ ... ∩ Bk). Responses are matched to
//    requests per-upstream FIFO, which is sound because ServiceServer
//    responds in request order on each connection.
//  * Replay-based rebalance — when ownership moves (worker added, drained
//    out, or died), the router holds the user's live traffic, sends the new
//    owner `reset_session` + every logged (query, answer) disclosure in
//    replayed-log mode, and only then releases held traffic. Composition
//    (Section 3.3: cumulative knowledge is the intersection of disclosed
//    sets) makes the replayed session's state — and every subsequent
//    verdict — identical to an unbroken one.
//  * Rebalance waits for in-flight — a user's move starts only after their
//    un-acked forwards drain (acked disclosures enter the log; a move in
//    between would replay a log missing them). A *dead* worker's un-acked
//    forwards are instead re-queued, in order, ahead of held traffic: its
//    absorbed-but-unacked state died with it, and the fresh owner decides
//    them against the replayed prefix, exactly as offline would.
//
// Worker health: a periodic `hello` ping per upstream; a worker that misses
// `health_max_missed` consecutive ping windows — or whose connection drops —
// is declared dead, removed from the ring, and its sessions rebalance.
//
// Admin (over the same protocol, from any client connection):
//   {"op": "add_worker",    "addr": "tcp:HOST:PORT|unix:PATH"}
//   {"op": "remove_worker", "addr": "..."}   — graceful drain-out
//
// `metrics` and `hello` are forwarded to the first live worker (ring
// order); `shutdown` shuts the workers down too, then drains and stops.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/event_loop.h"
#include "service/protocol.h"

namespace epi {
namespace net {

struct RouterOptions {
  EventLoop::Options loop;
  /// Virtual nodes per worker on the hash ring: more vnodes → smoother key
  /// spread and smaller rebalance slices, at O(vnodes·workers) ring size.
  unsigned vnodes = 64;
  /// Ping cadence; zero disables active health checks (connection drops
  /// still detect death).
  std::chrono::milliseconds health_interval{1000};
  /// Consecutive unanswered ping windows before a worker is declared dead.
  unsigned health_max_missed = 3;
};

class ShardRouter : public EventLoop::Handler {
 public:
  static Status try_create(RouterOptions options,
                           std::unique_ptr<ShardRouter>* out);

  /// Client-facing listener (unix:/tcp:, repeatable).
  Status add_listener(Address* addr);

  /// Dials a worker and adds it to the ring, rebalancing affected sessions.
  /// Call before run() for the initial set; at runtime arrives as the
  /// add_worker op.
  Status add_worker(const Address& addr);

  /// Serves until a shutdown drains; returns the loop's verdict.
  Status run();

  /// Loop-thread only (post() from elsewhere): shut workers down, drain,
  /// stop. Idempotent.
  void begin_shutdown();

  EventLoop& loop() { return *loop_; }
  std::size_t worker_count() const { return upstreams_.size(); }

 private:
  /// One expected response in an upstream's FIFO.
  struct Forward {
    enum class Kind {
      kAudit,        ///< client audit — relay, log on ack
      kReset,        ///< client reset_session — relay, clear log on ack
      kPassthrough,  ///< client hello/metrics — relay
      kPing,         ///< router health probe — swallow
      kReplay,       ///< router rebalance frame — swallow, count down
      kShutdown,     ///< router-sent shutdown — swallow
    };
    Kind kind = Kind::kPing;
    EventLoop::ConnId client = 0;
    std::string user;
    service::WireRequest request;  ///< re-dispatch payload (kAudit/kReset)
  };

  struct Upstream {
    Address addr;
    std::string key;  ///< addr.to_string(): ring + admin identity
    EventLoop::ConnId conn = 0;
    std::deque<Forward> fifo;
    unsigned missed_pings = 0;
    bool in_ring = true;  ///< false while draining out (remove_worker)
  };

  /// A client job held while its session is mid-rebalance.
  struct HeldJob {
    EventLoop::ConnId client = 0;
    service::WireRequest request;
  };

  /// One acked successful disclosure in a session's replay script. The
  /// replayed-log frame (reset-free audit with the recorded answer) is
  /// serialized exactly once, at ack time: a membership change used to
  /// rebuild and re-serialize every logged query per rebalance, so a hot
  /// ring paid O(log length) serializations per move — now replay is a
  /// verbatim byte send per entry.
  struct LogEntry {
    std::string query;
    bool answer = false;
    std::string replay_frame;  ///< serialize_request of the replay WireRequest
  };

  /// Everything the router knows about one user's session.
  struct SessionState {
    std::string owner;  ///< upstream key; empty = unassigned
    /// Acked successful disclosures, in order: the replay script.
    std::vector<LogEntry> log;
    std::size_t in_flight = 0;  ///< un-acked client jobs at `owner`
    bool replaying = false;
    std::size_t replay_outstanding = 0;
    bool rebalance_pending = false;  ///< waiting for in_flight to drain
    std::deque<HeldJob> held;
  };

  explicit ShardRouter(RouterOptions options) : options_(options) {}

  // EventLoop::Handler
  void on_line(EventLoop::ConnId conn, std::string line) override;
  void on_open(EventLoop::ConnId conn) override;
  void on_close(EventLoop::ConnId conn, const Status& why) override;

  void handle_client_line(EventLoop::ConnId conn, const std::string& line);
  void handle_upstream_line(Upstream& upstream, const std::string& line);

  /// Routes an audit / reset_session: hold if the session is moving,
  /// otherwise forward to the ring owner.
  void route_job(EventLoop::ConnId client, service::WireRequest request);
  void forward_job(EventLoop::ConnId client, SessionState& state,
                   service::WireRequest request);
  void send_error(EventLoop::ConnId client, std::uint64_t id, const Status& s);

  /// Rebuilds the ring points from the in-ring upstreams.
  void rebuild_ring();
  /// Ring lookup; empty string when the ring is empty.
  std::string ring_owner(const std::string& user) const;
  /// First in-ring worker in ring order (hello/metrics passthrough).
  Upstream* first_worker();
  Upstream* upstream_by_key(const std::string& key);

  /// Re-examines every session after membership changed.
  void rebalance_all();
  /// Moves `user` to `new_owner`: reset + replayed log, traffic held.
  void start_replay(const std::string& user, SessionState& state,
                    const std::string& new_owner);
  void finish_replay(const std::string& user, SessionState& state);
  /// Declares `key` dead: re-queues its un-acked client jobs in order,
  /// fails passthroughs, drops it, rebalances.
  void worker_died(const std::string& key);

  void schedule_health_check();
  void maybe_finish_drain();

  RouterOptions options_;
  std::unique_ptr<EventLoop> loop_;

  /// key → upstream. Stable addresses: handlers hold Upstream& across sends.
  std::unordered_map<std::string, std::unique_ptr<Upstream>> upstreams_;
  std::unordered_map<EventLoop::ConnId, Upstream*> upstream_by_conn_;
  /// hash point → worker key, sorted (std::map) for the successor lookup.
  std::map<std::uint64_t, std::string> ring_;

  std::unordered_set<EventLoop::ConnId> clients_;
  std::unordered_map<std::string, SessionState> sessions_;

  bool adopting_upstream_ = false;  ///< on_open disambiguation during adopt
  bool draining_ = false;
  bool health_timer_armed_ = false;
};

}  // namespace net
}  // namespace epi
