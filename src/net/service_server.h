// ServiceServer: the wire-protocol brain of a worker process. It owns an
// EventLoop, speaks the JSON-lines protocol (service/protocol.h) on any mix
// of Unix/TCP listeners, and bridges requests into an AuditService via
// submit_async, so one thread serves every connection while the service's
// worker pool does the deciding.
//
// Two ordering invariants the event-loop world must re-establish (the old
// thread-per-connection server got them for free from blocking process()):
//
//  1. Per-connection response order == request order. Responses complete out
//     of order across users, so each connection keeps a FIFO of response
//     slots; a finished response fills its slot and only the ready prefix is
//     flushed. The shard router's per-upstream FIFO matching depends on this.
//  2. Per-user disclosure order == arrival order. Two pipelined audits for
//     the same user must not race through the service worker pool (absorb
//     order defines the cumulative verdict — Section 3.3 composition). Each
//     user gets a chain: one audit in flight, the rest queued here, and
//     reset_session rides the same chain so a replayed rebalance
//     (reset + audits) cannot interleave with a stale in-flight decision.
//
// Shutdown (wire `shutdown` op or begin_shutdown()): answer, stop listening,
// let every filled slot flush, close connections as they drain, and stop the
// loop when the last one goes — the caller then drains the AuditService
// itself. Requests arriving mid-drain get Unavailable.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/event_loop.h"
#include "service/audit_service.h"
#include "service/protocol.h"

namespace epi {
namespace net {

class ServiceServer : public EventLoop::Handler {
 public:
  /// `service` must outlive the server. Fails when the loop cannot be built.
  static Status try_create(service::AuditService* service,
                           EventLoop::Options loop_options,
                           std::unique_ptr<ServiceServer>* out);

  /// Forwards to EventLoop::add_listener (unix:/tcp:, repeatable).
  Status add_listener(Address* addr);

  /// Serves until a shutdown drains; returns the loop's verdict.
  Status run();

  /// Loop-thread only (post() it from elsewhere): begins the graceful drain
  /// described above. Idempotent.
  void begin_shutdown();

  /// True once a drain started (wire shutdown or begin_shutdown()).
  bool draining() const { return draining_; }

  EventLoop& loop() { return *loop_; }

 private:
  /// One response's place in a connection's FIFO. Slots are shared with the
  /// service completion callback, so a connection that dies mid-request
  /// leaves the slot alive (the response is simply dropped).
  struct Slot {
    bool ready = false;
    std::string line;  ///< serialized response, valid when ready
  };

  struct ClientConn {
    std::deque<std::shared_ptr<Slot>> slots;
  };

  /// A parsed audit/reset waiting its turn on the user's chain.
  struct Job {
    enum class Kind { kAudit, kReset };
    Kind kind = Kind::kAudit;
    EventLoop::ConnId conn = 0;
    std::shared_ptr<Slot> slot;
    std::uint64_t id = 0;
    service::AuditRequest request;  ///< kAudit
  };

  /// Per-user serialization: at most one audit inside the service at a time.
  struct UserChain {
    bool in_flight = false;
    std::deque<Job> waiting;
  };

  explicit ServiceServer(service::AuditService* service) : service_(service) {}

  // EventLoop::Handler
  void on_line(EventLoop::ConnId conn, std::string line) override;
  void on_open(EventLoop::ConnId conn) override;
  void on_close(EventLoop::ConnId conn, const Status& why) override;
  void on_overflow(EventLoop::ConnId conn, const Status& why) override;

  /// Fills `slot` and flushes the connection's ready prefix.
  void finish(EventLoop::ConnId conn, const std::shared_ptr<Slot>& slot,
              service::WireResponse response);
  /// Sends every leading ready slot; closes the connection when draining
  /// and nothing is left.
  void flush_ready(EventLoop::ConnId conn);

  /// Queues `job` on its user's chain, starting it when the chain is idle.
  void enqueue_job(Job job);
  /// Hands an audit to the service; completion posts back onto the loop.
  void start_audit(Job job);
  /// Runs queued jobs until an audit goes in flight or the chain empties.
  void advance_chain(const std::string& user);
  void complete_audit(const std::string& user, EventLoop::ConnId conn,
                      const std::shared_ptr<Slot>& slot, std::uint64_t id,
                      service::AuditResponse response);

  service::WireResponse dispatch_inline(const service::WireRequest& request);

  service::AuditService* service_;
  std::unique_ptr<EventLoop> loop_;
  std::unordered_map<EventLoop::ConnId, ClientConn> clients_;
  std::unordered_map<std::string, UserChain> chains_;
  bool draining_ = false;
};

}  // namespace net
}  // namespace epi
