#include "net/service_server.h"

#include <chrono>
#include <utility>
#include <vector>

#include "obs/export.h"

namespace epi {
namespace net {

using service::Op;
using service::WireRequest;
using service::WireResponse;

Status ServiceServer::try_create(service::AuditService* service,
                                 EventLoop::Options loop_options,
                                 std::unique_ptr<ServiceServer>* out) {
  std::unique_ptr<ServiceServer> server(new ServiceServer(service));
  if (const Status s =
          EventLoop::try_create(server.get(), loop_options, &server->loop_);
      !s.ok()) {
    return s;
  }
  *out = std::move(server);
  return Status::Ok();
}

Status ServiceServer::add_listener(Address* addr) {
  return loop_->add_listener(addr);
}

Status ServiceServer::run() { return loop_->run(); }

void ServiceServer::on_open(EventLoop::ConnId conn) {
  clients_.emplace(conn, ClientConn{});
}

void ServiceServer::on_close(EventLoop::ConnId conn, const Status& why) {
  (void)why;
  clients_.erase(conn);
  // Chained jobs from this connection still run (a request once parsed is
  // processed, matching the blocking server); their responses drop on the
  // floor in finish().
  if (draining_ && loop_->connection_count() == 0) loop_->stop();
}

void ServiceServer::on_overflow(EventLoop::ConnId conn, const Status& why) {
  // Protocol breakdown: slot order no longer matters, the connection is
  // ending. One final error frame, flushed by the loop before the close.
  WireResponse response;
  response.ok = false;
  response.error = why.to_string();
  response.code = service::status_code_slug(why.code());
  loop_->send_line(conn, service::serialize_response(response));
}

void ServiceServer::on_line(EventLoop::ConnId conn, std::string line) {
  if (line.empty()) return;  // blank keep-alive lines are ignored
  auto client = clients_.find(conn);
  if (client == clients_.end()) return;
  auto slot = std::make_shared<Slot>();
  client->second.slots.push_back(slot);

  WireRequest request;
  if (const Status s = parse_request(line, &request); !s.ok()) {
    WireResponse response;  // id 0: the frame's id was unreadable
    response.ok = false;
    response.error = s.to_string();
    response.code = service::status_code_slug(s.code());
    finish(conn, slot, std::move(response));
    return;
  }
  if (draining_) {
    WireResponse response;
    response.id = request.id;
    const Status s = Status::Unavailable("server shutting down");
    response.error = s.to_string();
    response.code = service::status_code_slug(s.code());
    finish(conn, slot, std::move(response));
    return;
  }
  switch (request.op) {
    case Op::kAudit: {
      Job job;
      job.kind = Job::Kind::kAudit;
      job.conn = conn;
      job.slot = slot;
      job.id = request.id;
      job.request.user = request.user;
      job.request.query_text = request.query;
      job.request.answer = request.answer;
      if (request.deadline_ms > 0) {
        job.request.deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(request.deadline_ms);
      }
      enqueue_job(std::move(job));
      return;
    }
    case Op::kResetSession: {
      // Rides the user's chain so a reset cannot overtake audits already
      // accepted for the same user (replayed rebalances depend on this).
      if (chains_.find(request.user) != chains_.end()) {
        Job job;
        job.kind = Job::Kind::kReset;
        job.conn = conn;
        job.slot = slot;
        job.id = request.id;
        job.request.user = request.user;
        enqueue_job(std::move(job));
        return;
      }
      finish(conn, slot, dispatch_inline(request));
      return;
    }
    case Op::kShutdown: {
      WireResponse response;
      response.id = request.id;
      response.ok = true;
      finish(conn, slot, std::move(response));
      begin_shutdown();
      return;
    }
    default:
      finish(conn, slot, dispatch_inline(request));
      return;
  }
}

WireResponse ServiceServer::dispatch_inline(const WireRequest& request) {
  WireResponse response;
  response.id = request.id;
  switch (request.op) {
    case Op::kHello:
      response.ok = true;
      response.audit_query = service_->audit_query();
      response.prior = epi::to_string(service_->prior());
      break;
    case Op::kMetrics:
      response.ok = true;
      response.metrics_json =
          obs::metrics_to_json(service_->metrics_snapshot());
      break;
    case Op::kResetSession: {
      const Status s = service_->reset_session(request.user);
      response.ok = s.ok();
      if (!s.ok()) {
        response.error = s.to_string();
        response.code = service::status_code_slug(s.code());
      }
      break;
    }
    case Op::kAddWorker:
    case Op::kRemoveWorker: {
      const Status s = Status::InvalidArgument(
          "router-admin op '" + service::to_string(request.op) +
          "' sent to a worker; dial the shard router's admin address");
      response.error = s.to_string();
      response.code = service::status_code_slug(s.code());
      break;
    }
    default:
      break;  // audit / shutdown never reach here
  }
  return response;
}

void ServiceServer::enqueue_job(Job job) {
  const std::string user = job.request.user;
  UserChain& chain = chains_[user];
  if (chain.in_flight || !chain.waiting.empty()) {
    chain.waiting.push_back(std::move(job));
    return;
  }
  if (job.kind == Job::Kind::kAudit) {
    chain.in_flight = true;
    start_audit(std::move(job));
    return;
  }
  // A reset with an idle chain runs inline; the freshly created chain entry
  // is empty, so drop it again.
  chains_.erase(user);
  WireRequest request;
  request.op = Op::kResetSession;
  request.id = job.id;
  request.user = user;
  finish(job.conn, job.slot, dispatch_inline(request));
}

void ServiceServer::start_audit(Job job) {
  const std::string user = job.request.user;
  const EventLoop::ConnId conn = job.conn;
  const std::shared_ptr<Slot> slot = job.slot;
  const std::uint64_t id = job.id;
  service_->submit_async(
      std::move(job.request),
      [this, user, conn, slot, id](service::AuditResponse response) {
        // Worker thread (or inline on rejection): hop back to the loop.
        auto boxed = std::make_shared<service::AuditResponse>(
            std::move(response));
        loop_->post([this, user, conn, slot, id, boxed] {
          complete_audit(user, conn, slot, id, std::move(*boxed));
        });
      });
}

void ServiceServer::complete_audit(const std::string& user,
                                   EventLoop::ConnId conn,
                                   const std::shared_ptr<Slot>& slot,
                                   std::uint64_t id,
                                   service::AuditResponse response) {
  finish(conn, slot, service::make_audit_response(id, response));
  auto it = chains_.find(user);
  if (it != chains_.end()) {
    it->second.in_flight = false;
    advance_chain(user);
  }
}

void ServiceServer::advance_chain(const std::string& user) {
  for (;;) {
    auto it = chains_.find(user);
    if (it == chains_.end() || it->second.in_flight) return;
    if (it->second.waiting.empty()) {
      chains_.erase(it);
      return;
    }
    Job job = std::move(it->second.waiting.front());
    it->second.waiting.pop_front();
    if (job.kind == Job::Kind::kAudit) {
      it->second.in_flight = true;
      start_audit(std::move(job));
      return;
    }
    WireRequest request;
    request.op = Op::kResetSession;
    request.id = job.id;
    request.user = user;
    finish(job.conn, job.slot, dispatch_inline(request));
  }
}

void ServiceServer::finish(EventLoop::ConnId conn,
                           const std::shared_ptr<Slot>& slot,
                           WireResponse response) {
  slot->line = service::serialize_response(response);
  slot->ready = true;
  flush_ready(conn);
}

void ServiceServer::flush_ready(EventLoop::ConnId conn) {
  for (;;) {
    auto it = clients_.find(conn);
    if (it == clients_.end()) return;  // connection died (send error path)
    auto& slots = it->second.slots;
    if (slots.empty() || !slots.front()->ready) break;
    const std::string line = std::move(slots.front()->line);
    slots.pop_front();
    loop_->send_line(conn, line);
  }
  auto it = clients_.find(conn);
  if (it != clients_.end() && draining_ && it->second.slots.empty()) {
    loop_->close_connection(conn);
  }
}

void ServiceServer::begin_shutdown() {
  if (draining_) return;
  draining_ = true;
  loop_->close_listeners();
  std::vector<EventLoop::ConnId> idle;
  for (const auto& [conn, client] : clients_) {
    if (client.slots.empty()) idle.push_back(conn);
  }
  for (const EventLoop::ConnId conn : idle) loop_->close_connection(conn);
  if (loop_->connection_count() == 0) loop_->stop();
}

}  // namespace net
}  // namespace epi
