#include "net/address.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

namespace epi {
namespace net {
namespace {

Status errno_status(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status fill_sockaddr_un(const Address& addr, sockaddr_un* out) {
  *out = sockaddr_un{};
  out->sun_family = AF_UNIX;
  if (addr.path.size() >= sizeof(out->sun_path)) {
    return Status::InvalidArgument("socket path too long: " + addr.path);
  }
  std::strncpy(out->sun_path, addr.path.c_str(), sizeof(out->sun_path) - 1);
  return Status::Ok();
}

/// getaddrinfo for the numeric-or-name host; first result wins.
Status resolve_tcp(const Address& addr, sockaddr_storage* storage,
                   socklen_t* len) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string port = std::to_string(addr.port);
  const int rc = ::getaddrinfo(addr.host.c_str(), port.c_str(), &hints,
                               &results);
  if (rc != 0) {
    return Status::InvalidArgument("cannot resolve '" + addr.host +
                                   "': " + ::gai_strerror(rc));
  }
  std::memcpy(storage, results->ai_addr, results->ai_addrlen);
  *len = results->ai_addrlen;
  ::freeaddrinfo(results);
  return Status::Ok();
}

/// True when something is accept()ing on the Unix socket file.
bool unix_socket_alive(const Address& addr) {
  sockaddr_un sun{};
  if (!fill_sockaddr_un(addr, &sun).ok()) return false;
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe < 0) return false;
  const bool alive =
      ::connect(probe, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) == 0;
  ::close(probe);
  return alive;
}

}  // namespace

std::string Address::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Status parse_address(const std::string& spec, Address* out) {
  *out = Address{};
  if (spec.rfind("unix:", 0) == 0) {
    out->kind = Address::Kind::kUnix;
    out->path = spec.substr(5);
    if (out->path.empty()) {
      return Status::InvalidArgument("unix address needs a path: '" + spec +
                                     "'");
    }
    return Status::Ok();
  }
  if (spec.rfind("tcp:", 0) == 0) {
    out->kind = Address::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return Status::InvalidArgument("tcp address must be tcp:HOST:PORT: '" +
                                     spec + "'");
    }
    out->host = rest.substr(0, colon);
    const char* first = rest.data() + colon + 1;
    const char* last = rest.data() + rest.size();
    unsigned port = 0;
    const std::from_chars_result r = std::from_chars(first, last, port);
    if (r.ec != std::errc() || r.ptr != last || port > 65535) {
      return Status::InvalidArgument("bad tcp port in '" + spec + "'");
    }
    out->port = static_cast<std::uint16_t>(port);
    return Status::Ok();
  }
  return Status::InvalidArgument(
      "address must start with unix: or tcp: — got '" + spec + "'");
}

Status set_non_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

Status listen_on(Address* addr, int* listen_fd) {
  int fd = -1;
  if (addr->kind == Address::Kind::kUnix) {
    // A leftover socket file from a crashed server would make bind() fail
    // with EADDRINUSE forever; probe it so only a *live* server blocks us.
    if (::access(addr->path.c_str(), F_OK) == 0) {
      if (unix_socket_alive(*addr)) {
        return Status::Unavailable("address in use: a live server is "
                                   "accepting on " +
                                   addr->to_string());
      }
      ::unlink(addr->path.c_str());
    }
    sockaddr_un sun{};
    if (const Status s = fill_sockaddr_un(*addr, &sun); !s.ok()) return s;
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return errno_status("socket");
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) < 0) {
      const Status s = errno_status("bind '" + addr->to_string() + "'");
      ::close(fd);
      return s;
    }
  } else {
    sockaddr_storage storage{};
    socklen_t len = 0;
    if (const Status s = resolve_tcp(*addr, &storage, &len); !s.ok()) return s;
    fd = ::socket(storage.ss_family, SOCK_STREAM, 0);
    if (fd < 0) return errno_status("socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&storage), len) < 0) {
      const Status s = errno_status("bind '" + addr->to_string() + "'");
      ::close(fd);
      return s;
    }
    // Resolve a kernel-assigned port so callers can print a dialable
    // address (tests listen on tcp:127.0.0.1:0 to avoid port races).
    sockaddr_storage bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
        0) {
      if (bound.ss_family == AF_INET) {
        addr->port =
            ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        addr->port =
            ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
      }
    }
  }
  if (::listen(fd, 128) < 0) {
    const Status s = errno_status("listen '" + addr->to_string() + "'");
    ::close(fd);
    if (addr->kind == Address::Kind::kUnix) ::unlink(addr->path.c_str());
    return s;
  }
  if (const Status s = set_non_blocking(fd); !s.ok()) {
    ::close(fd);
    if (addr->kind == Address::Kind::kUnix) ::unlink(addr->path.c_str());
    return s;
  }
  *listen_fd = fd;
  return Status::Ok();
}

Status connect_to(const Address& addr, int* fd) {
  int sock = -1;
  if (addr.kind == Address::Kind::kUnix) {
    sockaddr_un sun{};
    if (const Status s = fill_sockaddr_un(addr, &sun); !s.ok()) return s;
    sock = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (sock < 0) return errno_status("socket");
    if (::connect(sock, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) < 0) {
      const Status s = Status::Unavailable("connect '" + addr.to_string() +
                                           "': " + std::strerror(errno));
      ::close(sock);
      return s;
    }
  } else {
    sockaddr_storage storage{};
    socklen_t len = 0;
    if (const Status s = resolve_tcp(addr, &storage, &len); !s.ok()) return s;
    sock = ::socket(storage.ss_family, SOCK_STREAM, 0);
    if (sock < 0) return errno_status("socket");
    if (::connect(sock, reinterpret_cast<sockaddr*>(&storage), len) < 0) {
      const Status s = Status::Unavailable("connect '" + addr.to_string() +
                                           "': " + std::strerror(errno));
      ::close(sock);
      return s;
    }
    // The protocol is tiny '\n'-framed lines; Nagle would add 40 ms stalls
    // between a request burst and its responses.
    const int one = 1;
    ::setsockopt(sock, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  *fd = sock;
  return Status::Ok();
}

}  // namespace net
}  // namespace epi
