// The serving tier's epoll event loop: one thread multiplexing any number
// of listeners (Unix + TCP simultaneously) and connections, replacing the
// thread-per-connection model in examples/audit_server.
//
// Everything is edge-level non-blocking (level-triggered epoll):
//  * accept loops until EAGAIN; accepted fds are made non-blocking and, for
//    TCP, get TCP_NODELAY;
//  * reads drain until EAGAIN and feed a per-connection service::LineFramer,
//    so a '\n'-framed JSON request split across any number of partial reads
//    reassembles exactly once, in order;
//  * writes go straight to the socket and only spill into the per-connection
//    write buffer on a short write, arming EPOLLOUT until it drains; every
//    send uses MSG_NOSIGNAL so a vanishing peer is an EPIPE, not a SIGPIPE;
//  * idle connections (no bytes either way for Options::idle_timeout) are
//    closed on a periodic sweep;
//  * timers (post_at) and cross-thread work (post) ride an eventfd wakeup,
//    which is how service completions re-enter the loop thread.
//
// Threading: everything except post()/stop() must be called on the loop
// thread (the thread inside run()); Handler callbacks already are.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/address.h"
#include "service/protocol.h"
#include "util/status.h"

namespace epi {
namespace net {

class EventLoop {
 public:
  using ConnId = std::uint64_t;
  using TimePoint = std::chrono::steady_clock::time_point;

  /// Connection callbacks. All run on the loop thread; they may call
  /// send_line / close_connection / post_at freely (including on the
  /// connection they were invoked for).
  class Handler {
   public:
    virtual ~Handler() = default;
    /// One complete '\n'-framed line (terminator stripped).
    virtual void on_line(ConnId conn, std::string line) = 0;
    virtual void on_open(ConnId conn) { (void)conn; }
    /// The connection is gone (peer closed, error, idle timeout, overflow
    /// or close_connection). `why` is Ok for a plain peer close.
    virtual void on_close(ConnId conn, const Status& why) {
      (void)conn;
      (void)why;
    }
    /// A line exceeded max_line_bytes. Default: close immediately. An
    /// override may send a final error frame first and then
    /// close_connection (which flushes before closing).
    virtual void on_overflow(ConnId conn, const Status& why);
  };

  struct Options {
    /// Close connections with no traffic either way for this long;
    /// zero disables the sweep.
    std::chrono::milliseconds idle_timeout{0};
    /// Per-connection line cap (service::LineFramer overflow).
    std::size_t max_line_bytes = service::LineFramer::kDefaultMaxLineBytes;
    /// A peer that stops reading cannot grow the write buffer past this.
    std::size_t max_write_buffer_bytes = 32u << 20;
  };

  /// Fails when the epoll/eventfd plumbing cannot be created.
  static Status try_create(Handler* handler, Options options,
                           std::unique_ptr<EventLoop>* out);

  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Opens a listener (any mix of unix/tcp, repeatable). `*addr` gets a
  /// kernel-assigned TCP port resolved so callers can print it.
  Status add_listener(Address* addr);

  /// Stops accepting new connections (existing ones keep running).
  void close_listeners();

  /// Adopts an externally connected fd (client dials, socketpair tests) as
  /// a loop connection; flips it non-blocking.
  Status adopt(int fd, ConnId* conn);

  /// Queues one protocol line (the '\n' is appended here) and flushes as
  /// much as the socket accepts. Unknown ids are ignored (the connection
  /// raced shut).
  void send_line(ConnId conn, std::string_view line);

  /// Flushes buffered output, then closes. Unknown ids are ignored.
  void close_connection(ConnId conn);

  /// Thread-safe: runs `fn` on the loop thread at its next wakeup.
  void post(std::function<void()> fn);

  /// Loop-thread only: runs `fn` once `when` passes.
  void post_at(TimePoint when, std::function<void()> fn);

  /// Serves until stop(). Returns the first fatal loop error, Ok on stop().
  Status run();

  /// Thread-safe; run() returns soon after.
  void stop();

  std::size_t connection_count() const { return conns_.size(); }

 private:
  struct Conn {
    int fd = -1;
    service::LineFramer framer;
    std::string out;            ///< unflushed bytes
    std::size_t out_off = 0;    ///< consumed prefix of `out`
    TimePoint last_activity{};
    bool want_write = false;
    bool close_after_flush = false;
    Conn(int f, std::size_t max_line, TimePoint now)
        : fd(f), framer(max_line), last_activity(now) {}
  };

  struct Listener {
    int fd = -1;
    Address addr;
  };

  struct Timer {
    TimePoint when;
    std::uint64_t seq;  ///< FIFO among equal deadlines
    std::function<void()> fn;
    bool operator>(const Timer& other) const {
      return when != other.when ? when > other.when : seq > other.seq;
    }
  };

  EventLoop(Handler* handler, Options options, int epoll_fd, int wake_fd);

  Status register_fd(int fd, std::uint64_t tag, bool want_write);
  void update_interest(std::uint64_t tag, Conn& conn);
  void handle_accept(Listener& listener);
  void handle_readable(ConnId id);
  void handle_writable(ConnId id);
  /// Pushes pending bytes into the socket; arms/disarms EPOLLOUT.
  void flush(ConnId id, Conn& conn);
  void destroy_connection(ConnId id, const Status& why);
  void run_due_timers();
  void sweep_idle();
  int wait_timeout_ms() const;
  void drain_wakeups();

  Handler* handler_;
  Options options_;
  int epoll_fd_;
  int wake_fd_;  ///< eventfd for post()/stop()

  std::uint64_t next_id_ = 1;  ///< 0 is the wake eventfd's tag
  std::unordered_map<std::uint64_t, Listener> listeners_;
  std::unordered_map<ConnId, Conn> conns_;

  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::uint64_t timer_seq_ = 0;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
  bool stop_requested_ = false;  ///< guarded by posted_mutex_
};

}  // namespace net
}  // namespace epi
