#include "net/event_loop.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iterator>
#include <limits>

namespace epi {
namespace net {
namespace {

constexpr std::uint64_t kWakeTag = 0;

Status errno_status(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

void EventLoop::Handler::on_overflow(ConnId conn, const Status& why) {
  (void)why;
  // Default policy: the peer is misbehaving; drop it. ServiceServer
  // overrides this to send a final error frame first.
  (void)conn;
}

Status EventLoop::try_create(Handler* handler, Options options,
                             std::unique_ptr<EventLoop>* out) {
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return errno_status("epoll_create1");
  const int wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd < 0) {
    const Status s = errno_status("eventfd");
    ::close(epoll_fd);
    return s;
  }
  std::unique_ptr<EventLoop> loop(
      new EventLoop(handler, options, epoll_fd, wake_fd));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) < 0) {
    return errno_status("epoll_ctl(wake)");
  }
  *out = std::move(loop);
  return Status::Ok();
}

EventLoop::EventLoop(Handler* handler, Options options, int epoll_fd,
                     int wake_fd)
    : handler_(handler),
      options_(options),
      epoll_fd_(epoll_fd),
      wake_fd_(wake_fd) {}

EventLoop::~EventLoop() {
  for (auto& [id, conn] : conns_) ::close(conn.fd);
  close_listeners();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

Status EventLoop::register_fd(int fd, std::uint64_t tag, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return errno_status("epoll_ctl(add)");
  }
  return Status::Ok();
}

Status EventLoop::add_listener(Address* addr) {
  int fd = -1;
  if (const Status s = listen_on(addr, &fd); !s.ok()) return s;
  const std::uint64_t tag = next_id_++;
  if (const Status s = register_fd(fd, tag, /*want_write=*/false); !s.ok()) {
    ::close(fd);
    if (addr->kind == Address::Kind::kUnix) ::unlink(addr->path.c_str());
    return s;
  }
  listeners_.emplace(tag, Listener{fd, *addr});
  return Status::Ok();
}

void EventLoop::close_listeners() {
  for (auto& [tag, listener] : listeners_) {
    ::close(listener.fd);
    if (listener.addr.kind == Address::Kind::kUnix) {
      ::unlink(listener.addr.path.c_str());
    }
  }
  listeners_.clear();
}

Status EventLoop::adopt(int fd, ConnId* conn) {
  if (const Status s = set_non_blocking(fd); !s.ok()) return s;
  const ConnId id = next_id_++;
  if (const Status s = register_fd(fd, id, /*want_write=*/false); !s.ok()) {
    return s;
  }
  conns_.emplace(id, Conn(fd, options_.max_line_bytes,
                          std::chrono::steady_clock::now()));
  *conn = id;
  handler_->on_open(id);
  return Status::Ok();
}

void EventLoop::handle_accept(Listener& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept error: try again next wakeup
    }
    if (!set_non_blocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    if (listener.addr.kind == Address::Kind::kTcp) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    const ConnId id = next_id_++;
    if (!register_fd(fd, id, /*want_write=*/false).ok()) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, Conn(fd, options_.max_line_bytes,
                            std::chrono::steady_clock::now()));
    handler_->on_open(id);
  }
}

void EventLoop::handle_readable(ConnId id) {
  char chunk[65536];
  for (;;) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;  // a callback closed it mid-read
    Conn& conn = it->second;
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      destroy_connection(id, errno_status("recv"));
      return;
    }
    if (n == 0) {
      destroy_connection(id, Status::Ok());  // peer closed
      return;
    }
    conn.last_activity = std::chrono::steady_clock::now();
    const Status fed =
        conn.framer.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    // Hand out the lines via a local batch: on_line may close this
    // connection (destroying the framer) at any point.
    std::vector<std::string> lines;
    for (std::string line; conn.framer.next(&line);) {
      lines.push_back(std::move(line));
    }
    for (std::string& line : lines) {
      if (conns_.find(id) == conns_.end()) return;
      handler_->on_line(id, std::move(line));
    }
    if (!fed.ok()) {
      if (conns_.find(id) == conns_.end()) return;
      handler_->on_overflow(id, fed);
      // Whatever the handler queued still flushes; no more reads happen.
      auto again = conns_.find(id);
      if (again != conns_.end()) {
        again->second.close_after_flush = true;
        flush(id, again->second);
      }
      return;
    }
    if (static_cast<std::size_t>(n) < sizeof(chunk)) return;  // drained
  }
}

void EventLoop::send_line(ConnId id, std::string_view line) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.close_after_flush) return;  // already ending; drop late frames
  conn.out.append(line.data(), line.size());
  conn.out.push_back('\n');
  if (conn.out.size() - conn.out_off > options_.max_write_buffer_bytes) {
    destroy_connection(
        id, Status::ResourceExhausted("peer not reading: write buffer over " +
                                      std::to_string(
                                          options_.max_write_buffer_bytes) +
                                      " bytes"));
    return;
  }
  flush(id, conn);
}

void EventLoop::flush(ConnId id, Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      destroy_connection(id, errno_status("send"));
      return;
    }
    conn.out_off += static_cast<std::size_t>(n);
    conn.last_activity = std::chrono::steady_clock::now();
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.close_after_flush) {
      destroy_connection(id, Status::Ok());
      return;
    }
  } else if (conn.out_off > (1u << 16) && conn.out_off * 2 > conn.out.size()) {
    // Reclaim the consumed prefix once it dominates the buffer.
    conn.out.erase(0, conn.out_off);
    conn.out_off = 0;
  }
  update_interest(id, conn);
}

void EventLoop::update_interest(std::uint64_t tag, Conn& conn) {
  const bool want_write = conn.out_off < conn.out.size();
  if (want_write == conn.want_write) return;
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = tag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void EventLoop::handle_writable(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  flush(id, it->second);
}

void EventLoop::close_connection(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.out_off == conn.out.size()) {
    destroy_connection(id, Status::Ok());
    return;
  }
  conn.close_after_flush = true;
  flush(id, conn);
}

void EventLoop::destroy_connection(ConnId id, const Status& why) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const int fd = it->second.fd;
  conns_.erase(it);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  handler_->on_close(id, why);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  // The eventfd is non-blocking; a full counter still leaves it readable,
  // so a dropped write cannot lose the wakeup.
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::post_at(TimePoint when, std::function<void()> fn) {
  timers_.push(Timer{when, timer_seq_++, std::move(fn)});
}

void EventLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    stop_requested_ = true;
  }
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_wakeups() {
  std::uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

void EventLoop::run_due_timers() {
  const TimePoint now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.top().when <= now) {
    // priority_queue::top is const; the timer is copied out before pop.
    std::function<void()> fn = timers_.top().fn;
    timers_.pop();
    fn();
  }
}

void EventLoop::sweep_idle() {
  if (options_.idle_timeout.count() <= 0) return;
  const TimePoint now = std::chrono::steady_clock::now();
  std::vector<ConnId> idle;
  for (const auto& [id, conn] : conns_) {
    if (now - conn.last_activity >= options_.idle_timeout) idle.push_back(id);
  }
  for (const ConnId id : idle) {
    destroy_connection(id,
                       Status::DeadlineExceeded("idle connection timeout"));
  }
}

int EventLoop::wait_timeout_ms() const {
  using std::chrono::ceil;
  using std::chrono::milliseconds;
  const TimePoint now = std::chrono::steady_clock::now();
  std::int64_t wait = -1;  // block until an event
  if (!timers_.empty()) {
    wait = std::max<std::int64_t>(
        0, ceil<milliseconds>(timers_.top().when - now).count());
  }
  if (options_.idle_timeout.count() > 0) {
    // Sweep cadence: half the timeout bounds the overshoot without a
    // dedicated timer per connection.
    const std::int64_t sweep =
        std::max<std::int64_t>(1, options_.idle_timeout.count() / 2);
    wait = wait < 0 ? sweep : std::min(wait, sweep);
  }
  return static_cast<int>(std::min<std::int64_t>(
      wait < 0 ? -1 : wait, std::numeric_limits<int>::max()));
}

Status EventLoop::run() {
  epoll_event events[128];
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(posted_mutex_);
      if (stop_requested_) return Status::Ok();
    }
    run_due_timers();
    sweep_idle();
    const int n =
        ::epoll_wait(epoll_fd_, events, std::size(events), wait_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        drain_wakeups();
        std::vector<std::function<void()>> work;
        {
          std::lock_guard<std::mutex> lock(posted_mutex_);
          work.swap(posted_);
        }
        for (std::function<void()>& fn : work) fn();
        continue;
      }
      if (auto listener = listeners_.find(tag); listener != listeners_.end()) {
        handle_accept(listener->second);
        continue;
      }
      const auto flags = events[i].events;
      if (flags & (EPOLLHUP | EPOLLERR)) {
        // Drain what the peer sent before it went away; recv reports the
        // close/EPIPE and destroys the connection.
        handle_readable(tag);
        continue;
      }
      if (flags & EPOLLOUT) handle_writable(tag);
      if (flags & EPOLLIN) handle_readable(tag);
    }
  }
}

}  // namespace net
}  // namespace epi
