// Listen/connect addresses for the serving layer: `unix:PATH` Unix-domain
// sockets and `tcp:HOST:PORT` TCP sockets, parsed from the one string form
// every binary flag (`--listen`, `--connect`, `--worker`) shares.
//
// All socket creation here is Status-first and SIGPIPE-proof by
// construction: the fds come back non-blocking where asked, listeners get
// SO_REUSEADDR (TCP) or the stale-socket-file probe (Unix), and every write
// in src/net/ uses MSG_NOSIGNAL, so a dying peer surfaces as EPIPE instead
// of killing the process.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace epi {
namespace net {

struct Address {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;  ///< unix: socket file path
  std::string host;  ///< tcp: numeric IPv4/IPv6 address or name
  std::uint16_t port = 0;

  /// The canonical `unix:PATH` / `tcp:HOST:PORT` spelling.
  std::string to_string() const;
};

/// Parses `unix:PATH` or `tcp:HOST:PORT` (port 0 = kernel-assigned, resolved
/// by listen_on). A spec without a scheme is rejected so flag typos fail
/// loudly instead of becoming a relative socket path.
Status parse_address(const std::string& spec, Address* out);

/// Opens a non-blocking listening socket for `addr`. For Unix addresses a
/// leftover socket file is probed with a connect() first: a live server
/// answers the probe and listen_on fails with "address in use", a dead one
/// refuses it and the stale file is unlinked — so restarting after a crash
/// just works while double-starts stay an error. For TCP, SO_REUSEADDR is
/// set and a kernel-assigned port (`tcp:HOST:0`) is resolved into `*addr`
/// so callers can print the address a client must dial.
Status listen_on(Address* addr, int* listen_fd);

/// Blocking connect to `addr`; the returned fd stays blocking (callers that
/// want event-loop semantics hand it to EventLoop::adopt, which flips it
/// non-blocking). Local serving-tier dials resolve in microseconds, so a
/// blocking connect keeps the router's reconnect path simple.
Status connect_to(const Address& addr, int* fd);

/// Marks `fd` non-blocking (O_NONBLOCK).
Status set_non_blocking(int fd);

}  // namespace net
}  // namespace epi
