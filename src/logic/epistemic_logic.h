// Single-agent epistemic logic (S5) over finite world spaces — the
// "well-known semantics for reasoning about knowledge" the paper builds its
// privacy notion on (Section 2, citing Fagin-Halpern-Moses-Vardi). A formula
// is evaluated at a possibilistic knowledge world (omega, S):
//
//   (omega, S) |= p           iff omega is in the proposition's world set
//   (omega, S) |= K phi       iff (omega', S) |= phi for every omega' in S
//   (omega, S) |= P phi       iff (omega', S) |= phi for some omega' in S
//   boolean connectives as usual
//
// The privacy definition itself becomes a formula scheme: Definition 3.1
// says the disclosure of B is safe at (omega, S) iff
//     update_B( not K A )  holds whenever  not K A  held before,
// i.e. "not K A -> [B](not K A)" — and the module proves the equivalence
// with safe_possibilistic by exhaustive model checking in tests.
#pragma once

#include <memory>
#include <string>

#include "possibilistic/knowledge.h"
#include "worlds/finite_set.h"

namespace epi {

/// A formula of single-agent epistemic logic with propositions interpreted
/// as world sets.
class EpistemicFormula {
 public:
  virtual ~EpistemicFormula() = default;

  /// Truth at the knowledge world (omega, S).
  virtual bool holds(std::size_t world, const FiniteSet& knowledge) const = 0;

  /// Readable form.
  virtual std::string to_string() const = 0;
};

using FormulaPtr = std::shared_ptr<const EpistemicFormula>;

/// Atomic proposition "the actual world lies in `worlds`".
FormulaPtr proposition(FiniteSet worlds, std::string name = "p");
/// Negation.
FormulaPtr logical_not(const FormulaPtr& f);
/// Conjunction / disjunction / implication.
FormulaPtr logical_and(const FormulaPtr& lhs, const FormulaPtr& rhs);
FormulaPtr logical_or(const FormulaPtr& lhs, const FormulaPtr& rhs);
FormulaPtr logical_implies(const FormulaPtr& lhs, const FormulaPtr& rhs);
/// Knowledge modality: "the agent knows f".
FormulaPtr knows(const FormulaPtr& f);
/// Possibility modality: "the agent considers f possible" (= not K not f).
FormulaPtr possible(const FormulaPtr& f);
/// Public-announcement-style update (box): "if `b` can truthfully be
/// announced, then after learning it f holds" — evaluated as f at
/// (omega, S ∩ b); vacuously true when omega is not in b.
FormulaPtr after_learning(FiniteSet b, const FormulaPtr& f,
                          std::string name = "B");

/// True when the formula holds at every consistent knowledge world of K.
bool valid_in(const SecondLevelKnowledge& k, const FormulaPtr& f);

/// The Definition 3.1 privacy scheme as a formula:
///     (not K A) -> [B](not K A)
/// "an agent who does not know A still does not know A after learning B".
/// `valid_in(K, privacy_formula(A,B))` is equivalent to Safe_K(A,B) for
/// agents whose worlds satisfy B (asserted by tests).
FormulaPtr privacy_formula(const FiniteSet& a, const FiniteSet& b);

/// S5 axioms as formula schemes over given components, for validity testing:
/// T (knowledge is true): K f -> f.
FormulaPtr axiom_t(const FormulaPtr& f);
/// 4 (positive introspection): K f -> K K f.
FormulaPtr axiom_4(const FormulaPtr& f);
/// 5 (negative introspection): not K f -> K not K f.
FormulaPtr axiom_5(const FormulaPtr& f);

}  // namespace epi
