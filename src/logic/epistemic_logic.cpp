#include "logic/epistemic_logic.h"

namespace epi {
namespace {

class Proposition : public EpistemicFormula {
 public:
  Proposition(FiniteSet worlds, std::string name)
      : worlds_(std::move(worlds)), name_(std::move(name)) {}

  bool holds(std::size_t world, const FiniteSet&) const override {
    return worlds_.contains(world);
  }
  std::string to_string() const override { return name_; }

 private:
  FiniteSet worlds_;
  std::string name_;
};

class Not : public EpistemicFormula {
 public:
  explicit Not(FormulaPtr inner) : inner_(std::move(inner)) {}
  bool holds(std::size_t w, const FiniteSet& s) const override {
    return !inner_->holds(w, s);
  }
  std::string to_string() const override { return "!" + inner_->to_string(); }

 private:
  FormulaPtr inner_;
};

enum class Connective { kAnd, kOr, kImplies };

class Binary : public EpistemicFormula {
 public:
  Binary(Connective c, FormulaPtr lhs, FormulaPtr rhs)
      : connective_(c), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  bool holds(std::size_t w, const FiniteSet& s) const override {
    switch (connective_) {
      case Connective::kAnd:
        return lhs_->holds(w, s) && rhs_->holds(w, s);
      case Connective::kOr:
        return lhs_->holds(w, s) || rhs_->holds(w, s);
      case Connective::kImplies:
        return !lhs_->holds(w, s) || rhs_->holds(w, s);
    }
    return false;
  }

  std::string to_string() const override {
    const char* symbol = connective_ == Connective::kAnd ? " & "
                         : connective_ == Connective::kOr ? " | "
                                                          : " -> ";
    return "(" + lhs_->to_string() + symbol + rhs_->to_string() + ")";
  }

 private:
  Connective connective_;
  FormulaPtr lhs_;
  FormulaPtr rhs_;
};

class Knows : public EpistemicFormula {
 public:
  explicit Knows(FormulaPtr inner) : inner_(std::move(inner)) {}

  bool holds(std::size_t, const FiniteSet& s) const override {
    bool all = true;
    s.visit([&](std::size_t w2) {
      if (all && !inner_->holds(w2, s)) all = false;
    });
    return all;
  }
  std::string to_string() const override { return "K " + inner_->to_string(); }

 private:
  FormulaPtr inner_;
};

class AfterLearning : public EpistemicFormula {
 public:
  AfterLearning(FiniteSet b, FormulaPtr inner, std::string name)
      : b_(std::move(b)), inner_(std::move(inner)), name_(std::move(name)) {}

  bool holds(std::size_t w, const FiniteSet& s) const override {
    // Standard box semantics: vacuously true when B cannot truthfully be
    // announced at w (matching Def. 3.1's discarding of pairs with w not
    // in B).
    if (!b_.contains(w)) return true;
    return inner_->holds(w, s & b_);
  }
  std::string to_string() const override {
    return "[" + name_ + "]" + inner_->to_string();
  }

 private:
  FiniteSet b_;
  FormulaPtr inner_;
  std::string name_;
};

}  // namespace

FormulaPtr proposition(FiniteSet worlds, std::string name) {
  return std::make_shared<Proposition>(std::move(worlds), std::move(name));
}

FormulaPtr logical_not(const FormulaPtr& f) { return std::make_shared<Not>(f); }

FormulaPtr logical_and(const FormulaPtr& lhs, const FormulaPtr& rhs) {
  return std::make_shared<Binary>(Connective::kAnd, lhs, rhs);
}

FormulaPtr logical_or(const FormulaPtr& lhs, const FormulaPtr& rhs) {
  return std::make_shared<Binary>(Connective::kOr, lhs, rhs);
}

FormulaPtr logical_implies(const FormulaPtr& lhs, const FormulaPtr& rhs) {
  return std::make_shared<Binary>(Connective::kImplies, lhs, rhs);
}

FormulaPtr knows(const FormulaPtr& f) { return std::make_shared<Knows>(f); }

FormulaPtr possible(const FormulaPtr& f) {
  return logical_not(knows(logical_not(f)));
}

FormulaPtr after_learning(FiniteSet b, const FormulaPtr& f, std::string name) {
  return std::make_shared<AfterLearning>(std::move(b), f, std::move(name));
}

bool valid_in(const SecondLevelKnowledge& k, const FormulaPtr& f) {
  for (const KnowledgeWorld& kw : k.pairs()) {
    if (!f->holds(kw.world, kw.knowledge)) return false;
  }
  return true;
}

FormulaPtr privacy_formula(const FiniteSet& a, const FiniteSet& b) {
  const FormulaPtr knows_a = knows(proposition(a, "A"));
  return logical_implies(logical_not(knows_a),
                         after_learning(b, logical_not(knows_a), "B"));
}

FormulaPtr axiom_t(const FormulaPtr& f) { return logical_implies(knows(f), f); }

FormulaPtr axiom_4(const FormulaPtr& f) {
  return logical_implies(knows(f), knows(knows(f)));
}

FormulaPtr axiom_5(const FormulaPtr& f) {
  return logical_implies(logical_not(knows(f)), knows(logical_not(knows(f))));
}

}  // namespace epi
