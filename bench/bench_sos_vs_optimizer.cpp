// Experiment E9 (DESIGN.md): the algebraic layer of Section 6 — SOS /
// Positivstellensatz certificates vs numeric optimization.
//
// Paper claims measured:
//  * Prop. 6.4 route: SOS membership testing via semidefinite feasibility
//    works in practice ("implemented and works remarkably well");
//  * the Motzkin polynomial is nonnegative but NOT a sum of squares;
//  * on product-prior safety instances that defeat every combinatorial
//    criterion, the degree-bounded Positivstellensatz (Thm. 6.7) certifies
//    the safe ones while coordinate ascent refutes the unsafe ones — we
//    report the agreement matrix and timing of the two.
#include <chrono>
#include <cstdio>

#include "algebra/safety_polynomial.h"
#include "criteria/pipeline.h"
#include "optimize/coordinate_ascent.h"
#include "optimize/positivstellensatz.h"
#include "optimize/sos.h"

using namespace epi;

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("=== E9: SOS certificates vs numeric optimization (Section 6) ===\n\n");

  // Sanity rows from the paper's Section 6.2 discussion.
  {
    const std::size_t s = 2;
    Polynomial x = Polynomial::variable(s, 0);
    Polynomial y = Polynomial::variable(s, 1);
    const auto t0 = std::chrono::steady_clock::now();
    const bool square_ok = is_sos((x - y).pow(2));
    const double square_ms = ms_since(t0);
    const auto t1 = std::chrono::steady_clock::now();
    SdpOptions opts;
    opts.max_iterations = 1500;
    const bool motzkin = is_sos(motzkin_polynomial(), opts);
    const double motzkin_ms = ms_since(t1);
    std::printf("%-42s %-8s %10.1f ms   (paper: yes)\n",
                "(x - y)^2 in Sigma^2:", square_ok ? "yes" : "no", square_ms);
    std::printf("%-42s %-8s %10.1f ms   (paper: no — Motzkin)\n",
                "Motzkin polynomial in Sigma^2:", motzkin ? "yes" : "no",
                motzkin_ms);
  }

  // Agreement matrix on pipeline-unknown product-safety instances at n = 3.
  std::printf("\ninstances undecided by every combinatorial criterion (n = 3):\n");
  std::printf("%6s %6s %28s %16s\n", "count", "", "optimizer verdict",
              "SOS certificate");
  Rng rng(606);
  int both_safe = 0, both_unsafe_unknown = 0, disagree = 0, sos_timeout = 0;
  double opt_ms_total = 0.0, sos_ms_total = 0.0;
  int considered = 0;
  for (int t = 0; t < 4000 && considered < 60; ++t) {
    WorldSet a = WorldSet::random(3, rng, 0.5);
    WorldSet b = WorldSet::random(3, rng, 0.5);
    if (run_criteria(product_criteria(), a, b, "exhausted").verdict !=
        Verdict::kUnknown) {
      continue;
    }
    ++considered;

    auto t0 = std::chrono::steady_clock::now();
    AscentOptions ascent;
    ascent.seed = 515 + t;
    const double gap = maximize_product_gap(a, b, ascent).max_gap;
    opt_ms_total += ms_since(t0);
    const bool numeric_safe = gap <= 1e-9;

    t0 = std::chrono::steady_clock::now();
    SdpOptions sdp;
    sdp.max_iterations = 6000;
    const Verdict sos = sos_product_safety(a, b, 0, sdp);
    sos_ms_total += ms_since(t0);

    if (numeric_safe && sos == Verdict::kSafe) {
      ++both_safe;
    } else if (!numeric_safe && sos == Verdict::kUnknown) {
      ++both_unsafe_unknown;
    } else if (numeric_safe && sos == Verdict::kUnknown) {
      ++sos_timeout;  // safe numerically but certificate not found in budget
    } else {
      ++disagree;  // SOS says safe but optimizer found a violation: impossible
    }
  }
  std::printf("  %4d   safe by optimizer, certified by SOS\n", both_safe);
  std::printf("  %4d   unsafe by optimizer, SOS correctly finds no certificate\n",
              both_unsafe_unknown);
  std::printf("  %4d   safe by optimizer, SOS budget exhausted (heuristic miss)\n",
              sos_timeout);
  std::printf("  %4d   contradictions (must be 0)\n", disagree);
  std::printf("  avg optimizer time %.2f ms, avg SOS time %.2f ms\n",
              opt_ms_total / considered, sos_ms_total / considered);

  // The Remark 5.12 flagship instance.
  std::printf("\nRemark 5.12 instance (defeats all combinatorial criteria):\n");
  WorldSet a = WorldSet::from_strings(3, {"011", "100", "110", "111"});
  WorldSet b = WorldSet::from_strings(3, {"010", "101", "110", "111"});
  const auto t0 = std::chrono::steady_clock::now();
  SdpOptions sdp;
  sdp.max_iterations = 20000;
  const auto cert = prove_nonneg_on_box(product_safety_margin(a, b).pruned(1e-14),
                                        4, sdp);
  std::printf("  degree-4 Positivstellensatz certificate: %s (%.1f ms)\n",
              cert ? "FOUND" : "not found", ms_since(t0));
  if (cert) {
    std::printf("  (closed form: margin = (p0 - p1)^2 * p2(1 - p2))\n");
  }
  return 0;
}
