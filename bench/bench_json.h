// One machine-readable schema for every bench's `--json` mode, so the CI
// perf gate (tools/bench_compare.py) can diff any snapshot without
// per-bench parsing:
//
//   {
//     "bench": "<name>",
//     "results": [
//       {"axis": "<table>", "<dim>": ..., "<metric>": ...},
//       ...
//     ]
//   }
//
// Each row is one measurement: string/integer fields are dimensions (they
// key the row), floating-point fields are metrics (they get compared).
// Metric names carry their direction — `*_per_sec` and `speedup*` are
// higher-is-better, `*_ns` lower-is-better; anything else is informational.
//
// Header-only and allocation-light on purpose: benches printf their text
// tables, and this builder only runs in `--json` mode.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace epi {
namespace bench {

class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Starts a new result row on the given axis (the table it belongs to).
  JsonReport& row(const char* axis) {
    rows_.emplace_back();
    return field(axis_key(), axis);
  }

  JsonReport& field(const char* key, const char* value) {
    std::string quoted;
    quoted.reserve(std::char_traits<char>::length(value) + 2);
    quoted += '"';
    quoted += value;
    quoted += '"';
    rows_.back().emplace_back(key, std::move(quoted));
    return *this;
  }
  JsonReport& field(const char* key, const std::string& value) {
    return field(key, value.c_str());
  }
  JsonReport& field(const char* key, std::int64_t value) {
    rows_.back().emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonReport& field(const char* key, std::size_t value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  JsonReport& field(const char* key, unsigned value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  JsonReport& field(const char* key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  /// Metrics: rates print integral (they are large), ratios keep 2 places.
  JsonReport& field(const char* key, double value, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    rows_.back().emplace_back(key, buf);
    return *this;
  }

  /// Emits the whole document to stdout.
  void print() const {
    std::printf("{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                bench_name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::printf("    {");
      for (std::size_t f = 0; f < rows_[i].size(); ++f) {
        std::printf("%s\"%s\": %s", f == 0 ? "" : ", ",
                    rows_[i][f].first.c_str(), rows_[i][f].second.c_str());
      }
      std::printf("}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  }

 private:
  static const char* axis_key() { return "axis"; }

  using Row = std::vector<std::pair<std::string, std::string>>;
  std::string bench_name_;
  std::vector<Row> rows_;
};

}  // namespace bench
}  // namespace epi
