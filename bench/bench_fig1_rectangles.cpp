// Experiment E1 (DESIGN.md): reproduce Figure 1 / Example 4.9.
//
// Paper claims reproduced here:
//  * I_K((1,1),(4,4)) is the rectangle (1,1)-(4,4); I_K((1,1),(9,3)) is
//    (1,1)-(9,3);
//  * exactly three minimal intervals from omega_1 = (1,1) to A-bar:
//    (1,1)-(4,4), (1,1)-(5,3), (1,1)-(6,2);
//  * a disclosure B is private for omega* = omega_1 iff it meets all three
//    intervals inside A-bar (Cor. 4.12);
//  * the beta margin of Prop. 4.1 / Cor. 4.14 lets one audit query A be
//    prepared once and reused across many disclosures B_i.
#include <chrono>
#include <cstdio>
#include <memory>

#include "possibilistic/intervals.h"
#include "possibilistic/rectangles.h"
#include "util/rng.h"

using namespace epi;

int main() {
  const GridDomain grid(14, 7);
  const FiniteSet a_bar = grid.ellipse(9.0, 4.0, 5.2, 2.9);
  const FiniteSet a = ~a_bar;
  const std::size_t omega1 = grid.index(1, 1);
  auto sigma = std::make_shared<RectangleSigma>(grid);
  IntervalOracle oracle(sigma, FiniteSet::universe(grid.size()));

  std::printf("=== E1: Figure 1 / Example 4.9 reproduction ===\n\n");
  std::printf("grid 14 x 7, worlds = pixels; A-bar = discretized ellipse:\n%s\n",
              grid.render(a_bar).c_str());

  auto check_rect = [&](std::size_t x2, std::size_t y2, const FiniteSet& got) {
    const bool match = got == grid.rectangle(1, 1, x2, y2);
    std::printf("  expected (1,1)-(%zu,%zu): %s\n", x2, y2,
                match ? "MATCH" : "MISMATCH");
    return match;
  };

  std::printf("paper: I_K(omega1, omega2=(4,4)) = light-grey rectangle (1,1)-(4,4)\n");
  check_rect(4, 4, *oracle.interval(omega1, grid.index(4, 4)));
  std::printf("paper: I_K(omega1, omega2'=(9,3)) = rectangle (1,1)-(9,3)\n");
  check_rect(9, 3, *oracle.interval(omega1, grid.index(9, 3)));

  std::printf("\npaper: three minimal intervals from omega1 to A-bar\n");
  const auto minimal = oracle.minimal_intervals(omega1, a_bar);
  std::printf("  computed count: %zu (paper: 3)\n", minimal.size());
  int matched = 0;
  for (const auto& [x2, y2] : {std::pair<std::size_t, std::size_t>{4, 4},
                               {5, 3},
                               {6, 2}}) {
    for (const FiniteSet& iv : minimal) {
      if (iv == grid.rectangle(1, 1, x2, y2)) {
        std::printf("  minimal interval (1,1)-(%zu,%zu): found\n", x2, y2);
        ++matched;
        break;
      }
    }
  }
  std::printf("  matched %d / 3\n", matched);

  std::printf("\nDelta_K(A-bar, omega1) classes (hatched cells of Figure 1):\n");
  for (const FiniteSet& cls : oracle.delta_partition(a_bar, omega1)) {
    cls.visit([&](std::size_t w) {
      std::printf("  (%zu,%zu)\n", grid.x_of(w), grid.y_of(w));
    });
  }
  std::printf("tight intervals: %s (so Cor. 4.14's beta function exists)\n",
              oracle.has_tight_intervals() ? "yes" : "no");

  // Amortization: prepare once, audit N random disclosures.
  std::printf("\n=== prepared-audit amortization (remark after Prop. 4.1) ===\n");
  const int num_disclosures = 400;
  Rng rng(4242);
  std::vector<FiniteSet> disclosures;
  for (int i = 0; i < num_disclosures; ++i) {
    FiniteSet b = FiniteSet::random(grid.size(), rng, 0.3);
    b.insert(omega1);  // disclosure must be true in the actual world
    disclosures.push_back(std::move(b));
  }

  const auto t0 = std::chrono::steady_clock::now();
  IntervalOracle fresh_oracle(sigma, FiniteSet::universe(grid.size()));
  int safe_direct = 0;
  for (const FiniteSet& b : disclosures) {
    safe_direct += fresh_oracle.safe_minimal_intervals(a, b);
  }
  const auto t1 = std::chrono::steady_clock::now();
  IntervalOracle prep_oracle(sigma, FiniteSet::universe(grid.size()));
  const auto prepared = prep_oracle.prepare(a);
  const auto t2 = std::chrono::steady_clock::now();
  int safe_prepared = 0;
  for (const FiniteSet& b : disclosures) {
    safe_prepared += prepared.safe(b);
  }
  const auto t3 = std::chrono::steady_clock::now();

  const double direct_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double prep_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
  const double audit_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();
  std::printf("  %d disclosures, verdicts agree: %s (%d safe)\n", num_disclosures,
              safe_direct == safe_prepared ? "yes" : "NO", safe_direct);
  std::printf("  direct per-B minimal-interval audit: %8.2f ms total\n", direct_ms);
  std::printf("  prepare beta/Delta once:             %8.2f ms\n", prep_ms);
  std::printf("  audit with prepared structure:       %8.2f ms total (%.0fx faster)\n",
              audit_ms, direct_ms / (audit_ms > 0 ? audit_ms : 1e-9));
  return 0;
}
