// Experiment E3 (DESIGN.md): Theorem 3.11 — privacy under unrestricted prior
// knowledge.
//
// For small n we enumerate EVERY pair (A, B) with B non-empty and check all
// of the theorem's equivalent conditions against each other:
//  1. the combinatorial test  A ∩ B = {}  or  A ∪ B = Omega;
//  2. adversarial falsification with random priors (only when 1 says safe);
//  3. the constructive two-point witness (only when 1 says unsafe);
//  4. the possibilistic characterization on the full Omega_poss (n = 2, 3);
//  5. the known-world possibilistic variant with its extra omega* in B - A
//     clause.
#include <cstdio>

#include "criteria/unconditional.h"
#include "possibilistic/knowledge.h"
#include "possibilistic/safe.h"
#include "probabilistic/safe.h"
#include "worlds/finite_set.h"

using namespace epi;

int main() {
  std::printf("=== E3: Theorem 3.11 exhaustive verification ===\n\n");
  std::printf("%3s %10s %8s %10s %10s %12s %12s\n", "n", "pairs", "safe",
              "witnessOK", "falsified", "possAgree", "knownWorldOK");

  Rng rng(2026);
  for (unsigned n = 2; n <= 4; ++n) {
    const std::size_t size = std::size_t{1} << n;
    const std::size_t subsets = std::size_t{1} << size;
    std::size_t pairs = 0, safe_count = 0, witness_ok = 0, falsified = 0;
    std::size_t poss_agree = 0, poss_total = 0;
    std::size_t known_ok = 0, known_total = 0;

    // The full Omega_poss is only materializable for small universes, and
    // the known-world product is expensive — subsample at n = 3.
    const bool check_poss = n <= 3;
    const std::size_t poss_stride = n == 2 ? 1 : 97;
    std::size_t pair_counter = 0;
    SecondLevelKnowledge full_poss =
        check_poss ? SecondLevelKnowledge::full(size) : SecondLevelKnowledge(1);

    const std::size_t a_step = n <= 3 ? 1 : 37;  // sample A at n = 4
    const std::size_t b_step = n <= 3 ? 1 : 41;
    for (std::size_t am = 0; am < subsets; am += a_step) {
      for (std::size_t bm = 1; bm < subsets; bm += b_step) {
        WorldSet a(n), b(n);
        for (std::size_t w = 0; w < size; ++w) {
          if ((am >> w) & 1) a.insert(static_cast<World>(w));
          if ((bm >> w) & 1) b.insert(static_cast<World>(w));
        }
        ++pairs;
        const bool safe = unconditionally_safe(a, b);
        if (safe) {
          ++safe_count;
          bool violated = false;
          for (int t = 0; t < 10; ++t) {
            if (Distribution::random(n, rng).safety_gap(a, b) > 1e-9) {
              violated = true;
            }
          }
          falsified += violated;
        } else {
          const auto witness = unrestricted_witness(a, b);
          witness_ok += witness && witness->safety_gap(a, b) > 1e-9;
        }
        if (check_poss && pair_counter++ % poss_stride == 0) {
          FiniteSet fa(size), fb(size);
          a.visit([&](World w) { fa.insert(w); });
          b.visit([&](World w) { fb.insert(w); });
          ++poss_total;
          poss_agree += safe_possibilistic(full_poss, fa, fb) == safe;
          // Known-world variant, for every omega* in B.
          b.visit([&](World wstar) {
            ++known_total;
            PowerSetSigma power(size);
            auto k = SecondLevelKnowledge::product(
                FiniteSet::singleton(size, wstar), power.enumerate());
            const bool expect =
                safe_unrestricted_known_world(fa, fb, wstar);
            known_ok += safe_possibilistic(k, fa, fb) == expect;
          });
        }
      }
    }
    std::printf("%3u %10zu %8zu %10zu %10zu", n, pairs, safe_count, witness_ok,
                falsified);
    if (check_poss) {
      std::printf(" %7zu/%-4zu %7zu/%-4zu\n", poss_agree, poss_total, known_ok,
                  known_total);
    } else {
      std::printf(" %12s %12s\n", "-", "-");
    }
  }
  std::printf(
      "\nExpectations: falsified == 0 (no random prior defeats a 'safe');\n"
      "witnessOK == pairs - safe (every 'unsafe' has a gaining two-point\n"
      "prior); possAgree and knownWorldOK are full agreement.\n");
  return 0;
}
