// Experiment E7 (DESIGN.md): amortized possibilistic auditing.
//
// Paper claim (remark after Prop. 4.1): "The characterization ... could be
// quite useful for auditing a lot of properties B1..BN disclosed over a
// period of time, using the same audit query A. Given A, the auditor would
// compute the mapping beta once, and use it to test every Bi."
//
// We measure, across grid sizes: the one-off preparation cost, the per-B
// audit cost with and without the prepared Delta classes, and verdict
// agreement with the direct Definition 3.1 check.
#include <chrono>
#include <cstdio>
#include <memory>

#include "possibilistic/intervals.h"
#include "possibilistic/knowledge.h"
#include "possibilistic/rectangles.h"
#include "possibilistic/safe.h"

using namespace epi;

int main() {
  std::printf("=== E7: amortized auditing with precomputed beta / Delta ===\n\n");
  std::printf("%8s %6s %10s %12s %12s %9s %7s\n", "grid", "|A|", "prep(ms)",
              "direct(us)", "prepared(us)", "speedup", "agree");

  Rng rng(314);
  const int num_disclosures = 200;
  for (const auto& [w, h] : {std::pair<std::size_t, std::size_t>{8, 4},
                             {14, 7},
                             {20, 10},
                             {28, 14}}) {
    const GridDomain grid(w, h);
    auto sigma = std::make_shared<RectangleSigma>(grid);
    const FiniteSet a_bar =
        grid.ellipse(0.64 * w, 0.57 * h, 0.37 * w, 0.41 * h);
    const FiniteSet a = ~a_bar;

    std::vector<FiniteSet> disclosures;
    for (int i = 0; i < num_disclosures; ++i) {
      disclosures.push_back(FiniteSet::random(grid.size(), rng, 0.3));
    }

    using clock = std::chrono::steady_clock;
    // Direct per-B check (fresh oracle: no shared interval cache).
    const auto t0 = clock::now();
    IntervalOracle direct_oracle(sigma, FiniteSet::universe(grid.size()));
    int direct_safe = 0;
    for (const FiniteSet& b : disclosures) {
      direct_safe += direct_oracle.safe_minimal_intervals(a, b);
    }
    const auto t1 = clock::now();
    // Prepared audit.
    IntervalOracle prep_oracle(sigma, FiniteSet::universe(grid.size()));
    const auto prepared = prep_oracle.prepare(a);
    const auto t2 = clock::now();
    int prepared_safe = 0;
    for (const FiniteSet& b : disclosures) {
      prepared_safe += prepared.safe(b);
    }
    const auto t3 = clock::now();

    const double direct_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / num_disclosures;
    const double prep_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
    const double prepared_us =
        std::chrono::duration<double, std::micro>(t3 - t2).count() / num_disclosures;

    char label[32];
    std::snprintf(label, sizeof(label), "%zux%zu", w, h);
    std::printf("%8s %6zu %10.1f %12.1f %12.2f %8.0fx %7s\n", label, a.count(),
                prep_ms, direct_us, prepared_us,
                direct_us / (prepared_us > 0 ? prepared_us : 1e-9),
                direct_safe == prepared_safe ? "yes" : "NO");
  }

  // Cross-check the interval tests against Definition 3.1 on a small grid
  // where the explicit K is materializable.
  std::printf("\ncross-check vs Definition 3.1 on 6x3 grid: ");
  const GridDomain small(6, 3);
  auto sigma = std::make_shared<RectangleSigma>(small);
  IntervalOracle oracle(sigma, FiniteSet::universe(small.size()));
  auto k = SecondLevelKnowledge::product(FiniteSet::universe(small.size()),
                                         sigma->enumerate());
  int agree = 0, total = 0;
  for (int t = 0; t < 100; ++t) {
    FiniteSet a = FiniteSet::random(small.size(), rng, 0.5);
    FiniteSet b = FiniteSet::random(small.size(), rng, 0.4);
    agree += oracle.safe_minimal_intervals(a, b) == safe_possibilistic(k, a, b);
    ++total;
  }
  std::printf("%d/%d agree\n", agree, total);
  return 0;
}
