// Experiment E13 (extension): end-to-end audit throughput on synthetic
// hospital workloads — the systems-level measurement a deployment would
// care about. Two axes:
//   1. prior family (single-threaded): disclosures audited per second plus
//      the verdict mix, documenting how much each assumption clears in a
//      realistic query mix (complements E5/E12);
//   2. worker threads (product prior, 200-disclosure log): the
//      DecisionEngine batch path fanning disclosures out across the pool,
//      reported as audits/sec and speedup over one thread;
//   3. batch sweep: Auditor::audit_many versus a loop of single audit()
//      calls over the same property batch — the one-log-many-properties
//      shape (policy streams, aggregate-query audits) where the batch API
//      amortizes disclosure compilation; reported per batch size and prior;
//   4. tracing (product prior): the same workload with the span sink off
//      versus installed, reporting the tracing overhead — the off row is
//      the number the <2% no-op gate watches.
//
// `--rate-only` prints a single "rate=<audits/sec>" line (tracing off,
// product prior) for CI to diff against an EPI_OBS_NOOP build.
//
// `--json` replaces the text report with a machine-readable JSON document
// covering all five axes in the shared bench_json.h schema; BENCH_audit.json
// at the repo root is the checked-in baseline the CI perf gate diffs
// against (see tools/bench_compare.py).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/auditor.h"
#include "core/workload.h"
#include "obs/trace.h"
#include "workloads/family.h"
#include "worlds/world_set.h"

using namespace epi;

namespace {

AuditorOptions throughput_options(unsigned threads) {
  AuditorOptions options;
  options.enable_sos = false;  // throughput mode: no SDP stage
  options.ascent.multistarts = 16;
  options.threads = threads;
  return options;
}

/// Audits every candidate record; returns disclosures+conjunctions per sec.
double measure(const Workload& workload, const Auditor& auditor,
               std::size_t* safe = nullptr, std::size_t* unsafe = nullptr,
               std::size_t* unknown = nullptr) {
  std::size_t audited = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& record : workload.audit_candidates) {
    const AuditReport report = auditor.audit(workload.log, record);
    if (safe) *safe += report.count(Verdict::kSafe);
    if (unsafe) *unsafe += report.count(Verdict::kUnsafe);
    if (unknown) *unknown += report.count(Verdict::kUnknown);
    audited += report.per_disclosure.size() + report.per_user_cumulative.size();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(audited) / seconds;
}

Workload rate_workload() {
  WorkloadOptions options;
  options.patients = 8;
  options.queries = 120;
  options.seed = 0xAB5 + 8;
  return make_hospital_workload(options);
}

/// Cycles the workload's audit candidates (negating every third) into a
/// batch of `count` distinct-looking sensitive properties.
std::vector<std::string> property_batch(const Workload& workload,
                                        std::size_t count) {
  std::vector<std::string> queries;
  const std::vector<std::string>& base = workload.audit_candidates;
  for (std::size_t i = 0; queries.size() < count; ++i) {
    const std::string& q = base[i % base.size()];
    queries.push_back(i % 3 == 2 ? "!(" + q + ")" : q);
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--rate-only") == 0) {
    const Workload workload = rate_workload();
    Auditor auditor(workload.universe, PriorAssumption::kProduct,
                    throughput_options(1));
    measure(workload, auditor);  // warm-up: caches, allocator, frequency
    std::printf("rate=%.0f\n", measure(workload, auditor));
    return 0;
  }
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  bench::JsonReport report("audit_throughput");

  if (!json) {
    std::printf("=== E13 (extension): offline audit throughput ===\n\n");
    std::printf("%9s %8s %18s %12s | %6s %7s %8s\n", "patients", "queries",
                "prior", "audits/sec", "safe", "unsafe", "unknown");
  }

  for (unsigned patients : {4u, 6u, 8u}) {
    WorkloadOptions options;
    options.patients = patients;
    options.queries = 120;
    options.seed = 0xAB5 + patients;
    Workload workload = make_hospital_workload(options);

    for (PriorAssumption prior :
         {PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
          PriorAssumption::kLogSupermodular}) {
      Auditor auditor(workload.universe, prior, throughput_options(1));
      std::size_t safe = 0, unsafe = 0, unknown = 0;
      const double rate = measure(workload, auditor, &safe, &unsafe, &unknown);
      if (!json) {
        std::printf("%9u %8d %18s %12.0f | %6zu %7zu %8zu\n", patients,
                    options.queries, to_string(prior).c_str(), rate, safe,
                    unsafe, unknown);
      }
      report.row("prior_families")
          .field("patients", patients)
          .field("queries", options.queries)
          .field("prior", to_string(prior))
          .field("audits_per_sec", rate, 0)
          .field("safe", safe)
          .field("unsafe", unsafe)
          .field("unknown", unknown);
    }
  }

  if (!json) {
    std::printf(
        "\n--- thread scaling: product prior, 200-disclosure log ---\n\n");
  }
  WorkloadOptions scaling;
  scaling.patients = 8;
  scaling.queries = 200;
  scaling.seed = 0xAB5;
  Workload workload = make_hospital_workload(scaling);

  if (!json) std::printf("%9s %12s %9s\n", "threads", "audits/sec", "speedup");
  double base_rate = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    Auditor auditor(workload.universe, PriorAssumption::kProduct,
                    throughput_options(threads));
    const double rate = measure(workload, auditor);
    if (threads == 1) base_rate = rate;
    if (!json) {
      std::printf("%9u %12.0f %8.2fx\n", threads, rate, rate / base_rate);
    }
    report.row("thread_scaling")
        .field("threads", threads)
        .field("audits_per_sec", rate, 0)
        .field("speedup", rate / base_rate);
  }

  if (!json) {
    std::printf(
        "\n--- batch sweep: audit_many vs single-audit loop, one log, N "
        "properties ---\n\n");
    std::printf("%18s %6s %14s %14s %9s\n", "prior", "batch", "loop aud/s",
                "batch aud/s", "speedup");
  }
  for (PriorAssumption prior :
       {PriorAssumption::kUnrestricted, PriorAssumption::kProduct}) {
    Auditor auditor(workload.universe, prior, throughput_options(1));
    for (std::size_t batch : {8u, 64u, 256u}) {
      const std::vector<std::string> properties =
          property_batch(workload, batch);
      // Warm-up pass (allocator, compile caches live only per call, but the
      // first pass still settles frequency and page faults).
      auditor.audit_many(workload.log, properties);

      // Best of three timed passes per side: a single quarter-second pass
      // swings >10% on shared runners, which is exactly the perf-gate
      // tolerance. The minimum is the least-interfered measurement.
      double loop_s = 1e30;
      double batch_s = 1e30;
      std::size_t n_reports = 0;
      for (int pass = 0; pass < 3; ++pass) {
        auto t0 = std::chrono::steady_clock::now();
        for (const std::string& q : properties) auditor.audit(workload.log, q);
        loop_s = std::min(
            loop_s,
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count());

        t0 = std::chrono::steady_clock::now();
        const std::vector<AuditReport> reports =
            auditor.audit_many(workload.log, properties);
        batch_s = std::min(
            batch_s,
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count());
        n_reports = reports.size();
      }

      const double n = static_cast<double>(n_reports);
      if (!json) {
        std::printf("%18s %6zu %14.0f %14.0f %8.2fx\n",
                    to_string(prior).c_str(), batch, n / loop_s, n / batch_s,
                    batch_s > 0 ? loop_s / batch_s : 0.0);
      }
      report.row("batch_sweep")
          .field("prior", to_string(prior))
          .field("batch", batch)
          .field("single_audits_per_sec", n / loop_s, 0)
          .field("batch_audits_per_sec", n / batch_s, 0)
          .field("speedup", loop_s / batch_s);
    }
  }

  if (!json) {
    std::printf(
        "\n--- workload families: registry defaults, batch audit of each\n"
        "    family's own sensitive properties under its own prior ---\n\n");
    std::printf("%12s %8s %9s %18s %12s\n", "family", "records", "requests",
                "prior", "audits/sec");
  }
  // One row per registered family at its default knobs (seeded away from the
  // golden snapshots), plus a rectangles row at the 32-coordinate symbolic
  // ceiling. The policy family is capped at 8 records so the subcube-prior
  // interval oracle stays bench-sized; dense rectangles at 20 so the
  // 2^n-bit sets don't dominate the whole bench (the symbolic row covers
  // the large-n regime far faster than dense n=24 would).
  {
    struct FamilyPoint {
      const char* family;
      unsigned records;  // 0: the family default
    };
    const FamilyPoint points[] = {{"hospital", 0}, {"aggregate", 0},
                                  {"policy", 8},   {"collusion", 0},
                                  {"rectangles", 20}, {"rectangles", 32}};
    for (const FamilyPoint& point : points) {
      const workloads::WorkloadFamily* family =
          workloads::find_family(point.family);
      workloads::FamilyOptions family_options;
      family_options.seed = 0xAB5;
      family_options.records = point.records;
      workloads::GeneratedWorkload generated;
      if (family == nullptr ||
          !family->generate(family_options, &generated).ok()) {
        std::fprintf(stderr, "family generation failed: %s\n", point.family);
        return 1;
      }
      Auditor auditor(generated.universe, generated.prior,
                      throughput_options(1));
      const AuditLog log = generated.to_log();
      auditor.audit_many(log, generated.audit_queries);  // warm-up
      double best_s = 1e30;
      std::size_t audited = 0;
      for (int pass = 0; pass < 3; ++pass) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::vector<AuditReport> reports =
            auditor.audit_many(log, generated.audit_queries);
        best_s = std::min(
            best_s,
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count());
        audited = 0;
        for (const AuditReport& r : reports) {
          audited += r.per_disclosure.size() + r.per_user_cumulative.size();
        }
      }
      const double rate = static_cast<double>(audited) / best_s;
      if (!json) {
        std::printf("%12s %8u %9zu %18s %12.0f\n", point.family,
                    generated.universe.size(), log.size(),
                    to_string(generated.prior).c_str(), rate);
      }
      report.row("workload_families")
          .field("family", point.family)
          .field("records", generated.universe.size())
          .field("requests", log.size())
          .field("prior", to_string(generated.prior))
          .field("audits_per_sec", rate, 0);
    }
  }

  if (!json) {
    std::printf(
        "\n--- fused kernel axis: Thm. 3.11 checks on audit-sized sets "
        "---\n\n");
  }
  {
    // The unrestricted-prior fast path is one disjointness scan plus one
    // union_is_universe scan per (A, B) pair; before the dense_bits kernel
    // the second disjunct allocated A∪B and rescanned it. Same verdicts,
    // measured as checks/sec on random 16-coordinate pairs.
    Rng rng(0xE13);
    std::vector<WorldSet> as, bs;
    for (int i = 0; i < 64; ++i) {
      as.push_back(WorldSet::random(16, rng));
      bs.push_back(WorldSet::random(16, rng));
    }
    const int rounds = 2000;
    bool sink = false;
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < as.size(); ++i) {
        sink ^= as[i].disjoint_with(bs[i]) || (as[i] | bs[i]).is_universe();
      }
    }
    const double naive_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < as.size(); ++i) {
        sink ^= as[i].disjoint_with(bs[i]) || union_is_universe(as[i], bs[i]);
      }
    }
    const double fused_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double total = static_cast<double>(rounds) * as.size();
    report.row("fused_kernels")
        .field("naive_checks_per_sec", total / naive_s, 0)
        .field("fused_checks_per_sec", total / fused_s, 0)
        .field("speedup", naive_s / fused_s);
    if (!json) {
      std::printf("%12s %14s\n", "variant", "checks/sec");
      std::printf("%12s %14.0f\n", "naive", total / naive_s);
      std::printf("%12s %14.0f   (%.2fx, sink=%d)\n", "fused", total / fused_s,
                  naive_s / fused_s, sink ? 1 : 0);
    }
  }

  if (!json) {
    std::printf("\n--- tracing overhead: product prior, 8 patients ---\n\n");
  }
  const Workload traced_workload = rate_workload();
  Auditor traced_auditor(traced_workload.universe, PriorAssumption::kProduct,
                         throughput_options(1));
  measure(traced_workload, traced_auditor);  // warm-up
  const double rate_off = measure(traced_workload, traced_auditor);
  auto trace = std::make_shared<obs::Trace>();
  obs::install_trace(trace);
  const double rate_on = measure(traced_workload, traced_auditor);
  obs::install_trace(nullptr);
  report.row("tracing")
      .field("off_audits_per_sec", rate_off, 0)
      .field("on_audits_per_sec", rate_on, 0)
      .field("spans", trace->size())
      .field("overhead_pct", (rate_off / rate_on - 1.0) * 100.0, 1);

  if (json) {
    report.print();
    return 0;
  }

  std::printf("%12s %12s\n", "tracing", "audits/sec");
  std::printf("%12s %12.0f\n", "off", rate_off);
  std::printf("%12s %12.0f   (%zu spans, %+.1f%%)\n", "on", rate_on,
              trace->size(), (rate_off / rate_on - 1.0) * 100.0);

  std::printf(
      "\nReading: unrestricted-prior audits are instant (Theorem 3.11 is a\n"
      "set test); product-prior audits pay for the optimizer only on the\n"
      "instances the combinatorial criteria leave open; the supermodular\n"
      "pipeline sits in between and leaves a small unknown zone. Rates\n"
      "include per-user conjunction audits (Section 3.3). Thread scaling\n"
      "reflects hardware parallelism — reports stay byte-identical at every\n"
      "thread count.\n");
  return 0;
}
