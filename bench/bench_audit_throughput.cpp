// Experiment E13 (extension): end-to-end audit throughput on synthetic
// hospital workloads — the systems-level measurement a deployment would
// care about. Two axes:
//   1. prior family (single-threaded): disclosures audited per second plus
//      the verdict mix, documenting how much each assumption clears in a
//      realistic query mix (complements E5/E12);
//   2. worker threads (product prior, 200-disclosure log): the
//      DecisionEngine batch path fanning disclosures out across the pool,
//      reported as audits/sec and speedup over one thread;
//   3. tracing (product prior): the same workload with the span sink off
//      versus installed, reporting the tracing overhead — the off row is
//      the number the <2% no-op gate watches.
//
// `--rate-only` prints a single "rate=<audits/sec>" line (tracing off,
// product prior) for CI to diff against an EPI_OBS_NOOP build.
//
// `--json` replaces the text report with a machine-readable JSON document
// covering all four axes; BENCH_audit.json at the repo root is a checked-in
// snapshot of that output.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/auditor.h"
#include "core/workload.h"
#include "obs/trace.h"
#include "worlds/world_set.h"

using namespace epi;

namespace {

AuditorOptions throughput_options(unsigned threads) {
  AuditorOptions options;
  options.enable_sos = false;  // throughput mode: no SDP stage
  options.ascent.multistarts = 16;
  options.threads = threads;
  return options;
}

/// Audits every candidate record; returns disclosures+conjunctions per sec.
double measure(const Workload& workload, const Auditor& auditor,
               std::size_t* safe = nullptr, std::size_t* unsafe = nullptr,
               std::size_t* unknown = nullptr) {
  std::size_t audited = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& record : workload.audit_candidates) {
    const AuditReport report = auditor.audit(workload.log, record);
    if (safe) *safe += report.count(Verdict::kSafe);
    if (unsafe) *unsafe += report.count(Verdict::kUnsafe);
    if (unknown) *unknown += report.count(Verdict::kUnknown);
    audited += report.per_disclosure.size() + report.per_user_cumulative.size();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(audited) / seconds;
}

Workload rate_workload() {
  WorkloadOptions options;
  options.patients = 8;
  options.queries = 120;
  options.seed = 0xAB5 + 8;
  return make_hospital_workload(options);
}

/// Accumulates every measurement so `--json` can emit the whole report as
/// one document after the runs finish.
struct JsonReport {
  struct PriorRow {
    unsigned patients;
    int queries;
    std::string prior;
    double rate;
    std::size_t safe, unsafe_count, unknown;
  };
  struct ThreadRow {
    unsigned threads;
    double rate;
    double speedup;
  };
  std::vector<PriorRow> priors;
  std::vector<ThreadRow> threads;
  double fused_naive_rate = 0.0, fused_rate = 0.0;
  double tracing_off_rate = 0.0, tracing_on_rate = 0.0;
  std::size_t tracing_spans = 0;

  void print() const {
    std::printf("{\n  \"bench\": \"audit_throughput\",\n");
    std::printf("  \"prior_families\": [\n");
    for (std::size_t i = 0; i < priors.size(); ++i) {
      const PriorRow& r = priors[i];
      std::printf(
          "    {\"patients\": %u, \"queries\": %d, \"prior\": \"%s\", "
          "\"audits_per_sec\": %.0f, \"safe\": %zu, \"unsafe\": %zu, "
          "\"unknown\": %zu}%s\n",
          r.patients, r.queries, r.prior.c_str(), r.rate, r.safe,
          r.unsafe_count, r.unknown, i + 1 < priors.size() ? "," : "");
    }
    std::printf("  ],\n  \"thread_scaling\": [\n");
    for (std::size_t i = 0; i < threads.size(); ++i) {
      const ThreadRow& r = threads[i];
      std::printf(
          "    {\"threads\": %u, \"audits_per_sec\": %.0f, "
          "\"speedup\": %.2f}%s\n",
          r.threads, r.rate, r.speedup, i + 1 < threads.size() ? "," : "");
    }
    std::printf(
        "  ],\n  \"fused_kernels\": {\"naive_checks_per_sec\": %.0f, "
        "\"fused_checks_per_sec\": %.0f, \"speedup\": %.2f},\n",
        fused_naive_rate, fused_rate, fused_rate / fused_naive_rate);
    std::printf(
        "  \"tracing\": {\"off_audits_per_sec\": %.0f, "
        "\"on_audits_per_sec\": %.0f, \"spans\": %zu, "
        "\"overhead_pct\": %.1f}\n}\n",
        tracing_off_rate, tracing_on_rate, tracing_spans,
        (tracing_off_rate / tracing_on_rate - 1.0) * 100.0);
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--rate-only") == 0) {
    const Workload workload = rate_workload();
    Auditor auditor(workload.universe, PriorAssumption::kProduct,
                    throughput_options(1));
    measure(workload, auditor);  // warm-up: caches, allocator, frequency
    std::printf("rate=%.0f\n", measure(workload, auditor));
    return 0;
  }
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  JsonReport report;

  if (!json) {
    std::printf("=== E13 (extension): offline audit throughput ===\n\n");
    std::printf("%9s %8s %18s %12s | %6s %7s %8s\n", "patients", "queries",
                "prior", "audits/sec", "safe", "unsafe", "unknown");
  }

  for (unsigned patients : {4u, 6u, 8u}) {
    WorkloadOptions options;
    options.patients = patients;
    options.queries = 120;
    options.seed = 0xAB5 + patients;
    Workload workload = make_hospital_workload(options);

    for (PriorAssumption prior :
         {PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
          PriorAssumption::kLogSupermodular}) {
      Auditor auditor(workload.universe, prior, throughput_options(1));
      std::size_t safe = 0, unsafe = 0, unknown = 0;
      const double rate = measure(workload, auditor, &safe, &unsafe, &unknown);
      if (!json) {
        std::printf("%9u %8d %18s %12.0f | %6zu %7zu %8zu\n", patients,
                    options.queries, to_string(prior).c_str(), rate, safe,
                    unsafe, unknown);
      }
      report.priors.push_back({patients, options.queries, to_string(prior),
                               rate, safe, unsafe, unknown});
    }
  }

  if (!json) {
    std::printf(
        "\n--- thread scaling: product prior, 200-disclosure log ---\n\n");
  }
  WorkloadOptions scaling;
  scaling.patients = 8;
  scaling.queries = 200;
  scaling.seed = 0xAB5;
  Workload workload = make_hospital_workload(scaling);

  if (!json) std::printf("%9s %12s %9s\n", "threads", "audits/sec", "speedup");
  double base_rate = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    Auditor auditor(workload.universe, PriorAssumption::kProduct,
                    throughput_options(threads));
    const double rate = measure(workload, auditor);
    if (threads == 1) base_rate = rate;
    if (!json) {
      std::printf("%9u %12.0f %8.2fx\n", threads, rate, rate / base_rate);
    }
    report.threads.push_back({threads, rate, rate / base_rate});
  }

  if (!json) {
    std::printf(
        "\n--- fused kernel axis: Thm. 3.11 checks on audit-sized sets "
        "---\n\n");
  }
  {
    // The unrestricted-prior fast path is one disjointness scan plus one
    // union_is_universe scan per (A, B) pair; before the dense_bits kernel
    // the second disjunct allocated A∪B and rescanned it. Same verdicts,
    // measured as checks/sec on random 16-coordinate pairs.
    Rng rng(0xE13);
    std::vector<WorldSet> as, bs;
    for (int i = 0; i < 64; ++i) {
      as.push_back(WorldSet::random(16, rng));
      bs.push_back(WorldSet::random(16, rng));
    }
    const int rounds = 2000;
    bool sink = false;
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < as.size(); ++i) {
        sink ^= as[i].disjoint_with(bs[i]) || (as[i] | bs[i]).is_universe();
      }
    }
    const double naive_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < as.size(); ++i) {
        sink ^= as[i].disjoint_with(bs[i]) || union_is_universe(as[i], bs[i]);
      }
    }
    const double fused_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double total = static_cast<double>(rounds) * as.size();
    report.fused_naive_rate = total / naive_s;
    report.fused_rate = total / fused_s;
    if (!json) {
      std::printf("%12s %14s\n", "variant", "checks/sec");
      std::printf("%12s %14.0f\n", "naive", total / naive_s);
      std::printf("%12s %14.0f   (%.2fx, sink=%d)\n", "fused", total / fused_s,
                  naive_s / fused_s, sink ? 1 : 0);
    }
  }

  if (!json) {
    std::printf("\n--- tracing overhead: product prior, 8 patients ---\n\n");
  }
  const Workload traced_workload = rate_workload();
  Auditor traced_auditor(traced_workload.universe, PriorAssumption::kProduct,
                         throughput_options(1));
  measure(traced_workload, traced_auditor);  // warm-up
  const double rate_off = measure(traced_workload, traced_auditor);
  auto trace = std::make_shared<obs::Trace>();
  obs::install_trace(trace);
  const double rate_on = measure(traced_workload, traced_auditor);
  obs::install_trace(nullptr);
  report.tracing_off_rate = rate_off;
  report.tracing_on_rate = rate_on;
  report.tracing_spans = trace->size();

  if (json) {
    report.print();
    return 0;
  }

  std::printf("%12s %12s\n", "tracing", "audits/sec");
  std::printf("%12s %12.0f\n", "off", rate_off);
  std::printf("%12s %12.0f   (%zu spans, %+.1f%%)\n", "on", rate_on,
              trace->size(), (rate_off / rate_on - 1.0) * 100.0);

  std::printf(
      "\nReading: unrestricted-prior audits are instant (Theorem 3.11 is a\n"
      "set test); product-prior audits pay for the optimizer only on the\n"
      "instances the combinatorial criteria leave open; the supermodular\n"
      "pipeline sits in between and leaves a small unknown zone. Rates\n"
      "include per-user conjunction audits (Section 3.3). Thread scaling\n"
      "reflects hardware parallelism — reports stay byte-identical at every\n"
      "thread count.\n");
  return 0;
}
