// Experiment E13 (extension): end-to-end audit throughput on synthetic
// hospital workloads — the systems-level measurement a deployment would
// care about. For each prior family we audit a generated query log against
// every record and report disclosures audited per second, plus the verdict
// mix (which also documents how much each assumption clears in a realistic
// query mix, complementing E5/E12).
#include <chrono>
#include <cstdio>

#include "core/auditor.h"
#include "core/workload.h"

using namespace epi;

int main() {
  std::printf("=== E13 (extension): offline audit throughput ===\n\n");
  std::printf("%9s %8s %18s %12s | %6s %7s %8s\n", "patients", "queries",
              "prior", "audits/sec", "safe", "unsafe", "unknown");

  for (unsigned patients : {4u, 6u, 8u}) {
    WorkloadOptions options;
    options.patients = patients;
    options.queries = 120;
    options.seed = 0xAB5 + patients;
    Workload workload = make_hospital_workload(options);

    for (PriorAssumption prior :
         {PriorAssumption::kUnrestricted, PriorAssumption::kProduct,
          PriorAssumption::kLogSupermodular}) {
      AuditorOptions auditor_options;
      auditor_options.enable_sos = false;  // throughput mode: no SDP stage
      auditor_options.ascent.multistarts = 16;
      Auditor auditor(workload.universe, prior, auditor_options);

      std::size_t safe = 0, unsafe = 0, unknown = 0, audited = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (const std::string& record : workload.audit_candidates) {
        const AuditReport report = auditor.audit(workload.log, record);
        safe += report.count(Verdict::kSafe);
        unsafe += report.count(Verdict::kUnsafe);
        unknown += report.count(Verdict::kUnknown);
        audited += report.per_disclosure.size();
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      std::printf("%9u %8d %18s %12.0f | %6zu %7zu %8zu\n", patients,
                  options.queries, to_string(prior).c_str(),
                  static_cast<double>(audited) / seconds, safe, unsafe, unknown);
    }
  }

  std::printf(
      "\nReading: unrestricted-prior audits are instant (Theorem 3.11 is a\n"
      "set test); product-prior audits pay for the optimizer only on the\n"
      "instances the combinatorial criteria leave open; the supermodular\n"
      "pipeline sits in between and leaves a small unknown zone. Rates\n"
      "include per-user conjunction audits (Section 3.3).\n");
  return 0;
}
