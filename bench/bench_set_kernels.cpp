// Experiment E14 (extension): the dense_bits kernel — fused predicates vs
// the allocate-then-test idiom they replaced.
//
// Every criterion in the audit path asks questions about derived sets:
// Def. 3.1 is "(S∩B) ⊆ A", P[A] is a masked weight sum, P[A∩B] a masked sum
// over an intersection. Before the kernel refactor each question materialized
// the derived WorldSet (heap allocation + full word pass) and then scanned it
// again — and per-world sums went through a type-erased std::function. The
// fused kernels answer in one word scan with zero allocations. This bench
// pins the speedup the refactor claims: >= 2x on intersection_subset_of and
// masked_weight_sum at n >= 16.
//
// Inputs are constructed so the fused predicates cannot early-exit (the
// subset relation holds, so every word is scanned): the measured gap is the
// fusion win, not an early-out artifact.
//
// A second axis sweeps the ISA dispatch tiers (scalar word loop, AVX2,
// AVX-512 where the host supports them) over the same fused kernels via
// bits::force_isa, pinning the SIMD win per tier; tiers the host lacks are
// skipped.
//
// `--json` replaces the text report with a machine-readable JSON document
// in the shared bench_json.h schema (one row per (n, kernel) pair, plus one
// per (tier, kernel)); BENCH_kernels.json at the repo root is the
// checked-in baseline the CI perf gate diffs (tools/bench_compare.py).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "bench_json.h"
#include "probabilistic/distribution.h"
#include "util/rng.h"
#include "worlds/dense_bits.h"
#include "worlds/world_set.h"

using namespace epi;

namespace {

/// Median-free ns/op: run `reps` calls of `fn`, best of 3 batches.
template <typename Fn>
double ns_per_op(int reps, Fn&& fn) {
  double best = 1e30;
  for (int batch = 0; batch < 3; ++batch) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) fn();
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        reps;
    if (ns < best) best = ns;
  }
  return best;
}

struct Row {
  const char* kernel;
  double naive_ns;
  double fused_ns;
};

void print_row(const Row& r) {
  std::printf("  %-26s %12.0f %12.0f %9.2fx\n", r.kernel, r.naive_ns,
              r.fused_ns, r.naive_ns / r.fused_ns);
}

void add_row(bench::JsonReport& report, unsigned n, const Row& r) {
  report.row("kernels")
      .field("n", n)
      .field("kernel", r.kernel)
      .field("naive_ns", r.naive_ns, 0)
      .field("fused_ns", r.fused_ns, 0)
      .field("speedup", r.naive_ns / r.fused_ns);
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  bench::JsonReport report("set_kernels");

  if (!json) {
    std::printf(
        "=== E14 (extension): fused set kernels vs allocate-then-test ===\n");
  }

  for (unsigned n : {16u, 18u, 20u}) {
    Rng rng(0xE14 + n);
    const WorldSet s = WorldSet::random(n, rng);
    const WorldSet b = WorldSet::random(n, rng);
    // a ⊇ s∩b, so the fused subset scan must touch every word (no early
    // exit) and the verdicts agree by construction.
    const WorldSet a = (s & b) | WorldSet::random(n, rng, 0.25);
    const Distribution p = Distribution::random(n, rng);
    const int reps = n >= 20 ? 200 : 2000;

    if (!json) {
      std::printf("\n-- n = %u (|Omega| = %zu, %zu words) --\n", n,
                  s.omega_size(), s.word_count());
      std::printf("  %-26s %12s %12s %9s\n", "kernel", "naive ns", "fused ns",
                  "speedup");
    }

    // (s ∩ b) ⊆ a: naive materializes s & b, then runs subset_of.
    bool sink = false;
    const Row subset{
        "intersection_subset_of",
        ns_per_op(reps,
                  [&] {
                    sink ^= (s & b).subset_of(a);
                    benchmark::DoNotOptimize(sink);
                  }),
        ns_per_op(reps,
                  [&] {
                    sink ^= intersection_subset_of(s, b, a);
                    benchmark::DoNotOptimize(sink);
                  }),
    };
    if (!json) print_row(subset);
    add_row(report, n, subset);

    // P[A]: naive drives the accumulation through a type-erased
    // std::function per world (the pre-kernel for_each idiom); fused is the
    // kernel's word-scan weight sum. Identical doubles either way.
    double acc = 0.0;
    const std::function<void(World)> add = [&](World w) { acc += p.prob(w); };
    const Row weight{
        "masked_weight_sum",
        ns_per_op(reps,
                  [&] {
                    acc = 0.0;
                    a.visit(add);
                    benchmark::DoNotOptimize(acc);
                  }),
        ns_per_op(reps,
                  [&] {
                    double sum = masked_weight_sum(a, p.weights().data());
                    benchmark::DoNotOptimize(sum);
                  }),
    };
    if (!json) print_row(weight);
    add_row(report, n, weight);

    // P[A∩B]: naive materializes a & b and sums through std::function.
    const Row inter_weight{
        "intersection_weight_sum",
        ns_per_op(reps,
                  [&] {
                    acc = 0.0;
                    (a & b).visit(add);
                    benchmark::DoNotOptimize(acc);
                  }),
        ns_per_op(reps,
                  [&] {
                    double sum =
                        intersection_weight_sum(a, b, p.weights().data());
                    benchmark::DoNotOptimize(sum);
                  }),
    };
    if (!json) print_row(inter_weight);
    add_row(report, n, inter_weight);

    // A∪B = Omega: naive allocates the union, then scans it again.
    const Row universe{
        "union_is_universe",
        ns_per_op(reps,
                  [&] {
                    sink ^= (a | b).is_universe();
                    benchmark::DoNotOptimize(sink);
                  }),
        ns_per_op(reps,
                  [&] {
                    sink ^= union_is_universe(a, b);
                    benchmark::DoNotOptimize(sink);
                  }),
    };
    if (!json) print_row(universe);
    add_row(report, n, universe);
  }

  // --- ISA dispatch axis: the same fused kernels, per forced tier --------
  {
    const unsigned n = 20;
    Rng rng(0xE14 + n);
    const WorldSet s = WorldSet::random(n, rng);
    const WorldSet b = WorldSet::random(n, rng);
    const WorldSet a = (s & b) | WorldSet::random(n, rng, 0.25);
    const Distribution p = Distribution::random(n, rng);
    const int reps = 400;

    if (!json) {
      std::printf(
          "\n-- ISA dispatch tiers (n = %u, dispatched fused kernels) --\n",
          n);
      std::printf("  %-10s %-26s %12s\n", "tier", "kernel", "ns/op");
    }
    for (const bits::IsaTier tier :
         {bits::IsaTier::kScalar, bits::IsaTier::kAvx2,
          bits::IsaTier::kAvx512}) {
      if (!bits::force_isa(tier)) continue;  // host lacks this tier
      const char* tier_name = bits::to_string(tier);
      struct Kernel {
        const char* name;
        double ns;
      };
      bool sink = false;
      const Kernel kernels[] = {
          {"intersection_subset_of", ns_per_op(reps,
                                               [&] {
                                                 sink ^= intersection_subset_of(
                                                     s, b, a);
                                                 benchmark::DoNotOptimize(sink);
                                               })},
          {"masked_weight_sum",
           ns_per_op(reps,
                     [&] {
                       double sum = masked_weight_sum(a, p.weights().data());
                       benchmark::DoNotOptimize(sum);
                     })},
          {"intersection_weight_sum",
           ns_per_op(reps,
                     [&] {
                       double sum =
                           intersection_weight_sum(a, b, p.weights().data());
                       benchmark::DoNotOptimize(sum);
                     })},
          {"union_is_universe", ns_per_op(reps,
                                          [&] {
                                            sink ^= union_is_universe(a, b);
                                            benchmark::DoNotOptimize(sink);
                                          })},
      };
      for (const Kernel& k : kernels) {
        if (!json) {
          std::printf("  %-10s %-26s %12.1f\n", tier_name, k.name, k.ns);
        }
        report.row("isa")
            .field("tier", tier_name)
            .field("n", n)
            .field("kernel", k.name)
            .field("dispatched_ns", k.ns, 1);
      }
    }
    bits::reset_isa();  // back to the CPUID choice
  }

  if (json) {
    report.print();
    return 0;
  }

  std::printf(
      "\nReading: fused kernels answer each derived-set question in one word\n"
      "scan with no heap allocation; the naive column pays an allocation, a\n"
      "second full pass, and (for weight sums) a type-erased call per world.\n"
      "The audit pipeline asks these questions once per (disclosure, user)\n"
      "pair, so the gap compounds across a workload.\n");
  return 0;
}
