// Experiment E6 (DESIGN.md): scalability of the cancellation criterion.
//
// Paper claim (Section 5.1): "We hope that the combinatorial simplicity of
// the criterion given by Proposition 5.9 will allow highly scalable
// implementations". The criterion costs O(|A'B|*|AB'| + |AB|*|A'B'|) pair
// operations — independent of 2^n when the four regions are small — while
// numeric optimization over the 2^n-world gap grows with |A|, |B| and the
// multistart budget. google-benchmark timings for both.
#include <benchmark/benchmark.h>

#include "criteria/cancellation.h"
#include "optimize/coordinate_ascent.h"
#include "util/rng.h"
#include "worlds/world_set.h"

namespace {

using namespace epi;

std::pair<WorldSet, WorldSet> random_pair(unsigned n, double density,
                                          std::uint64_t seed) {
  Rng rng(seed);
  return {WorldSet::random(n, rng, density), WorldSet::random(n, rng, density)};
}

// Sparse query-difference instances: |A|, |B| fixed as n grows.
std::pair<WorldSet, WorldSet> sparse_pair(unsigned n, std::size_t set_size,
                                          std::uint64_t seed) {
  Rng rng(seed);
  WorldSet a(n), b(n);
  for (std::size_t i = 0; i < set_size; ++i) {
    a.insert(static_cast<World>(rng.next_bits(n)));
    b.insert(static_cast<World>(rng.next_bits(n)));
  }
  return {a, b};
}

void BM_CancellationDense(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  auto [a, b] = random_pair(n, 0.5, 42 + n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cancellation_criterion(a, b).holds);
  }
  state.SetLabel("|A|=" + std::to_string(a.count()) +
                 " |B|=" + std::to_string(b.count()));
}
BENCHMARK(BM_CancellationDense)->DenseRange(4, 10, 2);

void BM_CancellationSparse(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  auto [a, b] = sparse_pair(n, 64, 43 + n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cancellation_criterion(a, b).holds);
  }
  state.SetLabel("fixed |A|,|B| ~ 64");
}
BENCHMARK(BM_CancellationSparse)->DenseRange(8, 20, 2);

void BM_NumericOptimizer(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  auto [a, b] = random_pair(n, 0.5, 44 + n);
  AscentOptions opts;
  opts.multistarts = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(maximize_product_gap(a, b, opts).max_gap);
  }
}
BENCHMARK(BM_NumericOptimizer)->DenseRange(4, 10, 2);

void BM_BoxCriterion(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  auto [a, b] = random_pair(n, 0.5, 45 + n);
  for (auto _ : state) {
    // Includes the 3^n ternary table build.
    benchmark::DoNotOptimize(
        epi::TernaryTable::box_counts(a & b).at(0));
  }
}
BENCHMARK(BM_BoxCriterion)->DenseRange(4, 12, 2);

}  // namespace

BENCHMARK_MAIN();
