// Experiment E5 (DESIGN.md): the headline flexibility claim — "taking
// advantage of the gain-vs-loss distinction yields a remarkable increase in
// the flexibility of query auditing" (Section 1.1), i.e. epistemic privacy
// clears far more disclosures than perfect secrecy under the same product
// prior assumption.
//
// For random and query-shaped (A, B) pairs we measure the fraction cleared
// by: perfect secrecy (Miklau-Suciu independence), each epistemic criterion,
// and the exact epistemic notion (numeric ground truth).
#include <cstdio>

#include "criteria/cancellation.h"
#include "criteria/miklau_suciu.h"
#include "criteria/monotonicity.h"
#include "criteria/unconditional.h"
#include "optimize/coordinate_ascent.h"
#include "worlds/monotone.h"

using namespace epi;

namespace {

struct Row {
  int trials = 0;
  int perfect = 0;
  int mono = 0;
  int cancel = 0;
  int exact = 0;
};

void print_row(const char* label, const Row& r) {
  auto pct = [&](int c) { return 100.0 * c / r.trials; };
  std::printf("  %-26s %8.1f%% %12.1f%% %12.1f%% %13.1f%%\n", label,
              pct(r.perfect), pct(r.mono), pct(r.cancel), pct(r.exact));
}

}  // namespace

int main() {
  std::printf("=== E5: flexibility of epistemic privacy vs perfect secrecy ===\n\n");
  std::printf("fraction of disclosures CLEARED (A true and B true in the actual world)\n\n");
  std::printf("  %-26s %9s %13s %13s %14s\n", "instance family", "perfect",
              "monotonicity", "cancellation", "exact epist.");

  Rng rng(77);
  const unsigned n = 4;
  const int trials = 1200;
  AscentOptions opts;
  opts.multistarts = 24;

  auto run = [&](const char* label, auto generate) {
    Row row;
    row.trials = trials;
    for (int t = 0; t < trials; ++t) {
      auto [a, b] = generate(t);
      // Condition on the audit-relevant situation: both properties hold in
      // some world (Remark 3.12's interesting case).
      if ((a & b).is_empty()) {
        --row.trials;
        continue;
      }
      row.perfect += miklau_suciu_independent(a, b);
      row.mono += monotonicity_criterion(a, b);
      row.cancel += cancellation_criterion(a, b).holds;
      opts.seed = 31000 + t;
      row.exact += maximize_product_gap(a, b, opts).max_gap <= 1e-9;
    }
    print_row(label, row);
  };

  run("dense random (p=0.5)", [&](int) {
    return std::pair{WorldSet::random(n, rng, 0.5), WorldSet::random(n, rng, 0.5)};
  });
  run("sparse random (p=0.2)", [&](int) {
    return std::pair{WorldSet::random(n, rng, 0.2), WorldSet::random(n, rng, 0.2)};
  });
  run("monotone masked", [&](int) {
    const World mask = static_cast<World>(rng.next_bits(n));
    return std::pair{up_closure(WorldSet::random(n, rng, 0.25)).xor_with(mask),
                     down_closure(WorldSet::random(n, rng, 0.25)).xor_with(mask)};
  });
  run("implication queries", [&](int) {
    // A = one record positive; B = random implication between records, the
    // Section 1.1 query shape.
    const unsigned i = static_cast<unsigned>(rng.next_below(n));
    unsigned j = static_cast<unsigned>(rng.next_below(n));
    if (j == i) j = (j + 1) % n;
    WorldSet a(n), b(n);
    for (World w = 0; w < (World{1} << n); ++w) {
      if (world_bit(w, i)) a.insert(w);
      if (!world_bit(w, i) || world_bit(w, j)) b.insert(w);
    }
    return std::pair{a, b};
  });
  run("negative-answer queries", [&](int) {
    // A = conjunction of records, B = complement of a random monotone query
    // ("no" answer to a monotone query, Remark 5.6's shape).
    WorldSet a = up_closure(WorldSet::singleton(n, static_cast<World>(
                                                       rng.next_bits(n))));
    WorldSet b = ~up_closure(WorldSet::random(n, rng, 0.15));
    return std::pair{a, b};
  });

  std::printf(
      "\nReading: perfect secrecy clears almost nothing once A and B touch the\n"
      "same records; the epistemic criteria clear the monotone, implication\n"
      "and negative-answer families nearly completely — the paper's\n"
      "\"remarkable increase in flexibility\".\n");
  return 0;
}
