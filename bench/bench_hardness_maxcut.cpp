// Experiment E10 (DESIGN.md): the Theorem 6.2 hardness landscape.
//
// Paper claim: for general algebraic families Pi with poly(N) quadratic
// constraints, deciding Safe_Pi(A,B) is NP-hard (reduction from MAX-CUT) —
// so exact decision procedures pay an exponential price, in contrast to the
// product-family algorithms of Section 6.1.
//
// We build the reconstructed reduction Pi_{G,k} (see maxcut/reduction.h),
// verify its correctness against an exact MAX-CUT solver across all bounds
// k on small graphs, then time the exact emptiness decision as the vertex
// count grows (expected ~2^t growth), alongside the polynomial-time
// relax-and-round heuristic and its success rate.
#include <chrono>
#include <cstdio>

#include "maxcut/maxcut.h"
#include "maxcut/reduction.h"

using namespace epi;

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("=== E10: Theorem 6.2 — hardness via MAX-CUT ===\n\n");

  // Correctness of the reduction across all bounds on small random graphs.
  Rng rng(1202);
  int checks = 0, agree = 0;
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = Graph::random(6, 0.5, rng);
    const std::size_t best = max_cut_exact(g).value;
    for (std::size_t k = 0; k <= g.edge_count() + 1; ++k) {
      const MaxCutReduction r = reduce_maxcut_to_safety(g, k);
      ++checks;
      agree += r.nonempty_exact(g) == (best >= k);
    }
  }
  std::printf("reduction correctness (K(A,B,Pi_Gk) non-empty <=> maxcut >= k): "
              "%d/%d\n\n", agree, checks);

  std::printf("exact emptiness decision time vs graph size (k = maxcut, the\n"
              "hardest satisfiable bound; Erdos-Renyi p = 0.5):\n");
  std::printf("%4s %7s %9s %14s %10s %14s %12s\n", "t", "edges", "maxcut",
              "exact(ms)", "bnb(ms)", "heuristic(ms)", "rounded cut");
  for (std::size_t t = 6; t <= 22; t += 2) {
    Graph g = Graph::random(t, 0.5, rng);
    auto t0 = std::chrono::steady_clock::now();
    const CutResult best = max_cut_exact(g);
    const MaxCutReduction r = reduce_maxcut_to_safety(g, best.value);
    // The exact emptiness decision enumerates cuts: 2^t.
    t0 = std::chrono::steady_clock::now();
    const bool nonempty = r.nonempty_exact(g);
    const double exact_ms = ms_since(t0);

    // Branch & bound: still exact, prunes aggressively on sparse graphs.
    t0 = std::chrono::steady_clock::now();
    const CutResult bnb = max_cut_branch_bound(g);
    const double bnb_ms = ms_since(t0);

    // Polynomial-time heuristic: local-search relaxation + rounding.
    t0 = std::chrono::steady_clock::now();
    const CutResult local = max_cut_local_search(g, rng, 8);
    const double heur_ms = ms_since(t0);

    std::printf("%4zu %7zu %9zu %14.2f %10.2f %14.2f %8zu/%zu %s\n", t,
                g.edge_count(), best.value, exact_ms, bnb_ms, heur_ms,
                local.value, best.value,
                (nonempty && bnb.value == best.value) ? "" : "(!)");
  }

  std::printf(
      "\ncontrast (Section 6.1): product-family safety at the same world-space\n"
      "sizes is decided by the combinatorial pipeline + optimizer in\n"
      "microseconds-to-milliseconds (see bench_cancellation_scaling), while\n"
      "the general algebraic family above doubles in cost with every added\n"
      "vertex — the Theorem 6.2 separation.\n");
  return 0;
}
