// Ablation (DESIGN.md section 5, decision 5): Douglas-Rachford splitting vs
// plain alternating projections (POCS) for the SDP feasibility core.
//
// SOS Gram problems routinely have *boundary* solutions (the margin vanishes
// at independence points, so the Gram matrix is singular); the PSD cone and
// the affine coefficient subspace then meet tangentially, where POCS
// converges at a ~1/k rate while DR stays effective. This bench re-runs the
// same feasibility instances under both iterations and reports the
// iteration counts — the measurement that motivated the DR choice.
#include <chrono>
#include <cstdio>
#include <map>

#include "algebra/safety_polynomial.h"
#include "linalg/eigen.h"
#include "linalg/least_squares.h"
#include "optimize/sos.h"
#include "util/rng.h"
#include "worlds/world_set.h"

using namespace epi;

namespace {

// Builds the Gram feasibility system for "f is SOS" (same construction as
// sos_decompose, exposed here to drive both iterations).
struct GramSystem {
  std::vector<Monomial> basis;
  Matrix constraints;
  Vec rhs;
};

GramSystem build_gram_system(const Polynomial& f) {
  const std::size_t nvars = f.nvars();
  const unsigned deg = f.degree() + (f.degree() % 2);
  GramSystem sys;
  sys.basis = monomials_up_to_degree(nvars, deg / 2);
  const std::size_t m = sys.basis.size();
  std::map<std::vector<unsigned>, std::size_t> row_of;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      row_of.emplace((sys.basis[i] * sys.basis[j]).exponents(), row_of.size());
    }
  }
  sys.constraints = Matrix(row_of.size(), m * m);
  sys.rhs = Vec(row_of.size(), 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      sys.constraints.at(row_of.at((sys.basis[i] * sys.basis[j]).exponents()),
                         i * m + j) += 1.0;
    }
  }
  for (const auto& [exps, coeff] : f.terms()) {
    sys.rhs[row_of.at(exps)] = coeff;
  }
  return sys;
}

Vec project_cone_flat(const Vec& v, std::size_t m) {
  Matrix block(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) block.at(i, j) = v[i * m + j];
  }
  block.symmetrize();
  block = project_psd(block);
  Vec out(m * m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) out[i * m + j] = block.at(i, j);
  }
  return out;
}

/// Iterations until the PSD shadow point satisfies the constraints; -1 when
/// the budget is exhausted.
int iterations_to_converge(const GramSystem& sys, bool douglas_rachford,
                           int budget, double tol = 1e-8) {
  const std::size_t m = sys.basis.size();
  AffineProjector affine(sys.constraints, sys.rhs);
  Vec z(m * m, 0.0);
  if (!douglas_rachford) z = affine.project(z);
  for (int iter = 0; iter < budget; ++iter) {
    const Vec cone = project_cone_flat(z, m);
    if (affine.residual(cone) < tol) return iter;
    if (douglas_rachford) {
      Vec reflected(cone.size());
      for (std::size_t i = 0; i < cone.size(); ++i) reflected[i] = 2 * cone[i] - z[i];
      const Vec affine_point = affine.project(reflected);
      for (std::size_t i = 0; i < z.size(); ++i) z[i] += affine_point[i] - cone[i];
    } else {
      z = affine.project(cone);
    }
  }
  return -1;
}

}  // namespace

int main() {
  std::printf("=== ablation: Douglas-Rachford vs alternating projections ===\n\n");
  std::printf("%-44s %10s %10s\n", "instance (feasible SOS problems)", "DR iters",
              "POCS iters");

  const std::size_t s = 2;
  const Polynomial x = Polynomial::variable(s, 0);
  const Polynomial y = Polynomial::variable(s, 1);

  struct Case {
    const char* name;
    Polynomial f;
  };
  Rng rng(9);
  std::vector<Case> cases;
  cases.push_back({"(x-y)^2 (pinned Gram)", (x - y).pow(2)});
  cases.push_back({"x^2y^2 + (x+y)^2/2 + 2 (boundary Gram)",
                   (x * y).pow(2) + (x + y).pow(2) * 0.5 + Polynomial::constant(s, 2.0)});
  cases.push_back({"(x+y)^4 (rank-1 Gram)", (x + y).pow(4)});
  cases.push_back({"interior: 1 + x^2 + y^2 + x^4 + x^2y^2 + y^4",
                   Polynomial::constant(s, 1.0) + x * x + y * y + x.pow(4) +
                       (x * y).pow(2) + y.pow(4)});
  for (int t = 0; t < 3; ++t) {
    Polynomial g(s), h(s);
    for (const Monomial& m : monomials_up_to_degree(s, 2)) {
      g.add_term(m, 2.0 * rng.next_double() - 1.0);
      h.add_term(m, 2.0 * rng.next_double() - 1.0);
    }
    cases.push_back({"random g^2 + h^2 (deg 4)", g * g + h * h});
  }

  int dr_wins = 0, total = 0;
  for (const Case& c : cases) {
    const GramSystem sys = build_gram_system(c.f);
    const int budget = 30000;
    const int dr = iterations_to_converge(sys, true, budget);
    const int pocs = iterations_to_converge(sys, false, budget);
    auto show = [](int iters) {
      return iters < 0 ? std::string(">30000 (stalled)") : std::to_string(iters);
    };
    std::printf("%-44s %10s %10s\n", c.name, show(dr).c_str(), show(pocs).c_str());
    ++total;
    dr_wins += (pocs < 0) || (dr >= 0 && dr <= pocs);
  }
  std::printf("\nDR at least as fast on %d/%d instances; POCS stalls on the\n"
              "boundary-Gram cases that dominate safety-margin certificates.\n",
              dr_wins, total);
  return 0;
}
