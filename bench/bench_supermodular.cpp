// Experiment E8 (DESIGN.md): the log-supermodular envelope of Section 5.
//
// Paper claims measured:
//  * Cor. 5.5 / Prop. 5.4: a "no" answer to a monotone query always protects
//    a "yes" answer to another monotone query against every Pi_m+ prior —
//    no random Ising prior may attain a positive gap on such pairs;
//  * Prop. 5.2 is constructive in the contrapositive: whenever the necessary
//    criterion fails, the 4-point sublattice prior is log-supermodular and
//    gains confidence — we report the observed witness gaps;
//  * the necessary/sufficient envelope: how often each criterion decides on
//    random instances (the gap between them is the Unknown zone).
#include <algorithm>
#include <cstdio>

#include "criteria/pipeline.h"
#include "criteria/monotonicity.h"
#include "criteria/supermodular.h"
#include "probabilistic/modularity.h"
#include "worlds/monotone.h"

using namespace epi;

int main() {
  std::printf("=== E8: log-supermodular criteria (Prop. 5.2 / 5.4 / Cor. 5.5) ===\n\n");
  Rng rng(888);
  const unsigned n = 4;

  // Corollary 5.5 on random monotone pairs.
  int monotone_pairs = 0, sufficient_hits = 0, falsified = 0;
  for (int t = 0; t < 400; ++t) {
    WorldSet a = up_closure(WorldSet::random(n, rng, 0.2));
    WorldSet b = down_closure(WorldSet::random(n, rng, 0.2));
    if (!upset_downset_criterion(a, b)) continue;
    ++monotone_pairs;
    sufficient_hits += supermodular_sufficient(a, b);
    for (int i = 0; i < 25; ++i) {
      if (random_log_supermodular(n, rng).safety_gap(a, b) > 1e-9) ++falsified;
    }
  }
  std::printf("Cor. 5.5 (up-set A, down-set B), %d pairs:\n", monotone_pairs);
  std::printf("  Prop. 5.4 sufficient criterion fires: %d/%d\n", sufficient_hits,
              monotone_pairs);
  std::printf("  random Ising priors violating safety: %d (paper: 0)\n\n", falsified);

  // Prop. 5.2 witnesses on random instances.
  int witnesses = 0, valid = 0;
  double min_gap = 1.0, max_gap = 0.0, sum_gap = 0.0;
  for (int t = 0; t < 2000 && witnesses < 500; ++t) {
    WorldSet a = WorldSet::random(n, rng, 0.4);
    WorldSet b = WorldSet::random(n, rng, 0.4);
    auto witness = supermodular_necessary_witness(a, b);
    if (!witness) continue;
    ++witnesses;
    const double gap = witness->safety_gap(a, b);
    valid += gap > 1e-9 && is_log_supermodular(*witness);
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
    sum_gap += gap;
  }
  std::printf("Prop. 5.2 contrapositive on random pairs:\n");
  std::printf("  4-point witnesses constructed: %d, valid (supermodular & gaining): %d\n",
              witnesses, valid);
  std::printf("  witness gap min/avg/max: %.3f / %.3f / %.3f "
              "(uniform sublattice: gaps are P[AB](1-P[AB]))\n\n",
              min_gap, sum_gap / std::max(witnesses, 1), max_gap);

  // Decision envelope on random instances.
  int safe_v = 0, unsafe_v = 0, unknown_v = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    WorldSet a = WorldSet::random(n, rng, 0.4);
    WorldSet b = WorldSet::random(n, rng, 0.4);
    switch (run_criteria(supermodular_criteria(), a, b, "exhausted").verdict) {
      case Verdict::kSafe:
        ++safe_v;
        break;
      case Verdict::kUnsafe:
        ++unsafe_v;
        break;
      default:
        ++unknown_v;
    }
  }
  std::printf("Pi_m+ decision envelope on %d random pairs (density 0.4, n=%u):\n",
              trials, n);
  std::printf("  safe %d (%.1f%%), unsafe %d (%.1f%%), unknown %d (%.1f%%)\n",
              safe_v, 100.0 * safe_v / trials, unsafe_v, 100.0 * unsafe_v / trials,
              unknown_v, 100.0 * unknown_v / trials);
  std::printf("  (the unknown zone is the necessary-vs-sufficient gap the paper\n"
              "   leaves open for Pi_m+)\n");
  return 0;
}
