// Experiment E4 (DESIGN.md): the criterion inclusion diagram of Section 5.1
// measured empirically.
//
// Paper claims:
//  * Theorem 5.11: Miklau-Suciu => cancellation, monotonicity => cancellation;
//  * cancellation is sufficient: cancellation => Pi_m0-safe;
//  * Prop. 5.10 is necessary: Pi_m0-safe => box criterion;
//  * Remark 5.12: the inclusion "cancellation => safe" is strict, witnessed
//    by A = {011,100,110,111}, B = {010,101,110,111} (with the Circ(***)
//    counts 0 vs 2).
#include <cstdio>

#include "criteria/box_necessary.h"
#include "criteria/cancellation.h"
#include "criteria/miklau_suciu.h"
#include "criteria/monotonicity.h"
#include "optimize/coordinate_ascent.h"
#include "worlds/monotone.h"

using namespace epi;

int main() {
  std::printf("=== E4: criterion inclusion diagram (Theorem 5.11, Remark 5.12) ===\n\n");

  Rng rng(515);
  const unsigned n = 4;
  const int trials = 3000;
  int ms_pass = 0, mono_pass = 0, cancel_pass = 0, box_pass = 0, safe_numeric = 0;
  int ms_not_cancel = 0, mono_not_cancel = 0, cancel_not_safe = 0, safe_not_box = 0;
  int cancel_strictly_stronger = 0;

  for (int t = 0; t < trials; ++t) {
    WorldSet a = WorldSet::random(n, rng, 0.4);
    WorldSet b = WorldSet::random(n, rng, 0.4);
    // Mix in structured instances so every criterion fires reasonably often.
    if (t % 3 == 1) {
      const World mask = static_cast<World>(rng.next_bits(n));
      a = up_closure(a).xor_with(mask);
      b = down_closure(b).xor_with(mask);
    } else if (t % 3 == 2) {
      // A on low coordinates, B on high ones (Miklau-Suciu-style).
      WorldSet a2(n), b2(n);
      const World ap = static_cast<World>(rng.next_bits(4));
      const World bp = static_cast<World>(rng.next_bits(4));
      for (World w = 0; w < (World{1} << n); ++w) {
        if ((ap >> (w & 3)) & 1) a2.insert(w);
        if ((bp >> ((w >> 2) & 3)) & 1) b2.insert(w);
      }
      a = a2;
      b = b2;
    }

    const bool ms = miklau_suciu_independent(a, b);
    const bool mono = monotonicity_criterion(a, b);
    const bool cancel = cancellation_criterion(a, b).holds;
    const bool box = box_necessary_criterion(a, b).holds;
    AscentOptions opts;
    opts.multistarts = 24;
    opts.seed = 9000 + t;
    const bool safe = maximize_product_gap(a, b, opts).max_gap <= 1e-9;

    ms_pass += ms;
    mono_pass += mono;
    cancel_pass += cancel;
    box_pass += box;
    safe_numeric += safe;
    ms_not_cancel += ms && !cancel;
    mono_not_cancel += mono && !cancel;
    cancel_not_safe += cancel && !safe;
    safe_not_box += safe && !box;
    cancel_strictly_stronger += cancel && !ms && !mono;
  }

  std::printf("random+structured instances at n = %u (%d trials):\n", n, trials);
  std::printf("  %-38s %6d\n", "Miklau-Suciu passes", ms_pass);
  std::printf("  %-38s %6d\n", "monotonicity passes", mono_pass);
  std::printf("  %-38s %6d\n", "cancellation passes", cancel_pass);
  std::printf("  %-38s %6d\n", "box necessary passes", box_pass);
  std::printf("  %-38s %6d\n", "safe (numeric ground truth)", safe_numeric);
  std::printf("\ninclusion violations (all must be 0):\n");
  std::printf("  Miklau-Suciu but not cancellation:    %6d\n", ms_not_cancel);
  std::printf("  monotonicity but not cancellation:    %6d\n", mono_not_cancel);
  std::printf("  cancellation but unsafe:              %6d\n", cancel_not_safe);
  std::printf("  safe but box criterion fails:         %6d\n", safe_not_box);
  std::printf("\ncancellation strictly stronger than both (Thm 5.11 strictness): %d\n",
              cancel_strictly_stronger);

  // Remark 5.12 verbatim.
  std::printf("\n=== Remark 5.12 counterexample ===\n");
  WorldSet a = WorldSet::from_strings(3, {"011", "100", "110", "111"});
  WorldSet b = WorldSet::from_strings(3, {"010", "101", "110", "111"});
  const auto cancel = cancellation_criterion(a, b);
  std::printf("A = %s\nB = %s\n", a.to_string().c_str(), b.to_string().c_str());
  std::printf("cancellation holds: %s (paper: no)\n", cancel.holds ? "yes" : "no");
  if (cancel.failing_vector) {
    std::printf("failing match vector %s: |A'B x AB' ∩ Circ| = %lld, "
                "|AB x A'B' ∩ Circ| = %lld (paper: 0 vs 2 at ***)\n",
                cancel.failing_vector->to_string(3).c_str(),
                static_cast<long long>(cancel.positive_pairs),
                static_cast<long long>(cancel.negative_pairs));
  }
  AscentOptions opts;
  opts.multistarts = 64;
  std::printf("numeric max gap over product priors: %.3e (paper: safe, <= 0)\n",
              maximize_product_gap(a, b, opts).max_gap);
  return 0;
}
