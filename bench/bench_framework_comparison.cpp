// Experiment E12 (DESIGN.md): the Section 1.1 comparison of privacy
// frameworks, quantified.
//
// Paper claims measured:
//  * "all papers known to us ... do not make any distinction between gaining
//    and losing the confidence in A" — the symmetric frameworks (lambda
//    bound, SuLQ with |.|) reject disclosures that only LOSE confidence;
//  * "taking advantage of the gain-vs-loss distinction yields a remarkable
//    increase in the flexibility of query auditing" — gain-only variants and
//    epistemic privacy clear those disclosures;
//  * perfect secrecy (P[A|B] = P[A], here via Miklau-Suciu) is the most
//    restrictive of all.
#include <cstdio>

#include "approx/frameworks.h"
#include "criteria/miklau_suciu.h"
#include "worlds/monotone.h"

using namespace epi;

namespace {

struct Tally {
  int trials = 0;
  int perfect = 0;
  int epistemic = 0;
  int sulq_sym = 0, sulq_gain = 0;
  int lambda_sym = 0, lambda_gain = 0;
  int rho_ok = 0;
};

void print_tally(const char* label, const Tally& t) {
  auto pct = [&](int c) { return 100.0 * c / t.trials; };
  std::printf("  %-24s %8.0f%% %10.0f%% %10.0f%% %10.0f%% %10.0f%% %10.0f%% %8.0f%%\n",
              label, pct(t.perfect), pct(t.epistemic), pct(t.sulq_sym),
              pct(t.sulq_gain), pct(t.lambda_sym), pct(t.lambda_gain),
              pct(t.rho_ok));
}

}  // namespace

int main() {
  std::printf("=== E12: privacy frameworks compared (Section 1.1) ===\n\n");
  std::printf("fraction of disclosures PERMITTED by each framework\n");
  std::printf("(epsilon = 0.25 for SuLQ, lambda = 0.2, rho = 0.5 -> 0.8)\n\n");
  std::printf("  %-24s %9s %11s %11s %11s %11s %11s %9s\n", "workload", "perfect",
              "epistemic", "SuLQ |.|", "SuLQ gain", "lam sym", "lam gain",
              "no rho");

  Rng rng(1212);
  const unsigned n = 3;
  const double eps = 0.25, lambda = 0.2;
  const int trials = 150;

  auto run = [&](const char* label, auto generate) {
    Tally t;
    t.trials = trials;
    for (int i = 0; i < trials; ++i) {
      auto [a, b] = generate();
      if ((a & b).is_empty() || a.is_empty() || b.is_empty()) {
        --t.trials;
        continue;
      }
      const FrameworkAssessment s = assess_over_product_priors(a, b, rng, 1500);
      t.perfect += miklau_suciu_independent(a, b);
      t.epistemic += s.epistemic_ok(1e-6);
      t.sulq_sym += s.sulq_ok(eps);
      t.sulq_gain += s.sulq_gain_only_ok(eps);
      t.lambda_sym += s.lambda_ok(lambda);
      t.lambda_gain += s.lambda_gain_only_ok(lambda);
      t.rho_ok += !s.breach_rho;
    }
    print_tally(label, t);
  };

  run("implication queries", [&] {
    const unsigned i = static_cast<unsigned>(rng.next_below(n));
    unsigned j = static_cast<unsigned>(rng.next_below(n));
    if (j == i) j = (j + 1) % n;
    WorldSet a(n), b(n);
    for (World w = 0; w < (World{1} << n); ++w) {
      if (world_bit(w, i)) a.insert(w);
      if (!world_bit(w, i) || world_bit(w, j)) b.insert(w);
    }
    return std::pair{a, b};
  });
  run("negative monotone answers", [&] {
    WorldSet a = up_closure(WorldSet::random(n, rng, 0.25));
    WorldSet b = ~up_closure(WorldSet::random(n, rng, 0.25));
    return std::pair{a, b};
  });
  run("independent records", [&] {
    const unsigned j = 1 + static_cast<unsigned>(rng.next_below(n - 1));
    WorldSet a(n), b(n);
    for (World w = 0; w < (World{1} << n); ++w) {
      if (world_bit(w, 0)) a.insert(w);
      if (world_bit(w, j)) b.insert(w);
    }
    return std::pair{a, b};
  });
  run("random dense", [&] {
    return std::pair{WorldSet::random(n, rng, 0.5), WorldSet::random(n, rng, 0.5)};
  });
  run("direct disclosure (A=B)", [&] {
    WorldSet a = WorldSet::random(n, rng, 0.4);
    return std::pair{a, a};
  });

  std::printf(
      "\nReading: on loss-only workloads (implications, negative monotone\n"
      "answers) the symmetric SuLQ/lambda bounds refuse what epistemic\n"
      "privacy and their own gain-only variants allow — the measured form of\n"
      "the paper's gain-vs-loss observation. Perfect secrecy trails every\n"
      "framework. All frameworks agree on independent records (everything\n"
      "allowed) and on direct disclosures (nothing allowed).\n");
  return 0;
}
