// Experiment E11 (extension; the paper's Section 7 future-work direction):
// online (proactive) auditing with strategy-aware agents.
//
// Measured claims:
//  * the introduction's pitfall: the naive "answer truthfully while safe"
//    strategy leaks the sensitive set through its denials to an agent who
//    knows the strategy — we count the breach rate over random query
//    streams;
//  * the simulatable strategy (denial decision computable from the agent's
//    knowledge alone) never leaks, at the cost of denying more queries;
//  * utility comparison: denial rates of the two strategies.
#include <cstdio>

#include "core/online.h"
#include "util/rng.h"

using namespace epi;

int main() {
  std::printf("=== E11 (extension): online auditing, leaky vs simulatable ===\n\n");
  std::printf("%3s %10s | %14s %12s | %14s %12s\n", "n", "streams",
              "naive breach", "naive deny%", "simul breach", "simul deny%");

  Rng rng(808);
  for (unsigned n : {1u, 2u, 3u, 4u}) {
    const int streams = 400;
    const int queries_per_stream = 10;
    int naive_breaches = 0, simul_breaches = 0;
    int naive_denials = 0, simul_denials = 0;
    int total_queries = 0;

    for (int s = 0; s < streams; ++s) {
      WorldSet a = WorldSet::random(n, rng, 0.4);
      if (a.is_empty() || a.is_universe()) {
        a = WorldSet::singleton(n, static_cast<World>(rng.next_bits(n)));
      }
      // Actual world inside A (something to protect).
      const World actual = a.min_world();
      OnlineAuditSession naive(a, actual, OnlineStrategy::kTruthfulWhenSafe);
      OnlineAuditSession simulatable(a, actual, OnlineStrategy::kSimulatable);
      for (int q = 0; q < queries_per_stream; ++q) {
        const WorldSet query = WorldSet::random(n, rng, 0.5);
        naive.ask(query);
        simulatable.ask(query);
        ++total_queries;
      }
      naive_breaches += naive.agent_knows_sensitive();
      simul_breaches += simulatable.agent_knows_sensitive();
      naive_denials += naive.denials();
      simul_denials += simulatable.denials();
    }

    std::printf("%3u %10d | %13.1f%% %11.1f%% | %13.1f%% %11.1f%%\n", n, streams,
                100.0 * naive_breaches / streams,
                100.0 * naive_denials / total_queries,
                100.0 * simul_breaches / streams,
                100.0 * simul_denials / total_queries);
  }

  std::printf(
      "\nExpectations: the naive strategy breaches on a large fraction of\n"
      "streams (its denials depend on the actual database — the paper's\n"
      "introduction pitfall); the simulatable strategy breaches on none,\n"
      "paying with a higher denial rate. Offline auditing (the paper's\n"
      "subject) avoids the dilemma entirely: verdicts are never fed back.\n");
  return 0;
}
