// Experiment E14 (extension): audit-service throughput — the request-level
// measurement for the concurrent front-end (src/service/). Replays a
// synthetic hospital log through AuditService from concurrent client
// threads and reports requests/sec along two axes:
//   1. client concurrency (1..8 threads, each with its own user namespace so
//      sessions do not serialize across clients);
//   2. cold vs warm verdict cache — the first pass decides everything in the
//      engine, the second is the steady state a long-running service sees,
//      with the measured hit-rate alongside.
//
//   3. batch admission — submit_many/process_many of the whole log versus
//      a per-request process() loop from one client (queueing amortized,
//      same verdicts).
//
// `--rate-only` prints a single "rate=<requests/sec>" line (warm cache,
// 4 client threads) for CI trend lines and A/B runs.
//
// `--json` replaces the text report with the shared bench_json.h schema;
// BENCH_service.json at the repo root is the checked-in baseline the CI
// perf gate diffs (tools/bench_compare.py).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/workload.h"
#include "service/audit_service.h"

using namespace epi;

namespace {

WorkloadOptions bench_workload_options() {
  WorkloadOptions options;
  options.patients = 6;
  options.queries = 80;
  options.seed = 0xAB5 + 14;
  return options;
}

service::ServiceOptions bench_service_options(unsigned workers) {
  service::ServiceOptions options;
  options.auditor.enable_sos = false;  // throughput mode: no SDP stage
  options.auditor.ascent.multistarts = 16;
  options.workers = workers;
  options.queue_capacity = 4096;
  options.cache_capacity = 8192;
  return options;
}

std::unique_ptr<service::AuditService> make_service(const Workload& workload,
                                                    unsigned workers) {
  std::unique_ptr<service::AuditService> out;
  const Status s = service::AuditService::try_create(
      workload.universe, workload.database.state(),
      workload.audit_candidates.front(), PriorAssumption::kProduct,
      bench_service_options(workers), &out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    std::exit(1);
  }
  return out;
}

/// Replays the whole log once per client thread (distinct user namespaces)
/// and returns requests per second.
double run_pass(service::AuditService& service, const Workload& workload,
                unsigned clients) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&service, &workload, c] {
      for (const Disclosure& entry : workload.log.entries()) {
        service::AuditRequest request;
        request.user = entry.user + "#" + std::to_string(c);
        request.query_text = entry.query_text;
        request.answer = entry.answer;  // replayed-log mode
        service.process(std::move(request));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(clients * workload.log.size()) / seconds;
}

double hit_rate_delta(const obs::MetricsSnapshot& before,
                      const obs::MetricsSnapshot& after) {
  const double hits = static_cast<double>(
      after.counter("service.cache.hits") - before.counter("service.cache.hits"));
  const double misses =
      static_cast<double>(after.counter("service.cache.misses") -
                          before.counter("service.cache.misses"));
  return hits + misses > 0 ? hits / (hits + misses) : 0.0;
}

/// The whole log as one request batch (replayed-log mode, one client).
std::vector<service::AuditRequest> log_batch(const Workload& workload) {
  std::vector<service::AuditRequest> requests;
  requests.reserve(workload.log.size());
  for (const Disclosure& entry : workload.log.entries()) {
    service::AuditRequest request;
    request.user = entry.user;
    request.query_text = entry.query_text;
    request.answer = entry.answer;
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace

int main(int argc, char** argv) {
  const Workload workload = make_hospital_workload(bench_workload_options());

  if (argc > 1 && std::strcmp(argv[1], "--rate-only") == 0) {
    std::unique_ptr<service::AuditService> svc = make_service(workload, 2);
    run_pass(*svc, workload, 4);  // cold pass: warm the cache and allocator
    std::printf("rate=%.0f\n", run_pass(*svc, workload, 4));
    svc->shutdown();
    return 0;
  }

  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  bench::JsonReport report("service_throughput");

  if (!json) {
    std::printf("=== E14 (extension): audit service throughput ===\n\n");
    std::printf("workload: %u records, %zu logged queries, audit query \"%s\",\n"
                "product prior, 2 service workers\n\n",
                workload.universe.size(), workload.log.size(),
                workload.audit_candidates.front().c_str());
    std::printf("%8s %9s %12s %12s %14s\n", "clients", "requests",
                "cold req/s", "warm req/s", "warm hit-rate");
  }

  for (unsigned clients : {1u, 2u, 4u, 8u}) {
    std::unique_ptr<service::AuditService> svc = make_service(workload, 2);
    const double cold = run_pass(*svc, workload, clients);
    const obs::MetricsSnapshot before = svc->metrics_snapshot();
    const double warm = run_pass(*svc, workload, clients);
    const obs::MetricsSnapshot after = svc->metrics_snapshot();
    if (!json) {
      std::printf("%8u %9zu %12.0f %12.0f %13.1f%%\n", clients,
                  static_cast<std::size_t>(clients) * workload.log.size(),
                  cold, warm, hit_rate_delta(before, after) * 100.0);
    }
    report.row("client_scaling")
        .field("clients", clients)
        .field("requests",
               static_cast<std::size_t>(clients) * workload.log.size())
        .field("cold_requests_per_sec", cold, 0)
        .field("warm_requests_per_sec", warm, 0)
        .field("warm_hit_rate_pct", hit_rate_delta(before, after) * 100.0, 1);
    svc->shutdown();
  }

  // --- batch admission: process_many vs a per-request loop, one client ----
  {
    std::unique_ptr<service::AuditService> svc = make_service(workload, 2);
    run_pass(*svc, workload, 1);  // warm cache and allocator

    std::vector<service::AuditRequest> requests = log_batch(workload);
    auto t0 = std::chrono::steady_clock::now();
    for (service::AuditRequest& request : requests) {
      svc->process(request);
    }
    const double loop_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    t0 = std::chrono::steady_clock::now();
    const std::vector<service::AuditResponse> responses =
        svc->process_many(std::move(requests));
    const double batch_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    svc->shutdown();

    const double n = static_cast<double>(responses.size());
    if (!json) {
      std::printf(
          "\n--- batch admission: %zu-request log, warm cache ---\n\n"
          "%12s %14s\n%12s %14.0f\n%12s %14.0f   (%.2fx)\n",
          responses.size(), "mode", "requests/sec", "loop", n / loop_s,
          "batch", n / batch_s, loop_s / batch_s);
    }
    report.row("batch_admission")
        .field("requests", responses.size())
        .field("loop_requests_per_sec", n / loop_s, 0)
        .field("batch_requests_per_sec", n / batch_s, 0)
        .field("speedup", loop_s / batch_s);
  }

  if (json) {
    report.print();
    return 0;
  }

  std::printf(
      "\nReading: the cold pass pays one engine decision per distinct\n"
      "(disclosure, conjunction) pair; the warm pass is the steady state of\n"
      "a long-running service, where the sharded verdict cache serves repeat\n"
      "decisions and throughput is bounded by session bookkeeping and the\n"
      "request queue. Verdicts are byte-identical to the offline auditor in\n"
      "every configuration (tests/service_test.cpp pins this).\n");
  return 0;
}
