// Session-evaluation throughput: the engine-level measurement behind the
// incremental serving path (engine/incremental.h). A streaming session is a
// monotonically shrinking accumulated set S1 ⊇ S2 ⊇ ... (Section 3.3:
// acquiring B1 then B2 equals acquiring B1 ∩ B2); the service decides
// Safe(A, Sk) after every disclosure. This bench replays the same shrinking
// sessions through both cumulative-verdict strategies:
//
//   recompute    — DecisionEngine::decide() per step, the stateless path the
//                  service used before per-session state existed (every step
//                  hashes S for the pair memo and reruns the cascade);
//   incremental  — DecisionEngine::decide_incremental() with one persistent
//                  IncrementalContext per session, so a step costs O(change):
//                  pinned monotone verdicts and unchanged-S repeats are O(1),
//                  and the subcube stage delta-updates its Δ-class counters
//                  over just the removed worlds.
//
// Scenarios: `subcube` (kSubcubeKnowledge, prepared Δ-class machinery — the
// Section 4.1 cascade where recompute rescans A ∩ S every step) and
// `unrestricted` (Theorem 3.11, with a mid-session disclosure that empties
// A ∩ S so the monotone Safe verdict pins). Both axes are asserted
// byte-identical per step before any timing runs — the bench doubles as a
// differential check of the incremental contract.
//
// Reported per (scenario, session length): verdicts/sec on both axes, plus
// the steady-state k-th-verdict cost (first step excluded — it pays the
// one-time per-session state construction) and its speedup. Each axis
// replays the identical sessions for several rounds and reports its best
// round (fold_round) so the gated ratios stay stable across machine noise.
// The headline acceptance number is `speedup_kth` on the subcube
// length-128 row.
//
// `--json` emits the shared bench_json.h schema; BENCH_session.json at the
// repo root is the checked-in baseline the CI perf gate diffs
// (tools/bench_compare.py).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/auditor.h"
#include "db/parser.h"
#include "db/record.h"
#include "engine/decision_engine.h"
#include "engine/incremental.h"
#include "util/rng.h"
#include "workloads/family.h"
#include "worlds/world_set.h"

using namespace epi;

namespace {

using Clock = std::chrono::steady_clock;

double ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// One pre-generated session: the accumulated set after each disclosure and
/// whether that step actually shrank it (Session::absorb marks the state
/// dirty only on a real shrink, so the bench mirrors that).
struct SessionTrace {
  std::vector<WorldSet> s;
  std::vector<char> changed;
};

/// Shrinks S by a small random slice most steps (each answered query rules
/// out a handful of worlds — the streaming regime the incremental path
/// targets); one step in four repeats already-known information (no change —
/// the service's "unchanged" tier). `kill` forces S ∩ kill at `kill_step`,
/// which the unrestricted scenario uses to empty A ∩ S mid-session.
SessionTrace make_session(unsigned n, double keep_density, unsigned length,
                          Rng& rng, const WorldSet* kill, unsigned kill_step,
                          const WorldSet* protect) {
  SessionTrace out;
  out.s.reserve(length);
  out.changed.reserve(length);
  WorldSet acc = WorldSet::universe(n);
  for (unsigned k = 0; k < length; ++k) {
    const WorldSet prev = acc;
    if (kill != nullptr && k == kill_step) {
      acc &= *kill;
    } else if (rng.next_below(4) != 0) {
      WorldSet disclosed = WorldSet::random(n, rng, keep_density);
      if (protect != nullptr) disclosed |= *protect;
      acc &= disclosed;
    }
    out.changed.push_back(acc != prev ? 1 : 0);
    out.s.push_back(acc);
  }
  return out;
}

struct Scenario {
  const char* name = "";
  unsigned n = 0;
  /// Per-world survival probability of each shrinking disclosure.
  double keep_density = 0.999;
  std::unique_ptr<Auditor> auditor;
  WorldSet a = WorldSet::empty(1);  // replaced by the real audit set below
  /// Non-null for the subcube prior: installed into every context so the
  /// prepared Δ-class machinery is live, as in the audit service.
  std::shared_ptr<IntervalOracle> oracle;
  /// Unrestricted only: a mid-session disclosure emptying A ∩ S.
  std::unique_ptr<WorldSet> kill;
  /// Subcube only: worlds every disclosure leaves in S, so the session
  /// stays in the Safe steady state (see make_subcube_scenario).
  std::unique_ptr<WorldSet> protect;
};

// ~50-world audit set over 4096 worlds, disclosures removing a handful of
// worlds each and leaving the fragile Δ-classes (two worlds or fewer)
// intact, so every cumulative verdict stays Safe. That is the long-lived
// compliant session — the steady state a serving deployment spends its time
// in — and the asymmetric regime: recompute must re-prove safety by
// rescanning every active w1's Δ-classes per step (Cor. 4.12, no early
// exit), while the incremental index only debits the removed worlds'
// counters.
Scenario make_subcube_scenario() {
  Scenario sc;
  sc.name = "subcube";
  sc.n = 12;
  sc.keep_density = 0.999;
  RecordUniverse u;
  for (unsigned i = 0; i < sc.n; ++i) u.add("r" + std::to_string(i));
  sc.auditor =
      std::make_unique<Auditor>(u, PriorAssumption::kSubcubeKnowledge);
  Rng rng(0x5E55'0901);
  sc.a = WorldSet::random(sc.n, rng, 0.012);
  sc.oracle = sc.auditor->shared_subcube_oracle();
  AuditContext ctx;
  ctx.set_interval_oracle(sc.oracle);
  ctx.prepare_subcube(sc.a);
  const auto prep = ctx.shared_prepared_for(sc.a);
  WorldSet prot = WorldSet::empty(sc.n);
  to_finite(sc.a).visit([&](std::size_t w1) {
    for (const FiniteSet& cls : prep->classes(w1)) {
      if (cls.count() <= 2) {
        cls.visit([&](std::size_t e) { prot.insert(static_cast<World>(e)); });
      }
    }
  });
  sc.protect = std::make_unique<WorldSet>(std::move(prot));
  return sc;
}

Scenario make_unrestricted_scenario() {
  Scenario sc;
  sc.name = "unrestricted";
  sc.n = 14;
  sc.keep_density = 0.99;
  RecordUniverse u;
  for (unsigned i = 0; i < sc.n; ++i) u.add("r" + std::to_string(i));
  sc.auditor = std::make_unique<Auditor>(u, PriorAssumption::kUnrestricted);
  Rng rng(0x5E55'0902);
  sc.a = WorldSet::random(sc.n, rng, 0.5);
  sc.kill = std::make_unique<WorldSet>(~sc.a);
  return sc;
}

/// Fresh worker-style context: stage counters wired, subcube machinery
/// prepared for A when the scenario has it. Setup runs outside every timed
/// region on both axes — the service amortizes it across a worker lifetime.
void setup_context(AuditContext& ctx, const Scenario& sc) {
  ctx.reset_stages(sc.auditor->engine().stage_names());
  if (sc.oracle) {
    ctx.set_interval_oracle(sc.oracle);
    ctx.prepare_subcube(sc.a);
  }
}

bool same_decision(const EngineDecision& x, const EngineDecision& y) {
  return x.verdict == y.verdict && x.method == y.method &&
         x.certified == y.certified && x.numeric_gap == y.numeric_gap &&
         x.detail == y.detail;
}

/// Both axes over every session step, compared field-for-field. The
/// incremental contract is byte-identity with decide(); a mismatch is a
/// correctness bug, not a perf result.
bool verify_identical(const Scenario& sc,
                      const std::vector<SessionTrace>& sessions) {
  const DecisionEngine& engine = sc.auditor->engine();
  AuditContext full_ctx;
  AuditContext inc_ctx;
  setup_context(full_ctx, sc);
  setup_context(inc_ctx, sc);
  for (std::size_t si = 0; si < sessions.size(); ++si) {
    const SessionTrace& sess = sessions[si];
    IncrementalContext inc;
    for (std::size_t k = 0; k < sess.s.size(); ++k) {
      if (k == 0 || sess.changed[k]) inc.dirty = true;
      const EngineDecision want = engine.decide(sc.a, sess.s[k], full_ctx);
      const EngineDecision got =
          engine.decide_incremental(sc.a, sess.s[k], inc, inc_ctx);
      if (!same_decision(want, got)) {
        std::fprintf(stderr,
                     "FAIL %s: session %zu step %zu: incremental diverged "
                     "(%s/%s vs %s/%s)\n",
                     sc.name, si, k, to_string(got.verdict).c_str(),
                     got.method.c_str(), to_string(want.verdict).c_str(),
                     want.method.c_str());
        return false;
      }
    }
  }
  return true;
}

struct AxisTiming {
  double total_ns = 0;
  double rest_ns = 0;  ///< steps 2..L only: the steady-state k-th verdict
  std::size_t steps = 0;
  std::size_t rest_steps = 0;

  double per_sec() const { return steps / (total_ns * 1e-9); }
  double kth_ns() const { return rest_ns / static_cast<double>(rest_steps); }

  /// Every round replays the identical session set, so the fastest round is
  /// the least-interference estimate of the true cost — folding min instead
  /// of summing keeps the perf-gate comparison stable across machine noise.
  void fold_round(double round_total_ns, double round_rest_ns,
                  std::size_t round_steps, std::size_t round_rest_steps) {
    if (steps == 0 || round_total_ns < total_ns) total_ns = round_total_ns;
    if (steps == 0 || round_rest_ns < rest_ns) rest_ns = round_rest_ns;
    steps = round_steps;
    rest_steps = round_rest_steps;
  }
};

AxisTiming run_recompute(const Scenario& sc,
                         const std::vector<SessionTrace>& sessions,
                         unsigned rounds) {
  const DecisionEngine& engine = sc.auditor->engine();
  AxisTiming t;
  for (unsigned r = 0; r < rounds; ++r) {
    // Fresh context per round: the pair memo must not carry answers from a
    // previous replay of the very same sessions.
    AuditContext ctx;
    setup_context(ctx, sc);
    double round_total = 0, round_rest = 0;
    std::size_t round_steps = 0, round_rest_steps = 0;
    for (const SessionTrace& sess : sessions) {
      const auto t0 = Clock::now();
      EngineDecision d = engine.decide(sc.a, sess.s[0], ctx);
      const auto t1 = Clock::now();
      for (std::size_t k = 1; k < sess.s.size(); ++k) {
        d = engine.decide(sc.a, sess.s[k], ctx);
      }
      const auto t2 = Clock::now();
      (void)d;
      round_total += ns_between(t0, t2);
      round_rest += ns_between(t1, t2);
      round_steps += sess.s.size();
      round_rest_steps += sess.s.size() - 1;
    }
    t.fold_round(round_total, round_rest, round_steps, round_rest_steps);
  }
  return t;
}

AxisTiming run_incremental(const Scenario& sc,
                           const std::vector<SessionTrace>& sessions,
                           unsigned rounds) {
  const DecisionEngine& engine = sc.auditor->engine();
  AxisTiming t;
  for (unsigned r = 0; r < rounds; ++r) {
    AuditContext ctx;
    setup_context(ctx, sc);
    double round_total = 0, round_rest = 0;
    std::size_t round_steps = 0, round_rest_steps = 0;
    for (const SessionTrace& sess : sessions) {
      IncrementalContext inc;  // per-session state, as Session holds it
      const auto t0 = Clock::now();
      inc.dirty = true;
      EngineDecision d = engine.decide_incremental(sc.a, sess.s[0], inc, ctx);
      const auto t1 = Clock::now();
      for (std::size_t k = 1; k < sess.s.size(); ++k) {
        if (sess.changed[k]) inc.dirty = true;
        d = engine.decide_incremental(sc.a, sess.s[k], inc, ctx);
      }
      const auto t2 = Clock::now();
      (void)d;
      round_total += ns_between(t0, t2);
      round_rest += ns_between(t1, t2);
      round_steps += sess.s.size();
      round_rest_steps += sess.s.size() - 1;
    }
    t.fold_round(round_total, round_rest, round_steps, round_rest_steps);
  }
  return t;
}

struct Result {
  const char* scenario;
  unsigned length;
  AxisTiming recompute;
  AxisTiming incremental;
};

constexpr unsigned kSessionsPerLength = 16;
constexpr unsigned kTargetSteps = 8192;  ///< per axis, before the round cap

unsigned rounds_for(unsigned length) {
  const unsigned per_round = kSessionsPerLength * length;
  unsigned rounds = kTargetSteps / per_round;
  if (rounds < 1) rounds = 1;
  if (rounds > 8) rounds = 8;
  return rounds;
}

// --- Workload-family axis ---------------------------------------------------
// The synthetic sweep above controls the shrink rate; this axis replays the
// registry families' actual per-user streams (src/workloads/) through the
// same two strategies, so the session numbers cover the query mixes the
// parity check and the serving tier see. Each family stream becomes one
// SessionTrace per user (Prop. 3.10 running intersections), audited against
// the family's first sensitive property under the family's own prior.

struct FamilyResult {
  const char* family;
  std::string prior;
  unsigned records = 0;
  std::size_t sessions = 0;
  std::size_t steps = 0;
  AxisTiming recompute;
  AxisTiming incremental;
};

bool run_family_axis(std::vector<FamilyResult>* out) {
  const struct {
    const char* name;
    unsigned records, requests, users;
  } points[] = {
      {"hospital", 8, 192, 3},  {"aggregate", 8, 192, 3},
      {"policy", 10, 160, 2},   {"collusion", 10, 120, 3},
      {"rectangles", 12, 120, 2},
  };
  for (const auto& point : points) {
    const workloads::WorkloadFamily* family = workloads::find_family(point.name);
    workloads::FamilyOptions options;
    options.seed = 0x5E55'0F00;
    options.records = point.records;
    options.requests = point.requests;
    options.users = point.users;
    workloads::GeneratedWorkload generated;
    if (family == nullptr || !family->generate(options, &generated).ok()) {
      std::fprintf(stderr, "family generation failed: %s\n", point.name);
      return false;
    }

    Scenario sc;
    sc.name = point.name;
    sc.n = generated.universe.size();
    sc.auditor = std::make_unique<Auditor>(generated.universe, generated.prior);
    sc.a = parse_query(generated.audit_queries.front())
               ->compile(generated.universe);
    if (generated.prior == PriorAssumption::kSubcubeKnowledge) {
      sc.oracle = sc.auditor->shared_subcube_oracle();
    }

    // One session per user: the running intersection after each of that
    // user's disclosures, with the same changed/unchanged marks Session
    // tracks.
    std::vector<SessionTrace> sessions;
    std::vector<std::string> users;
    for (const workloads::StreamRequest& request : generated.stream) {
      std::size_t index = 0;
      while (index < users.size() && users[index] != request.user) ++index;
      if (index == users.size()) {
        users.push_back(request.user);
        sessions.emplace_back();
      }
      SessionTrace& trace = sessions[index];
      const WorldSet satisfying =
          parse_query(request.query_text)->compile(generated.universe);
      WorldSet acc =
          trace.s.empty() ? WorldSet::universe(sc.n) : trace.s.back();
      const WorldSet prev = acc;
      acc &= request.answer ? satisfying : ~satisfying;
      trace.changed.push_back(acc != prev ? 1 : 0);
      trace.s.push_back(std::move(acc));
    }

    if (!verify_identical(sc, sessions)) return false;
    FamilyResult res;
    res.family = point.name;
    res.prior = to_string(generated.prior);
    res.records = sc.n;
    res.sessions = sessions.size();
    for (const SessionTrace& trace : sessions) res.steps += trace.s.size();
    res.recompute = run_recompute(sc, sessions, 4);
    res.incremental = run_incremental(sc, sessions, 4);
    out->push_back(std::move(res));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const unsigned lengths[] = {8, 32, 128};
  std::vector<Scenario> scenarios;
  scenarios.push_back(make_subcube_scenario());
  scenarios.push_back(make_unrestricted_scenario());

  std::vector<Result> results;
  for (const Scenario& sc : scenarios) {
    for (unsigned length : lengths) {
      Rng rng(0x5E55'0000 + length);
      std::vector<SessionTrace> sessions;
      sessions.reserve(kSessionsPerLength);
      for (unsigned i = 0; i < kSessionsPerLength; ++i) {
        // The kill disclosure lands at a different early step per session so
        // the pin point varies; sessions without one never pin via kSafe.
        const unsigned kill_step = 1 + (i % 8) % length;
        sessions.push_back(make_session(sc.n, sc.keep_density, length, rng,
                                        sc.kill.get(), kill_step,
                                        sc.protect.get()));
      }
      if (!verify_identical(sc, sessions)) return 1;
      const unsigned rounds = rounds_for(length);
      Result res{sc.name, length, run_recompute(sc, sessions, rounds),
                 run_incremental(sc, sessions, rounds)};
      results.push_back(std::move(res));
    }
  }

  std::vector<FamilyResult> family_results;
  if (!run_family_axis(&family_results)) return 1;

  if (json) {
    bench::JsonReport report("bench_session_throughput");
    for (const Result& r : results) {
      report.row("session")
          .field("scenario", r.scenario)
          .field("length", r.length)
          .field("recompute_per_sec", r.recompute.per_sec(), 0)
          .field("incremental_per_sec", r.incremental.per_sec(), 0)
          .field("speedup", r.incremental.per_sec() / r.recompute.per_sec())
          .field("recompute_kth_ns", r.recompute.kth_ns(), 1)
          .field("incremental_kth_ns", r.incremental.kth_ns(), 1)
          .field("speedup_kth",
                 r.recompute.kth_ns() / r.incremental.kth_ns());
    }
    for (const FamilyResult& r : family_results) {
      report.row("session_families")
          .field("family", r.family)
          .field("prior", r.prior)
          .field("records", r.records)
          .field("sessions", r.sessions)
          .field("steps", r.steps)
          .field("recompute_per_sec", r.recompute.per_sec(), 0)
          .field("incremental_per_sec", r.incremental.per_sec(), 0)
          .field("speedup", r.incremental.per_sec() / r.recompute.per_sec())
          .field("recompute_kth_ns", r.recompute.kth_ns(), 1)
          .field("incremental_kth_ns", r.incremental.kth_ns(), 1)
          .field("speedup_kth",
                 r.recompute.kth_ns() / r.incremental.kth_ns());
    }
    report.print();
    return 0;
  }

  std::printf(
      "== cumulative-verdict throughput: incremental vs recompute ==\n");
  std::printf("%-13s %5s  %13s %13s %8s  %12s %12s %8s\n", "scenario", "len",
              "recompute/s", "incremental/s", "speedup", "kth rec ns",
              "kth inc ns", "kth spd");
  for (const Result& r : results) {
    std::printf("%-13s %5u  %13.0f %13.0f %7.1fx  %12.1f %12.1f %7.1fx\n",
                r.scenario, r.length, r.recompute.per_sec(),
                r.incremental.per_sec(),
                r.incremental.per_sec() / r.recompute.per_sec(),
                r.recompute.kth_ns(), r.incremental.kth_ns(),
                r.recompute.kth_ns() / r.incremental.kth_ns());
  }
  std::printf(
      "\n== workload families: registry streams, one session per user ==\n");
  std::printf("%-13s %18s %5s %6s  %13s %13s %8s\n", "family", "prior",
              "sess", "steps", "recompute/s", "incremental/s", "kth spd");
  for (const FamilyResult& r : family_results) {
    std::printf("%-13s %18s %5zu %6zu  %13.0f %13.0f %7.1fx\n", r.family,
                r.prior.c_str(), r.sessions, r.steps, r.recompute.per_sec(),
                r.incremental.per_sec(),
                r.recompute.kth_ns() / r.incremental.kth_ns());
  }

  std::printf(
      "\nkth = steady-state per-verdict cost, first step of each session\n"
      "excluded (it pays one-time per-session state construction).\n"
      "Both axes verified byte-identical per step before timing.\n");
  return 0;
}
